/**
 * @file
 * Fig. 8 — Impact of distributed pointer traversals (section 7.2).
 *
 * pulse vs pulse-ACC (the ablation that bounces off-node continuations
 * through the CPU node instead of re-routing at the switch). Paper
 * shapes to reproduce:
 *   (a) identical latency on one memory node; pulse-ACC 1.9-2.7x
 *       higher latency on two nodes;
 *   (b) identical *throughput* either way — with sufficient load both
 *       are bottlenecked by memory bandwidth, not by where
 *       continuations route.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); results and metrics exports are byte-
 * identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kTc, App::kTsv15, App::kTsv60};

struct Cell
{
    double mean_us = 0.0;
    double kops = 0.0;
    double imbalance = 1.0;  ///< per-node request skew (max/mean)
};

std::map<std::string, Cell> g_cells;

std::string
cell_key(App app, bool acc, std::uint32_t nodes, const char* metric)
{
    return std::string(app_name(app)) + "/" +
           (acc ? "pulse-ACC" : "pulse") + "/" +
           std::to_string(nodes) + "/" + metric;
}

RunSpec
latency_spec(App app, bool acc, std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, SystemKind::kPulse, nodes);
    spec.pulse_acc = acc;
    spec.concurrency = 1;
    spec.warmup_ops = 40;
    spec.measure_ops = 300;
    return spec;
}

RunSpec
throughput_spec(App app, bool acc, std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, SystemKind::kPulse, nodes);
    spec.pulse_acc = acc;
    spec.concurrency = 512 * nodes;
    spec.warmup_ops = spec.concurrency;
    spec.measure_ops = 2 * spec.concurrency;
    return spec;
}

/** Visit every Fig. 8 cell in the canonical (deterministic) order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const App app : kApps) {
        for (const std::uint32_t nodes : {1u, 2u}) {
            for (const bool acc : {false, true}) {
                fn(app, acc, nodes, true);
                fn(app, acc, nodes, false);
            }
        }
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, bool acc, std::uint32_t nodes,
                           bool is_lat) {
        const std::string key =
            cell_key(app, acc, nodes, is_lat ? "lat" : "thr");
        const RunSpec spec = is_lat
                                 ? latency_spec(app, acc, nodes)
                                 : throughput_spec(app, acc, nodes);
        sweep.add_spec(key, spec, [key](const RunOutcome& outcome) {
            g_cells[key] = Cell{outcome.mean_us, outcome.kops,
                                outcome.node_imbalance};
        });
    });
}

void
print_tables()
{
    Table lat("Fig 8a: pulse vs pulse-ACC latency, mean us");
    lat.set_header({"app", "pulse(1)", "ACC(1)", "pulse(2)", "ACC(2)",
                    "ACC/pulse(2)"});
    for (const App app : kApps) {
        std::vector<std::string> row = {app_name(app)};
        double pulse2 = 0.0;
        double acc2 = 0.0;
        for (const std::uint32_t nodes : {1u, 2u}) {
            for (const bool acc : {false, true}) {
                const auto it =
                    g_cells.find(cell_key(app, acc, nodes, "lat"));
                row.push_back(it == g_cells.end()
                                  ? "-"
                                  : fmt(it->second.mean_us));
                if (it != g_cells.end() && nodes == 2) {
                    (acc ? acc2 : pulse2) = it->second.mean_us;
                }
            }
        }
        row.push_back(pulse2 > 0 ? fmt(acc2 / pulse2, "%.2f") : "-");
        lat.add_row(row);
    }
    lat.print();

    Table thr("Fig 8b: pulse vs pulse-ACC throughput, K ops/s "
              "(imbal(2): per-node request skew, max/mean)");
    thr.set_header({"app", "pulse(1)", "ACC(1)", "pulse(2)", "ACC(2)",
                    "ACC/pulse(2)", "imbal(2)"});
    for (const App app : kApps) {
        std::vector<std::string> row = {app_name(app)};
        double pulse2 = 0.0;
        double acc2 = 0.0;
        double imbalance2 = 0.0;
        for (const std::uint32_t nodes : {1u, 2u}) {
            for (const bool acc : {false, true}) {
                const auto it =
                    g_cells.find(cell_key(app, acc, nodes, "thr"));
                row.push_back(it == g_cells.end()
                                  ? "-"
                                  : fmt(it->second.kops));
                if (it != g_cells.end() && nodes == 2) {
                    (acc ? acc2 : pulse2) = it->second.kops;
                    if (!acc) {
                        imbalance2 = it->second.imbalance;
                    }
                }
            }
        }
        row.push_back(pulse2 > 0 ? fmt(acc2 / pulse2, "%.2f") : "-");
        row.push_back(imbalance2 > 0 ? fmt(imbalance2, "%.2f") : "-");
        thr.add_row(row);
    }
    thr.print();
}

void
register_benchmarks()
{
    for_each_cell([](App app, bool acc, std::uint32_t nodes,
                     bool is_lat) {
        const std::string key =
            cell_key(app, acc, nodes, is_lat ? "lat" : "thr");
        benchmark::RegisterBenchmark(
            ("fig8/" + key).c_str(),
            [key, is_lat](benchmark::State& state) {
                const Cell& cell = g_cells[key];
                for (auto _ : state) {
                }
                if (is_lat) {
                    state.counters["mean_us"] = cell.mean_us;
                } else {
                    state.counters["kops"] = cell.kops;
                }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig8");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
