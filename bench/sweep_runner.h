/**
 * @file
 * Parallel sweep runner for the figure/table benches.
 *
 * Every paper figure is a sweep of independent, deterministic
 * simulation cells (app x system x nodes x concurrency). Each cell
 * builds its own Cluster — its own EventQueue, Network, Rng — so
 * cells share nothing and their *results* cannot depend on when or
 * where they execute. The runner exploits exactly that: cells run on
 * a worker pool (PULSE_BENCH_THREADS / --threads, default = hardware
 * concurrency, 1 = the historical serial behavior), while everything
 * order-sensitive — MetricsSink cell numbering, consume callbacks,
 * table rows — happens on the main thread afterwards, in add() order.
 * A parallel run is therefore byte-identical to a serial run, which
 * CI enforces (serial vs parallel metrics exports diffed, sweeps run
 * under TSan).
 *
 * Intra-cell parallelism is deliberately absent: a cell is one
 * discrete-event simulation whose determinism depends on executing
 * events in a single total order (equal-timestamp FIFO); the cheap,
 * safe parallelism is across cells.
 *
 * Wall-clock and peak-RSS per cell are reported through the same
 * MetricsExporter machinery into a *separate* artifact
 * (PULSE_BENCH_WALLCLOCK_OUT): timing is inherently nondeterministic,
 * so folding it into the PULSE_METRICS_OUT snapshot would break the
 * byte-identity contract above.
 */
#ifndef PULSE_BENCH_SWEEP_RUNNER_H
#define PULSE_BENCH_SWEEP_RUNNER_H

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace pulse::bench {

/** Process peak RSS in KiB (Linux ru_maxrss), 0 if unavailable. */
inline long
peak_rss_kib()
{
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0;
    }
    return usage.ru_maxrss;
}

/**
 * Handle given to a cell body while it runs on a worker thread.
 * run_spec() defers its sink record; bespoke bodies account their
 * simulated events through add_events() so the sweep's events/sec
 * self-profile stays meaningful.
 */
class CellContext
{
  public:
    /** Execute a RunSpec cell, deferring its metrics record. */
    RunOutcome
    run_spec(const RunSpec& spec)
    {
        return run_cell(spec, records_, &events_);
    }

    /** Account simulated events executed by a bespoke cell body. */
    void add_events(std::uint64_t n) { events_ += n; }

  private:
    friend class SweepRunner;

    explicit CellContext(std::vector<SinkRecord>* records)
        : records_(records)
    {
    }

    std::vector<SinkRecord>* records_;
    std::uint64_t events_ = 0;
};

/** Cell-level share-nothing parallel sweep (see file comment). */
class SweepRunner
{
  public:
    /** @p name tags the wallclock artifact (usually the figure). */
    explicit SweepRunner(std::string name) : name_(std::move(name)) {}

    /**
     * Add a bespoke cell. @p body runs on a worker thread and must
     * share nothing with other cells (build your own Cluster; write
     * results only to state owned by this cell, e.g. a pre-sized
     * vector slot). @p body must be set.
     */
    void
    add(std::string label, std::function<void(CellContext&)> body)
    {
        Cell cell;
        cell.label = std::move(label);
        cell.body = std::move(body);
        cells_.push_back(std::move(cell));
    }

    /**
     * Add a RunSpec cell. @p consume (optional) receives the outcome
     * on the main thread after the parallel phase, in add() order —
     * the race-free place to fill result maps and table rows.
     */
    void
    add_spec(std::string label, const RunSpec& spec,
             std::function<void(const RunOutcome&)> consume = {})
    {
        Cell cell;
        cell.label = std::move(label);
        cell.spec = std::make_unique<RunSpec>(spec);
        cell.consume = std::move(consume);
        cells_.push_back(std::move(cell));
    }

    std::size_t size() const { return cells_.size(); }

    /**
     * Execute every cell, then replay deferred metrics records and
     * consume callbacks in add() order. Returns total wall seconds.
     */
    double
    run_all()
    {
        // Materialize the process singletons before workers exist.
        MetricsSink::instance();
        const unsigned threads = std::max<unsigned>(
            1, std::min<std::size_t>(bench_options().threads,
                                     cells_.size()));
        const auto sweep_start = std::chrono::steady_clock::now();
        std::atomic<std::size_t> next{0};
        const auto worker = [this, &next] {
            for (;;) {
                const std::size_t index =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (index >= cells_.size()) {
                    return;
                }
                run_one(cells_[index]);
            }
        };
        if (threads == 1) {
            worker();  // exactly the historical serial behavior
        } else {
            std::vector<std::thread> pool;
            pool.reserve(threads - 1);
            for (unsigned i = 0; i + 1 < threads; i++) {
                pool.emplace_back(worker);
            }
            worker();
            for (std::thread& thread : pool) {
                thread.join();
            }
        }
        const double sweep_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - sweep_start)
                .count();

        // Deterministic post-phase: cell numbering, result
        // consumption, and table state mutate in add() order only.
        for (Cell& cell : cells_) {
            for (SinkRecord& record : cell.records) {
                MetricsSink::instance().replay(std::move(record));
            }
            if (cell.consume) {
                cell.consume(cell.outcome);
            }
        }
        export_wallclock(threads, sweep_seconds);
        return sweep_seconds;
    }

  private:
    struct Cell
    {
        std::string label;
        std::function<void(CellContext&)> body;
        std::unique_ptr<RunSpec> spec;
        std::function<void(const RunOutcome&)> consume;
        RunOutcome outcome;
        std::vector<SinkRecord> records;
        std::uint64_t events = 0;
        double wall_seconds = 0.0;
    };

    void
    run_one(Cell& cell)
    {
        const auto start = std::chrono::steady_clock::now();
        CellContext context(&cell.records);
        if (cell.spec) {
            cell.outcome = context.run_spec(*cell.spec);
        } else {
            cell.body(context);
        }
        cell.events = context.events_;
        cell.wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
    }

    /**
     * Fold the sweep's self-profile into the wallclock artifact
     * (PULSE_BENCH_WALLCLOCK_OUT; separate from PULSE_METRICS_OUT by
     * design — see file comment). Cumulative across sweeps in one
     * process: each run_all() rewrites the file with everything
     * recorded so far.
     */
    void
    export_wallclock(unsigned threads, double sweep_seconds)
    {
        const char* path = std::getenv("PULSE_BENCH_WALLCLOCK_OUT");
        if (path == nullptr || *path == '\0') {
            return;
        }
        static trace::MetricsExporter exporter;
        std::uint64_t events_total = 0;
        std::size_t index = 0;
        for (const Cell& cell : cells_) {
            char tag[32];
            std::snprintf(tag, sizeof(tag), ".cell%03zu.", index++);
            const std::string prefix = name_ + tag + cell.label + ".";
            exporter.set(prefix + "wall_ms",
                         cell.wall_seconds * 1e3);
            exporter.set(prefix + "events",
                         static_cast<double>(cell.events));
            if (cell.wall_seconds > 0.0) {
                exporter.set(prefix + "events_per_sec",
                             static_cast<double>(cell.events) /
                                 cell.wall_seconds);
            }
            events_total += cell.events;
        }
        exporter.set(name_ + ".threads",
                     static_cast<double>(threads));
        exporter.set(name_ + ".cells",
                     static_cast<double>(cells_.size()));
        exporter.set(name_ + ".wall_ms", sweep_seconds * 1e3);
        exporter.set(name_ + ".events",
                     static_cast<double>(events_total));
        if (sweep_seconds > 0.0) {
            exporter.set(name_ + ".events_per_sec",
                         static_cast<double>(events_total) /
                             sweep_seconds);
        }
        exporter.set(name_ + ".peak_rss_kib",
                     static_cast<double>(peak_rss_kib()));
        if (!exporter.write_file(path)) {
            std::fprintf(stderr,
                         "wallclock export to %s failed\n", path);
        }
    }

    std::string name_;
    std::vector<Cell> cells_;
};

}  // namespace pulse::bench

#endif  // PULSE_BENCH_SWEEP_RUNNER_H
