/**
 * @file
 * Availability ablation: what does k-way replication buy when a memory
 * node goes dark mid-run?
 *
 * Setup: UPC on 3 memory nodes, concurrency 64, with a scripted
 * blackout of node 0 in the middle of the measured window and the
 * driver's bounded-retry policy on (so the workload keeps pushing
 * through the outage instead of accepting the first give-up). The
 * dataset is scaled down so replica establishment completes well
 * before the outage starts.
 *
 * Three rows: replication off (k=1, the seed behaviour — every
 * operation homed on node 0 stalls until the node heals), k=2 and k=3
 * (the heartbeat detector declares the node dead after a few missed
 * probes and failover re-routes its spans to surviving replicas, so
 * retried operations complete during the outage). Reported per row:
 * throughput and tail latency over the whole window, retry traffic,
 * time-to-detect (outage start -> death declared + re-routed) and
 * time-to-restore (outage start -> replication factor restored on the
 * survivors), straight from the plane's failover log.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

/** Outage window for node 0 (absolute sim time; warmup_ops is 0 so
 *  the measured window opens at t=0 and these land inside it). */
constexpr Time kOutageStart = micros(1500.0);
constexpr Time kOutageEnd = micros(4500.0);

const std::vector<std::uint32_t> kFactors = {1, 2, 3};

struct AvailabilityPoint
{
    std::uint32_t k = 1;
    double kops = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t failovers = 0;
    std::uint64_t spans_lost = 0;
    std::uint64_t rereplications = 0;
    double detect_us = 0.0;   ///< outage start -> death declared
    double restore_us = 0.0;  ///< outage start -> factor restored
};

std::vector<AvailabilityPoint> g_points(kFactors.size());

AvailabilityPoint
run_availability_cell(CellContext& ctx, std::uint32_t k)
{
    RunSpec spec = main_spec(App::kUpc, core::SystemKind::kPulse, 3);
    spec.concurrency = 64;
    // No warmup: the outage window above is in absolute sim time, so
    // the measured window must open at t=0 for the overlap to be
    // deterministic.
    spec.warmup_ops = 0;
    spec.measure_ops = 6000;
    // Small dataset: replica establishment (one COPY per home region)
    // finishes in the first few hundred microseconds.
    spec.scale.upc_keys = 12'000;
    spec.tweak = [k](core::ClusterConfig& config) {
        config.replication.replication_factor = k;
        config.faults.timeline.push_back(faults::NodeFaultWindow{
            /*node=*/0, faults::NodeFaultKind::kBlackout, kOutageStart,
            kOutageEnd});
        // Same opt-in reliability knobs as the fault ablation: without
        // adaptive RTO a blackout burns the whole retransmit ladder.
        config.offload.adaptive_rto = true;
        config.offload.retransmit_timeout = micros(2000.0);
    };

    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;
    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    driver.max_retries = 12;
    driver.retry_backoff = micros(200.0);
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        experiment.factory, driver);
    if (cluster.checker() != nullptr) {
        const std::uint64_t violations = cluster.verify_quiesce();
        if (violations != 0) {
            for (const auto& violation :
                 cluster.checker()->registry().diagnostics()) {
                std::fprintf(stderr, "%s\n",
                             violation.to_string().c_str());
            }
            panic("PULSE_CHECK: %llu violation(s) in cell k=%u",
                  static_cast<unsigned long long>(violations), k);
        }
    }
    ctx.add_events(cluster.queue().events_executed());

    AvailabilityPoint point;
    point.k = k;
    point.kops = result.throughput / 1e3;
    point.mean_us = to_micros(result.latency.mean());
    point.p99_us = to_micros(result.latency.percentile(0.99));
    point.completed = result.completed;
    point.failed = result.failed_ops;
    point.retries = result.retries;
    point.exhausted = result.retries_exhausted;
    if (const replication::ReplicationPlane* plane =
            cluster.replication_plane()) {
        point.failovers = plane->failovers().size();
        point.spans_lost =
            plane->stats().failover_spans_lost.value();
        point.rereplications = plane->stats().rereplications.value();
        if (!plane->failovers().empty()) {
            point.detect_us = to_micros(
                plane->failovers().front().declared_at - kOutageStart);
            point.restore_us = to_micros(plane->last_restore_time() -
                                         kOutageStart);
        }
    }
    return point;
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kFactors.size(); i++) {
        benchmark::RegisterBenchmark(
            ("availability/k" + std::to_string(kFactors[i])).c_str(),
            [i](benchmark::State& state) {
                const AvailabilityPoint& point = g_points[i];
                for (auto _ : state) {
                }
                state.counters["kops"] = point.kops;
                state.counters["p99_us"] = point.p99_us;
                state.counters["failovers"] =
                    static_cast<double>(point.failovers);
                state.counters["detect_us"] = point.detect_us;
                state.counters["restore_us"] = point.restore_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

void
record_metrics(const AvailabilityPoint& point)
{
    auto& metrics = MetricsSink::instance().exporter();
    const std::string prefix =
        "availability.k" + std::to_string(point.k) + ".";
    metrics.set(prefix + "kops", point.kops);
    metrics.set(prefix + "mean_us", point.mean_us);
    metrics.set(prefix + "p99_us", point.p99_us);
    metrics.set(prefix + "completed",
                static_cast<double>(point.completed));
    metrics.set(prefix + "failed", static_cast<double>(point.failed));
    metrics.set(prefix + "retries",
                static_cast<double>(point.retries));
    metrics.set(prefix + "retries_exhausted",
                static_cast<double>(point.exhausted));
    metrics.set(prefix + "failovers",
                static_cast<double>(point.failovers));
    metrics.set(prefix + "spans_lost",
                static_cast<double>(point.spans_lost));
    metrics.set(prefix + "rereplications",
                static_cast<double>(point.rereplications));
    metrics.set(prefix + "detect_us", point.detect_us);
    metrics.set(prefix + "restore_us", point.restore_us);
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_availability");
    for (std::size_t i = 0; i < kFactors.size(); i++) {
        const std::uint32_t k = kFactors[i];
        sweep.add("k" + std::to_string(k), [i, k](CellContext& ctx) {
            g_points[i] = run_availability_cell(ctx, k);
        });
    }
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table(
        "Availability ablation: UPC, 3 nodes, concurrency 64, node 0 "
        "dark 1.5ms-4.5ms, driver retry (12 attempts, 200us backoff)");
    table.set_header({"k", "kops", "mean_us", "p99_us", "failed",
                      "retries", "exhausted", "failovers", "detect_us",
                      "restore_us"});
    for (const auto& point : g_points) {
        table.add_row({std::to_string(point.k), fmt(point.kops),
                       fmt(point.mean_us), fmt(point.p99_us),
                       std::to_string(point.failed),
                       std::to_string(point.retries),
                       std::to_string(point.exhausted),
                       std::to_string(point.failovers),
                       fmt(point.detect_us), fmt(point.restore_us)});
    }
    table.print();
    for (const auto& point : g_points) {
        record_metrics(point);
    }
    MetricsSink::instance().flush();
    return 0;
}
