/**
 * @file
 * Fig. 7 — Energy consumption per request (section 7.1).
 *
 * Energy per operation at memory-bandwidth saturation, single node.
 * Paper shapes to reproduce:
 *   - pulse consumes 4.56-7.14x less energy per request than RPC on a
 *     general-purpose CPU (the paper's text; its figure caption quotes
 *     different percentages — see EXPERIMENTS.md);
 *   - RPC-W (down-clocked "wimpy" cores) is *not* more efficient:
 *     slower execution wastes static power, so its energy/request can
 *     exceed RPC's (e.g. UPC).
 * Also reports performance-per-watt, the paper's efficiency metric.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

struct Cell
{
    double uj_per_op = 0.0;
    double kops_per_watt = 0.0;
};

std::map<std::string, Cell> g_cells;

std::string
cell_key(App app, SystemKind system)
{
    return std::string(app_name(app)) + "/" +
           core::system_name(system);
}

RunSpec
cell_spec(App app, SystemKind system)
{
    RunSpec spec = main_spec(app, system, 1);
    spec.concurrency = 512;
    spec.warmup_ops = spec.concurrency;
    spec.measure_ops = std::max<std::uint64_t>(
        2 * spec.concurrency, 1200);
    return spec;
}

Cell
to_cell(const RunOutcome& outcome)
{
    Cell cell;
    cell.uj_per_op = outcome.joules_per_op * 1e6;
    if (outcome.joules_per_op > 0 &&
        outcome.driver.measure_time > 0) {
        const double watts =
            outcome.joules_per_op * outcome.driver.throughput;
        cell.kops_per_watt =
            outcome.driver.throughput / 1e3 / watts;
    }
    return cell;
}

/** Visit every Fig. 7 cell in the canonical (deterministic) order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const App app : kApps) {
        for (const SystemKind system :
             {SystemKind::kRpc, SystemKind::kRpcWimpy,
              SystemKind::kCacheRpc, SystemKind::kPulse}) {
            if (system == SystemKind::kCacheRpc && app != App::kUpc) {
                continue;
            }
            fn(app, system);
        }
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, SystemKind system) {
        const std::string key = cell_key(app, system);
        sweep.add_spec(key, cell_spec(app, system),
                       [key](const RunOutcome& outcome) {
                           g_cells[key] = to_cell(outcome);
                       });
    });
}

void
print_tables()
{
    Table table("Fig 7: energy per request, uJ (1 node, saturated)");
    table.set_header({"app", "RPC", "RPC-W", "Cache+RPC", "pulse",
                      "RPC/pulse", "RPC-W/RPC"});
    for (const App app : kApps) {
        std::vector<std::string> row = {app_name(app)};
        double rpc = 0.0;
        double wimpy = 0.0;
        double pulse_energy = 0.0;
        for (const SystemKind system :
             {SystemKind::kRpc, SystemKind::kRpcWimpy,
              SystemKind::kCacheRpc, SystemKind::kPulse}) {
            const auto it = g_cells.find(cell_key(app, system));
            if (it == g_cells.end()) {
                row.push_back("-");
                continue;
            }
            row.push_back(fmt(it->second.uj_per_op, "%.1f"));
            if (system == SystemKind::kRpc) {
                rpc = it->second.uj_per_op;
            } else if (system == SystemKind::kRpcWimpy) {
                wimpy = it->second.uj_per_op;
            } else if (system == SystemKind::kPulse) {
                pulse_energy = it->second.uj_per_op;
            }
        }
        row.push_back(pulse_energy > 0 ? fmt(rpc / pulse_energy, "%.2f")
                                       : "-");
        row.push_back(rpc > 0 ? fmt(wimpy / rpc, "%.2f") : "-");
        table.add_row(row);
    }
    table.print();

    Table ppw("Fig 7 (derived): performance per watt, K ops/s/W");
    ppw.set_header({"app", "RPC", "RPC-W", "pulse", "pulse/RPC"});
    for (const App app : kApps) {
        std::vector<std::string> row = {app_name(app)};
        double rpc = 0.0;
        double pulse_ppw = 0.0;
        for (const SystemKind system :
             {SystemKind::kRpc, SystemKind::kRpcWimpy,
              SystemKind::kPulse}) {
            const auto it = g_cells.find(cell_key(app, system));
            if (it == g_cells.end()) {
                row.push_back("-");
                continue;
            }
            row.push_back(fmt(it->second.kops_per_watt, "%.1f"));
            if (system == SystemKind::kRpc) {
                rpc = it->second.kops_per_watt;
            } else if (system == SystemKind::kPulse) {
                pulse_ppw = it->second.kops_per_watt;
            }
        }
        row.push_back(rpc > 0 ? fmt(pulse_ppw / rpc, "%.2f") : "-");
        ppw.add_row(row);
    }
    ppw.print();
}

void
register_benchmarks()
{
    for_each_cell([](App app, SystemKind system) {
        const std::string key = cell_key(app, system);
        benchmark::RegisterBenchmark(
            ("fig7/" + key).c_str(),
            [key](benchmark::State& state) {
                const Cell& cell = g_cells[key];
                for (auto _ : state) {
                }
                state.counters["uJ_per_op"] = cell.uj_per_op;
                state.counters["kops_per_W"] = cell.kops_per_watt;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig7");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
