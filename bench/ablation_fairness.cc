/**
 * @file
 * Ablation — multi-tenant fairness (supplementary section B's
 * future-work extension, implemented in the accelerator's admission
 * queue).
 *
 * Tenant A floods one memory node with long traversals; tenant B
 * issues occasional short lookups. The table reports B's latency under
 * the paper's FIFO admission vs the fair-share (per-client
 * round-robin) policy across flood intensities: isolation bounds the
 * victim's queueing delay at roughly one in-service request, while
 * the flooding tenant's own throughput is unaffected (the node stays
 * saturated either way).
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/linked_list.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<std::uint32_t> kFloods = {4, 16, 64, 256};

struct Point
{
    std::uint32_t flood = 0;
    double fifo_us = 0.0;
    double fair_us = 0.0;
};

std::vector<Point> g_points(kFloods.size());

double
victim_latency(CellContext& ctx, accel::SchedPolicy policy,
               std::uint32_t flood_depth, double* flood_kops)
{
    core::ClusterConfig config;
    config.num_clients = 2;
    config.accel.sched_policy = policy;
    config.accel.workspaces_per_logic = 4;
    core::Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator(), 256);
    std::vector<std::uint64_t> values(1024);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Tenant A: a closed loop of flood_depth long walks.
    std::uint64_t flood_done = 0;
    std::function<void()> flood_one = [&] {
        auto op = list.make_walk(600, {});
        op.done = [&](offload::Completion&&) {
            flood_done++;
            if (flood_done < 400) {
                flood_one();
            }
        };
        cluster.submitter(core::SystemKind::kPulse, 0)(std::move(op));
    };
    for (std::uint32_t i = 0; i < flood_depth; i++) {
        flood_one();
    }

    // Tenant B: 50 short lookups spread through the flood.
    Histogram victim;
    std::uint64_t victim_done = 0;
    std::function<void()> probe_one = [&] {
        auto op = list.make_walk(4, {});
        op.done = [&](offload::Completion&& completion) {
            victim.add(completion.latency);
            victim_done++;
            if (victim_done < 50) {
                cluster.queue().schedule_after(micros(50.0),
                                               probe_one);
            }
        };
        cluster.submitter(core::SystemKind::kPulse, 1)(std::move(op));
    };
    cluster.queue().schedule_after(micros(20.0), probe_one);

    const Time start = cluster.queue().now();
    ctx.add_events(cluster.queue().run());
    if (flood_kops != nullptr) {
        *flood_kops =
            static_cast<double>(flood_done) /
            to_seconds(cluster.queue().now() - start) / 1e3;
    }
    return to_micros(victim.mean());
}

void
fairness_cell(CellContext& ctx, std::uint32_t flood_depth, Point& out)
{
    out.flood = flood_depth;
    out.fifo_us = victim_latency(ctx, accel::SchedPolicy::kFifo,
                                 flood_depth, nullptr);
    out.fair_us = victim_latency(ctx, accel::SchedPolicy::kFairShare,
                                 flood_depth, nullptr);
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kFloods.size(); i++) {
        benchmark::RegisterBenchmark(
            ("fairness/flood_" + std::to_string(kFloods[i])).c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["fifo_us"] = g_points[i].fifo_us;
                state.counters["fair_us"] = g_points[i].fair_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_fairness");
    for (std::size_t i = 0; i < kFloods.size(); i++) {
        const std::uint32_t flood = kFloods[i];
        sweep.add("flood_" + std::to_string(flood),
                  [flood, i](CellContext& ctx) {
                      fairness_cell(ctx, flood, g_points[i]);
                  });
    }
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Ablation: multi-tenant isolation — victim lookup "
                "latency (us) vs flood depth");
    table.set_header(
        {"flood_ops", "FIFO", "fair-share", "FIFO/fair"});
    for (const auto& point : g_points) {
        table.add_row({std::to_string(point.flood),
                       fmt(point.fifo_us), fmt(point.fair_us),
                       fmt(point.fifo_us / point.fair_us, "%.1f")});
    }
    table.print();

    auto& metrics = MetricsSink::instance().exporter();
    for (const auto& point : g_points) {
        const std::string prefix =
            "fairness.flood" + std::to_string(point.flood) + ".";
        metrics.set(prefix + "fifo_us", point.fifo_us);
        metrics.set(prefix + "fair_us", point.fair_us);
    }
    MetricsSink::instance().flush();
    return 0;
}
