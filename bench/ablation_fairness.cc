/**
 * @file
 * Ablation — multi-tenant fairness (supplementary section B's
 * future-work extension, implemented in the accelerator's admission
 * queue).
 *
 * Tenant A floods one memory node with long traversals; tenant B
 * issues occasional short lookups. The table reports B's latency under
 * the paper's FIFO admission vs the fair-share (per-client
 * round-robin) policy across flood intensities: isolation bounds the
 * victim's queueing delay at roughly one in-service request, while
 * the flooding tenant's own throughput is unaffected (the node stays
 * saturated either way).
 *
 * The second table is the serving-plane tenant-isolation benchmark
 * (src/serve): a latency-sensitive tenant's open-loop probes run solo,
 * then again while a batch tenant saturates the node with scans under
 * a full QoS contract — WDRR admission weights, a token-bucket quota
 * on the batch tenant and queue-depth caps. The gate: the latency
 * tenant's p99 stays within 2x its solo value, while the batch flood
 * demonstrably hit the quota (throttled > 0) and the shed path
 * (shed > 0). A violated gate fails the binary (CI uses it directly).
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/linked_list.h"
#include "serve/qos.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<std::uint32_t> kFloods = {4, 16, 64, 256};

struct Point
{
    std::uint32_t flood = 0;
    double fifo_us = 0.0;
    double fair_us = 0.0;
};

std::vector<Point> g_points(kFloods.size());

double
victim_latency(CellContext& ctx, accel::SchedPolicy policy,
               std::uint32_t flood_depth, double* flood_kops)
{
    core::ClusterConfig config;
    config.num_clients = 2;
    config.accel.sched_policy = policy;
    config.accel.workspaces_per_logic = 4;
    core::Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator(), 256);
    std::vector<std::uint64_t> values(1024);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Tenant A: a closed loop of flood_depth long walks.
    std::uint64_t flood_done = 0;
    std::function<void()> flood_one = [&] {
        auto op = list.make_walk(600, {});
        op.done = [&](offload::Completion&&) {
            flood_done++;
            if (flood_done < 400) {
                flood_one();
            }
        };
        cluster.submitter(core::SystemKind::kPulse, 0)(std::move(op));
    };
    for (std::uint32_t i = 0; i < flood_depth; i++) {
        flood_one();
    }

    // Tenant B: 50 short lookups spread through the flood.
    Histogram victim;
    std::uint64_t victim_done = 0;
    std::function<void()> probe_one = [&] {
        auto op = list.make_walk(4, {});
        op.done = [&](offload::Completion&& completion) {
            victim.add(completion.latency);
            victim_done++;
            if (victim_done < 50) {
                cluster.queue().schedule_after(micros(50.0),
                                               probe_one);
            }
        };
        cluster.submitter(core::SystemKind::kPulse, 1)(std::move(op));
    };
    cluster.queue().schedule_after(micros(20.0), probe_one);

    const Time start = cluster.queue().now();
    ctx.add_events(cluster.queue().run());
    if (flood_kops != nullptr) {
        *flood_kops =
            static_cast<double>(flood_done) /
            to_seconds(cluster.queue().now() - start) / 1e3;
    }
    return to_micros(victim.mean());
}

void
fairness_cell(CellContext& ctx, std::uint32_t flood_depth, Point& out)
{
    out.flood = flood_depth;
    out.fifo_us = victim_latency(ctx, accel::SchedPolicy::kFifo,
                                 flood_depth, nullptr);
    out.fair_us = victim_latency(ctx, accel::SchedPolicy::kFairShare,
                                 flood_depth, nullptr);
}

// ------------------------------------- serving-plane tenant isolation

struct IsolationResult
{
    double solo_p99_us = 0.0;
    double combined_p99_us = 0.0;
    std::uint64_t admitted = 0;
    std::uint64_t throttled = 0;
    std::uint64_t shed = 0;
    double batch_kops = 0.0;
};

IsolationResult g_isolation;

/** The serving contract under test: a latency-sensitive probe tenant
 *  with a heavy WDRR weight, a quota-capped batch tenant. */
core::ClusterConfig
isolation_config()
{
    core::ClusterConfig config;
    config.num_clients = 2;
    config.accel.sched_policy = accel::SchedPolicy::kWeightedDrr;
    config.accel.workspaces_per_logic = 4;
    config.serve.on = true;
    config.serve.latency_queue_cap = 64;
    config.serve.batch_queue_cap = 128;
    config.serve.throttle_park_cap = 8;
    config.serve.tenants.push_back(
        {.id = 0,
         .slo = serve::SloClass::kLatencySensitive,
         .weight = 8});
    config.serve.tenants.push_back(
        {.id = 1,
         .slo = serve::SloClass::kBatch,
         .weight = 1,
         .quota_ops_per_s = 1e5,
         .quota_burst = 8.0});
    return config;
}

/**
 * Run the latency tenant's open-loop probes, optionally under the
 * batch tenant's saturating scan flood, and report the probe latency
 * distribution plus the QoS admission ledger.
 */
double
isolation_run(CellContext& ctx, bool with_batch_flood,
              IsolationResult* out)
{
    core::Cluster cluster(isolation_config());
    ds::LinkedList list(cluster.memory(), cluster.allocator(), 256);
    std::vector<std::uint64_t> values(1024);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Batch tenant: a closed loop of scans, issued far over its quota
    // so the token bucket throttles and (past the park cap) sheds.
    std::uint64_t batch_issued = 0;
    std::uint64_t batch_done = 0;
    constexpr std::uint64_t kBatchBudget = 2000;
    std::function<void()> batch_one = [&] {
        batch_issued++;
        auto op = list.make_walk(128, {});
        op.tenant = 1;
        op.done = [&](offload::Completion&& completion) {
            if (!completion.timed_out) {
                batch_done++;
            }
            if (batch_issued < kBatchBudget) {
                batch_one();
            }
        };
        cluster.submitter(core::SystemKind::kPulse, 1)(std::move(op));
    };
    if (with_batch_flood) {
        for (int i = 0; i < 32; i++) {
            batch_one();
        }
    }

    // Latency tenant: 200 open-loop probes, one every 25 us — arrival
    // times fixed by the clock, not by completions, so queueing shows
    // up as latency instead of a slowed-down generator.
    Histogram probe_latency;
    constexpr int kProbes = 200;
    for (int i = 0; i < kProbes; i++) {
        cluster.queue().schedule_at(
            micros(20.0) + i * micros(25.0), [&, i] {
                auto op = list.make_walk(8, {});
                op.tenant = 0;
                op.done = [&](offload::Completion&& completion) {
                    probe_latency.add(completion.latency);
                };
                cluster.submitter(core::SystemKind::kPulse,
                                  0)(std::move(op));
            });
    }

    const Time start = cluster.queue().now();
    ctx.add_events(cluster.queue().run());

    if (out != nullptr) {
        const auto& counters =
            cluster.serve_plane()->tenant_counters().at(1);
        out->admitted = counters.admitted;
        out->throttled = counters.throttled;
        out->shed = counters.shed;
        out->batch_kops =
            static_cast<double>(batch_done) /
            to_seconds(cluster.queue().now() - start) / 1e3;
    }
    return to_micros(probe_latency.percentile(0.99));
}

void
isolation_cell(CellContext& ctx, IsolationResult& out)
{
    out.solo_p99_us = isolation_run(ctx, false, nullptr);
    out.combined_p99_us = isolation_run(ctx, true, &out);
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kFloods.size(); i++) {
        benchmark::RegisterBenchmark(
            ("fairness/flood_" + std::to_string(kFloods[i])).c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["fifo_us"] = g_points[i].fifo_us;
                state.counters["fair_us"] = g_points[i].fair_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_fairness");
    for (std::size_t i = 0; i < kFloods.size(); i++) {
        const std::uint32_t flood = kFloods[i];
        sweep.add("flood_" + std::to_string(flood),
                  [flood, i](CellContext& ctx) {
                      fairness_cell(ctx, flood, g_points[i]);
                  });
    }
    sweep.add("isolation", [](CellContext& ctx) {
        isolation_cell(ctx, g_isolation);
    });
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Ablation: multi-tenant isolation — victim lookup "
                "latency (us) vs flood depth");
    table.set_header(
        {"flood_ops", "FIFO", "fair-share", "FIFO/fair"});
    for (const auto& point : g_points) {
        table.add_row({std::to_string(point.flood),
                       fmt(point.fifo_us), fmt(point.fair_us),
                       fmt(point.fifo_us / point.fair_us, "%.1f")});
    }
    table.print();

    const double ratio =
        g_isolation.solo_p99_us > 0.0
            ? g_isolation.combined_p99_us / g_isolation.solo_p99_us
            : 0.0;
    Table isolation("Serving plane: latency-tenant p99 (us) solo vs "
                    "under a quota-capped batch scan flood");
    isolation.set_header({"solo_p99", "combined_p99", "ratio",
                          "batch_kops", "throttled", "shed"});
    isolation.add_row({fmt(g_isolation.solo_p99_us),
                       fmt(g_isolation.combined_p99_us),
                       fmt(ratio, "%.2f"),
                       fmt(g_isolation.batch_kops),
                       std::to_string(g_isolation.throttled),
                       std::to_string(g_isolation.shed)});
    isolation.print();

    auto& metrics = MetricsSink::instance().exporter();
    for (const auto& point : g_points) {
        const std::string prefix =
            "fairness.flood" + std::to_string(point.flood) + ".";
        metrics.set(prefix + "fifo_us", point.fifo_us);
        metrics.set(prefix + "fair_us", point.fair_us);
    }
    metrics.set("fairness.isolation.solo_p99_us",
                g_isolation.solo_p99_us);
    metrics.set("fairness.isolation.combined_p99_us",
                g_isolation.combined_p99_us);
    metrics.set("fairness.isolation.ratio", ratio);
    metrics.set("fairness.isolation.batch_kops",
                g_isolation.batch_kops);
    metrics.set("fairness.isolation.admitted",
                static_cast<double>(g_isolation.admitted));
    metrics.set("fairness.isolation.throttled",
                static_cast<double>(g_isolation.throttled));
    metrics.set("fairness.isolation.shed",
                static_cast<double>(g_isolation.shed));
    MetricsSink::instance().flush();

    // The tenant-isolation gate (CI: serving-plane job). The batch
    // flood must really have been overload (throttled and shed both
    // nonzero) and the latency tenant must have been isolated from it.
    if (g_isolation.throttled == 0 || g_isolation.shed == 0 ||
        ratio > 2.0) {
        std::fprintf(stderr,
                     "tenant-isolation gate FAILED: p99 ratio %.2f "
                     "(limit 2.0), throttled %llu, shed %llu\n",
                     ratio,
                     static_cast<unsigned long long>(
                         g_isolation.throttled),
                     static_cast<unsigned long long>(g_isolation.shed));
        return 1;
    }
    return 0;
}
