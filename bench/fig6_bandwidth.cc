/**
 * @file
 * Fig. 6 — Network and memory bandwidth utilization.
 *
 * At saturation, offload systems (pulse, RPC, RPC-W, Cache+RPC) should
 * utilize >90% of the 25 GB/s per-node memory bandwidth while using
 * only a few percent of the network; the Cache-based system is
 * network/swap-bound, with network bandwidth equal to its memory
 * bandwidth (every miss moves a whole page through both). A second
 * table reproduces the observation that UPC's network usage grows
 * linearly with node count (partitioned, no cross-node traversals).
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); results and metrics exports are byte-
 * identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

struct Cell
{
    double mem_util = 0.0;  // fraction of memory-bandwidth capacity
    double net_gbps = 0.0;  // client traffic in Gbit/s
    double net_util = 0.0;  // fraction of 100 Gb/s full-duplex pair
};

std::map<std::string, Cell> g_cells;

std::string
cell_key(App app, SystemKind system, std::uint32_t nodes)
{
    return std::string(app_name(app)) + "/" +
           core::system_name(system) + "/" + std::to_string(nodes);
}

RunSpec
cell_spec(App app, SystemKind system, std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, system, nodes);
    const bool slow = system == SystemKind::kCache;
    spec.concurrency = slow ? 64 : 512 * nodes;
    spec.warmup_ops = slow ? 64 : spec.concurrency;
    spec.measure_ops =
        slow ? 192 : std::max<std::uint64_t>(2 * spec.concurrency, 1200);
    return spec;
}

Cell
to_cell(const RunOutcome& outcome)
{
    Cell cell;
    cell.mem_util = outcome.mem_bw_capacity > 0
                        ? outcome.mem_bw / outcome.mem_bw_capacity
                        : 0.0;
    cell.net_gbps = outcome.net_bw * 8.0 / 1e9;
    cell.net_util = outcome.net_bw_capacity > 0
                        ? outcome.net_bw / outcome.net_bw_capacity
                        : 0.0;
    return cell;
}

/** Visit every Fig. 6 cell in the canonical (deterministic) order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const App app : kApps) {
        for (const SystemKind system :
             {SystemKind::kCache, SystemKind::kRpc,
              SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
              SystemKind::kPulse}) {
            if (system == SystemKind::kCacheRpc && app != App::kUpc) {
                continue;
            }
            fn(app, system, 1u);
        }
    }
    for (const std::uint32_t nodes : {2u, 4u}) {
        fn(App::kUpc, SystemKind::kPulse, nodes);
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, SystemKind system,
                           std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        sweep.add_spec(key, cell_spec(app, system, nodes),
                       [key](const RunOutcome& outcome) {
                           g_cells[key] = to_cell(outcome);
                       });
    });
}

void
print_tables()
{
    {
        Table table("Fig 6a: memory-bandwidth utilization, % of "
                    "25 GB/s per node (1 memory node)");
        table.set_header(
            {"app", "Cache", "RPC", "RPC-W", "Cache+RPC", "pulse"});
        for (const App app : kApps) {
            std::vector<std::string> row = {app_name(app)};
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                const auto it = g_cells.find(cell_key(app, system, 1));
                row.push_back(it == g_cells.end()
                                  ? "-"
                                  : fmt(it->second.mem_util * 100.0));
            }
            table.add_row(row);
        }
        table.print();
    }
    {
        Table table("Fig 6b: client network bandwidth, Gbit/s "
                    "(1 memory node; link pair = 200 Gbit/s)");
        table.set_header(
            {"app", "Cache", "RPC", "RPC-W", "Cache+RPC", "pulse",
             "pulse net%"});
        for (const App app : kApps) {
            std::vector<std::string> row = {app_name(app)};
            double pulse_util = 0.0;
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                const auto it = g_cells.find(cell_key(app, system, 1));
                if (it == g_cells.end()) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(it->second.net_gbps, "%.2f"));
                if (system == SystemKind::kPulse) {
                    pulse_util = it->second.net_util;
                }
            }
            row.push_back(fmt(pulse_util * 100.0, "%.2f"));
            table.add_row(row);
        }
        table.print();
    }
    {
        Table table("Fig 6c: pulse UPC network bandwidth vs node "
                    "count (partitioned; scales linearly)");
        table.set_header({"nodes", "net_gbps", "mem_util_%"});
        for (const std::uint32_t nodes : {1u, 2u, 4u}) {
            const auto it =
                g_cells.find(cell_key(App::kUpc, SystemKind::kPulse,
                                      nodes));
            if (it == g_cells.end()) {
                continue;
            }
            table.add_row({std::to_string(nodes),
                           fmt(it->second.net_gbps, "%.2f"),
                           fmt(it->second.mem_util * 100.0)});
        }
        table.print();
    }
}

void
register_benchmarks()
{
    for_each_cell([](App app, SystemKind system, std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        benchmark::RegisterBenchmark(
            ("fig6/" + key).c_str(),
            [key](benchmark::State& state) {
                const Cell& cell = g_cells[key];
                for (auto _ : state) {
                }
                state.counters["mem_util"] = cell.mem_util;
                state.counters["net_gbps"] = cell.net_gbps;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig6");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
