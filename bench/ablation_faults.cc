/**
 * @file
 * Fault-injection ablation: how gracefully does each system degrade
 * when the rack stops being polite?
 *
 * (a) Link-loss sweep: per-directed-link drop probability 0%, 0.1%,
 *     1% (a traversal crosses at least two links, so the end-to-end
 *     loss is roughly double). pulse rides on the offload engine's
 *     adaptive RTO + the accelerator replay window; RPC runs its
 *     opt-in at-most-once reliable mode. Goodput should sag, not
 *     cliff, and no operation may execute twice.
 *
 * (b) Node-stall sweep: the memory node freezes periodically (GC-style
 *     pauses) for 0 / 200 us / 1 ms out of every 2 ms. Stalls inflate
 *     tail latency and trip retransmissions whose duplicates must be
 *     absorbed by the dedup machinery.
 *
 * Zero-fault rows double as the regression reference: with the plane
 * disabled the numbers must match the corresponding healthy-network
 * benchmarks bit-for-bit.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<core::SystemKind> kSystems = {
    core::SystemKind::kPulse, core::SystemKind::kRpc};
const std::vector<double> kLosses = {0.0, 0.001, 0.01};
const std::vector<double> kStallsUs = {0.0, 200.0, 1000.0};

struct FaultPoint
{
    std::string label;
    core::SystemKind system = core::SystemKind::kPulse;
    double goodput_kops = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t replays = 0;
    std::uint64_t failed = 0;
};

std::vector<FaultPoint> g_loss(kSystems.size() * kLosses.size());
std::vector<FaultPoint> g_stall(kSystems.size() * kStallsUs.size());

/** Periodic stall script: @p duration out of every 2 ms, node 0. */
void
add_stall_script(core::ClusterConfig& config, Time duration)
{
    const Time period = micros(2000.0);
    for (int i = 0; i < 200; i++) {
        config.faults.timeline.push_back(
            {.node = 0, .kind = faults::NodeFaultKind::kStall,
             .start = period * i, .end = period * i + duration});
    }
}

FaultPoint
run_fault_cell(CellContext& ctx, const std::string& label,
               core::SystemKind system,
               const std::function<void(core::ClusterConfig&)>& inject)
{
    RunSpec spec = main_spec(App::kUpc, system, 1);
    spec.concurrency = 16;
    spec.warmup_ops = 200;
    spec.measure_ops = 1200;
    spec.tweak = [&](core::ClusterConfig& config) {
        // Reliability knobs, opt-in for this sweep: RPC's at-most-once
        // mode and pulse's adaptive RTO. The fixed timeout doubles as
        // the pre-first-sample initial RTO and the adaptive ceiling;
        // the healthy-run default (20 ms) is deliberately paranoid, so
        // a fault-tolerant deployment tunes it down — otherwise a
        // packet lost before the estimator's first sample costs the
        // full 20 ms (TCP ships with a 1 s initial RTO for the same
        // reason, not infinity).
        config.rpc.retransmit_timeout = micros(500.0);
        config.offload.adaptive_rto = true;
        config.offload.retransmit_timeout = micros(2000.0);
        inject(config);
    };

    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;
    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(system),
        experiment.factory, driver);
    ctx.add_events(cluster.queue().events_executed());

    FaultPoint point;
    point.label = label;
    point.system = system;
    const double window = to_seconds(result.measure_time);
    point.goodput_kops =
        window > 0 ? static_cast<double>(result.completed -
                                         result.failed_ops) /
                         window / 1e3
                   : 0.0;
    point.mean_us = to_micros(result.latency.mean());
    point.p99_us = to_micros(result.latency.percentile(0.99));
    point.failed = result.failed_ops;
    if (system == core::SystemKind::kPulse) {
        point.retransmits =
            cluster.offload_engine().stats().retransmits.value();
        point.replays =
            cluster.accelerator(0).stats().replays_sent.value() +
            cluster.accelerator(0)
                .stats()
                .duplicates_suppressed.value();
    } else {
        point.retransmits = cluster.rpc().stats().retransmits.value();
        point.replays = cluster.rpc().stats().replays.value();
    }
    return point;
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t s = 0; s < kSystems.size(); s++) {
        for (std::size_t l = 0; l < kLosses.size(); l++) {
            const core::SystemKind system = kSystems[s];
            const double loss = kLosses[l];
            const std::size_t slot = s * kLosses.size() + l;
            sweep.add(
                std::string("loss_") + core::system_name(system) +
                    "_" + fmt(loss * 100.0, "%.1f"),
                [system, loss, slot](CellContext& ctx) {
                    g_loss[slot] = run_fault_cell(
                        ctx, fmt(loss * 100.0, "%.1f") + "%", system,
                        [loss](core::ClusterConfig& config) {
                            config.faults.links.loss = loss;
                        });
                });
        }
    }
    for (std::size_t s = 0; s < kSystems.size(); s++) {
        for (std::size_t t = 0; t < kStallsUs.size(); t++) {
            const core::SystemKind system = kSystems[s];
            const double stall_us = kStallsUs[t];
            const std::size_t slot = s * kStallsUs.size() + t;
            sweep.add(
                std::string("stall_") + core::system_name(system) +
                    "_" + fmt(stall_us, "%.0f"),
                [system, stall_us, slot](CellContext& ctx) {
                    g_stall[slot] = run_fault_cell(
                        ctx, fmt(stall_us, "%.0f") + "us", system,
                        [stall_us](core::ClusterConfig& config) {
                            if (stall_us > 0.0) {
                                add_stall_script(config,
                                                 micros(stall_us));
                            }
                        });
                });
        }
    }
}

void
register_benchmarks()
{
    for (std::size_t s = 0; s < kSystems.size(); s++) {
        for (std::size_t l = 0; l < kLosses.size(); l++) {
            const std::size_t slot = s * kLosses.size() + l;
            benchmark::RegisterBenchmark(
                (std::string("faults/loss_") +
                 core::system_name(kSystems[s]) + "_" +
                 fmt(kLosses[l] * 100.0, "%.1f"))
                    .c_str(),
                [slot](benchmark::State& state) {
                    const FaultPoint& point = g_loss[slot];
                    for (auto _ : state) {
                    }
                    state.counters["goodput_kops"] =
                        point.goodput_kops;
                    state.counters["p99_us"] = point.p99_us;
                    state.counters["failed"] =
                        static_cast<double>(point.failed);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    for (std::size_t s = 0; s < kSystems.size(); s++) {
        for (std::size_t t = 0; t < kStallsUs.size(); t++) {
            const std::size_t slot = s * kStallsUs.size() + t;
            benchmark::RegisterBenchmark(
                (std::string("faults/stall_") +
                 core::system_name(kSystems[s]) + "_" +
                 fmt(kStallsUs[t], "%.0f"))
                    .c_str(),
                [slot](benchmark::State& state) {
                    const FaultPoint& point = g_stall[slot];
                    for (auto _ : state) {
                    }
                    state.counters["goodput_kops"] =
                        point.goodput_kops;
                    state.counters["p99_us"] = point.p99_us;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_faults");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table loss("Fault ablation: per-link loss sweep (UPC, 1 node, "
               "concurrency 16; goodput excludes failed ops)");
    loss.set_header({"system", "loss", "goodput_kops", "mean_us",
                     "p99_us", "retrans", "replays", "failed"});
    for (const auto& point : g_loss) {
        loss.add_row({core::system_name(point.system), point.label,
                      fmt(point.goodput_kops), fmt(point.mean_us),
                      fmt(point.p99_us),
                      std::to_string(point.retransmits),
                      std::to_string(point.replays),
                      std::to_string(point.failed)});
    }
    loss.print();

    Table stall("Fault ablation: periodic node stall (duration out "
                "of every 2 ms, node 0)");
    stall.set_header({"system", "stall", "goodput_kops", "mean_us",
                      "p99_us", "retrans", "replays"});
    for (const auto& point : g_stall) {
        stall.add_row({core::system_name(point.system), point.label,
                       fmt(point.goodput_kops), fmt(point.mean_us),
                       fmt(point.p99_us),
                       std::to_string(point.retransmits),
                       std::to_string(point.replays)});
    }
    stall.print();

    auto& metrics = MetricsSink::instance().exporter();
    const auto record = [&metrics](const std::string& sweep_name,
                                   const FaultPoint& point) {
        const std::string prefix =
            "faults." + sweep_name + "." +
            core::system_name(point.system) + "." + point.label + ".";
        metrics.set(prefix + "goodput_kops", point.goodput_kops);
        metrics.set(prefix + "mean_us", point.mean_us);
        metrics.set(prefix + "p99_us", point.p99_us);
        metrics.set(prefix + "retransmits",
                    static_cast<double>(point.retransmits));
        metrics.set(prefix + "replays",
                    static_cast<double>(point.replays));
        metrics.set(prefix + "failed",
                    static_cast<double>(point.failed));
    };
    for (const auto& point : g_loss) {
        record("loss", point);
    }
    for (const auto& point : g_stall) {
        record("stall", point);
    }
    MetricsSink::instance().flush();
    return 0;
}
