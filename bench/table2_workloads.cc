/**
 * @file
 * Table 2 — Workload characterization.
 *
 * Regenerates the paper's per-workload table: the underlying data
 * structure, whether it is partitionable across memory nodes, eta
 * (the offload engine's statically-computed compute-to-memory-time
 * ratio, t_c / t_d), and the measured average iterations per request.
 * Paper values: UPC (hash, partitionable) eta 0.06, ~100 iterations;
 * TC (B+Tree) eta 0.79, ~75; TSV (B+Tree) eta 0.89, 44/87/165/320
 * for 7.5/15/30/60 s windows.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "isa/analysis.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

struct Row
{
    std::string structure;
    std::string partitionable;
    double eta = 0.0;
    double iterations = 0.0;
    std::uint32_t program_insns = 0;
    bool offloaded = true;
};

std::vector<Row> g_rows(kApps.size());

double
program_eta(core::Cluster& cluster,
            const std::shared_ptr<const isa::Program>& program)
{
    const auto& analysis =
        cluster.offload_engine().analysis_for(program);
    const auto& config = cluster.offload_engine().config();
    return compute_eta(analysis, config.t_i, config.t_d);
}

void
characterize(CellContext& ctx, App app, Row& row)
{
    RunSpec spec = main_spec(app, core::SystemKind::kPulse, 1);
    spec.concurrency = 4;
    spec.warmup_ops = 20;
    spec.measure_ops = 400;

    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;

    // eta from the offload engine's static analysis of the actual
    // programs (worst program for multi-program apps, as the
    // offload test must hold for each).
    std::vector<std::shared_ptr<const isa::Program>> programs;
    if (app == App::kUpc) {
        row.structure = "Hash-table";
        row.partitionable = "yes";
        programs.push_back(experiment.upc->table().find_program());
    } else if (app == App::kTc) {
        row.structure = "B+Tree";
        row.partitionable = "no";
        programs.push_back(experiment.tc->tree().scan_fold_program());
    } else {
        row.structure = "B+Tree";
        row.partitionable = "no";
        for (const ds::AggKind kind :
             {ds::AggKind::kSum, ds::AggKind::kMin,
              ds::AggKind::kMax}) {
            programs.push_back(
                experiment.tsv->tree().aggregate_program(kind));
        }
    }
    for (const auto& program : programs) {
        row.eta = std::max(row.eta, program_eta(cluster, program));
        row.program_insns =
            std::max(row.program_insns, program->size());
    }

    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        experiment.factory, driver);
    ctx.add_events(cluster.queue().events_executed());
    row.iterations = static_cast<double>(result.iterations) /
                     static_cast<double>(result.completed);
    // Confirm the offload decision accepted everything.
    row.offloaded =
        cluster.offload_engine().stats().fallback.value() == 0;
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kApps.size(); i++) {
        const App app = kApps[i];
        benchmark::RegisterBenchmark(
            (std::string("table2/") + app_name(app)).c_str(),
            [i](benchmark::State& state) {
                const Row& row = g_rows[i];
                for (auto _ : state) {
                }
                state.counters["eta"] = row.eta;
                state.counters["avg_iters"] = row.iterations;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("table2");
    for (std::size_t i = 0; i < kApps.size(); i++) {
        const App app = kApps[i];
        sweep.add(app_name(app), [app, i](CellContext& ctx) {
            characterize(ctx, app, g_rows[i]);
        });
    }
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Table 2: workloads (paper: UPC eta 0.06/100 iters; "
                "TC 0.79/75; TSV 0.89/44-320)");
    table.set_header({"app", "structure", "partition", "eta",
                      "avg_iters", "insns", "offloaded"});
    for (std::size_t i = 0; i < kApps.size(); i++) {
        const Row& row = g_rows[i];
        table.add_row({app_name(kApps[i]), row.structure,
                       row.partitionable, fmt(row.eta, "%.2f"),
                       fmt(row.iterations, "%.1f"),
                       std::to_string(row.program_insns),
                       row.offloaded ? "yes" : "NO"});
    }
    table.print();

    auto& metrics = MetricsSink::instance().exporter();
    for (std::size_t i = 0; i < kApps.size(); i++) {
        const Row& row = g_rows[i];
        const std::string prefix =
            std::string("table2.") + app_name(kApps[i]) + ".";
        metrics.set(prefix + "eta", row.eta);
        metrics.set(prefix + "avg_iters", row.iterations);
        metrics.set(prefix + "program_insns", row.program_insns);
    }
    MetricsSink::instance().flush();
    return 0;
}
