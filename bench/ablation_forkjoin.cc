/**
 * @file
 * Ablation: fork/join traversals (SPAWN/REDUCE/JOIN) vs the same range
 * aggregate executed as one sequential pointer chase.
 *
 * The B+Tree is shaped so the root holds exactly 16 children (256
 * leaves at leaf_fill 12, inner_fill 16); a range spanning 2f root
 * subtrees makes the forked root program emit f sub-traversals (one
 * SPAWN per *pair* of subtrees — the leaf sibling chain carries each
 * branch across its pair boundary). Sweeping f in {1, 2, 4, 8} with
 * the keyspace partitioned across 8 memory nodes shows the DAG win:
 * branches traverse their subtrees concurrently on their home nodes
 * while the sequential program walks the same leaves one next-pointer
 * at a time. DESIGN.md's acceptance bar is >= 2x mean latency at
 * fan-out 8.
 *
 * Both variants run the identical deterministic range stream on the
 * same tree, and every op's fold is cross-checked: a forked SUM that
 * completes (kDone) is exact by the join proof, so any divergence from
 * the sequential fold panics the bench.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/bptree.h"
#include "ds/ds_common.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<std::uint32_t> kFanouts = {1, 2, 4, 8};

/// 256 leaves -> 16 inners -> one root with 16 children, each subtree
/// covering exactly kEntriesPerChild consecutive entries.
constexpr std::uint32_t kEntries = 3072;
constexpr std::uint32_t kLeafFill = 12;
constexpr std::uint32_t kInnerFill = 16;
constexpr std::uint32_t kRootChildren = 16;
constexpr std::uint32_t kEntriesPerChild = kEntries / kRootChildren;
constexpr std::uint64_t kKeyBase = 100;
constexpr std::uint64_t kKeyStep = 8;

struct ForkPoint
{
    std::uint32_t fanout = 0;
    double seq_us = 0.0;
    double fork_us = 0.0;
    double speedup = 0.0;
    double spawns_per_op = 0.0;
};

std::vector<ForkPoint> g_fork(kFanouts.size());

std::uint64_t
key_at(std::uint64_t index)
{
    return kKeyBase + index * kKeyStep;
}

/** [lo, hi] covering 2*fanout root subtrees, aligned to a pair
 *  boundary; deterministic by op index. */
std::pair<std::uint64_t, std::uint64_t>
range_for(std::uint32_t fanout, std::uint64_t index)
{
    const std::uint64_t pairs = kRootChildren / 2;  // 8
    const std::uint64_t span = 2 * fanout * kEntriesPerChild;
    const std::uint64_t mixed = index * 0x9E3779B97F4A7C15ull;
    const std::uint64_t start_pair = mixed % (pairs - fanout + 1);
    const std::uint64_t lo_idx =
        start_pair * 2 * kEntriesPerChild;
    return {key_at(lo_idx), key_at(lo_idx + span - 1)};
}

void
fork_sweep(CellContext& ctx, std::uint32_t fanout, ForkPoint& out)
{
    out.fanout = fanout;

    core::ClusterConfig config;
    config.num_mem_nodes = 8;
    config.accel.workspaces_per_logic = 16;
    config.check = check::CheckConfig::from_env();
    config.placement = placement::PlacementConfig::from_env();
    config.replication = replication::ReplicationConfig::from_env();
    core::Cluster cluster(config);

    ds::BPTreeConfig bt;
    bt.inline_values = true;
    bt.leaf_slots = kLeafFill;
    bt.leaf_fill = kLeafFill;
    bt.inner_fill = kInnerFill;
    bt.partitions = config.num_mem_nodes;
    ds::BPTree tree(cluster.memory(), cluster.allocator(), bt);
    std::vector<ds::BPTreeEntry> entries;
    entries.reserve(kEntries);
    for (std::uint32_t i = 0; i < kEntries; i++) {
        entries.push_back({key_at(i), ds::value_pattern_word(key_at(i))});
    }
    tree.build(entries);

    const double scale = bench_options().ops_scale;
    const auto scaled = [scale](std::uint64_t ops) {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(ops) * scale));
    };
    const std::uint64_t warmup = scaled(12);
    const std::uint64_t measure = scaled(120);

    // Cross-run fold check: both variants accumulate the same stream.
    std::uint64_t seq_fold = 0;
    std::uint64_t fork_fold = 0;

    const auto run_variant = [&](bool forked, std::uint64_t* fold) {
        workloads::DriverConfig driver;
        driver.warmup_ops = warmup;
        driver.measure_ops = measure;
        driver.concurrency = 1;
        const workloads::OpFactory factory =
            [&, forked, fold](std::uint64_t index) {
                const auto [lo, hi] = range_for(fanout, index);
                const offload::CompletionFn done =
                    [forked,
                     fold](const offload::Completion& completion) {
                        const auto agg =
                            forked ? ds::BPTree::parse_aggregate_forked(
                                         completion)
                                   : ds::BPTree::parse_aggregate(
                                         completion, ds::AggKind::kSum);
                        if (!agg.complete) {
                            panic("forkjoin ablation: inexact fold");
                        }
                        *fold += static_cast<std::uint64_t>(agg.value);
                    };
                return forked ? tree.make_aggregate_forked(lo, hi, done)
                              : tree.make_aggregate(
                                    ds::AggKind::kSum, lo, hi, done);
            };
        const workloads::DriverResult result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse), factory,
            driver);
        ctx.add_events(cluster.queue().events_executed());
        return result;
    };

    const workloads::DriverResult seq = run_variant(false, &seq_fold);
    const std::uint64_t forks_before =
        cluster.offload_engine().forks_spawned();
    const workloads::DriverResult fork = run_variant(true, &fork_fold);
    const std::uint64_t forks =
        cluster.offload_engine().forks_spawned() - forks_before;

    if (seq_fold != fork_fold) {
        panic("forkjoin ablation: fold mismatch at fanout %u "
              "(seq %llu, fork %llu)",
              fanout, static_cast<unsigned long long>(seq_fold),
              static_cast<unsigned long long>(fork_fold));
    }
    out.seq_us = to_micros(seq.latency.mean());
    out.fork_us = to_micros(fork.latency.mean());
    out.speedup = out.fork_us > 0.0 ? out.seq_us / out.fork_us : 0.0;
    out.spawns_per_op =
        static_cast<double>(forks) /
        static_cast<double>(warmup + measure);
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t i = 0; i < kFanouts.size(); i++) {
        const std::uint32_t fanout = kFanouts[i];
        sweep.add("forkjoin_f" + std::to_string(fanout),
                  [fanout, i](CellContext& ctx) {
                      fork_sweep(ctx, fanout, g_fork[i]);
                  });
    }
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kFanouts.size(); i++) {
        benchmark::RegisterBenchmark(
            ("ablation/forkjoin_f" + std::to_string(kFanouts[i]))
                .c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["seq_us"] = g_fork[i].seq_us;
                state.counters["fork_us"] = g_fork[i].fork_us;
                state.counters["speedup"] = g_fork[i].speedup;
                state.counters["spawns_per_op"] =
                    g_fork[i].spawns_per_op;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_forkjoin");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Ablation: fork/join range aggregates vs sequential "
                "(B+Tree SUM, 8 nodes, range spans 2f root subtrees)");
    table.set_header(
        {"fanout", "seq_us", "fork_us", "speedup", "spawns/op"});
    for (const auto& point : g_fork) {
        table.add_row({std::to_string(point.fanout),
                       fmt(point.seq_us), fmt(point.fork_us),
                       fmt(point.speedup, "%.2f"),
                       fmt(point.spawns_per_op, "%.2f")});
    }
    table.print();
    if (MetricsSink::instance().enabled()) {
        auto& metrics = MetricsSink::instance().exporter();
        for (const auto& point : g_fork) {
            const std::string prefix =
                "forkjoin.f" + std::to_string(point.fanout) + ".";
            metrics.set(prefix + "seq_us", point.seq_us);
            metrics.set(prefix + "fork_us", point.fork_us);
            metrics.set(prefix + "speedup", point.speedup);
            metrics.set(prefix + "spawns_per_op", point.spawns_per_op);
        }
    }
    MetricsSink::instance().flush();
    return 0;
}
