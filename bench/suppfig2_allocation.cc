/**
 * @file
 * Supplementary Fig. 2 — Allocation policy.
 *
 * pulse latency for the B+Tree workloads (TC, TSV) across two memory
 * nodes under (i) application-directed partitioned allocation (half
 * the tree per node) and (ii) fully random per-allocation placement.
 * Paper shape: random allocation is 3.7-10.8x slower because nearly
 * every pointer hop crosses nodes. The glibc-like slab-granular
 * placement the main figures use is reported as a third column for
 * context.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); results and metrics exports are byte-
 * identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

enum class Policy { kPartitioned, kSlabUniform, kRandom };

const std::vector<App> kApps = {App::kTc, App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

const char*
policy_name(Policy policy)
{
    switch (policy) {
      case Policy::kPartitioned: return "partitioned";
      case Policy::kSlabUniform: return "slab-uniform";
      case Policy::kRandom: return "random";
    }
    return "?";
}

std::map<std::string, double> g_mean_us;

std::string
cell_key(App app, Policy policy)
{
    return std::string(app_name(app)) + "/" + policy_name(policy);
}

RunSpec
cell_spec(App app, Policy policy)
{
    RunSpec spec = main_spec(app, core::SystemKind::kPulse, 2);
    spec.concurrency = 1;
    spec.warmup_ops = 30;
    spec.measure_ops = 250;
    spec.uniform_alloc = policy != Policy::kPartitioned;
    if (policy == Policy::kRandom) {
        spec.tweak = [](core::ClusterConfig& config) {
            config.uniform_chunk_bytes = 0;  // node drawn per alloc
        };
    }
    return spec;
}

/** Visit every Supp Fig 2 cell in the canonical order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const App app : kApps) {
        for (const Policy policy :
             {Policy::kPartitioned, Policy::kSlabUniform,
              Policy::kRandom}) {
            fn(app, policy);
        }
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, Policy policy) {
        const std::string key = cell_key(app, policy);
        sweep.add_spec(key, cell_spec(app, policy),
                       [key](const RunOutcome& outcome) {
                           g_mean_us[key] = outcome.mean_us;
                       });
    });
}

void
register_benchmarks()
{
    for_each_cell([](App app, Policy policy) {
        const std::string key = cell_key(app, policy);
        benchmark::RegisterBenchmark(
            ("suppfig2/" + key).c_str(),
            [key](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["mean_us"] = g_mean_us[key];
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("suppfig2");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Supp Fig 2: pulse latency by allocation policy, "
                "mean us (2 nodes; paper: random 3.7-10.8x slower "
                "than partitioned)");
    table.set_header({"app", "partitioned", "slab-uniform", "random",
                      "random/part"});
    for (const App app : kApps) {
        const auto get = [&](Policy policy) {
            const auto it = g_mean_us.find(cell_key(app, policy));
            return it == g_mean_us.end() ? 0.0 : it->second;
        };
        const double partitioned = get(Policy::kPartitioned);
        const double random = get(Policy::kRandom);
        table.add_row(
            {app_name(app), fmt(partitioned),
             fmt(get(Policy::kSlabUniform)), fmt(random),
             partitioned > 0 ? fmt(random / partitioned, "%.1f")
                             : "-"});
    }
    table.print();
    MetricsSink::instance().flush();
    return 0;
}
