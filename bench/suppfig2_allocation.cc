/**
 * @file
 * Supplementary Fig. 2 — Allocation policy.
 *
 * pulse latency for the B+Tree workloads (TC, TSV) across two memory
 * nodes under (i) application-directed partitioned allocation (half
 * the tree per node) and (ii) fully random per-allocation placement.
 * Paper shape: random allocation is 3.7-10.8x slower because nearly
 * every pointer hop crosses nodes. The glibc-like slab-granular
 * placement the main figures use is reported as a third column for
 * context.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

enum class Policy { kPartitioned, kSlabUniform, kRandom };

const char*
policy_name(Policy policy)
{
    switch (policy) {
      case Policy::kPartitioned: return "partitioned";
      case Policy::kSlabUniform: return "slab-uniform";
      case Policy::kRandom: return "random";
    }
    return "?";
}

std::map<std::string, double> g_mean_us;

void
allocation_cell(benchmark::State& state, App app, Policy policy)
{
    RunSpec spec = main_spec(app, core::SystemKind::kPulse, 2);
    spec.concurrency = 1;
    spec.warmup_ops = 30;
    spec.measure_ops = 250;
    spec.uniform_alloc = policy != Policy::kPartitioned;
    if (policy == Policy::kRandom) {
        spec.tweak = [](core::ClusterConfig& config) {
            config.uniform_chunk_bytes = 0;  // node drawn per alloc
        };
    }

    RunOutcome outcome;
    for (auto _ : state) {
        outcome = run_spec(spec);
    }
    state.counters["mean_us"] = outcome.mean_us;
    g_mean_us[std::string(app_name(app)) + "/" +
              policy_name(policy)] = outcome.mean_us;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::vector<App> apps = {App::kTc, App::kTsv75, App::kTsv15,
                                   App::kTsv30, App::kTsv60};
    for (const App app : apps) {
        for (const Policy policy :
             {Policy::kPartitioned, Policy::kSlabUniform,
              Policy::kRandom}) {
            benchmark::RegisterBenchmark(
                (std::string("suppfig2/") + app_name(app) + "/" +
                 policy_name(policy))
                    .c_str(),
                [app, policy](benchmark::State& state) {
                    allocation_cell(state, app, policy);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Supp Fig 2: pulse latency by allocation policy, "
                "mean us (2 nodes; paper: random 3.7-10.8x slower "
                "than partitioned)");
    table.set_header({"app", "partitioned", "slab-uniform", "random",
                      "random/part"});
    for (const App app : apps) {
        const auto get = [&](Policy policy) {
            const auto it =
                g_mean_us.find(std::string(app_name(app)) + "/" +
                               policy_name(policy));
            return it == g_mean_us.end() ? 0.0 : it->second;
        };
        const double partitioned = get(Policy::kPartitioned);
        const double random = get(Policy::kRandom);
        table.add_row(
            {app_name(app), fmt(partitioned),
             fmt(get(Policy::kSlabUniform)), fmt(random),
             partitioned > 0 ? fmt(random / partitioned, "%.1f")
                             : "-"});
    }
    table.print();
    MetricsSink::instance().flush();
    return 0;
}
