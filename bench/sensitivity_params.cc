/**
 * @file
 * Parameter-sensitivity study (the supplementary material defers
 * "some additional results on ADPDM's performance sensitivity to
 * system parameters"; this bench fills in the three the design makes
 * interesting).
 *
 * (a) Network propagation: pulse pays one round trip per request, the
 *     Cache-based baseline one per miss — so pulse's advantage grows
 *     linearly with network latency.
 * (b) MAX_ITER: smaller per-request budgets force more client
 *     continuations for long traversals; latency degrades in steps of
 *     one round trip per continuation.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "ds/bptree.h"
#include "ds/linked_list.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<double> kProps = {0.5, 1.0, 2.0, 4.0, 8.0};
const std::vector<std::uint32_t> kCaps = {32, 64, 128, 256, 512};

struct PropPoint
{
    double prop_us = 0.0;
    double pulse_us = 0.0;
    double cache_us = 0.0;
};

struct IterPoint
{
    std::uint32_t max_iters = 0;
    double mean_us = 0.0;
    double continuations = 0.0;
};

std::vector<PropPoint> g_prop(kProps.size());
std::vector<IterPoint> g_iters(kCaps.size());

void
propagation_cell(CellContext& ctx, double prop_us, PropPoint& out)
{
    out.prop_us = prop_us;
    RunSpec spec = main_spec(App::kUpc, core::SystemKind::kPulse, 1);
    spec.concurrency = 1;
    spec.warmup_ops = 20;
    spec.measure_ops = 150;
    spec.tweak = [prop_us](core::ClusterConfig& config) {
        config.network.link_propagation = micros(prop_us);
    };
    out.pulse_us = ctx.run_spec(spec).mean_us;

    RunSpec cache = spec;
    cache.system = core::SystemKind::kCache;
    cache.measure_ops = 60;
    out.cache_us = ctx.run_spec(cache).mean_us;
}

void
max_iter_cell(CellContext& ctx, std::uint32_t max_iters,
              IterPoint& out)
{
    out.max_iters = max_iters;
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(480);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Rebuild the walk program with the requested budget.
    isa::ProgramBuilder b;
    b.load(16)
        .move(isa::sp(8), isa::dat(0))
        .sub(isa::sp(0), isa::sp(0), isa::imm(1))
        .compare(isa::sp(0), isa::imm(0))
        .jump_eq("done")
        .compare(isa::imm(0), isa::dat(8))
        .jump_eq("done")
        .move(isa::cur(), isa::dat(8))
        .next_iter()
        .label("done")
        .ret();
    b.max_iters(max_iters);
    auto program = std::make_shared<const isa::Program>(b.build());

    Histogram latency;
    std::uint64_t continuations = 0;
    const int ops = 100;
    int done = 0;
    for (int i = 0; i < ops; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = list.head();
        op.init_scratch.assign(16, 0);
        const std::uint64_t hops = 480;
        std::memcpy(op.init_scratch.data(), &hops, 8);
        op.done = [&](offload::Completion&& completion) {
            latency.add(completion.latency);
            continuations += completion.continuations;
            done++;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
        cluster.queue().run();
    }
    ctx.add_events(cluster.queue().events_executed());
    out.mean_us = to_micros(latency.mean());
    out.continuations = static_cast<double>(continuations) / done;
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t i = 0; i < kProps.size(); i++) {
        const double prop = kProps[i];
        sweep.add("propagation_" + fmt(prop, "%.1fus"),
                  [prop, i](CellContext& ctx) {
                      propagation_cell(ctx, prop, g_prop[i]);
                  });
    }
    for (std::size_t i = 0; i < kCaps.size(); i++) {
        const std::uint32_t cap = kCaps[i];
        sweep.add("max_iter_" + std::to_string(cap),
                  [cap, i](CellContext& ctx) {
                      max_iter_cell(ctx, cap, g_iters[i]);
                  });
    }
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kProps.size(); i++) {
        benchmark::RegisterBenchmark(
            ("sensitivity/propagation_" + fmt(kProps[i], "%.1fus"))
                .c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["pulse_us"] = g_prop[i].pulse_us;
                state.counters["cache_us"] = g_prop[i].cache_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (std::size_t i = 0; i < kCaps.size(); i++) {
        benchmark::RegisterBenchmark(
            ("sensitivity/max_iter_" + std::to_string(kCaps[i]))
                .c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["mean_us"] = g_iters[i].mean_us;
                state.counters["continuations"] =
                    g_iters[i].continuations;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("sensitivity");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table prop("Sensitivity: one-way link propagation vs UPC latency "
               "(pulse pays ~2 hops/request; Cache ~2 per miss)");
    prop.set_header({"prop_us", "pulse_us", "Cache_us", "Cache/pulse"});
    for (const auto& point : g_prop) {
        prop.add_row({fmt(point.prop_us), fmt(point.pulse_us),
                      fmt(point.cache_us),
                      fmt(point.cache_us / point.pulse_us)});
    }
    prop.print();

    Table iters("Sensitivity: MAX_ITER vs 480-hop walk latency "
                "(each continuation adds a round trip)");
    iters.set_header({"max_iter", "mean_us", "continuations/op"});
    for (const auto& point : g_iters) {
        iters.add_row({std::to_string(point.max_iters),
                       fmt(point.mean_us),
                       fmt(point.continuations)});
    }
    iters.print();
    MetricsSink::instance().flush();
    return 0;
}
