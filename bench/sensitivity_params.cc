/**
 * @file
 * Parameter-sensitivity study (the supplementary material defers
 * "some additional results on ADPDM's performance sensitivity to
 * system parameters"; this bench fills in the three the design makes
 * interesting).
 *
 * (a) Network propagation: pulse pays one round trip per request, the
 *     Cache-based baseline one per miss — so pulse's advantage grows
 *     linearly with network latency.
 * (b) MAX_ITER: smaller per-request budgets force more client
 *     continuations for long traversals; latency degrades in steps of
 *     one round trip per continuation.
 */
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "ds/bptree.h"
#include "ds/linked_list.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

struct PropPoint
{
    double prop_us;
    double pulse_us;
    double cache_us;
};

struct IterPoint
{
    std::uint32_t max_iters;
    double mean_us;
    double continuations;
};

std::vector<PropPoint> g_prop;
std::vector<IterPoint> g_iters;

void
propagation_cell(benchmark::State& state, double prop_us)
{
    PropPoint point;
    point.prop_us = prop_us;
    for (auto _ : state) {
        RunSpec spec = main_spec(App::kUpc, core::SystemKind::kPulse,
                                 1);
        spec.concurrency = 1;
        spec.warmup_ops = 20;
        spec.measure_ops = 150;
        spec.tweak = [prop_us](core::ClusterConfig& config) {
            config.network.link_propagation = micros(prop_us);
        };
        point.pulse_us = run_spec(spec).mean_us;

        RunSpec cache = spec;
        cache.system = core::SystemKind::kCache;
        cache.measure_ops = 60;
        point.cache_us = run_spec(cache).mean_us;
    }
    state.counters["pulse_us"] = point.pulse_us;
    state.counters["cache_us"] = point.cache_us;
    g_prop.push_back(point);
}

void
max_iter_cell(benchmark::State& state, std::uint32_t max_iters)
{
    IterPoint point;
    point.max_iters = max_iters;
    for (auto _ : state) {
        core::ClusterConfig config;
        core::Cluster cluster(config);
        ds::LinkedList list(cluster.memory(), cluster.allocator());
        std::vector<std::uint64_t> values(480);
        for (std::size_t i = 0; i < values.size(); i++) {
            values[i] = i;
        }
        list.build(values, 0);

        // Rebuild the walk program with the requested budget.
        isa::ProgramBuilder b;
        b.load(16)
            .move(isa::sp(8), isa::dat(0))
            .sub(isa::sp(0), isa::sp(0), isa::imm(1))
            .compare(isa::sp(0), isa::imm(0))
            .jump_eq("done")
            .compare(isa::imm(0), isa::dat(8))
            .jump_eq("done")
            .move(isa::cur(), isa::dat(8))
            .next_iter()
            .label("done")
            .ret();
        b.max_iters(max_iters);
        auto program = std::make_shared<const isa::Program>(b.build());

        Histogram latency;
        std::uint64_t continuations = 0;
        const int ops = 100;
        int done = 0;
        for (int i = 0; i < ops; i++) {
            offload::Operation op;
            op.program = program;
            op.start_ptr = list.head();
            op.init_scratch.assign(16, 0);
            const std::uint64_t hops = 480;
            std::memcpy(op.init_scratch.data(), &hops, 8);
            op.done = [&](offload::Completion&& completion) {
                latency.add(completion.latency);
                continuations += completion.continuations;
                done++;
            };
            cluster.submitter(core::SystemKind::kPulse)(std::move(op));
            cluster.queue().run();
        }
        point.mean_us = to_micros(latency.mean());
        point.continuations =
            static_cast<double>(continuations) / done;
    }
    state.counters["mean_us"] = point.mean_us;
    state.counters["continuations"] = point.continuations;
    g_iters.push_back(point);
}

}  // namespace

int
main(int argc, char** argv)
{
    for (const double prop : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        benchmark::RegisterBenchmark(
            ("sensitivity/propagation_" + fmt(prop, "%.1fus")).c_str(),
            [prop](benchmark::State& state) {
                propagation_cell(state, prop);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const std::uint32_t cap : {32u, 64u, 128u, 256u, 512u}) {
        benchmark::RegisterBenchmark(
            ("sensitivity/max_iter_" + std::to_string(cap)).c_str(),
            [cap](benchmark::State& state) {
                max_iter_cell(state, cap);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table prop("Sensitivity: one-way link propagation vs UPC latency "
               "(pulse pays ~2 hops/request; Cache ~2 per miss)");
    prop.set_header({"prop_us", "pulse_us", "Cache_us", "Cache/pulse"});
    for (const auto& point : g_prop) {
        prop.add_row({fmt(point.prop_us), fmt(point.pulse_us),
                      fmt(point.cache_us),
                      fmt(point.cache_us / point.pulse_us)});
    }
    prop.print();

    Table iters("Sensitivity: MAX_ITER vs 480-hop walk latency "
                "(each continuation adds a round trip)");
    iters.set_header({"max_iter", "mean_us", "continuations/op"});
    for (const auto& point : g_iters) {
        iters.add_row({std::to_string(point.max_iters),
                       fmt(point.mean_us),
                       fmt(point.continuations)});
    }
    iters.print();
    MetricsSink::instance().flush();
    return 0;
}
