/**
 * @file
 * Fig. 9 — Latency breakdown for pulse accelerator components
 * (section 7.2), on the hash-table data structure.
 *
 * Paper numbers: network stack ~430 ns per packet direction,
 * scheduler dispatch ~4 ns, memory pipeline ~120 ns per iteration
 * (translation + protection + aggregated load), logic pipeline ~7 ns
 * per iteration for the hash-table program; response path symmetric.
 *
 * The single cell executes on the sweep runner so its wall-clock and
 * events/sec self-profile land in the shared wallclock artifact.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/hash_table.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

struct Breakdown
{
    double net_stack_ns = 0.0;
    double scheduler_ns = 0.0;
    double mem_per_iter_ns = 0.0;
    double logic_per_iter_ns = 0.0;
    double iters = 0.0;
    double total_accel_us = 0.0;
    double end_to_end_us = 0.0;
};

Breakdown g_result;

void
breakdown_cell(CellContext& ctx)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::HashTableConfig ht;
    ht.num_buckets = 512;
    ds::HashTable table(cluster.memory(), cluster.allocator(), ht);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 50'000; i++) {
        keys.push_back(workloads::key_of(i));
    }
    table.insert_many(keys);

    Rng rng(17);
    workloads::DriverConfig driver;
    driver.warmup_ops = 20;
    driver.measure_ops = 400;
    driver.concurrency = 1;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };

    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            return table.make_find(keys[rng.next_below(keys.size())],
                                   nullptr);
        },
        driver);
    ctx.add_events(cluster.queue().events_executed());

    const auto& stats = cluster.accelerator(0).stats();
    const double requests =
        static_cast<double>(stats.requests_received.value());
    const double iters =
        static_cast<double>(stats.iterations.value());
    const double loads = static_cast<double>(stats.loads.value());
    g_result.net_stack_ns =
        stats.net_stack_time.sum() / (2.0 * requests) / 1e3;
    g_result.scheduler_ns =
        stats.scheduler_time.sum() / requests / 1e3;
    g_result.mem_per_iter_ns =
        stats.mem_pipeline_time.sum() / loads / 1e3;
    g_result.logic_per_iter_ns =
        stats.logic_pipeline_time.sum() / iters / 1e3;
    g_result.iters = iters / requests;
    g_result.total_accel_us =
        (stats.net_stack_time.sum() + stats.scheduler_time.sum() +
         stats.mem_pipeline_time.sum() +
         stats.logic_pipeline_time.sum()) /
        requests / 1e6;
    g_result.end_to_end_us = to_micros(result.latency.mean());
}

void
register_benchmarks()
{
    benchmark::RegisterBenchmark(
        "fig9/hash_table_breakdown",
        [](benchmark::State& state) {
            for (auto _ : state) {
            }
            state.counters["net_stack_ns"] = g_result.net_stack_ns;
            state.counters["scheduler_ns"] = g_result.scheduler_ns;
            state.counters["mem_per_iter_ns"] =
                g_result.mem_per_iter_ns;
            state.counters["logic_per_iter_ns"] =
                g_result.logic_per_iter_ns;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig9");
    sweep.add("hash_table_breakdown", breakdown_cell);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table("Fig 9: pulse accelerator latency breakdown "
                "(hash-table find)");
    table.set_header({"component", "measured", "paper"});
    table.add_row({"net stack/pkt",
                   fmt(g_result.net_stack_ns, "%.0f ns"), "~430 ns"});
    table.add_row({"scheduler",
                   fmt(g_result.scheduler_ns, "%.0f ns"), "~4 ns"});
    table.add_row({"mem pipe/iter",
                   fmt(g_result.mem_per_iter_ns, "%.0f ns"),
                   "~120 ns"});
    table.add_row({"logic/iter",
                   fmt(g_result.logic_per_iter_ns, "%.1f ns"),
                   "~7 ns"});
    table.add_row({"iters/req", fmt(g_result.iters, "%.1f"), "-"});
    table.add_row({"accel total",
                   fmt(g_result.total_accel_us, "%.1f us"), "-"});
    table.add_row({"end-to-end",
                   fmt(g_result.end_to_end_us, "%.1f us"), "-"});
    table.print();

    auto& metrics = MetricsSink::instance().exporter();
    metrics.set("fig9.net_stack_ns", g_result.net_stack_ns);
    metrics.set("fig9.scheduler_ns", g_result.scheduler_ns);
    metrics.set("fig9.mem_per_iter_ns", g_result.mem_per_iter_ns);
    metrics.set("fig9.logic_per_iter_ns", g_result.logic_per_iter_ns);
    metrics.set("fig9.iters_per_req", g_result.iters);
    metrics.set("fig9.accel_total_us", g_result.total_accel_us);
    metrics.set("fig9.end_to_end_us", g_result.end_to_end_us);
    MetricsSink::instance().flush();
    return 0;
}
