/**
 * @file
 * Ablation of the accelerator-core design choices of section 4.2.2
 * (Fig. 3) and of the offload engine's eta-threshold test — the
 * design-choice studies DESIGN.md calls out beyond the paper's own
 * figures.
 *
 * (a) Workspaces per logic pipeline: Fig. 3 argues 2*eta workspaces
 *     keep the memory pipeline busy when loads take t_d end-to-end;
 *     with pipelined (bursted) loads, more in-flight iterators are
 *     needed to cover the 120 ns access latency. The sweep shows
 *     saturation bandwidth vs workspace count — and that unloaded
 *     latency is unaffected.
 *
 * (b) eta threshold: lowering the offload engine's threshold below a
 *     program's eta forces client-side fallback execution (one round
 *     trip per load); latency explodes by ~2 orders of magnitude,
 *     which is exactly why the offload test exists.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

struct WsPoint
{
    std::uint32_t workspaces = 0;
    double gbps = 0.0;
    double unloaded_us = 0.0;
};

struct EtaPoint
{
    double threshold = 0.0;
    double mean_us = 0.0;
    std::uint64_t fallbacks = 0;
};

std::vector<WsPoint> g_ws;
std::vector<EtaPoint> g_eta;

void
workspace_sweep(benchmark::State& state, std::uint32_t workspaces)
{
    WsPoint point;
    point.workspaces = workspaces;
    for (auto _ : state) {
        // Saturation bandwidth.
        {
            RunSpec spec = main_spec(App::kTsv15,
                                     core::SystemKind::kPulse, 1);
            spec.concurrency = 512;
            spec.warmup_ops = 512;
            spec.measure_ops = 1500;
            spec.tweak = [workspaces](core::ClusterConfig& config) {
                config.accel.workspaces_per_logic = workspaces;
            };
            RunOutcome outcome = run_spec(spec);
            point.gbps = outcome.mem_bw / 1e9;
        }
        // Unloaded latency.
        {
            RunSpec spec = main_spec(App::kTsv15,
                                     core::SystemKind::kPulse, 1);
            spec.concurrency = 1;
            spec.warmup_ops = 20;
            spec.measure_ops = 150;
            spec.tweak = [workspaces](core::ClusterConfig& config) {
                config.accel.workspaces_per_logic = workspaces;
            };
            RunOutcome outcome = run_spec(spec);
            point.unloaded_us = outcome.mean_us;
        }
    }
    state.counters["mem_gbps"] = point.gbps;
    state.counters["unloaded_us"] = point.unloaded_us;
    g_ws.push_back(point);
}

void
eta_threshold_sweep(benchmark::State& state, double threshold)
{
    EtaPoint point;
    point.threshold = threshold;
    for (auto _ : state) {
        RunSpec spec =
            main_spec(App::kTsv15, core::SystemKind::kPulse, 1);
        spec.concurrency = 1;
        spec.warmup_ops = 10;
        spec.measure_ops = 60;  // fallback runs are very slow
        spec.tweak = [threshold](core::ClusterConfig& config) {
            config.offload.eta_threshold = threshold;
        };
        Experiment experiment = make_experiment(spec);
        core::Cluster& cluster = *experiment.cluster;
        workloads::DriverConfig driver;
        driver.warmup_ops = spec.warmup_ops;
        driver.measure_ops = spec.measure_ops;
        driver.concurrency = 1;
        auto result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse),
            experiment.factory, driver);
        point.mean_us = to_micros(result.latency.mean());
        point.fallbacks =
            cluster.offload_engine().stats().fallback.value();
    }
    state.counters["mean_us"] = point.mean_us;
    state.counters["fallbacks"] =
        static_cast<double>(point.fallbacks);
    g_eta.push_back(point);
}

}  // namespace

int
main(int argc, char** argv)
{
    for (const std::uint32_t workspaces : {2u, 4u, 8u, 16u, 32u}) {
        benchmark::RegisterBenchmark(
            ("ablation/workspaces_" + std::to_string(workspaces))
                .c_str(),
            [workspaces](benchmark::State& state) {
                workspace_sweep(state, workspaces);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const double threshold : {0.25, 0.5, 0.75, 1.0, 2.0}) {
        benchmark::RegisterBenchmark(
            ("ablation/eta_threshold_" + fmt(threshold, "%.2f"))
                .c_str(),
            [threshold](benchmark::State& state) {
                eta_threshold_sweep(state, threshold);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table ws("Ablation (Fig 3): workspaces per logic pipeline "
             "(TSV-15s; paper core uses 2*eta, see DESIGN.md)");
    ws.set_header({"workspaces", "sat_GB/s", "unloaded_us"});
    for (const auto& point : g_ws) {
        ws.add_row({std::to_string(point.workspaces),
                    fmt(point.gbps), fmt(point.unloaded_us)});
    }
    ws.print();

    Table eta("Ablation: offload eta-threshold (TSV-15s aggregate, "
              "program eta ~0.9)");
    eta.set_header({"threshold", "mean_us", "fallback_ops"});
    for (const auto& point : g_eta) {
        eta.add_row({fmt(point.threshold, "%.2f"),
                     fmt(point.mean_us),
                     std::to_string(point.fallbacks)});
    }
    eta.print();
    MetricsSink::instance().flush();
    return 0;
}
