/**
 * @file
 * Ablation of the accelerator-core design choices of section 4.2.2
 * (Fig. 3) and of the offload engine's eta-threshold test — the
 * design-choice studies DESIGN.md calls out beyond the paper's own
 * figures.
 *
 * (a) Workspaces per logic pipeline: Fig. 3 argues 2*eta workspaces
 *     keep the memory pipeline busy when loads take t_d end-to-end;
 *     with pipelined (bursted) loads, more in-flight iterators are
 *     needed to cover the 120 ns access latency. The sweep shows
 *     saturation bandwidth vs workspace count — and that unloaded
 *     latency is unaffected.
 *
 * (b) eta threshold: lowering the offload engine's threshold below a
 *     program's eta forces client-side fallback execution (one round
 *     trip per load); latency explodes by ~2 orders of magnitude,
 *     which is exactly why the offload test exists.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<std::uint32_t> kWorkspaces = {2, 4, 8, 16, 32};
const std::vector<double> kThresholds = {0.25, 0.5, 0.75, 1.0, 2.0};

struct WsPoint
{
    std::uint32_t workspaces = 0;
    double gbps = 0.0;
    double unloaded_us = 0.0;
};

struct EtaPoint
{
    double threshold = 0.0;
    double mean_us = 0.0;
    std::uint64_t fallbacks = 0;
};

std::vector<WsPoint> g_ws(kWorkspaces.size());
std::vector<EtaPoint> g_eta(kThresholds.size());

void
workspace_sweep(CellContext& ctx, std::uint32_t workspaces,
                WsPoint& out)
{
    out.workspaces = workspaces;
    // Saturation bandwidth.
    {
        RunSpec spec =
            main_spec(App::kTsv15, core::SystemKind::kPulse, 1);
        spec.concurrency = 512;
        spec.warmup_ops = 512;
        spec.measure_ops = 1500;
        spec.tweak = [workspaces](core::ClusterConfig& config) {
            config.accel.workspaces_per_logic = workspaces;
        };
        out.gbps = ctx.run_spec(spec).mem_bw / 1e9;
    }
    // Unloaded latency.
    {
        RunSpec spec =
            main_spec(App::kTsv15, core::SystemKind::kPulse, 1);
        spec.concurrency = 1;
        spec.warmup_ops = 20;
        spec.measure_ops = 150;
        spec.tweak = [workspaces](core::ClusterConfig& config) {
            config.accel.workspaces_per_logic = workspaces;
        };
        out.unloaded_us = ctx.run_spec(spec).mean_us;
    }
}

void
eta_threshold_sweep(CellContext& ctx, double threshold, EtaPoint& out)
{
    out.threshold = threshold;
    RunSpec spec = main_spec(App::kTsv15, core::SystemKind::kPulse, 1);
    spec.concurrency = 1;
    spec.warmup_ops = 10;
    spec.measure_ops = 60;  // fallback runs are very slow
    spec.tweak = [threshold](core::ClusterConfig& config) {
        config.offload.eta_threshold = threshold;
    };
    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;
    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = 1;
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        experiment.factory, driver);
    ctx.add_events(cluster.queue().events_executed());
    out.mean_us = to_micros(result.latency.mean());
    out.fallbacks = cluster.offload_engine().stats().fallback.value();
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t i = 0; i < kWorkspaces.size(); i++) {
        const std::uint32_t workspaces = kWorkspaces[i];
        sweep.add("workspaces_" + std::to_string(workspaces),
                  [workspaces, i](CellContext& ctx) {
                      workspace_sweep(ctx, workspaces, g_ws[i]);
                  });
    }
    for (std::size_t i = 0; i < kThresholds.size(); i++) {
        const double threshold = kThresholds[i];
        sweep.add("eta_threshold_" + fmt(threshold, "%.2f"),
                  [threshold, i](CellContext& ctx) {
                      eta_threshold_sweep(ctx, threshold, g_eta[i]);
                  });
    }
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kWorkspaces.size(); i++) {
        benchmark::RegisterBenchmark(
            ("ablation/workspaces_" +
             std::to_string(kWorkspaces[i]))
                .c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["mem_gbps"] = g_ws[i].gbps;
                state.counters["unloaded_us"] = g_ws[i].unloaded_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (std::size_t i = 0; i < kThresholds.size(); i++) {
        benchmark::RegisterBenchmark(
            ("ablation/eta_threshold_" + fmt(kThresholds[i], "%.2f"))
                .c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["mean_us"] = g_eta[i].mean_us;
                state.counters["fallbacks"] =
                    static_cast<double>(g_eta[i].fallbacks);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_eta");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table ws("Ablation (Fig 3): workspaces per logic pipeline "
             "(TSV-15s; paper core uses 2*eta, see DESIGN.md)");
    ws.set_header({"workspaces", "sat_GB/s", "unloaded_us"});
    for (const auto& point : g_ws) {
        ws.add_row({std::to_string(point.workspaces),
                    fmt(point.gbps), fmt(point.unloaded_us)});
    }
    ws.print();

    Table eta("Ablation: offload eta-threshold (TSV-15s aggregate, "
              "program eta ~0.9)");
    eta.set_header({"threshold", "mean_us", "fallback_ops"});
    for (const auto& point : g_eta) {
        eta.add_row({fmt(point.threshold, "%.2f"),
                     fmt(point.mean_us),
                     std::to_string(point.fallbacks)});
    }
    eta.print();
    MetricsSink::instance().flush();
    return 0;
}
