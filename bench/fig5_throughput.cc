/**
 * @file
 * Fig. 5 — Application throughput.
 *
 * Closed-loop saturation throughput for every application x system x
 * node-count cell. Paper shapes to reproduce:
 *   - pulse 14.8-135.4x higher throughput than Cache-based;
 *   - pulse ~= RPC on one node (both saturate the 25 GB/s node);
 *   - pulse 1.14-2.28x over RPC with multiple nodes (continuation
 *     bounces through the client cost RPC client-side work and extra
 *     round trips);
 *   - throughput scales with node count; UPC scales linearly
 *     (partitioned, never crosses nodes).
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); results and metrics exports are byte-
 * identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

std::map<std::string, RunOutcome> g_outcomes;

std::string
cell_key(App app, SystemKind system, std::uint32_t nodes)
{
    return std::string(app_name(app)) + "/" +
           core::system_name(system) + "/" + std::to_string(nodes);
}

RunSpec
cell_spec(App app, SystemKind system, std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, system, nodes);
    // Enough outstanding work to saturate the memory nodes (queueing
    // inflates latency; the closed loop must out-supply capacity).
    const bool slow = system == SystemKind::kCache;
    spec.concurrency = slow ? 64 : 512 * nodes;
    spec.warmup_ops = slow ? 64 : spec.concurrency;
    spec.measure_ops =
        slow ? 192 : std::max<std::uint64_t>(2 * spec.concurrency, 1200);
    return spec;
}

/** Visit every Fig. 5 cell in the canonical (deterministic) order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        for (const App app : kApps) {
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                if (system == SystemKind::kCacheRpc &&
                    (app != App::kUpc || nodes != 1)) {
                    continue;
                }
                fn(app, system, nodes);
            }
        }
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, SystemKind system,
                           std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        sweep.add_spec(key, cell_spec(app, system, nodes),
                       [key](const RunOutcome& outcome) {
                           g_outcomes[key] = outcome;
                       });
    });
}

void
print_tables()
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        Table table("Fig 5: application throughput, K ops/s (" +
                    std::to_string(nodes) + " memory node" +
                    (nodes > 1 ? "s" : "") + ")");
        table.set_header({"app", "Cache", "RPC", "RPC-W", "Cache+RPC",
                          "pulse", "pulse/RPC", "pulse/Cache"});
        for (const App app : kApps) {
            std::vector<std::string> row = {app_name(app)};
            double rpc = 0.0;
            double pulse_kops = 0.0;
            double cache = 0.0;
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                const auto it =
                    g_outcomes.find(cell_key(app, system, nodes));
                if (it == g_outcomes.end()) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(it->second.kops));
                if (system == SystemKind::kRpc) {
                    rpc = it->second.kops;
                } else if (system == SystemKind::kPulse) {
                    pulse_kops = it->second.kops;
                } else if (system == SystemKind::kCache) {
                    cache = it->second.kops;
                }
            }
            row.push_back(rpc > 0 ? fmt(pulse_kops / rpc, "%.2f")
                                  : "-");
            row.push_back(cache > 0 ? fmt(pulse_kops / cache, "%.1f")
                                    : "-");
            table.add_row(row);
        }
        table.print();
    }
}

void
register_benchmarks()
{
    for_each_cell([](App app, SystemKind system, std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        benchmark::RegisterBenchmark(
            ("fig5/" + key).c_str(),
            [key](benchmark::State& state) {
                const RunOutcome& outcome = g_outcomes[key];
                for (auto _ : state) {
                }
                state.counters["kops"] = outcome.kops;
                state.counters["mem_bw_gbps"] = outcome.mem_bw / 1e9;
                state.counters["errors"] =
                    static_cast<double>(outcome.driver.errors);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig5");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
