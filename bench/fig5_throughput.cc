/**
 * @file
 * Fig. 5 — Application throughput.
 *
 * Closed-loop saturation throughput for every application x system x
 * node-count cell. Paper shapes to reproduce:
 *   - pulse 14.8-135.4x higher throughput than Cache-based;
 *   - pulse ~= RPC on one node (both saturate the 25 GB/s node);
 *   - pulse 1.14-2.28x over RPC with multiple nodes (continuation
 *     bounces through the client cost RPC client-side work and extra
 *     round trips);
 *   - throughput scales with node count; UPC scales linearly
 *     (partitioned, never crosses nodes).
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

std::map<std::string, double> g_kops;

std::string
cell_key(App app, SystemKind system, std::uint32_t nodes)
{
    return std::string(app_name(app)) + "/" +
           core::system_name(system) + "/" + std::to_string(nodes);
}

void
throughput_cell(benchmark::State& state, App app, SystemKind system,
                std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, system, nodes);
    // Enough outstanding work to saturate the memory nodes (queueing
    // inflates latency; the closed loop must out-supply capacity).
    const bool slow = system == SystemKind::kCache;
    spec.concurrency = slow ? 64 : 512 * nodes;
    spec.warmup_ops = slow ? 64 : spec.concurrency;
    spec.measure_ops =
        slow ? 192 : std::max<std::uint64_t>(2 * spec.concurrency, 1200);

    RunOutcome outcome;
    for (auto _ : state) {
        outcome = run_spec(spec);
    }
    state.counters["kops"] = outcome.kops;
    state.counters["mem_bw_gbps"] = outcome.mem_bw / 1e9;
    state.counters["errors"] =
        static_cast<double>(outcome.driver.errors);
    g_kops[cell_key(app, system, nodes)] = outcome.kops;
}

void
print_tables()
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        Table table("Fig 5: application throughput, K ops/s (" +
                    std::to_string(nodes) + " memory node" +
                    (nodes > 1 ? "s" : "") + ")");
        table.set_header({"app", "Cache", "RPC", "RPC-W", "Cache+RPC",
                          "pulse", "pulse/RPC", "pulse/Cache"});
        for (const App app : kApps) {
            std::vector<std::string> row = {app_name(app)};
            double rpc = 0.0;
            double pulse_kops = 0.0;
            double cache = 0.0;
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                const auto it =
                    g_kops.find(cell_key(app, system, nodes));
                if (it == g_kops.end()) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(it->second));
                if (system == SystemKind::kRpc) {
                    rpc = it->second;
                } else if (system == SystemKind::kPulse) {
                    pulse_kops = it->second;
                } else if (system == SystemKind::kCache) {
                    cache = it->second;
                }
            }
            row.push_back(rpc > 0 ? fmt(pulse_kops / rpc, "%.2f")
                                  : "-");
            row.push_back(cache > 0 ? fmt(pulse_kops / cache, "%.1f")
                                    : "-");
            table.add_row(row);
        }
        table.print();
    }
}

void
register_benchmarks()
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        for (const App app : kApps) {
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                if (system == SystemKind::kCacheRpc &&
                    (app != App::kUpc || nodes != 1)) {
                    continue;
                }
                benchmark::RegisterBenchmark(
                    ("fig5/" + cell_key(app, system, nodes)).c_str(),
                    [app, system, nodes](benchmark::State& state) {
                        throughput_cell(state, app, system, nodes);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
