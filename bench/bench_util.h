/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every bench binary (one per paper table/figure) builds RunSpecs —
 * (application, system, node count, concurrency) cells — executes them
 * through the cluster + workload driver, and prints the corresponding
 * paper-style table. Results also surface as google-benchmark counters
 * so standard tooling can consume them.
 */
#ifndef PULSE_BENCH_BENCH_UTIL_H
#define PULSE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "common/logging.h"
#include "core/cluster.h"
#include "energy/energy_model.h"
#include "isa/analysis.h"
#include "trace/metrics_exporter.h"
#include "workloads/driver.h"

namespace pulse::bench {

/**
 * Harness-level knobs shared by every bench binary. Defaults come from
 * the environment (PULSE_BENCH_THREADS, PULSE_BENCH_OPS_SCALE); CLI
 * flags parsed by parse_bench_args() override them.
 */
struct BenchOptions
{
    /** Sweep worker threads; 1 reproduces the serial behavior. */
    unsigned threads = 1;

    /**
     * Multiplier applied to every RunSpec's warmup_ops/measure_ops
     * (floored at 1 op). 1.0 — the default — bypasses scaling
     * entirely, keeping full runs bit-identical; CI uses small values
     * for cheap sweeps.
     */
    double ops_scale = 1.0;
};

/** Mutable process-wide options (initialized from the environment). */
inline BenchOptions&
bench_options()
{
    static BenchOptions options = [] {
        BenchOptions parsed;
        parsed.threads = std::thread::hardware_concurrency();
        if (parsed.threads == 0) {
            parsed.threads = 1;
        }
        if (const char* env = std::getenv("PULSE_BENCH_THREADS")) {
            const long n = std::strtol(env, nullptr, 10);
            parsed.threads =
                n > 0 ? static_cast<unsigned>(n) : 1;
        }
        if (const char* env = std::getenv("PULSE_BENCH_OPS_SCALE")) {
            const double scale = std::strtod(env, nullptr);
            if (scale > 0.0) {
                parsed.ops_scale = scale;
            }
        }
        return parsed;
    }();
    return options;
}

/**
 * Strip and apply the harness flags (--threads=N, --ops-scale=X) from
 * @p argv before handing it to benchmark::Initialize, which aborts on
 * flags it does not recognize. Call first in every bench main().
 */
inline void
parse_bench_args(int& argc, char** argv)
{
    int kept = 1;
    for (int i = 1; i < argc; i++) {
        const std::string_view arg(argv[i]);
        constexpr std::string_view kThreads = "--threads=";
        constexpr std::string_view kOpsScale = "--ops-scale=";
        if (arg.substr(0, kThreads.size()) == kThreads) {
            const long n =
                std::strtol(argv[i] + kThreads.size(), nullptr, 10);
            bench_options().threads =
                n > 0 ? static_cast<unsigned>(n) : 1;
            continue;
        }
        if (arg.substr(0, kOpsScale.size()) == kOpsScale) {
            const double scale =
                std::strtod(argv[i] + kOpsScale.size(), nullptr);
            if (scale > 0.0) {
                bench_options().ops_scale = scale;
            }
            continue;
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;
}

/** The evaluated applications (Table 2 rows). */
enum class App { kUpc, kTc, kTsv75, kTsv15, kTsv30, kTsv60 };

inline const char*
app_name(App app)
{
    switch (app) {
      case App::kUpc: return "UPC";
      case App::kTc: return "TC";
      case App::kTsv75: return "TSV-7.5s";
      case App::kTsv15: return "TSV-15s";
      case App::kTsv30: return "TSV-30s";
      case App::kTsv60: return "TSV-60s";
    }
    return "?";
}

inline double
tsv_window_seconds(App app)
{
    switch (app) {
      case App::kTsv75: return 7.5;
      case App::kTsv15: return 15.0;
      case App::kTsv30: return 30.0;
      case App::kTsv60: return 60.0;
      default: return 0.0;
    }
}

/** One experiment cell. */
struct RunSpec
{
    App app = App::kUpc;
    core::SystemKind system = core::SystemKind::kPulse;
    std::uint32_t nodes = 1;
    std::uint32_t concurrency = 1;
    std::uint64_t warmup_ops = 100;
    std::uint64_t measure_ops = 600;
    bool pulse_acc = false;      ///< pulse-ACC ablation (Fig. 8)
    bool uniform_alloc = false;  ///< supp. Fig. 2 allocation policy
    apps::AppScale scale;

    /** Extra cluster tweaks applied before construction. */
    std::function<void(core::ClusterConfig&)> tweak;
};

/** Everything measured for one cell. */
struct RunOutcome
{
    workloads::DriverResult driver;
    double mem_bw = 0.0;          ///< achieved memory bandwidth (B/s)
    double mem_bw_capacity = 0.0; ///< effective capacity (B/s)
    double net_bw = 0.0;          ///< client port traffic (B/s)
    double net_bw_capacity = 0.0; ///< client link capacity (B/s)
    double joules_per_op = 0.0;   ///< energy model output
    double avg_iterations = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    double kops = 0.0;            ///< throughput, K ops/s
    /** Per-node load skew over the measure window (max/mean of the
     *  accelerators' request counts; 1.0 = balanced). Not part of the
     *  default metrics export to keep fig4/5/9 outputs stable —
     *  benches that care (fig8, ablation_migration) report it. */
    double node_imbalance = 1.0;
};

/**
 * Spec for the main-figure experiments (Figs. 4-7): UPC is key-
 * partitioned (Table 2: partitionable), TC/TSV use the default
 * glibc-like uniform allocation (Table 2 marks B+Trees as not
 * partitionable; section 2.2: the paper does not innovate on
 * allocation).
 */
inline RunSpec
main_spec(App app, core::SystemKind system, std::uint32_t nodes)
{
    RunSpec spec;
    spec.app = app;
    spec.system = system;
    spec.nodes = nodes;
    spec.uniform_alloc = app != App::kUpc;
    return spec;
}

inline Bytes
app_data_bytes(const RunSpec& spec)
{
    switch (spec.app) {
      case App::kUpc: return apps::upc_data_bytes(spec.scale);
      case App::kTc: return apps::tc_data_bytes(spec.scale);
      default: return apps::tsv_data_bytes(spec.scale);
    }
}

/** Build the cluster config for a cell. */
inline core::ClusterConfig
make_config(const RunSpec& spec)
{
    core::ClusterConfig config;
    config.num_mem_nodes = spec.nodes;
    config.alloc_policy = spec.uniform_alloc
                              ? mem::AllocPolicy::kUniform
                              : mem::AllocPolicy::kPartitioned;
    // Enough in-flight loads per core to cover the 120 ns access
    // latency at full channel bandwidth (DESIGN.md deviation note).
    config.accel.workspaces_per_logic = 16;
    // Scale the client caches with the data set (paper: 2 GB/~120 GB).
    const Bytes cache_bytes = std::max<Bytes>(
        static_cast<Bytes>(static_cast<double>(app_data_bytes(spec)) *
                           spec.scale.cache_fraction),
        256 * kKiB);
    config.cache.cache_bytes = cache_bytes;
    config.aifm.cache_bytes = cache_bytes;
    config.set_pulse_acc(spec.pulse_acc);
    // PULSE_CHECK=1 (or a layer list) turns on the correctness
    // subsystem for any bench run; unset leaves it all-off and the
    // outputs bit-identical (see docs/TESTING.md).
    config.check = check::CheckConfig::from_env();
    // PULSE_PLACEMENT=static|elastic turns on the placement plane for
    // any bench run; unset (or =off) constructs nothing and leaves the
    // outputs bit-identical (see docs/PLACEMENT.md).
    config.placement = placement::PlacementConfig::from_env();
    // PULSE_REPLICATION=k2|k3 turns on the fault-tolerance plane for
    // any bench run; unset (or =off) constructs nothing and leaves the
    // outputs bit-identical (see docs/REPLICATION.md).
    config.replication = replication::ReplicationConfig::from_env();
    // PULSE_SERVING=on turns on the multi-tenant serving plane for any
    // bench run; unset (or =off) constructs nothing and leaves the
    // outputs bit-identical (see docs/SERVING.md).
    config.serve = serve::ServeConfig::from_env();
    if (spec.tweak) {
        spec.tweak(config);
    }
    return config;
}

/** Hold the cluster + app together (app owns remote structures). */
struct Experiment
{
    std::unique_ptr<core::Cluster> cluster;
    std::unique_ptr<apps::UpcApp> upc;
    std::unique_ptr<apps::TcApp> tc;
    std::unique_ptr<apps::TsvApp> tsv;
    workloads::OpFactory factory;
};

inline Experiment
make_experiment(const RunSpec& spec)
{
    Experiment experiment;
    experiment.cluster =
        std::make_unique<core::Cluster>(make_config(spec));
    switch (spec.app) {
      case App::kUpc:
        experiment.upc = std::make_unique<apps::UpcApp>(
            *experiment.cluster, spec.scale);
        experiment.factory = experiment.upc->factory();
        break;
      case App::kTc:
        experiment.tc = std::make_unique<apps::TcApp>(
            *experiment.cluster, spec.scale, spec.uniform_alloc);
        experiment.factory = experiment.tc->factory();
        break;
      default:
        experiment.tsv = std::make_unique<apps::TsvApp>(
            *experiment.cluster, spec.scale,
            tsv_window_seconds(spec.app), spec.uniform_alloc);
        experiment.factory = experiment.tsv->factory();
        break;
    }
    return experiment;
}

/** Energy for the measured window (pulse / RPC / RPC-W / Cache+RPC). */
inline double
measure_energy_per_op(core::Cluster& cluster, core::SystemKind system,
                      const workloads::DriverResult& result,
                      std::uint32_t nodes)
{
    if (result.completed == 0 || result.measure_time <= 0) {
        return 0.0;
    }
    double joules = 0.0;
    if (system == core::SystemKind::kPulse) {
        energy::AcceleratorPower power;
        for (NodeId node = 0; node < nodes; node++) {
            energy::AcceleratorActivity activity;
            activity.run_time = result.measure_time;
            const auto& stats = cluster.accelerator(node).stats();
            activity.net_stack_busy_ps = stats.net_stack_time.sum();
            // Physical DRAM busy time (bytes / bandwidth), not the
            // latency-overlapped per-load sums used for Fig. 9.
            activity.mem_pipeline_busy_ps = static_cast<double>(
                cluster.channels(node).bytes_transferred()) /
                cluster.channels(node).total_effective_bandwidth() *
                static_cast<double>(kSecond);
            // Occupancy integral, not the latency-overlapped per-
            // iteration sums Fig. 9 reports.
            activity.logic_pipeline_busy_ps =
                stats.logic_busy_time.sum();
            joules += accelerator_energy(power, activity);
        }
    } else {
        energy::CpuPower power;
        const bool wimpy = system == core::SystemKind::kRpcWimpy;
        energy::CpuActivity activity;
        activity.run_time = result.measure_time;
        activity.clock_ghz = wimpy
                                 ? cluster.config().rpc_wimpy.clock_ghz
                                 : cluster.config().rpc.clock_ghz;
        if (system == core::SystemKind::kCacheRpc) {
            // Cache+RPC executes on the TCP-transport RPC runtime.
            activity.worker_busy_ps =
                cluster.rpc_tcp().stats().worker_busy_time.sum();
        } else {
            activity.worker_busy_ps =
                cluster.rpc(wimpy).stats().worker_busy_time.sum();
        }
        joules = cpu_energy(power, activity) +
                 power.idle_w * to_seconds(result.measure_time) *
                     (nodes - 1);
    }
    return joules / static_cast<double>(result.completed);
}

/**
 * One cell's deferred metrics snapshot. Worker threads record each
 * executed cell into a local exporter (unprefixed names); the sweep
 * runner replays the records into the process-wide MetricsSink in
 * submission order, so the export is byte-identical to the serial
 * run regardless of which worker finished first.
 */
struct SinkRecord
{
    std::string label;
    trace::MetricsExporter metrics;
};

/** Canonical cell label: "<app>.<system>.n<nodes>.c<concurrency>". */
inline std::string
cell_label(const RunSpec& spec)
{
    return std::string(app_name(spec.app)) + "." +
           core::system_name(spec.system) + ".n" +
           std::to_string(spec.nodes) + ".c" +
           std::to_string(spec.concurrency);
}

/** Snapshot everything measured for one executed cell. */
inline SinkRecord
make_sink_record(const RunSpec& spec, const RunOutcome& outcome,
                 core::Cluster& cluster)
{
    SinkRecord record;
    record.label = cell_label(spec);
    record.metrics.set("kops", outcome.kops);
    record.metrics.set("mean_us", outcome.mean_us);
    record.metrics.set("p99_us", outcome.p99_us);
    record.metrics.set("mem_bw_gbps", outcome.mem_bw / 1e9);
    record.metrics.set("net_bw_gbps", outcome.net_bw / 1e9);
    record.metrics.set("joules_per_op", outcome.joules_per_op);
    record.metrics.set("avg_iterations", outcome.avg_iterations);
    record.metrics.add_histogram("latency", outcome.driver.latency);
    cluster.export_metrics(record.metrics, "");
    return record;
}

/**
 * Process-wide unified metrics sink. Enabled by setting the
 * PULSE_METRICS_OUT environment variable to an output path (".json"
 * extension selects JSON, anything else CSV); disabled (the default)
 * it is a strict no-op, so bench stdout is untouched either way.
 * run_spec() records every executed cell automatically (run_cell()
 * defers the record for the sweep runner to replay); benches with
 * bespoke measurement loops add scalars through exporter() and every
 * bench main() calls flush() before exiting.
 *
 * Thread model: replay(), exporter() and flush() are main-thread
 * only. Workers only call enabled() (an immutable read) and build
 * SinkRecords locally.
 */
class MetricsSink
{
  public:
    static MetricsSink&
    instance()
    {
        static MetricsSink sink;
        return sink;
    }

    bool enabled() const { return !path_.empty(); }

    /** Direct access for bench-specific scalars. */
    trace::MetricsExporter& exporter() { return exporter_; }

    /** Next cell tag: "cell<NNN>.<label>." (deterministic order). */
    std::string
    next_prefix(const std::string& label)
    {
        char tag[32];
        std::snprintf(tag, sizeof(tag), "cell%03zu.",
                      cells_++);
        return tag + label + ".";
    }

    /** Merge one deferred cell record under the next cell tag. */
    void
    replay(SinkRecord&& record)
    {
        if (!enabled()) {
            return;
        }
        exporter_.merge_prefixed(next_prefix(record.label),
                                 record.metrics);
    }

    /** Write the snapshot; no-op when disabled, empty, or done. */
    void
    flush()
    {
        if (!enabled() || exporter_.empty() || flushed_) {
            return;
        }
        flushed_ = true;
        if (!exporter_.write_file(path_)) {
            std::fprintf(stderr, "metrics export to %s failed\n",
                         path_.c_str());
        }
    }

  private:
    MetricsSink()
    {
        const char* path = std::getenv("PULSE_METRICS_OUT");
        path_ = path != nullptr ? path : "";
    }

    std::string path_;
    std::size_t cells_ = 0;
    bool flushed_ = false;
    trace::MetricsExporter exporter_;
};

/** Apply the global --ops-scale knob to a cell's op counts. */
inline RunSpec
apply_ops_scale(RunSpec spec)
{
    const double scale = bench_options().ops_scale;
    if (scale != 1.0) {
        spec.warmup_ops = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(spec.warmup_ops) * scale));
        spec.measure_ops = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(spec.measure_ops) * scale));
    }
    return spec;
}

/**
 * Execute one cell without touching any process-wide state: the sink
 * record (if the sink is enabled) is appended to @p records for a
 * later deterministic replay, and the cell's simulated event count is
 * added to @p events. Safe to call from sweep worker threads — the
 * cell builds its own Cluster/EventQueue/Rng and shares nothing.
 */
inline RunOutcome
run_cell(const RunSpec& requested, std::vector<SinkRecord>* records,
         std::uint64_t* events = nullptr)
{
    const RunSpec spec = apply_ops_scale(requested);
    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;

    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };

    RunOutcome outcome;
    outcome.driver = workloads::run_closed_loop(
        cluster.queue(), cluster.submitter(spec.system),
        experiment.factory, driver);

    const Time window = outcome.driver.measure_time;
    outcome.mem_bw = cluster.memory_bandwidth(window);
    outcome.mem_bw_capacity = cluster.memory_bandwidth_capacity();
    outcome.net_bw = window > 0
                         ? static_cast<double>(
                               cluster.client_network_bytes()) /
                               to_seconds(window)
                         : 0.0;
    outcome.net_bw_capacity =
        2.0 * cluster.config().network.link_bandwidth;  // full duplex
    outcome.joules_per_op = measure_energy_per_op(
        cluster, spec.system, outcome.driver, spec.nodes);
    outcome.avg_iterations =
        outcome.driver.completed
            ? static_cast<double>(outcome.driver.iterations) /
                  static_cast<double>(outcome.driver.completed)
            : 0.0;
    outcome.mean_us = to_micros(outcome.driver.latency.mean());
    outcome.p99_us = to_micros(outcome.driver.latency.percentile(0.99));
    outcome.kops = outcome.driver.throughput / 1e3;
    outcome.node_imbalance = cluster.node_load_imbalance();
    if (records != nullptr && MetricsSink::instance().enabled()) {
        records->push_back(make_sink_record(spec, outcome, cluster));
    }
    if (cluster.checker() != nullptr) {
        const std::uint64_t violations = cluster.verify_quiesce();
        if (violations != 0) {
            for (const auto& violation :
                 cluster.checker()->registry().diagnostics()) {
                std::fprintf(stderr, "%s\n",
                             violation.to_string().c_str());
            }
            panic("PULSE_CHECK: %llu violation(s) in cell %s/%s",
                  static_cast<unsigned long long>(violations),
                  app_name(spec.app), core::system_name(spec.system));
        }
    }
    if (events != nullptr) {
        *events += cluster.queue().events_executed();
    }
    return outcome;
}

/** Execute one cell, recording straight into the process sink. */
inline RunOutcome
run_spec(const RunSpec& spec)
{
    std::vector<SinkRecord> records;
    const RunOutcome outcome = run_cell(spec, &records);
    for (SinkRecord& record : records) {
        MetricsSink::instance().replay(std::move(record));
    }
    return outcome;
}

/** Simple fixed-width table printer for the paper-style outputs. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void
    set_header(std::vector<std::string> header)
    {
        header_ = std::move(header);
    }

    void
    add_row(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print() const
    {
        std::printf("\n=== %s ===\n", title_.c_str());
        print_row(header_);
        for (const auto& row : rows_) {
            print_row(row);
        }
        std::fflush(stdout);
    }

  private:
    static void
    print_row(const std::vector<std::string>& row)
    {
        if (row.empty()) {
            return;
        }
        std::printf("%-12s", row[0].c_str());
        for (std::size_t i = 1; i < row.size(); i++) {
            std::printf(" %12s", row[i].c_str());
        }
        std::printf("\n");
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(double value, const char* format = "%.1f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

}  // namespace pulse::bench

#endif  // PULSE_BENCH_BENCH_UTIL_H
