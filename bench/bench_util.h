/**
 * @file
 * Shared harness for the paper-reproduction benchmarks.
 *
 * Every bench binary (one per paper table/figure) builds RunSpecs —
 * (application, system, node count, concurrency) cells — executes them
 * through the cluster + workload driver, and prints the corresponding
 * paper-style table. Results also surface as google-benchmark counters
 * so standard tooling can consume them.
 */
#ifndef PULSE_BENCH_BENCH_UTIL_H
#define PULSE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "core/cluster.h"
#include "energy/energy_model.h"
#include "isa/analysis.h"
#include "trace/metrics_exporter.h"
#include "workloads/driver.h"

namespace pulse::bench {

/** The evaluated applications (Table 2 rows). */
enum class App { kUpc, kTc, kTsv75, kTsv15, kTsv30, kTsv60 };

inline const char*
app_name(App app)
{
    switch (app) {
      case App::kUpc: return "UPC";
      case App::kTc: return "TC";
      case App::kTsv75: return "TSV-7.5s";
      case App::kTsv15: return "TSV-15s";
      case App::kTsv30: return "TSV-30s";
      case App::kTsv60: return "TSV-60s";
    }
    return "?";
}

inline double
tsv_window_seconds(App app)
{
    switch (app) {
      case App::kTsv75: return 7.5;
      case App::kTsv15: return 15.0;
      case App::kTsv30: return 30.0;
      case App::kTsv60: return 60.0;
      default: return 0.0;
    }
}

/** One experiment cell. */
struct RunSpec
{
    App app = App::kUpc;
    core::SystemKind system = core::SystemKind::kPulse;
    std::uint32_t nodes = 1;
    std::uint32_t concurrency = 1;
    std::uint64_t warmup_ops = 100;
    std::uint64_t measure_ops = 600;
    bool pulse_acc = false;      ///< pulse-ACC ablation (Fig. 8)
    bool uniform_alloc = false;  ///< supp. Fig. 2 allocation policy
    apps::AppScale scale;

    /** Extra cluster tweaks applied before construction. */
    std::function<void(core::ClusterConfig&)> tweak;
};

/** Everything measured for one cell. */
struct RunOutcome
{
    workloads::DriverResult driver;
    double mem_bw = 0.0;          ///< achieved memory bandwidth (B/s)
    double mem_bw_capacity = 0.0; ///< effective capacity (B/s)
    double net_bw = 0.0;          ///< client port traffic (B/s)
    double net_bw_capacity = 0.0; ///< client link capacity (B/s)
    double joules_per_op = 0.0;   ///< energy model output
    double avg_iterations = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    double kops = 0.0;            ///< throughput, K ops/s
};

/**
 * Spec for the main-figure experiments (Figs. 4-7): UPC is key-
 * partitioned (Table 2: partitionable), TC/TSV use the default
 * glibc-like uniform allocation (Table 2 marks B+Trees as not
 * partitionable; section 2.2: the paper does not innovate on
 * allocation).
 */
inline RunSpec
main_spec(App app, core::SystemKind system, std::uint32_t nodes)
{
    RunSpec spec;
    spec.app = app;
    spec.system = system;
    spec.nodes = nodes;
    spec.uniform_alloc = app != App::kUpc;
    return spec;
}

inline Bytes
app_data_bytes(const RunSpec& spec)
{
    switch (spec.app) {
      case App::kUpc: return apps::upc_data_bytes(spec.scale);
      case App::kTc: return apps::tc_data_bytes(spec.scale);
      default: return apps::tsv_data_bytes(spec.scale);
    }
}

/** Build the cluster config for a cell. */
inline core::ClusterConfig
make_config(const RunSpec& spec)
{
    core::ClusterConfig config;
    config.num_mem_nodes = spec.nodes;
    config.alloc_policy = spec.uniform_alloc
                              ? mem::AllocPolicy::kUniform
                              : mem::AllocPolicy::kPartitioned;
    // Enough in-flight loads per core to cover the 120 ns access
    // latency at full channel bandwidth (DESIGN.md deviation note).
    config.accel.workspaces_per_logic = 16;
    // Scale the client caches with the data set (paper: 2 GB/~120 GB).
    const Bytes cache_bytes = std::max<Bytes>(
        static_cast<Bytes>(static_cast<double>(app_data_bytes(spec)) *
                           spec.scale.cache_fraction),
        256 * kKiB);
    config.cache.cache_bytes = cache_bytes;
    config.aifm.cache_bytes = cache_bytes;
    config.set_pulse_acc(spec.pulse_acc);
    if (spec.tweak) {
        spec.tweak(config);
    }
    return config;
}

/** Hold the cluster + app together (app owns remote structures). */
struct Experiment
{
    std::unique_ptr<core::Cluster> cluster;
    std::unique_ptr<apps::UpcApp> upc;
    std::unique_ptr<apps::TcApp> tc;
    std::unique_ptr<apps::TsvApp> tsv;
    workloads::OpFactory factory;
};

inline Experiment
make_experiment(const RunSpec& spec)
{
    Experiment experiment;
    experiment.cluster =
        std::make_unique<core::Cluster>(make_config(spec));
    switch (spec.app) {
      case App::kUpc:
        experiment.upc = std::make_unique<apps::UpcApp>(
            *experiment.cluster, spec.scale);
        experiment.factory = experiment.upc->factory();
        break;
      case App::kTc:
        experiment.tc = std::make_unique<apps::TcApp>(
            *experiment.cluster, spec.scale, spec.uniform_alloc);
        experiment.factory = experiment.tc->factory();
        break;
      default:
        experiment.tsv = std::make_unique<apps::TsvApp>(
            *experiment.cluster, spec.scale,
            tsv_window_seconds(spec.app), spec.uniform_alloc);
        experiment.factory = experiment.tsv->factory();
        break;
    }
    return experiment;
}

/** Energy for the measured window (pulse / RPC / RPC-W / Cache+RPC). */
inline double
measure_energy_per_op(core::Cluster& cluster, core::SystemKind system,
                      const workloads::DriverResult& result,
                      std::uint32_t nodes)
{
    if (result.completed == 0 || result.measure_time <= 0) {
        return 0.0;
    }
    double joules = 0.0;
    if (system == core::SystemKind::kPulse) {
        energy::AcceleratorPower power;
        for (NodeId node = 0; node < nodes; node++) {
            energy::AcceleratorActivity activity;
            activity.run_time = result.measure_time;
            const auto& stats = cluster.accelerator(node).stats();
            activity.net_stack_busy_ps = stats.net_stack_time.sum();
            // Physical DRAM busy time (bytes / bandwidth), not the
            // latency-overlapped per-load sums used for Fig. 9.
            activity.mem_pipeline_busy_ps = static_cast<double>(
                cluster.channels(node).bytes_transferred()) /
                cluster.channels(node).total_effective_bandwidth() *
                static_cast<double>(kSecond);
            // Occupancy integral, not the latency-overlapped per-
            // iteration sums Fig. 9 reports.
            activity.logic_pipeline_busy_ps =
                stats.logic_busy_time.sum();
            joules += accelerator_energy(power, activity);
        }
    } else {
        energy::CpuPower power;
        const bool wimpy = system == core::SystemKind::kRpcWimpy;
        energy::CpuActivity activity;
        activity.run_time = result.measure_time;
        activity.clock_ghz = wimpy
                                 ? cluster.config().rpc_wimpy.clock_ghz
                                 : cluster.config().rpc.clock_ghz;
        if (system == core::SystemKind::kCacheRpc) {
            // Cache+RPC executes on the TCP-transport RPC runtime.
            activity.worker_busy_ps =
                cluster.rpc_tcp().stats().worker_busy_time.sum();
        } else {
            activity.worker_busy_ps =
                cluster.rpc(wimpy).stats().worker_busy_time.sum();
        }
        joules = cpu_energy(power, activity) +
                 power.idle_w * to_seconds(result.measure_time) *
                     (nodes - 1);
    }
    return joules / static_cast<double>(result.completed);
}

/**
 * Process-wide unified metrics sink. Enabled by setting the
 * PULSE_METRICS_OUT environment variable to an output path (".json"
 * extension selects JSON, anything else CSV); disabled (the default)
 * it is a strict no-op, so bench stdout is untouched either way.
 * run_spec() records every executed cell automatically; benches with
 * bespoke measurement loops add scalars through exporter() and every
 * bench main() calls flush() before exiting.
 */
class MetricsSink
{
  public:
    static MetricsSink&
    instance()
    {
        static MetricsSink sink;
        return sink;
    }

    bool enabled() const { return !path_.empty(); }

    /** Direct access for bench-specific scalars. */
    trace::MetricsExporter& exporter() { return exporter_; }

    /** Next cell tag: "cell<NNN>.<label>." (deterministic order). */
    std::string
    next_prefix(const std::string& label)
    {
        char tag[32];
        std::snprintf(tag, sizeof(tag), "cell%03zu.",
                      cells_++);
        return tag + label + ".";
    }

    /** Record one executed run_spec cell. */
    void
    record_cell(const RunSpec& spec, const RunOutcome& outcome,
                core::Cluster& cluster)
    {
        if (!enabled()) {
            return;
        }
        const std::string prefix = next_prefix(
            std::string(app_name(spec.app)) + "." +
            core::system_name(spec.system) + ".n" +
            std::to_string(spec.nodes) + ".c" +
            std::to_string(spec.concurrency));
        exporter_.set(prefix + "kops", outcome.kops);
        exporter_.set(prefix + "mean_us", outcome.mean_us);
        exporter_.set(prefix + "p99_us", outcome.p99_us);
        exporter_.set(prefix + "mem_bw_gbps", outcome.mem_bw / 1e9);
        exporter_.set(prefix + "net_bw_gbps", outcome.net_bw / 1e9);
        exporter_.set(prefix + "joules_per_op",
                      outcome.joules_per_op);
        exporter_.set(prefix + "avg_iterations",
                      outcome.avg_iterations);
        exporter_.add_histogram(prefix + "latency",
                                outcome.driver.latency);
        cluster.export_metrics(exporter_, prefix);
    }

    /** Write the snapshot; no-op when disabled, empty, or done. */
    void
    flush()
    {
        if (!enabled() || exporter_.empty() || flushed_) {
            return;
        }
        flushed_ = true;
        if (!exporter_.write_file(path_)) {
            std::fprintf(stderr, "metrics export to %s failed\n",
                         path_.c_str());
        }
    }

  private:
    MetricsSink()
    {
        const char* path = std::getenv("PULSE_METRICS_OUT");
        path_ = path != nullptr ? path : "";
    }

    std::string path_;
    std::size_t cells_ = 0;
    bool flushed_ = false;
    trace::MetricsExporter exporter_;
};

/** Execute one cell. */
inline RunOutcome
run_spec(const RunSpec& spec)
{
    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;

    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };

    RunOutcome outcome;
    outcome.driver = workloads::run_closed_loop(
        cluster.queue(), cluster.submitter(spec.system),
        experiment.factory, driver);

    const Time window = outcome.driver.measure_time;
    outcome.mem_bw = cluster.memory_bandwidth(window);
    outcome.mem_bw_capacity = cluster.memory_bandwidth_capacity();
    outcome.net_bw = window > 0
                         ? static_cast<double>(
                               cluster.client_network_bytes()) /
                               to_seconds(window)
                         : 0.0;
    outcome.net_bw_capacity =
        2.0 * cluster.config().network.link_bandwidth;  // full duplex
    outcome.joules_per_op = measure_energy_per_op(
        cluster, spec.system, outcome.driver, spec.nodes);
    outcome.avg_iterations =
        outcome.driver.completed
            ? static_cast<double>(outcome.driver.iterations) /
                  static_cast<double>(outcome.driver.completed)
            : 0.0;
    outcome.mean_us = to_micros(outcome.driver.latency.mean());
    outcome.p99_us = to_micros(outcome.driver.latency.percentile(0.99));
    outcome.kops = outcome.driver.throughput / 1e3;
    MetricsSink::instance().record_cell(spec, outcome, cluster);
    return outcome;
}

/** Simple fixed-width table printer for the paper-style outputs. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void
    set_header(std::vector<std::string> header)
    {
        header_ = std::move(header);
    }

    void
    add_row(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print() const
    {
        std::printf("\n=== %s ===\n", title_.c_str());
        print_row(header_);
        for (const auto& row : rows_) {
            print_row(row);
        }
        std::fflush(stdout);
    }

  private:
    static void
    print_row(const std::vector<std::string>& row)
    {
        if (row.empty()) {
            return;
        }
        std::printf("%-12s", row[0].c_str());
        for (std::size_t i = 1; i < row.size(); i++) {
            std::printf(" %12s", row[i].c_str());
        }
        std::printf("\n");
    }

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(double value, const char* format = "%.1f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

}  // namespace pulse::bench

#endif  // PULSE_BENCH_BENCH_UTIL_H
