/**
 * @file
 * Fig. 4 — Application latency.
 *
 * Reproduces the paper's latency comparison: mean per-operation
 * latency for every application x system x node-count cell at
 * concurrency 1 (unloaded latency). Paper shapes to reproduce:
 *   - pulse 10-64x lower latency than Cache-based;
 *   - RPC ~1.25x lower than pulse on one node (higher clock);
 *   - pulse 42-55% lower than RPC with multiple memory nodes
 *     (in-network continuations);
 *   - Cache+RPC (UPC, 1 node only) above RPC (TCP transport).
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); results and metrics exports are byte-
 * identical to a serial run. The registered google-benchmark shells
 * report the precomputed counters.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;
using core::SystemKind;

const std::vector<App> kApps = {App::kUpc,   App::kTc,
                                App::kTsv75, App::kTsv15,
                                App::kTsv30, App::kTsv60};

struct Cell
{
    RunOutcome outcome;
    bool run = false;
};

std::map<std::string, Cell> g_cells;

std::string
cell_key(App app, SystemKind system, std::uint32_t nodes)
{
    return std::string(app_name(app)) + "/" +
           core::system_name(system) + "/" + std::to_string(nodes);
}

RunSpec
cell_spec(App app, SystemKind system, std::uint32_t nodes)
{
    RunSpec spec = main_spec(app, system, nodes);
    spec.concurrency = 1;
    spec.warmup_ops = 40;
    // The Cache baseline is ~2 orders slower; fewer ops suffice.
    spec.measure_ops =
        system == SystemKind::kCache ? 120 : 400;
    return spec;
}

/** Visit every Fig. 4 cell in the canonical (deterministic) order. */
template <typename Fn>
void
for_each_cell(Fn&& fn)
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        for (const App app : kApps) {
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                // The paper restricts Cache+RPC (AIFM) to UPC on a
                // single node (no B+Tree / distributed support).
                if (system == SystemKind::kCacheRpc &&
                    (app != App::kUpc || nodes != 1)) {
                    continue;
                }
                fn(app, system, nodes);
            }
        }
    }
}

void
add_cells(SweepRunner& sweep)
{
    for_each_cell([&sweep](App app, SystemKind system,
                           std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        sweep.add_spec(key, cell_spec(app, system, nodes),
                       [key](const RunOutcome& outcome) {
                           g_cells[key] = Cell{outcome, true};
                       });
    });
}

void
print_tables()
{
    for (const std::uint32_t nodes : {1u, 2u, 4u}) {
        Table table("Fig 4: application latency, mean us (" +
                    std::to_string(nodes) + " memory node" +
                    (nodes > 1 ? "s" : "") + ")");
        table.set_header({"app", "Cache", "RPC", "RPC-W", "Cache+RPC",
                          "pulse", "pulse/RPC", "Cache/pulse"});
        for (const App app : kApps) {
            std::vector<std::string> row = {app_name(app)};
            double rpc = 0.0;
            double pulse_latency = 0.0;
            double cache = 0.0;
            for (const SystemKind system :
                 {SystemKind::kCache, SystemKind::kRpc,
                  SystemKind::kRpcWimpy, SystemKind::kCacheRpc,
                  SystemKind::kPulse}) {
                const auto it =
                    g_cells.find(cell_key(app, system, nodes));
                if (it == g_cells.end() || !it->second.run) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(it->second.outcome.mean_us));
                if (system == SystemKind::kRpc) {
                    rpc = it->second.outcome.mean_us;
                } else if (system == SystemKind::kPulse) {
                    pulse_latency = it->second.outcome.mean_us;
                } else if (system == SystemKind::kCache) {
                    cache = it->second.outcome.mean_us;
                }
            }
            row.push_back(pulse_latency > 0 && rpc > 0
                              ? fmt(pulse_latency / rpc, "%.2f")
                              : "-");
            row.push_back(pulse_latency > 0 && cache > 0
                              ? fmt(cache / pulse_latency, "%.1f")
                              : "-");
            table.add_row(row);
        }
        table.print();
    }
}

void
register_benchmarks()
{
    for_each_cell([](App app, SystemKind system, std::uint32_t nodes) {
        const std::string key = cell_key(app, system, nodes);
        benchmark::RegisterBenchmark(
            ("fig4/" + key).c_str(),
            [key](benchmark::State& state) {
                const RunOutcome& outcome = g_cells[key].outcome;
                for (auto _ : state) {
                }
                state.counters["mean_us"] = outcome.mean_us;
                state.counters["p99_us"] = outcome.p99_us;
                state.counters["iters_per_op"] =
                    outcome.avg_iterations;
                state.counters["errors"] =
                    static_cast<double>(outcome.driver.errors);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("fig4");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_tables();
    MetricsSink::instance().flush();
    return 0;
}
