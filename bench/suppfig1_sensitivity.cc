/**
 * @file
 * Supplementary Fig. 1 — Sensitivity to traversal length and core
 * count.
 *
 * (a) End-to-end pulse latency for linked-list walks of increasing
 *     length: must scale linearly with the number of nodes traversed.
 * (b) Memory bandwidth achieved vs accelerator core count on a
 *     low-eta linked-list workload: two cores saturate the node's
 *     25 GB/s; with the vendor memory-interconnect IP removed
 *     (dedicated channel per core) the board reaches ~34 GB/s.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/linked_list.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<std::uint64_t> kHops = {8,  16,  32,  64,
                                          128, 256, 512};
const std::vector<std::uint32_t> kCores = {1, 2, 3, 4};

struct LengthPoint
{
    std::uint64_t hops = 0;
    double mean_us = 0.0;
};

struct CorePoint
{
    std::uint32_t cores = 0;
    bool interconnect = true;
    double gbps = 0.0;
};

std::vector<LengthPoint> g_lengths(kHops.size());
std::vector<CorePoint> g_cores(kCores.size() * 2);

/** Build a big-node list so walks stress the memory pipeline. */
std::unique_ptr<ds::LinkedList>
build_list(core::Cluster& cluster, std::uint64_t nodes)
{
    auto list = std::make_unique<ds::LinkedList>(
        cluster.memory(), cluster.allocator(), /*node_bytes=*/256);
    std::vector<std::uint64_t> values;
    values.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; i++) {
        values.push_back(i + 1);
    }
    list->build(values, 0);
    return list;
}

void
traversal_length(CellContext& ctx, std::uint64_t hops,
                 LengthPoint& out)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    auto list = build_list(cluster, hops + 8);

    workloads::DriverConfig driver;
    driver.warmup_ops = 10;
    driver.measure_ops = 150;
    driver.concurrency = 1;
    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) { return list->make_walk(hops, {}); },
        driver);
    ctx.add_events(cluster.queue().events_executed());
    out = {hops, to_micros(result.latency.mean())};
}

void
core_count(CellContext& ctx, std::uint32_t cores, bool interconnect,
           CorePoint& out)
{
    core::ClusterConfig config;
    config.accel.num_cores = cores;
    config.accel.workspaces_per_logic = 16;
    core::Cluster cluster(config);
    cluster.channels(0).set_interconnect_enabled(interconnect);
    auto list = build_list(cluster, 4096);

    Rng rng(5);
    workloads::DriverConfig driver;
    driver.concurrency = 256;
    driver.warmup_ops = 256;
    driver.measure_ops = 1500;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            // Short walks from the head keep requests flowing.
            return list->make_walk(24 + rng.next_below(16), {});
        },
        driver);
    ctx.add_events(cluster.queue().events_executed());
    out = {cores, interconnect,
           cluster.memory_bandwidth(result.measure_time) / 1e9};
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t i = 0; i < kHops.size(); i++) {
        const std::uint64_t hops = kHops[i];
        sweep.add("length_" + std::to_string(hops),
                  [hops, i](CellContext& ctx) {
                      traversal_length(ctx, hops, g_lengths[i]);
                  });
    }
    for (std::size_t i = 0; i < kCores.size(); i++) {
        for (const bool interconnect : {true, false}) {
            const std::uint32_t cores = kCores[i];
            const std::size_t slot = i * 2 + (interconnect ? 0 : 1);
            sweep.add("cores_" + std::to_string(cores) +
                          (interconnect ? "" : "_no_interconnect"),
                      [cores, interconnect, slot](CellContext& ctx) {
                          core_count(ctx, cores, interconnect,
                                     g_cores[slot]);
                      });
        }
    }
}

void
register_benchmarks()
{
    for (std::size_t i = 0; i < kHops.size(); i++) {
        const std::uint64_t hops = kHops[i];
        benchmark::RegisterBenchmark(
            ("suppfig1a/length_" + std::to_string(hops)).c_str(),
            [i](benchmark::State& state) {
                for (auto _ : state) {
                }
                state.counters["mean_us"] = g_lengths[i].mean_us;
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (std::size_t i = 0; i < kCores.size(); i++) {
        for (const bool interconnect : {true, false}) {
            const std::uint32_t cores = kCores[i];
            const std::size_t slot = i * 2 + (interconnect ? 0 : 1);
            benchmark::RegisterBenchmark(
                ("suppfig1b/cores_" + std::to_string(cores) +
                 (interconnect ? "" : "_no_interconnect"))
                    .c_str(),
                [slot](benchmark::State& state) {
                    for (auto _ : state) {
                    }
                    state.counters["mem_gbps"] = g_cores[slot].gbps;
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("suppfig1");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table lengths("Supp Fig 1a: latency vs traversal length "
                  "(linear scaling expected)");
    lengths.set_header({"hops", "mean_us", "us_per_hop"});
    for (const auto& point : g_lengths) {
        lengths.add_row(
            {std::to_string(point.hops), fmt(point.mean_us, "%.1f"),
             fmt(point.mean_us / static_cast<double>(point.hops),
                 "%.3f")});
    }
    lengths.print();

    Table cores("Supp Fig 1b: memory bandwidth vs cores "
                "(paper: 2 cores saturate 25 GB/s; 34 GB/s w/o "
                "interconnect)");
    cores.set_header({"cores", "with_IC_GB/s", "no_IC_GB/s"});
    for (const std::uint32_t count : kCores) {
        std::string with_ic = "-";
        std::string without_ic = "-";
        for (const auto& point : g_cores) {
            if (point.cores == count) {
                (point.interconnect ? with_ic : without_ic) =
                    fmt(point.gbps);
            }
        }
        cores.add_row({std::to_string(count), with_ic, without_ic});
    }
    cores.print();

    auto& metrics = MetricsSink::instance().exporter();
    for (const auto& point : g_lengths) {
        metrics.set("suppfig1a.hops" + std::to_string(point.hops) +
                        ".mean_us",
                    point.mean_us);
    }
    for (const auto& point : g_cores) {
        metrics.set("suppfig1b.cores" + std::to_string(point.cores) +
                        (point.interconnect ? ".with_ic"
                                            : ".no_ic") +
                        ".mem_gbps",
                    point.gbps);
    }
    MetricsSink::instance().flush();
    return 0;
}
