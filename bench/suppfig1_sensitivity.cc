/**
 * @file
 * Supplementary Fig. 1 — Sensitivity to traversal length and core
 * count.
 *
 * (a) End-to-end pulse latency for linked-list walks of increasing
 *     length: must scale linearly with the number of nodes traversed.
 * (b) Memory bandwidth achieved vs accelerator core count on a
 *     low-eta linked-list workload: two cores saturate the node's
 *     25 GB/s; with the vendor memory-interconnect IP removed
 *     (dedicated channel per core) the board reaches ~34 GB/s.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ds/linked_list.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

struct LengthPoint
{
    std::uint64_t hops = 0;
    double mean_us = 0.0;
};

struct CorePoint
{
    std::uint32_t cores = 0;
    bool interconnect = true;
    double gbps = 0.0;
};

std::vector<LengthPoint> g_lengths;
std::vector<CorePoint> g_cores;

/** Build a big-node list so walks stress the memory pipeline. */
std::unique_ptr<ds::LinkedList>
build_list(core::Cluster& cluster, std::uint64_t nodes)
{
    auto list = std::make_unique<ds::LinkedList>(
        cluster.memory(), cluster.allocator(), /*node_bytes=*/256);
    std::vector<std::uint64_t> values;
    values.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; i++) {
        values.push_back(i + 1);
    }
    list->build(values, 0);
    return list;
}

void
traversal_length(benchmark::State& state, std::uint64_t hops)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    auto list = build_list(cluster, hops + 8);

    workloads::DriverConfig driver;
    driver.warmup_ops = 10;
    driver.measure_ops = 150;
    driver.concurrency = 1;
    workloads::DriverResult result;
    for (auto _ : state) {
        result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse),
            [&](std::uint64_t) { return list->make_walk(hops, {}); },
            driver);
    }
    const double mean_us = to_micros(result.latency.mean());
    state.counters["mean_us"] = mean_us;
    g_lengths.push_back({hops, mean_us});
}

void
core_count(benchmark::State& state, std::uint32_t cores,
           bool interconnect)
{
    core::ClusterConfig config;
    config.accel.num_cores = cores;
    config.accel.workspaces_per_logic = 16;
    core::Cluster cluster(config);
    cluster.channels(0).set_interconnect_enabled(interconnect);
    auto list = build_list(cluster, 4096);

    Rng rng(5);
    workloads::DriverConfig driver;
    driver.concurrency = 256;
    driver.warmup_ops = 256;
    driver.measure_ops = 1500;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    workloads::DriverResult result;
    for (auto _ : state) {
        result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse),
            [&](std::uint64_t) {
                // Short walks from the head keep requests flowing.
                return list->make_walk(24 + rng.next_below(16), {});
            },
            driver);
    }
    const double gbps =
        cluster.memory_bandwidth(result.measure_time) / 1e9;
    state.counters["mem_gbps"] = gbps;
    g_cores.push_back({cores, interconnect, gbps});
}

}  // namespace

int
main(int argc, char** argv)
{
    for (const std::uint64_t hops :
         {8ull, 16ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
        benchmark::RegisterBenchmark(
            ("suppfig1a/length_" + std::to_string(hops)).c_str(),
            [hops](benchmark::State& state) {
                traversal_length(state, hops);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const std::uint32_t cores : {1u, 2u, 3u, 4u}) {
        for (const bool interconnect : {true, false}) {
            benchmark::RegisterBenchmark(
                ("suppfig1b/cores_" + std::to_string(cores) +
                 (interconnect ? "" : "_no_interconnect"))
                    .c_str(),
                [cores, interconnect](benchmark::State& state) {
                    core_count(state, cores, interconnect);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table lengths("Supp Fig 1a: latency vs traversal length "
                  "(linear scaling expected)");
    lengths.set_header({"hops", "mean_us", "us_per_hop"});
    for (const auto& point : g_lengths) {
        lengths.add_row(
            {std::to_string(point.hops), fmt(point.mean_us, "%.1f"),
             fmt(point.mean_us / static_cast<double>(point.hops),
                 "%.3f")});
    }
    lengths.print();

    Table cores("Supp Fig 1b: memory bandwidth vs cores "
                "(paper: 2 cores saturate 25 GB/s; 34 GB/s w/o "
                "interconnect)");
    cores.set_header({"cores", "with_IC_GB/s", "no_IC_GB/s"});
    for (const std::uint32_t count : {1u, 2u, 3u, 4u}) {
        std::string with_ic = "-";
        std::string without_ic = "-";
        for (const auto& point : g_cores) {
            if (point.cores == count) {
                (point.interconnect ? with_ic : without_ic) =
                    fmt(point.gbps);
            }
        }
        cores.add_row({std::to_string(count), with_ic, without_ic});
    }
    cores.print();

    auto& metrics = MetricsSink::instance().exporter();
    for (const auto& point : g_lengths) {
        metrics.set("suppfig1a.hops" + std::to_string(point.hops) +
                        ".mean_us",
                    point.mean_us);
    }
    for (const auto& point : g_cores) {
        metrics.set("suppfig1b.cores" + std::to_string(point.cores) +
                        (point.interconnect ? ".with_ic"
                                            : ".no_ic") +
                        ".mem_gbps",
                    point.gbps);
    }
    MetricsSink::instance().flush();
    return 0;
}
