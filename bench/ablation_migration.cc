/**
 * @file
 * Elastic-placement ablation: does live slab migration recover the
 * throughput a skewed workload loses to a hot memory node?
 *
 * Setup: UPC (the paper's partitionable workload) on 4 memory nodes,
 * with the YCSB-C generator skewed (Zipf theta sweep) and configured
 * so the skew actually lands somewhere migratable: ranks are not
 * scattered (hot keys = low indices) and the table uses sequential
 * bucketing with a bucket-major build, so the hottest chains are
 * physically contiguous slabs on partition 0 (see docs/PLACEMENT.md).
 *
 * Each theta runs twice: placement "static" (hotness tracked, nothing
 * moves — the paper's fixed key partitioning) and "elastic" (the
 * migration engine rebalances hot slabs onto cold nodes). At theta=0
 * the two must match — migration never triggers below the imbalance
 * threshold. At theta=0.99 elastic should buy back >= 1.5x throughput
 * (or tail latency), because node 0 stops being the bandwidth choke.
 *
 * A final row repeats theta=0.99 elastic with the PR-1 fault plane
 * dropping/duplicating/reordering 1% of messages: the copy protocol's
 * per-chunk acks + RTO must deliver the same rebalance, just slower.
 *
 * Cells execute on the parallel sweep runner (--threads /
 * PULSE_BENCH_THREADS); each writes its own pre-sized result slot, so
 * outputs are byte-identical to a serial run.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sweep_runner.h"

namespace {

using namespace pulse;
using namespace pulse::bench;

const std::vector<double> kThetas = {0.0, 0.5, 0.9, 0.99};
const std::vector<placement::PlacementMode> kModes = {
    placement::PlacementMode::kStatic,
    placement::PlacementMode::kElastic};

struct MigrationPoint
{
    std::string label;
    placement::PlacementMode mode = placement::PlacementMode::kStatic;
    double kops = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    double imbalance = 0.0;  ///< max/mean node load EWMA at quiesce
    double request_imbalance = 0.0;  ///< max/mean node requests (measure)
    std::uint64_t migrations = 0;
    std::uint64_t aborted = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t retransmits = 0;  ///< copy-chunk retransmissions
    std::uint64_t forwards = 0;     ///< dual-residency store/CAS
};

std::vector<MigrationPoint> g_sweep(kThetas.size() * kModes.size());
MigrationPoint g_faulty;  ///< theta=0.99 elastic under chaos

MigrationPoint
run_migration_cell(CellContext& ctx, const std::string& label,
                   double theta, placement::PlacementMode mode,
                   bool faults)
{
    RunSpec spec = main_spec(App::kUpc, core::SystemKind::kPulse, 4);
    spec.concurrency = 128;
    spec.warmup_ops = 1500;
    spec.measure_ops = 5000;
    // Skew that lands on contiguous, migratable slabs of partition 0.
    spec.scale.zipf_theta = theta;
    spec.scale.zipf_scatter = false;
    spec.scale.sequential_buckets = true;
    spec.tweak = [mode, faults](core::ClusterConfig& config) {
        config.placement.mode = mode;
        if (faults) {
            config.faults.links.loss = 0.01;
            config.faults.links.duplicate = 0.005;
            config.faults.links.reorder = 0.01;
            // Same opt-in reliability knobs as the fault ablation.
            config.offload.adaptive_rto = true;
            config.offload.retransmit_timeout = micros(2000.0);
        }
    };

    Experiment experiment = make_experiment(spec);
    core::Cluster& cluster = *experiment.cluster;
    workloads::DriverConfig driver;
    driver.warmup_ops = spec.warmup_ops;
    driver.measure_ops = spec.measure_ops;
    driver.concurrency = spec.concurrency;
    // Most migrations land during warmup (that is the point: the
    // plane converges, then the measured window runs balanced).
    // reset_stats() zeroes the counters at the measure boundary, so
    // snapshot the warmup tallies first and report whole-run totals.
    struct WarmupTally
    {
        std::uint64_t migrations = 0;
        std::uint64_t aborted = 0;
        std::uint64_t bytes_copied = 0;
        std::uint64_t retransmits = 0;
        std::uint64_t forwards = 0;
    } warmup;
    driver.on_measure_start = [&cluster, &warmup] {
        if (const placement::PlacementPlane* plane =
                cluster.placement_plane()) {
            const placement::MigrationStats& mig =
                plane->migration_stats();
            warmup.migrations = mig.completed.value();
            warmup.aborted = mig.aborted.value();
            warmup.bytes_copied = mig.bytes_copied.value();
            warmup.retransmits = mig.chunks_retransmitted.value();
            warmup.forwards = plane->stats().store_forwards.value() +
                              plane->stats().cas_forwards.value();
        }
        cluster.reset_stats();
    };
    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        experiment.factory, driver);
    // Same contract as run_cell: a PULSE_CHECK run must end clean even
    // with migrations (and the fault plane) racing the traffic.
    if (cluster.checker() != nullptr) {
        const std::uint64_t violations = cluster.verify_quiesce();
        if (violations != 0) {
            for (const auto& violation :
                 cluster.checker()->registry().diagnostics()) {
                std::fprintf(stderr, "%s\n",
                             violation.to_string().c_str());
            }
            panic("PULSE_CHECK: %llu violation(s) in cell %s",
                  static_cast<unsigned long long>(violations),
                  label.c_str());
        }
    }
    ctx.add_events(cluster.queue().events_executed());

    MigrationPoint point;
    point.label = label;
    point.mode = mode;
    point.kops = result.throughput / 1e3;
    point.mean_us = to_micros(result.latency.mean());
    point.p99_us = to_micros(result.latency.percentile(0.99));
    point.request_imbalance = cluster.node_load_imbalance();
    placement::PlacementPlane* plane = cluster.placement_plane();
    if (plane != nullptr) {
        point.imbalance = plane->imbalance();
        const placement::MigrationStats& mig = plane->migration_stats();
        point.migrations = warmup.migrations + mig.completed.value();
        point.aborted = warmup.aborted + mig.aborted.value();
        point.bytes_copied =
            warmup.bytes_copied + mig.bytes_copied.value();
        point.retransmits =
            warmup.retransmits + mig.chunks_retransmitted.value();
        point.forwards = warmup.forwards +
                         plane->stats().store_forwards.value() +
                         plane->stats().cas_forwards.value();
    }
    return point;
}

const char*
mode_label(placement::PlacementMode mode)
{
    return placement_mode_name(mode);
}

void
add_cells(SweepRunner& sweep)
{
    for (std::size_t m = 0; m < kModes.size(); m++) {
        for (std::size_t t = 0; t < kThetas.size(); t++) {
            const placement::PlacementMode mode = kModes[m];
            const double theta = kThetas[t];
            const std::size_t slot = m * kThetas.size() + t;
            sweep.add(
                std::string("zipf_") + mode_label(mode) + "_" +
                    fmt(theta, "%.2f"),
                [mode, theta, slot](CellContext& ctx) {
                    g_sweep[slot] = run_migration_cell(
                        ctx, fmt(theta, "%.2f"), theta, mode, false);
                });
        }
    }
    sweep.add("zipf_elastic_0.99_faults", [](CellContext& ctx) {
        g_faulty = run_migration_cell(
            ctx, "0.99+chaos", 0.99,
            placement::PlacementMode::kElastic, true);
    });
}

void
register_benchmarks()
{
    for (std::size_t m = 0; m < kModes.size(); m++) {
        for (std::size_t t = 0; t < kThetas.size(); t++) {
            const std::size_t slot = m * kThetas.size() + t;
            benchmark::RegisterBenchmark(
                (std::string("migration/zipf_") +
                 mode_label(kModes[m]) + "_" + fmt(kThetas[t], "%.2f"))
                    .c_str(),
                [slot](benchmark::State& state) {
                    const MigrationPoint& point = g_sweep[slot];
                    for (auto _ : state) {
                    }
                    state.counters["kops"] = point.kops;
                    state.counters["p99_us"] = point.p99_us;
                    state.counters["migrations"] =
                        static_cast<double>(point.migrations);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::RegisterBenchmark(
        "migration/zipf_elastic_0.99_faults",
        [](benchmark::State& state) {
            for (auto _ : state) {
            }
            state.counters["kops"] = g_faulty.kops;
            state.counters["migrations"] =
                static_cast<double>(g_faulty.migrations);
            state.counters["chunk_retransmits"] =
                static_cast<double>(g_faulty.retransmits);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

void
add_table_row(Table& table, const MigrationPoint& point)
{
    table.add_row({mode_label(point.mode), point.label,
                   fmt(point.kops), fmt(point.mean_us),
                   fmt(point.p99_us), fmt(point.imbalance, "%.2f"),
                   std::to_string(point.migrations),
                   fmt(static_cast<double>(point.bytes_copied) /
                           static_cast<double>(kMiB),
                       "%.1f"),
                   std::to_string(point.retransmits),
                   std::to_string(point.forwards)});
}

void
record_metrics(const std::string& sweep_name,
               const MigrationPoint& point)
{
    auto& metrics = MetricsSink::instance().exporter();
    const std::string prefix = "migration." + sweep_name + "." +
                               mode_label(point.mode) + "." +
                               point.label + ".";
    metrics.set(prefix + "kops", point.kops);
    metrics.set(prefix + "mean_us", point.mean_us);
    metrics.set(prefix + "p99_us", point.p99_us);
    metrics.set(prefix + "imbalance", point.imbalance);
    metrics.set(prefix + "request_imbalance", point.request_imbalance);
    metrics.set(prefix + "migrations",
                static_cast<double>(point.migrations));
    metrics.set(prefix + "aborted",
                static_cast<double>(point.aborted));
    metrics.set(prefix + "bytes_copied",
                static_cast<double>(point.bytes_copied));
    metrics.set(prefix + "chunk_retransmits",
                static_cast<double>(point.retransmits));
    metrics.set(prefix + "forwards",
                static_cast<double>(point.forwards));
}

}  // namespace

int
main(int argc, char** argv)
{
    parse_bench_args(argc, argv);
    benchmark::Initialize(&argc, argv);
    SweepRunner sweep("ablation_migration");
    add_cells(sweep);
    sweep.run_all();
    register_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    Table table(
        "Placement ablation: YCSB-C Zipf sweep (UPC, 4 nodes, "
        "concurrency 128, sequential buckets, unscattered ranks; "
        "migration columns cover warmup + measure)");
    table.set_header({"placement", "theta", "kops", "mean_us",
                      "p99_us", "imbalance", "migrations", "MiB_moved",
                      "retrans", "forwards"});
    for (const auto& point : g_sweep) {
        add_table_row(table, point);
    }
    add_table_row(table, g_faulty);
    table.print();

    for (const auto& point : g_sweep) {
        record_metrics("zipf", point);
    }
    record_metrics("zipf", g_faulty);
    MetricsSink::instance().flush();
    return 0;
}
