/**
 * @file
 * Quickstart: the smallest end-to-end pulse program.
 *
 * Builds a simulated disaggregated rack (1 client, 1 switch, 1 memory
 * node with a pulse accelerator), places a linked list in remote
 * memory, and offloads a find() traversal: the offload engine analyzes
 * the iterator's ISA program, ships it to the accelerator, and the
 * whole pointer chase executes next to the memory — one network round
 * trip instead of one per hop.
 *
 *   $ ./quickstart
 */
#include <cstdio>
#include <cstring>

#include "core/cluster.h"
#include "ds/linked_list.h"
#include "isa/analysis.h"

using namespace pulse;

int
main()
{
    // 1. Assemble the rack. Defaults mirror the paper's testbed:
    //    100 Gb/s links, a Tofino-class switch, a 2-core accelerator
    //    with 25 GB/s of memory bandwidth per node.
    core::ClusterConfig config;
    core::Cluster cluster(config);

    // 2. Build a linked list in disaggregated memory.
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 200; v++) {
        values.push_back(1000 + v * 10);
    }
    list.build(values, /*node=*/0);
    std::printf("built a %llu-node linked list at 0x%llx\n",
                (unsigned long long)list.size(),
                (unsigned long long)list.head());

    // 3. Inspect what the offload engine will ship: the find()
    //    iterator compiled to pulse ISA.
    auto program = list.find_program();
    std::printf("\nfind() as pulse ISA (%u instructions):\n%s",
                program->size(), program->disassemble().c_str());
    const auto analysis = isa::analyze(*program);
    std::printf("worst-case logic path: %u instructions, "
                "load footprint: %u bytes\n",
                analysis.worst_path_instructions, analysis.load_bytes);

    // 4. Offload a lookup and wait for the completion.
    const std::uint64_t needle = 1000 + 137 * 10;
    offload::Operation op = list.make_find(needle, {});
    op.done = [&](offload::Completion&& completion) {
        std::uint64_t node_addr = 0;
        std::memcpy(&node_addr,
                    completion.scratch.data() + ds::LinkedList::kSpResult,
                    8);
        std::printf("\nfind(%llu): %s\n", (unsigned long long)needle,
                    node_addr == ds::kKeyNotFound ? "not found"
                                                  : "found");
        std::printf("  executed on    : %s\n",
                    completion.offloaded ? "pulse accelerator"
                                         : "client (fallback)");
        std::printf("  iterations     : %llu pointer hops\n",
                    (unsigned long long)completion.iterations);
        std::printf("  end-to-end     : %s\n",
                    format_time(completion.latency).c_str());
        std::printf("  network trips  : 1 (vs %llu for per-hop "
                    "remote reads)\n",
                    (unsigned long long)completion.iterations);
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();

    // 5. The same bytes, read by the host reference: results agree.
    const auto reference = list.find_reference(needle);
    std::printf("\nhost reference agrees: %s\n",
                reference.has_value() ? "yes" : "no (miss)");
    return 0;
}
