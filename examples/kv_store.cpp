/**
 * @file
 * User-profile cache (the paper's UPC application) as a key-value
 * store over disaggregated memory.
 *
 * A chained hash table with 240 B profile records is key-partitioned
 * across two memory nodes. The example runs a read-mostly workload
 * (95% lookups / 5% in-place profile updates — the update path
 * exercises the ISA's STORE write-back), then replays the lookups on
 * the Cache-based far-memory baseline to show why caching alone cannot
 * help pointer chasing.
 *
 *   $ ./kv_store
 */
#include <cstdio>
#include <cstring>

#include "common/histogram.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

using namespace pulse;

namespace {

constexpr std::uint64_t kProfiles = 60'000;
constexpr std::uint64_t kOps = 2'000;

std::vector<std::uint8_t>
profile_bytes(std::uint64_t user, std::uint64_t version)
{
    std::vector<std::uint8_t> bytes(240, 0);
    ds::fill_value_pattern(user ^ (version * 0x9E37), bytes.data(),
                           bytes.size());
    return bytes;
}

}  // namespace

int
main()
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    // Scale the baseline's cache like the paper: ~2% of the data set.
    config.cache.cache_bytes = kProfiles * 256 / 50;
    core::Cluster cluster(config);

    ds::HashTableConfig table_config;
    table_config.num_buckets = kProfiles / 192;  // long chains (UPC)
    table_config.partitions = 2;
    ds::HashTable profiles(cluster.memory(), cluster.allocator(),
                           table_config);
    for (std::uint64_t user = 0; user < kProfiles; user++) {
        profiles.insert(workloads::key_of(user));
    }
    std::printf("user-profile store: %llu profiles, %llu buckets, "
                "partitioned over %u memory nodes\n",
                (unsigned long long)profiles.size(),
                (unsigned long long)table_config.num_buckets,
                table_config.partitions);

    // --- pulse: offloaded lookups + updates -------------------------
    Rng rng(2026);
    std::uint64_t found = 0;
    std::uint64_t updated = 0;
    workloads::DriverConfig driver;
    driver.warmup_ops = 100;
    driver.measure_ops = kOps;
    driver.concurrency = 8;
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            const std::uint64_t user = rng.next_below(kProfiles);
            const std::uint64_t key = workloads::key_of(user);
            if (rng.next_bool(0.05)) {
                auto op = profiles.make_update(
                    key, profile_bytes(user, 2), nullptr);
                op.done = nullptr;
                updated++;
                return op;
            }
            auto op = profiles.make_find(key, nullptr);
            found++;
            return op;
        },
        driver);

    std::printf("\npulse: %llu ops (%llu lookups, %llu updates)\n",
                (unsigned long long)result.completed,
                (unsigned long long)found,
                (unsigned long long)updated);
    std::printf("  mean latency  : %s\n",
                format_time(result.latency.mean()).c_str());
    std::printf("  p99 latency   : %s\n",
                format_time(result.latency.percentile(0.99)).c_str());
    std::printf("  throughput    : %.1f K ops/s\n",
                result.throughput / 1e3);
    std::printf("  avg chain hops: %.1f\n",
                static_cast<double>(result.iterations) /
                    static_cast<double>(result.completed));

    // Verify one updated profile read back through the accelerator.
    {
        const std::uint64_t user = 7;
        auto update = profiles.make_update(
            workloads::key_of(user), profile_bytes(user, 3), nullptr);
        bool ok = false;
        update.done = [&](offload::Completion&& completion) {
            ok = ds::HashTable::parse_update(completion);
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(update));
        cluster.queue().run();
        auto read_back = profiles.make_find(workloads::key_of(user),
                                            nullptr);
        std::uint64_t word = 0;
        read_back.done = [&](offload::Completion&& completion) {
            word = profiles.parse_find(completion).value_word;
        };
        cluster.submitter(core::SystemKind::kPulse)(
            std::move(read_back));
        cluster.queue().run();
        const auto expected = profile_bytes(user, 3);
        std::uint64_t expected_word = 0;
        std::memcpy(&expected_word, expected.data(), 8);
        std::printf("  update+readback: %s\n",
                    ok && word == expected_word ? "verified"
                                                : "MISMATCH");
    }

    // --- Cache-based baseline on the same store ---------------------
    Rng cache_rng(2026);
    workloads::DriverConfig cache_driver;
    cache_driver.warmup_ops = 50;
    cache_driver.measure_ops = 300;
    cache_driver.concurrency = 8;
    auto cache_result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kCache),
        [&](std::uint64_t) {
            return profiles.make_find(
                workloads::key_of(cache_rng.next_below(kProfiles)),
                nullptr);
        },
        cache_driver);
    std::printf("\nCache-based far memory (Fastswap-like), same "
                "lookups:\n");
    std::printf("  mean latency  : %s (%.0fx pulse)\n",
                format_time(cache_result.latency.mean()).c_str(),
                static_cast<double>(cache_result.latency.mean()) /
                    static_cast<double>(result.latency.mean()));
    std::printf("  page faults   : %llu over %llu ops\n",
                (unsigned long long)
                    cluster.cache_client().stats().faults.value(),
                (unsigned long long)cache_result.completed);
    std::printf("\npointer chasing defeats page caching: nearly every "
                "hop faults.\n");
    return 0;
}
