/**
 * @file
 * Threaded conversations (the paper's TC application): YCSB-E-style
 * range scans over a B+Tree whose 240 B message records are scattered
 * across two memory nodes — the distributed-traversal showcase.
 *
 * Each scan alternates between index leaves and message records, so
 * with glibc-like placement roughly every other hop crosses memory
 * nodes. pulse's switch re-routes those continuations in-network
 * (section 5); the pulse-ACC ablation bounces them through the client
 * instead, which this example measures side by side (the paper's
 * Fig. 8 experiment).
 *
 *   $ ./conversations
 */
#include <cstdio>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

using namespace pulse;

namespace {

constexpr std::uint64_t kMessages = 80'000;

struct RunStats
{
    Time mean = 0;
    std::uint64_t forwards = 0;
    std::uint64_t bounces = 0;
};

RunStats
run_scans(core::Cluster& cluster, ds::BPTree& index)
{
    workloads::YcsbE scans(kMessages);
    Rng rng(11);
    workloads::DriverConfig driver;
    driver.warmup_ops = 50;
    driver.measure_ops = 400;
    driver.concurrency = 4;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            const auto scan = scans.next(rng);
            return index.make_scan(
                workloads::key_of(scan.start_index), scan.length,
                nullptr);
        },
        driver);
    RunStats stats;
    stats.mean = result.latency.mean();
    for (NodeId node = 0; node < 2; node++) {
        stats.forwards +=
            cluster.accelerator(node).stats().forwards_sent.value();
    }
    stats.bounces =
        cluster.offload_engine().stats().client_bounces.value();
    return stats;
}

/** Build the conversation index in one cluster. */
std::unique_ptr<ds::BPTree>
build_index(core::Cluster& cluster)
{
    ds::BPTreeConfig config;
    config.inline_values = false;  // 240 B message records
    config.leaf_slots = 8;
    config.leaf_fill = 7;
    config.partitioned = false;  // glibc-like placement (Table 2)
    config.partitions = 2;
    config.scatter_values = true;
    auto index = std::make_unique<ds::BPTree>(cluster.memory(),
                                              cluster.allocator(),
                                              config);
    std::vector<ds::BPTreeEntry> entries;
    for (std::uint64_t i = 0; i < kMessages; i++) {
        entries.push_back({workloads::key_of(i), 0});
    }
    index->build(entries);
    return index;
}

}  // namespace

int
main()
{
    // --- pulse: in-network continuations ----------------------------
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    core::Cluster cluster(config);
    auto index = build_index(cluster);
    std::printf("conversation index: %llu messages (240 B records), "
                "B+Tree depth %u, records scattered over 2 nodes\n",
                (unsigned long long)index->size(), index->depth());

    // One scan, narrated.
    {
        auto op = index->make_scan(workloads::key_of(1000), 20,
                                   nullptr);
        cluster.reset_stats();
        ds::BPTree::ScanResult scanned;
        Time latency = 0;
        std::uint64_t hops = 0;
        op.done = [&](offload::Completion&& completion) {
            scanned = ds::BPTree::parse_scan(completion);
            latency = completion.latency;
            hops = completion.iterations;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
        cluster.queue().run();
        const auto reference =
            index->scan_reference(workloads::key_of(1000), 20);
        std::uint64_t forwards = 0;
        for (NodeId node = 0; node < 2; node++) {
            forwards += cluster.accelerator(node)
                            .stats()
                            .forwards_sent.value();
        }
        std::printf("\nscan(20 messages): %llu records folded in "
                    "%llu hops, %llu in-network node switches, %s\n",
                    (unsigned long long)scanned.count,
                    (unsigned long long)hops,
                    (unsigned long long)forwards,
                    format_time(latency).c_str());
        std::printf("fold cross-check vs host reference: %s\n",
                    scanned.fold == reference.fold &&
                            scanned.count == reference.count
                        ? "match"
                        : "MISMATCH");
    }

    const RunStats pulse_stats = run_scans(cluster, *index);

    // --- pulse-ACC: continuations bounce through the client ---------
    core::ClusterConfig acc_config = config;
    acc_config.set_pulse_acc(true);
    core::Cluster acc_cluster(acc_config);
    auto acc_index = build_index(acc_cluster);
    const RunStats acc_stats = run_scans(acc_cluster, *acc_index);

    std::printf("\nYCSB-E scan workload (uniform starts, 1-127 "
                "records):\n");
    std::printf("  %-22s %12s %16s %14s\n", "", "mean lat",
                "switch forwards", "client bounces");
    std::printf("  %-22s %12s %16llu %14llu\n",
                "pulse (in-network)",
                format_time(pulse_stats.mean).c_str(),
                (unsigned long long)pulse_stats.forwards,
                (unsigned long long)pulse_stats.bounces);
    std::printf("  %-22s %12s %16llu %14llu\n", "pulse-ACC (bounce)",
                format_time(acc_stats.mean).c_str(),
                (unsigned long long)acc_stats.forwards,
                (unsigned long long)acc_stats.bounces);
    std::printf("\nin-network continuation cuts each cross-node hop "
                "by half a round trip: %.2fx lower scan latency.\n",
                static_cast<double>(acc_stats.mean) /
                    static_cast<double>(pulse_stats.mean));
    return 0;
}
