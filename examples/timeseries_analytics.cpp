/**
 * @file
 * Time-series visualization backend (the paper's TSV application).
 *
 * A uPMU-style voltage trace (64 Hz samples) lives in a time-indexed
 * B+Tree across two memory nodes. Dashboard queries aggregate windows
 * at different zoom levels (7.5 s ... 60 s); each aggregation is one
 * offloaded traversal that walks the leaf chain next to the memory,
 * returning SUM/COUNT/MIN/MAX through the 4 KB scratch_pad. Window
 * latency scales with the window's pointer-traversal length, exactly
 * like the paper's Fig. 4/Table 2.
 *
 *   $ ./timeseries_analytics
 */
#include <cstdio>
#include <string>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

using namespace pulse;

namespace {

/** One dashboard panel: aggregate [lo, hi] on the accelerator. */
ds::BPTree::AggResult
run_aggregate(core::Cluster& cluster, ds::BPTree& tree,
              ds::AggKind kind, std::uint64_t lo, std::uint64_t hi,
              Time* latency)
{
    ds::BPTree::AggResult result;
    auto op = tree.make_aggregate(kind, lo, hi, nullptr);
    op.done = [&](offload::Completion&& completion) {
        result = ds::BPTree::parse_aggregate(completion, kind);
        *latency = completion.latency;
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    return result;
}

}  // namespace

int
main()
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    core::Cluster cluster(config);

    // ~2 hours of 64 Hz three-phase voltage readings.
    workloads::PmuTrace trace(450'000);
    ds::BPTreeConfig tree_config;
    tree_config.inline_values = true;
    tree_config.leaf_slots = 12;
    tree_config.leaf_fill = 12;
    tree_config.partitioned = true;  // time-partitioned across nodes
    tree_config.partitions = 2;
    ds::BPTree index(cluster.memory(), cluster.allocator(),
                     tree_config);
    index.build(trace.entries());
    std::printf("uPMU trace: %llu samples over %.1f minutes, B+Tree "
                "depth %u, %llu leaves on 2 nodes\n",
                (unsigned long long)index.size(),
                static_cast<double>(trace.last_timestamp() -
                                    trace.first_timestamp()) /
                    60000.0,
                index.depth(),
                (unsigned long long)index.num_leaves());

    // A dashboard drill-down: the same instant at four zoom levels.
    const std::uint64_t focus =
        trace.first_timestamp() +
        (trace.last_timestamp() - trace.first_timestamp()) / 2;
    std::printf("\n%-8s %12s %12s %12s %12s %10s %8s\n", "window",
                "avg_mV", "min_mV", "max_mV", "samples", "latency",
                "hops");
    for (const double window_s : {7.5, 15.0, 30.0, 60.0}) {
        const auto lo = focus;
        const auto hi =
            focus + static_cast<std::uint64_t>(window_s * 1000.0);
        Time latency = 0;
        const auto sum = run_aggregate(cluster, index,
                                       ds::AggKind::kSum, lo, hi,
                                       &latency);
        Time scratch = 0;
        const auto min = run_aggregate(cluster, index,
                                       ds::AggKind::kMin, lo, hi,
                                       &scratch);
        const auto max = run_aggregate(cluster, index,
                                       ds::AggKind::kMax, lo, hi,
                                       &scratch);
        // Average finishes client-side from SUM + COUNT (section 3.1's
        // stateful aggregation pattern).
        const double avg =
            sum.count ? static_cast<double>(sum.value) /
                            static_cast<double>(sum.count)
                      : 0.0;
        // Sanity: the aggregation window's point count.
        const std::string hops =
            "~" + std::to_string(sum.count / tree_config.leaf_fill +
                                 index.depth());
        std::printf("%-8.1fs %12.0f %12lld %12lld %12llu %10s %8s\n",
                    window_s, avg, (long long)min.value,
                    (long long)max.value,
                    (unsigned long long)sum.count,
                    format_time(latency).c_str(), hops.c_str());
    }

    // Validate against the host reference.
    const auto lo = focus;
    const auto hi = focus + 30'000;
    Time latency = 0;
    const auto offloaded = run_aggregate(cluster, index,
                                         ds::AggKind::kSum, lo, hi,
                                         &latency);
    const auto reference =
        index.aggregate_reference(ds::AggKind::kSum, lo, hi);
    std::printf("\n30s SUM cross-check: accelerator=%lld "
                "host=%lld -> %s\n",
                (long long)offloaded.value, (long long)reference.value,
                offloaded.value == reference.value ? "match"
                                                   : "MISMATCH");

    // Sustained dashboard load: random 15 s windows, random kinds.
    workloads::TsvQueries queries(trace, 15.0);
    Rng rng(7);
    workloads::DriverConfig driver;
    driver.warmup_ops = 100;
    driver.measure_ops = 1500;
    driver.concurrency = 64;
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            const auto query = queries.next(rng);
            return index.make_aggregate(query.kind, query.lo, query.hi,
                                        nullptr);
        },
        driver);
    std::printf("\nsustained load (15 s windows, 64 outstanding): "
                "%.1f K queries/s, p99 %s\n",
                result.throughput / 1e3,
                format_time(result.latency.percentile(0.99)).c_str());
    return 0;
}
