/**
 * @file
 * pulse_asm — command-line assembler / analyzer for pulse ISA
 * programs.
 *
 * Reads a traversal program in assembler syntax (docs/ISA.md) from a
 * file or stdin, verifies it, and reports what the offload engine
 * would decide: instruction counts, worst-case logic path, load and
 * scratch footprints, eta, wire sizes, and the offload verdict.
 *
 *   $ ./pulse_asm program.pasm
 *   $ echo 'LOAD 16
 *           MOVE cur_ptr data[8]
 *           NEXT_ITER' | ./pulse_asm -
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/codec.h"
#include "offload/offload_engine.h"

using namespace pulse;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: pulse_asm <file.pasm | ->\n"
                 "  assembles a pulse traversal program and prints "
                 "its static analysis\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        return usage();
    }

    std::string source;
    if (std::string(argv[1]) == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        source = buffer.str();
    } else {
        std::ifstream file(argv[1]);
        if (!file) {
            std::fprintf(stderr, "pulse_asm: cannot open %s\n",
                         argv[1]);
            return 2;
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        source = buffer.str();
    }

    const isa::AssembleResult assembled = isa::assemble(source);
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly error: %s\n",
                     assembled.error.c_str());
        return 1;
    }
    const isa::Program& program = *assembled.program;

    std::printf("; disassembly\n%s\n",
                program.disassemble().c_str());

    std::string error;
    if (!program.verify(&error)) {
        std::fprintf(stderr, "verification FAILED: %s\n",
                     error.c_str());
        return 1;
    }

    const isa::ProgramAnalysis analysis = isa::analyze(program);
    const offload::OffloadConfig offload_defaults;
    const double eta = compute_eta(analysis, offload_defaults.t_i,
                                   offload_defaults.t_d);

    std::printf("verification        : OK\n");
    std::printf("instructions        : %u (worst logic path %u)\n",
                analysis.num_instructions,
                analysis.worst_path_instructions);
    std::printf("load footprint      : %u B (max data ref %u B)\n",
                analysis.load_bytes, analysis.max_data_ref);
    std::printf("scratch footprint   : %u B of %u configured\n",
                analysis.scratch_footprint, program.scratch_bytes());
    std::printf("max iterations      : %u per request\n",
                program.max_iters());
    std::printf("stores/div          : %s / %s\n",
                analysis.has_store ? "yes" : "no",
                analysis.has_div ? "yes" : "no");
    std::printf("t_c                 : %s (t_i = %s per instruction)\n",
                format_time(compute_time(analysis,
                                         offload_defaults.t_i))
                    .c_str(),
                format_time(offload_defaults.t_i).c_str());
    std::printf("eta (t_c / t_d)     : %.3f\n", eta);
    std::printf("offload verdict     : %s (threshold %.2f)\n",
                eta <= offload_defaults.eta_threshold
                    ? "OFFLOAD to accelerator"
                    : "run at CPU node (fallback)",
                offload_defaults.eta_threshold);
    std::printf("wire size           : %llu B installed, %llu B "
                "diagnostic\n",
                static_cast<unsigned long long>(
                    isa::wire_code_size(program)),
                static_cast<unsigned long long>(
                    isa::encoded_size(program)));
    if (analysis.max_data_ref > analysis.load_bytes) {
        std::printf("warning: program references data[%u) but only "
                    "LOADs %u bytes\n",
                    analysis.max_data_ref, analysis.load_bytes);
    }
    return 0;
}
