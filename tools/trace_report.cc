/**
 * @file
 * trace_report — per-component latency decomposition from spans.
 *
 * Runs the Fig. 9 workload (hash-table find, single node, closed loop)
 * with per-request tracing enabled, aggregates the recorded spans into
 * the paper's latency breakdown, and cross-checks every component
 * against the accelerator's built-in busy-time accounting (the numbers
 * bench/fig9_breakdown reports). The two decompositions are computed
 * from independent mechanisms — counters summed on the hot path vs
 * typed span events in the trace ring — so agreement validates both.
 *
 * Exit status is non-zero when any component disagrees by more than
 * --max-delta percent (default 5), making the binary a CI check.
 *
 * Options:
 *   --trace-out PATH    write the raw span CSV (deterministic: two
 *                       identically-seeded runs are byte-identical)
 *   --metrics-out PATH  write a unified metrics snapshot (.json / CSV)
 *   --max-delta PCT     cross-check tolerance in percent (default 5)
 */
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "replication/replication_plane.h"
#include "trace/metrics_exporter.h"
#include "trace/trace.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

namespace {

using namespace pulse;

/** One cross-checked component row. */
struct Row
{
    const char* name;
    double stats_ns;
    double trace_ns;

    double
    delta_pct() const
    {
        if (stats_ns == 0.0) {
            return trace_ns == 0.0 ? 0.0 : 100.0;
        }
        return (trace_ns - stats_ns) / stats_ns * 100.0;
    }
};

bool
write_text(const std::string& path, const std::string& text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        return false;
    }
    out << text;
    return out.good();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string trace_out;
    std::string metrics_out;
    double max_delta_pct = 5.0;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--max-delta" && i + 1 < argc) {
            max_delta_pct = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace-out PATH] "
                         "[--metrics-out PATH] [--max-delta PCT]\n",
                         argv[0]);
            return 2;
        }
    }

    // The exact fig9_breakdown workload, with tracing switched on.
    // PULSE_REPLICATION and PULSE_SERVING are honoured like everywhere
    // else so the health sections below reflect opted-in planes.
    core::ClusterConfig config;
    config.trace.enabled = true;
    config.replication = replication::ReplicationConfig::from_env();
    config.serve = serve::ServeConfig::from_env();
    core::Cluster cluster(config);
    ds::HashTableConfig ht;
    ht.num_buckets = 512;
    ds::HashTable table(cluster.memory(), cluster.allocator(), ht);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 50'000; i++) {
        keys.push_back(workloads::key_of(i));
    }
    table.insert_many(keys);

    Rng rng(17);
    workloads::DriverConfig driver;
    driver.warmup_ops = 20;
    driver.measure_ops = 400;
    driver.concurrency = 1;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };

    const workloads::DriverResult result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            return table.make_find(keys[rng.next_below(keys.size())],
                                   nullptr);
        },
        driver);

    // Trace-derived decomposition.
    const std::vector<trace::SpanEvent> events =
        cluster.tracer().events();
    const trace::Breakdown breakdown =
        trace::aggregate_breakdown(events);

    // Counter-derived decomposition (fig9_breakdown's accounting).
    const auto& stats = cluster.accelerator(0).stats();
    const double requests =
        static_cast<double>(stats.requests_received.value());
    const double iters = static_cast<double>(stats.iterations.value());
    const double loads = static_cast<double>(stats.loads.value());

    const Row rows[] = {
        {"net stack/pkt",
         stats.net_stack_time.sum() / (2.0 * requests) / 1e3,
         breakdown.net_stack_ns_per_pkt()},
        {"scheduler", stats.scheduler_time.sum() / requests / 1e3,
         breakdown.scheduler_ns()},
        {"mem pipe/load",
         stats.mem_pipeline_time.sum() / loads / 1e3,
         breakdown.mem_pipeline_ns_per_load()},
        {"logic/iter", stats.logic_pipeline_time.sum() / iters / 1e3,
         breakdown.logic_ns_per_iter()},
    };

    std::printf("=== trace_report: Fig. 9 latency breakdown "
                "(hash-table find, %" PRIu64 " ops) ===\n",
                result.completed);
    std::printf("%-14s %12s %12s %9s\n", "component", "stats_ns",
                "trace_ns", "delta_%");
    bool ok = true;
    for (const Row& row : rows) {
        std::printf("%-14s %12.2f %12.2f %9.3f\n", row.name,
                    row.stats_ns, row.trace_ns, row.delta_pct());
        if (std::fabs(row.delta_pct()) > max_delta_pct) {
            ok = false;
        }
    }
    std::printf("iters/req %.1f; spans recorded %llu, dropped %llu\n",
                iters / requests,
                static_cast<unsigned long long>(
                    cluster.tracer().recorded()),
                static_cast<unsigned long long>(
                    cluster.tracer().dropped()));

    // Per-memory-node load skew (max/mean of request counts): the
    // signal the elastic placement plane acts on. Trivially 1.00 on
    // this single-node workload; bench/ablation_migration and fig8
    // report the multi-node values.
    const std::vector<std::uint64_t> node_ops =
        cluster.node_request_counts();
    std::printf("node load imbalance %.2f (requests:",
                cluster.node_load_imbalance());
    for (const std::uint64_t ops : node_ops) {
        std::printf(" %llu", static_cast<unsigned long long>(ops));
    }
    std::printf(")\n");

    // Fault-tolerance health (only when PULSE_REPLICATION opted the
    // plane in): per-node detector state plus the failover and
    // redundancy-repair ledger.
    if (const replication::ReplicationPlane* plane =
            cluster.replication_plane()) {
        const auto& rstats = plane->stats();
        std::printf("replication k=%u: %llu replicas live, "
                    "%llu failovers, %llu spans rerouted, "
                    "%llu spans lost, %llu rereplications, "
                    "backlog %llu B\n",
                    plane->config().replication_factor,
                    static_cast<unsigned long long>(
                        rstats.replicas_established.value()),
                    static_cast<unsigned long long>(
                        rstats.failovers_executed.value()),
                    static_cast<unsigned long long>(
                        rstats.failover_spans_rerouted.value()),
                    static_cast<unsigned long long>(
                        rstats.failover_spans_lost.value()),
                    static_cast<unsigned long long>(
                        rstats.rereplications.value()),
                    static_cast<unsigned long long>(
                        plane->rereplication_backlog_bytes()));
        std::printf("detector:");
        for (NodeId node = 0;
             node < cluster.memory().num_nodes(); node++) {
            std::printf(" node%u=%s(%.2f)", node,
                        plane->is_dead(node) ? "DEAD" : "live",
                        plane->suspicion(node));
        }
        std::printf(" (probes %llu, acks %llu)\n",
                    static_cast<unsigned long long>(
                        rstats.heartbeats_sent.value()),
                    static_cast<unsigned long long>(
                        rstats.heartbeat_acks.value()));
    }

    // Serving-plane admission ledger (only when PULSE_SERVING opted
    // the QoS plane in): aggregate counters plus the per-tenant view —
    // contract, what was admitted, what waited for quota, what was
    // shed with a typed rejection.
    if (const serve::QosController* plane = cluster.serve_plane()) {
        const auto& sstats = plane->stats();
        std::printf("serving: %llu admitted, %llu throttled, "
                    "%llu shed, %zu parked\n",
                    static_cast<unsigned long long>(
                        sstats.admitted.value()),
                    static_cast<unsigned long long>(
                        sstats.quota_throttled.value()),
                    static_cast<unsigned long long>(
                        sstats.shed.value()),
                    plane->parked());
        std::printf("%-8s %-8s %6s %12s %10s %10s %8s\n", "tenant",
                    "class", "weight", "quota_op_s", "admitted",
                    "throttled", "shed");
        for (const auto& [tenant, counters] :
             plane->tenant_counters()) {
            const serve::TenantQos qos = plane->config().qos_of(tenant);
            std::printf("%-8u %-8s %6u %12.0f %10llu %10llu %8llu\n",
                        tenant, serve::slo_class_name(qos.slo),
                        qos.weight, qos.quota_ops_per_s,
                        static_cast<unsigned long long>(
                            counters.admitted),
                        static_cast<unsigned long long>(
                            counters.throttled),
                        static_cast<unsigned long long>(
                            counters.shed));
        }
    }

    if (!trace_out.empty() &&
        !write_text(trace_out, cluster.tracer().to_csv())) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 2;
    }
    if (!metrics_out.empty()) {
        trace::MetricsExporter exporter;
        cluster.export_metrics(exporter, "");
        exporter.set("trace_report.net_stack_ns",
                     breakdown.net_stack_ns_per_pkt());
        exporter.set("trace_report.scheduler_ns",
                     breakdown.scheduler_ns());
        exporter.set("trace_report.mem_per_load_ns",
                     breakdown.mem_pipeline_ns_per_load());
        exporter.set("trace_report.logic_per_iter_ns",
                     breakdown.logic_ns_per_iter());
        exporter.set("trace_report.node_imbalance",
                     cluster.node_load_imbalance());
        exporter.add_histogram("trace_report.latency",
                               result.latency);
        if (!exporter.write_file(metrics_out)) {
            std::fprintf(stderr, "cannot write %s\n",
                         metrics_out.c_str());
            return 2;
        }
    }

    if (!ok) {
        std::fprintf(stderr,
                     "cross-check FAILED: trace-derived breakdown "
                     "disagrees with counter accounting by more than "
                     "%.1f%%\n",
                     max_delta_pct);
        return 1;
    }
    return 0;
}
