/**
 * @file
 * Seeded fuzz harness for the pulse correctness subsystem
 * (docs/TESTING.md).
 *
 * Modes of use:
 *   - generation sweep (default): derive --cases cases from --seed,
 *     run each with oracle + invariants on, stop early when
 *     --budget-ms is exhausted. On the first failure: minimize, print
 *     the reproducer JSON, write it next to the corpus (or cwd), and
 *     exit 1.
 *   - --repro=FILE.json: replay one committed reproducer.
 *   - --corpus=DIR: replay every *.json in DIR (what CI's fuzz lane
 *     and tests/test_fuzz_repros.cc do).
 *   - --corpus-out=DIR: additionally write every generated case to
 *     DIR (used once to seed tests/fuzz_corpus).
 *   - --mutate=NAME: arm an intentional production-interpreter bug
 *     (isa::set_interpreter_mutation) before running; combined with
 *     --expect-mismatch this is the mutation test proving the oracle
 *     actually catches interpreter bugs — the run *fails* if every
 *     case passes.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "isa/interpreter.h"

namespace {

using pulse::check::FuzzCase;
using pulse::check::FuzzResult;

struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t cases = 20;
    std::uint64_t budget_ms = 0;  ///< 0 = unlimited
    std::string repro;
    std::string corpus;
    std::string corpus_out;
    std::string mutate;
    bool expect_mismatch = false;
};

bool
parse_u64(const char* text, std::uint64_t* out)
{
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        return false;
    }
    *out = value;
    return true;
}

bool
parse_args(int argc, char** argv, Options* options)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value_of = [&](const char* prefix) -> const char* {
            const std::size_t len = std::strlen(prefix);
            if (arg.compare(0, len, prefix) == 0) {
                return arg.c_str() + len;
            }
            return nullptr;
        };
        if (const char* v = value_of("--seed=")) {
            if (!parse_u64(v, &options->seed)) {
                return false;
            }
        } else if (const char* v = value_of("--cases=")) {
            if (!parse_u64(v, &options->cases)) {
                return false;
            }
        } else if (const char* v = value_of("--budget-ms=")) {
            if (!parse_u64(v, &options->budget_ms)) {
                return false;
            }
        } else if (const char* v = value_of("--repro=")) {
            options->repro = v;
        } else if (const char* v = value_of("--corpus=")) {
            options->corpus = v;
        } else if (const char* v = value_of("--corpus-out=")) {
            options->corpus_out = v;
        } else if (const char* v = value_of("--mutate=")) {
            options->mutate = v;
        } else if (arg == "--expect-mismatch") {
            options->expect_mismatch = true;
        } else if (arg == "--help" || arg == "-h") {
            return false;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz_harness [--seed=N] [--cases=N] [--budget-ms=N]\n"
        "                    [--repro=FILE.json] [--corpus=DIR]\n"
        "                    [--corpus-out=DIR] [--mutate=NAME]\n"
        "                    [--expect-mismatch]\n"
        "mutations: none, add-off-by-one, compare-inverted,"
        " store-drop-byte,\n"
        "           drop-one-branch, double-join\n");
}

bool
load_case(const std::filesystem::path& path, FuzzCase* out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!FuzzCase::from_json(buffer.str(), out, &error)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return false;
    }
    return true;
}

/** Run one case; on failure print + (optionally) minimize and save. */
bool
run_one(const FuzzCase& c, const Options& options, bool minimize)
{
    const FuzzResult result = pulse::check::run_case(c);
    if (result.ok) {
        std::printf("ok   %s (exact=%llu weak=%llu)\n",
                    c.to_json().c_str(),
                    static_cast<unsigned long long>(result.oracle_exact),
                    static_cast<unsigned long long>(result.oracle_weak));
        return true;
    }
    std::printf("FAIL %s\n     %s\n", c.to_json().c_str(),
                result.message.c_str());
    if (minimize) {
        const FuzzCase minimized = pulse::check::minimize_case(c);
        const std::filesystem::path dir =
            options.corpus_out.empty()
                ? std::filesystem::path(".")
                : std::filesystem::path(options.corpus_out);
        const std::filesystem::path repro =
            dir / ("fuzz_repro_seed" + std::to_string(minimized.seed) +
                   ".json");
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        std::ofstream out(repro);
        out << minimized.to_json() << "\n";
        std::printf("     minimized reproducer: %s\n     -> %s\n",
                    minimized.to_json().c_str(), repro.c_str());
    }
    return false;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options options;
    if (!parse_args(argc, argv, &options)) {
        usage();
        return 2;
    }

    if (!options.mutate.empty()) {
        pulse::isa::InterpreterMutation mutation;
        if (!pulse::isa::mutation_from_name(options.mutate.c_str(),
                                            &mutation)) {
            std::fprintf(stderr, "unknown mutation: %s\n",
                         options.mutate.c_str());
            usage();
            return 2;
        }
        pulse::isa::set_interpreter_mutation(mutation);
    }

    std::uint64_t failures = 0;
    std::uint64_t executed = 0;
    const auto start = std::chrono::steady_clock::now();
    auto budget_left = [&] {
        if (options.budget_ms == 0) {
            return true;
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        return static_cast<std::uint64_t>(elapsed) < options.budget_ms;
    };
    // Mutation runs assert the oracle *catches* the bug — don't spend
    // time shrinking cases whose failure is intentional.
    const bool minimize = options.mutate.empty();

    if (!options.repro.empty()) {
        FuzzCase c;
        if (!load_case(options.repro, &c)) {
            return 2;
        }
        executed++;
        if (!run_one(c, options, minimize)) {
            failures++;
        }
    } else if (!options.corpus.empty()) {
        std::vector<std::filesystem::path> files;
        for (const auto& entry :
             std::filesystem::directory_iterator(options.corpus)) {
            if (entry.path().extension() == ".json") {
                files.push_back(entry.path());
            }
        }
        std::sort(files.begin(), files.end());
        for (const auto& path : files) {
            if (!budget_left()) {
                std::printf("budget exhausted after %llu cases\n",
                            static_cast<unsigned long long>(executed));
                break;
            }
            FuzzCase c;
            if (!load_case(path, &c)) {
                return 2;
            }
            executed++;
            if (!run_one(c, options, minimize)) {
                failures++;
            }
        }
    } else {
        for (std::uint64_t i = 0; i < options.cases; i++) {
            if (!budget_left()) {
                std::printf("budget exhausted after %llu cases\n",
                            static_cast<unsigned long long>(executed));
                break;
            }
            const FuzzCase c =
                pulse::check::random_case(options.seed + i);
            if (!options.corpus_out.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(options.corpus_out,
                                                    ec);
                const std::filesystem::path path =
                    std::filesystem::path(options.corpus_out) /
                    ("fuzz_seed" + std::to_string(c.seed) + ".json");
                std::ofstream out(path);
                out << c.to_json() << "\n";
            }
            executed++;
            if (!run_one(c, options, minimize)) {
                failures++;
                if (!options.expect_mismatch) {
                    break;  // reproducer already written
                }
            }
        }
    }

    std::printf("%llu case(s), %llu failure(s)\n",
                static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(failures));
    if (options.expect_mismatch) {
        if (failures == 0) {
            std::fprintf(stderr,
                         "expected the armed mutation to be caught, "
                         "but every case passed\n");
            return 1;
        }
        return 0;
    }
    return failures == 0 ? 0 : 1;
}
