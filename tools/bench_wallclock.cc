/**
 * @file
 * bench_wallclock — self-profiling driver for the simulation hot path
 * and the parallel sweep runner. Produces the BENCH_wallclock.json
 * artifact (format documented in EXPERIMENTS.md).
 *
 * Three measurements, all through an instrumented global allocator
 * (every operator new/new[] call is counted):
 *
 * 1. Event-loop microbenchmark: the same self-rescheduling event chain
 *    run on (a) a faithful reimplementation of the pre-optimization
 *    queue — std::priority_queue of {when, seq, std::function} entries,
 *    copied out of top() — and (b) the production sim::EventQueue
 *    (pooled slots + InlineFunction callbacks). Reports events/sec and
 *    allocations/event for both, i.e. the measured alloc reduction.
 *
 * 2. End-to-end cell profile: one representative closed-loop
 *    simulation cell, reporting allocations and events for the whole
 *    run (setup + steady state) — the number that bounds how much the
 *    hot path can still be hiding.
 *
 * 3. Sweep scaling: a reduced multi-cell sweep executed serially
 *    (--threads=1) and with the configured worker count, reporting
 *    wall clock for both and the speedup.
 *
 * Options (also honors PULSE_BENCH_THREADS / PULSE_BENCH_OPS_SCALE):
 *   --out=PATH       artifact path (default BENCH_wallclock.json)
 *   --threads=N      worker count for the parallel sweep phase
 *   --ops-scale=X    scale cell op counts (default 0.25 here: this is
 *                    a profiling driver, not a figure reproduction)
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/event_queue.h"
#include "sweep_runner.h"

// ---------------------------------------------------------------------
// Instrumented global allocator: counts every heap allocation made by
// the process. Relaxed atomics — counters, not synchronization.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void*
counted_alloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    void* ptr = std::malloc(size == 0 ? 1 : size);
    if (ptr == nullptr) {
        throw std::bad_alloc();
    }
    return ptr;
}

}  // namespace

void*
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void*
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void
operator delete(void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace {

using namespace pulse;
using namespace pulse::bench;

std::uint64_t
allocs_now()
{
    return g_allocs.load(std::memory_order_relaxed);
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// ---------------------------------------------------------------------
// Phase 1 — event-loop microbenchmark.
// ---------------------------------------------------------------------

/** Capture payload comparable to a forwarded TraversalPacket. */
struct Payload
{
    std::uint64_t words[12] = {};
};

/**
 * Faithful reimplementation of the pre-optimization event queue: the
 * heap holds the type-erased callback by value and pop copies the top
 * entry out (std::priority_queue::top() is const), exactly the copy
 * the old EventQueue::step() performed.
 */
class LegacyQueue
{
  public:
    void
    schedule_at(Time when, std::function<void()> fn)
    {
        heap_.push(Event{when, next_sequence_++, std::move(fn)});
    }

    Time now() const { return now_; }

    std::uint64_t
    run()
    {
        std::uint64_t executed = 0;
        while (!heap_.empty()) {
            Event event = heap_.top();
            heap_.pop();
            now_ = event.when;
            executed++;
            event.fn();
        }
        return executed;
    }

  private:
    struct Event
    {
        Time when;
        std::uint64_t sequence;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Time now_ = 0;
    std::uint64_t next_sequence_ = 0;
};

struct LoopProfile
{
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;

    double
    events_per_sec() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(events) / wall_seconds
                   : 0.0;
    }

    double
    allocs_per_event() const
    {
        return events > 0 ? static_cast<double>(allocs) /
                                static_cast<double>(events)
                          : 0.0;
    }
};

/** Self-rescheduling chains: every event schedules its successor. */
template <typename Queue, typename Callback>
LoopProfile
profile_event_loop(std::uint64_t chains, std::uint64_t total_events)
{
    Queue queue;
    std::uint64_t remaining = 0;
    // Recursion through the queue: fn reschedules itself while work
    // remains, carrying a packet-sized payload by value.
    struct Chain
    {
        Queue* queue;
        std::uint64_t* remaining;
        void
        fire(const Payload& payload) const
        {
            if (*remaining == 0) {
                return;
            }
            (*remaining)--;
            Payload next = payload;
            next.words[0]++;
            const Chain chain = *this;
            queue->schedule_at(queue->now() + 10,
                               Callback([chain, next] {
                                   chain.fire(next);
                               }));
        }
    };
    const Chain chain{&queue, &remaining};
    const auto fire_all = [&] {
        for (std::uint64_t i = 0; i < chains; i++) {
            Payload payload;
            payload.words[1] = i;
            chain.fire(payload);
        }
    };

    // Prewarm: one short pass grows the queue's slot pool and heap
    // capacity to their steady-state size, so the measured pass counts
    // only per-event traffic (the pooled queue's answer must be an
    // exact 0, not "0 plus amortized vector doublings").
    remaining = chains * 4;
    fire_all();
    queue.run();

    remaining = total_events;
    fire_all();
    LoopProfile profile;
    const std::uint64_t allocs_before = allocs_now();
    const auto start = std::chrono::steady_clock::now();
    profile.events = queue.run();
    profile.wall_seconds = seconds_since(start);
    profile.allocs = allocs_now() - allocs_before;
    return profile;
}

// ---------------------------------------------------------------------
// Phase 2/3 — end-to-end cell profile and sweep scaling.
// ---------------------------------------------------------------------

/** Reduced sweep: one saturation cell per app on pulse + RPC. */
void
add_sweep_cells(SweepRunner& sweep)
{
    for (const App app : {App::kUpc, App::kTc, App::kTsv15,
                          App::kTsv60}) {
        for (const core::SystemKind system :
             {core::SystemKind::kPulse, core::SystemKind::kRpc}) {
            RunSpec spec = main_spec(app, system, 1);
            spec.concurrency = 256;
            spec.warmup_ops = 256;
            spec.measure_ops = 1024;
            sweep.add_spec(std::string(app_name(app)) + "/" +
                               core::system_name(system),
                           spec);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string out_path = "BENCH_wallclock.json";
    // This binary profiles; it does not reproduce figures. Default to
    // a quarter of the figure op counts unless told otherwise.
    bench_options().ops_scale = 0.25;
    parse_bench_args(argc, argv);
    for (int i = 1; i < argc; i++) {
        const std::string_view arg(argv[i]);
        constexpr std::string_view kOut = "--out=";
        if (arg.substr(0, kOut.size()) == kOut) {
            out_path = arg.substr(kOut.size());
        } else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        }
    }

    trace::MetricsExporter exporter;

    // Phase 1 — event-loop microbenchmark.
    const std::uint64_t kChains = 64;
    const std::uint64_t kEvents = 2'000'000;
    const LoopProfile legacy =
        profile_event_loop<LegacyQueue, std::function<void()>>(
            kChains, kEvents);
    const LoopProfile pooled =
        profile_event_loop<sim::EventQueue, sim::EventFn>(kChains,
                                                          kEvents);
    exporter.set("eventloop.events",
                 static_cast<double>(legacy.events));
    exporter.set("eventloop.legacy.wall_ms",
                 legacy.wall_seconds * 1e3);
    exporter.set("eventloop.legacy.events_per_sec",
                 legacy.events_per_sec());
    exporter.set("eventloop.legacy.allocs_per_event",
                 legacy.allocs_per_event());
    exporter.set("eventloop.pooled.wall_ms",
                 pooled.wall_seconds * 1e3);
    exporter.set("eventloop.pooled.events_per_sec",
                 pooled.events_per_sec());
    exporter.set("eventloop.pooled.allocs_per_event",
                 pooled.allocs_per_event());
    exporter.set("eventloop.speedup",
                 legacy.wall_seconds > 0.0
                     ? legacy.wall_seconds / pooled.wall_seconds
                     : 0.0);
    std::printf("event loop: legacy %.2f Mev/s (%.2f allocs/event), "
                "pooled %.2f Mev/s (%.4f allocs/event)\n",
                legacy.events_per_sec() / 1e6,
                legacy.allocs_per_event(),
                pooled.events_per_sec() / 1e6,
                pooled.allocs_per_event());

    // Phase 2 — end-to-end cell profile (UPC on pulse, saturating).
    // Measured over the *steady-state window* only: the warmup is long
    // enough for every pool to plateau (the replay window's FIFO budget
    // is the slowest, hence 4096 ops), then allocation and event
    // counters are snapshotted at measure start. The breakdown rows
    // attribute the remaining window allocations to their subsystem
    // pools so future regressions name their source.
    {
        RunSpec spec =
            main_spec(App::kUpc, core::SystemKind::kPulse, 1);
        spec.concurrency = 256;
        spec.warmup_ops = 4096;
        spec.measure_ops = 4096;
        const RunSpec scaled = apply_ops_scale(spec);
        Experiment experiment = make_experiment(scaled);
        core::Cluster& cluster = *experiment.cluster;
        sim::EventQueue& queue = cluster.queue();

        const auto packet_fresh = [&cluster] {
            std::uint64_t fresh = 0;
            for (NodeId node = 0;
                 node < cluster.config().num_mem_nodes; node++) {
                fresh += cluster.accelerator(node).packet_pool_fresh();
            }
            for (ClientId client = 0;
                 client < cluster.config().num_clients; client++) {
                fresh += cluster.offload_engine(client).pool_fresh();
            }
            return fresh;
        };
        const auto contexts_created = [&cluster] {
            std::uint64_t created = 0;
            for (NodeId node = 0;
                 node < cluster.config().num_mem_nodes; node++) {
                created += cluster.accelerator(node).contexts_created();
            }
            return created;
        };

        std::uint64_t window_allocs = 0;
        std::uint64_t window_events = 0;
        std::uint64_t window_packet_fresh = 0;
        std::uint64_t window_contexts = 0;
        std::uint64_t window_queue_slots = 0;
        std::uint64_t window_coalesced = 0;
        std::uint64_t window_batches = 0;
        double window_wall = 0.0;
        std::chrono::steady_clock::time_point window_start;

        workloads::DriverConfig driver;
        driver.warmup_ops = scaled.warmup_ops;
        driver.measure_ops = scaled.measure_ops;
        driver.concurrency = scaled.concurrency;
        driver.on_measure_start = [&] {
            cluster.reset_stats();
            window_allocs = allocs_now();
            window_events = queue.events_executed();
            window_packet_fresh = packet_fresh();
            window_contexts = contexts_created();
            window_queue_slots = queue.pool_slots();
            window_coalesced = queue.events_coalesced();
            window_batches = queue.batches_drained();
            window_start = std::chrono::steady_clock::now();
        };

        const std::uint64_t total_allocs_before = allocs_now();
        workloads::run_closed_loop(queue,
                                   cluster.submitter(scaled.system),
                                   experiment.factory, driver);
        window_wall = seconds_since(window_start);

        const std::uint64_t allocs = allocs_now() - window_allocs;
        const std::uint64_t events =
            queue.events_executed() - window_events;
        const std::uint64_t packet_allocs =
            packet_fresh() - window_packet_fresh;
        const std::uint64_t visit_allocs =
            contexts_created() - window_contexts;
        const std::uint64_t queue_allocs =
            queue.pool_slots() - window_queue_slots;
        const std::uint64_t attributed =
            packet_allocs + visit_allocs + queue_allocs;
        const std::uint64_t coalesced =
            queue.events_coalesced() - window_coalesced;
        const std::uint64_t batches =
            queue.batches_drained() - window_batches;
        const double allocs_per_event =
            events > 0 ? static_cast<double>(allocs) /
                             static_cast<double>(events)
                       : 0.0;
        exporter.set("sim.events", static_cast<double>(events));
        exporter.set("sim.allocs", static_cast<double>(allocs));
        exporter.set("sim.allocs_per_event", allocs_per_event);
        exporter.set("sim.wall_ms", window_wall * 1e3);
        exporter.set("sim.events_per_sec",
                     window_wall > 0.0
                         ? static_cast<double>(events) / window_wall
                         : 0.0);
        exporter.set("sim.setup.allocs",
                     static_cast<double>(window_allocs -
                                         total_allocs_before));
        exporter.set("sim.breakdown.packet_pool",
                     static_cast<double>(packet_allocs));
        exporter.set("sim.breakdown.visit_contexts",
                     static_cast<double>(visit_allocs));
        exporter.set("sim.breakdown.queue_slots",
                     static_cast<double>(queue_allocs));
        exporter.set("sim.breakdown.other",
                     static_cast<double>(allocs > attributed
                                             ? allocs - attributed
                                             : 0));
        exporter.set("sim.coalescing.events_coalesced",
                     static_cast<double>(coalesced));
        exporter.set("sim.coalescing.batches_drained",
                     static_cast<double>(batches));
        exporter.set("sim.coalescing.events_per_batch",
                     batches > 0 ? static_cast<double>(coalesced) /
                                       static_cast<double>(batches)
                                 : 0.0);
        std::printf("simulation cell: %" PRIu64 " steady-state events, "
                    "%.4f allocs/event (packet %" PRIu64 ", visit %"
                    PRIu64 ", queue %" PRIu64 ", other %" PRIu64 "), "
                    "%" PRIu64 " coalesced into %" PRIu64 " batches\n",
                    events, allocs_per_event, packet_allocs,
                    visit_allocs, queue_allocs,
                    allocs > attributed ? allocs - attributed : 0,
                    coalesced, batches);

        // Phase 2b — checkpoint/restore cost on the warmed cluster
        // (the queue is drained, so this is a legal quiesce point).
        // Skipped when an optional plane is attached (PULSE_CHECK
        // etc.): those are outside the snapshot by design.
        if (cluster.checker() != nullptr ||
            cluster.fault_plane() != nullptr ||
            cluster.placement_plane() != nullptr ||
            cluster.replication_plane() != nullptr ||
            cluster.tracer().enabled()) {
            std::printf("checkpoint: skipped (optional plane "
                        "attached)\n");
        } else {
        const auto save_start = std::chrono::steady_clock::now();
        const std::vector<std::uint8_t> blob =
            cluster.save_checkpoint();
        const double save_wall = seconds_since(save_start);
        const auto restore_start = std::chrono::steady_clock::now();
        cluster.restore_checkpoint(blob);
        const double restore_wall = seconds_since(restore_start);
        exporter.set("checkpoint.bytes",
                     static_cast<double>(blob.size()));
        exporter.set("checkpoint.save_ms", save_wall * 1e3);
        exporter.set("checkpoint.restore_ms", restore_wall * 1e3);
        std::printf("checkpoint: %.1f KiB, save %.2f ms, restore "
                    "%.2f ms\n",
                    static_cast<double>(blob.size()) / 1024.0,
                    save_wall * 1e3, restore_wall * 1e3);
        }
    }

    // Phase 3 — sweep scaling, serial vs parallel.
    const unsigned parallel_threads = bench_options().threads;
    bench_options().threads = 1;
    double serial_seconds = 0.0;
    {
        SweepRunner sweep("wallclock_serial");
        add_sweep_cells(sweep);
        serial_seconds = sweep.run_all();
    }
    bench_options().threads = parallel_threads;
    double parallel_seconds = 0.0;
    {
        SweepRunner sweep("wallclock_parallel");
        add_sweep_cells(sweep);
        parallel_seconds = sweep.run_all();
    }
    // Honest thread reporting (docs/PERF.md): emit the worker count
    // actually used *and* the hardware concurrency, and flag runs
    // where the speedup is bounded by the machine rather than the
    // runner — a 1.0x "speedup" on a 1-core container is the expected
    // ceiling, not a scaling regression.
    const unsigned hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    exporter.set("sweep.cells", 8.0);
    exporter.set("sweep.serial.wall_ms", serial_seconds * 1e3);
    exporter.set("sweep.parallel.wall_ms", parallel_seconds * 1e3);
    exporter.set("sweep.parallel.threads",
                 static_cast<double>(parallel_threads));
    exporter.set("sweep.hardware_concurrency",
                 static_cast<double>(hardware_threads));
    exporter.set("sweep.parallel.oversubscribed",
                 parallel_threads > hardware_threads ? 1.0 : 0.0);
    exporter.set("sweep.speedup",
                 parallel_seconds > 0.0
                     ? serial_seconds / parallel_seconds
                     : 0.0);
    exporter.set("process.peak_rss_kib",
                 static_cast<double>(peak_rss_kib()));
    std::printf("sweep: serial %.2f s, parallel %.2f s on %u "
                "threads (%.2fx, %u hardware thread%s%s)\n",
                serial_seconds, parallel_seconds, parallel_threads,
                parallel_seconds > 0.0
                    ? serial_seconds / parallel_seconds
                    : 0.0,
                hardware_threads, hardware_threads == 1 ? "" : "s",
                parallel_threads > hardware_threads
                    ? "; oversubscribed — speedup bounded by the "
                      "machine, not the runner"
                    : "");

    if (!exporter.write_file(out_path)) {
        std::fprintf(stderr, "failed to write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
