/**
 * @file
 * Unit tests for the offload engine: the eta offload test, fallback
 * execution, code-installation wire accounting, retransmission
 * give-up, and continuation bookkeeping.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "ds/linked_list.h"
#include "isa/analysis.h"

namespace pulse::offload {
namespace {

using isa::TraversalStatus;

/** Program whose worst path is ~n ALU instructions per iteration. */
std::shared_ptr<const isa::Program>
compute_heavy_program(std::uint32_t n)
{
    isa::ProgramBuilder b;
    b.load(16);
    for (std::uint32_t i = 0; i < n; i++) {
        b.add(isa::sp(8), isa::sp(8), isa::imm(1));
    }
    b.compare(isa::dat(8), isa::imm(0))
        .jump_eq("done")
        .move(isa::cur(), isa::dat(8))
        .next_iter()
        .label("done")
        .ret();
    return std::make_shared<const isa::Program>(b.build());
}

offload::Completion
run_op(core::Cluster& cluster, Operation op)
{
    Completion result;
    bool done = false;
    op.done = [&](Completion&& completion) {
        result = std::move(completion);
        done = true;
    };
    cluster.offload_engine().submit(std::move(op));
    cluster.queue().run();
    EXPECT_TRUE(done);
    return result;
}

TEST(OffloadDecision, EtaThresholdBoundsOffload)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    auto& engine = cluster.offload_engine();
    const Time t_d = engine.config().t_d;
    const Time t_i = engine.config().t_i;

    // A light program passes; a heavy one fails.
    const auto light = compute_heavy_program(4);
    const auto heavy = compute_heavy_program(200);
    const auto& light_analysis = engine.analysis_for(light);
    const auto& heavy_analysis = engine.analysis_for(heavy);
    EXPECT_TRUE(engine.should_offload(light_analysis));
    EXPECT_FALSE(engine.should_offload(heavy_analysis));

    // The boundary is t_c <= eta * t_d exactly.
    EXPECT_LE(compute_time(light_analysis, t_i),
              static_cast<Time>(engine.config().eta_threshold *
                                static_cast<double>(t_d)));
    EXPECT_GT(compute_time(heavy_analysis, t_i),
              static_cast<Time>(engine.config().eta_threshold *
                                static_cast<double>(t_d)));
}

TEST(OffloadDecision, InvalidProgramFailsFast)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    std::vector<isa::Instruction> code;
    code.push_back({.op = isa::Opcode::kMove, .dst = isa::sp(0),
                    .src1 = isa::imm(1)});
    auto invalid = std::make_shared<const isa::Program>(
        isa::Program(std::move(code), 64, 16));  // falls off the end
    Operation op;
    op.program = invalid;
    op.start_ptr = 0x1000;
    const Completion completion = run_op(cluster, std::move(op));
    EXPECT_EQ(completion.status, TraversalStatus::kExecFault);
    EXPECT_EQ(cluster.offload_engine().stats().failures.value(), 1u);
}

TEST(OffloadFallback, ExecutesAtClientWithCorrectResult)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 24; v++) {
        values.push_back(100 + v);
    }
    list.build(values, 0);

    // Heavy per-iteration compute forces the fallback path; the
    // traversal semantics (walk to end, count) still hold.
    auto heavy = compute_heavy_program(200);
    Operation op;
    op.program = heavy;
    op.start_ptr = list.head();
    op.init_scratch.assign(16, 0);
    const Completion completion = run_op(cluster, std::move(op));
    EXPECT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_FALSE(completion.offloaded);
    EXPECT_EQ(completion.iterations, 24u);
    EXPECT_EQ(cluster.offload_engine().stats().fallback.value(), 1u);
    // sp[8] accumulated 200 per iteration.
    std::uint64_t acc = 0;
    std::memcpy(&acc, completion.scratch.data() + 8, 8);
    EXPECT_EQ(acc, 200u * 24u);
}

TEST(OffloadFallback, PaysOneRoundTripPerLoad)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(40);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Offloaded walk.
    const Completion offloaded =
        run_op(cluster, list.make_walk(40, {}));
    EXPECT_TRUE(offloaded.offloaded);

    // Same walk, forced to the fallback (threshold 0).
    core::ClusterConfig strict = config;
    strict.offload.eta_threshold = 0.0;
    core::Cluster strict_cluster(strict);
    ds::LinkedList strict_list(strict_cluster.memory(),
                               strict_cluster.allocator());
    strict_list.build(values, 0);
    const Completion fallback =
        run_op(strict_cluster, strict_list.make_walk(40, {}));
    EXPECT_FALSE(fallback.offloaded);
    EXPECT_EQ(fallback.iterations, offloaded.iterations);
    // ~40 round trips vs 1: at least an order of magnitude slower.
    EXPECT_GT(fallback.latency, offloaded.latency * 10);
}

TEST(OffloadWire, CodeShipsOnlyUntilInstalled)
{
    core::ClusterConfig config;
    config.offload.code_install_sends = 3;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1, 2, 3, 4}, 0);

    const auto client = net::EndpointAddr::client(0);
    Bytes previous = 0;
    std::vector<Bytes> request_sizes;
    for (int i = 0; i < 6; i++) {
        run_op(cluster, list.make_find(4, {}));
        const Bytes sent = cluster.network().bytes_sent_by(client);
        request_sizes.push_back(sent - previous);
        previous = sent;
    }
    // First three requests ship code; later ones ship a 16 B id.
    EXPECT_EQ(request_sizes[0], request_sizes[2]);
    EXPECT_LT(request_sizes[4], request_sizes[0]);
    EXPECT_EQ(request_sizes[4], request_sizes[5]);
    EXPECT_EQ(request_sizes[0] - request_sizes[4],
              isa::wire_code_size(*list.find_program()) -
                  net::kCodeIdBytes);
}

TEST(OffloadRetransmit, GivesUpAfterMaxRetries)
{
    core::ClusterConfig config;
    config.network.loss_probability = 1.0;  // nothing gets through
    config.offload.retransmit_timeout = micros(20.0);
    config.offload.max_retransmits = 3;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1}, 0);

    const Completion completion =
        run_op(cluster, list.make_find(1, {}));
    EXPECT_TRUE(completion.timed_out);
    EXPECT_EQ(completion.retransmits, 3u);
    EXPECT_EQ(cluster.offload_engine().stats().retransmits.value(),
              3u);
    EXPECT_EQ(cluster.offload_engine().inflight(), 0u);
}

TEST(OffloadContinuation, MaxIterResumesCountsContinuations)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(1200);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);  // > kDefaultMaxIters

    const Completion completion =
        run_op(cluster, list.make_find(1199, {}));
    EXPECT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.iterations, 1200u);
    EXPECT_EQ(completion.continuations, 2u);  // 512 + 512 + 176
    EXPECT_EQ(
        cluster.offload_engine().stats().continuations.value(), 2u);
}

TEST(OffloadAnalysis, CacheReturnsSameObject)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    auto program = compute_heavy_program(4);
    const auto& first = cluster.offload_engine().analysis_for(program);
    const auto& second =
        cluster.offload_engine().analysis_for(program);
    EXPECT_EQ(&first, &second);
    EXPECT_TRUE(first.valid);
}

}  // namespace
}  // namespace pulse::offload
