/**
 * @file
 * Live slab migration tests: the engine's copy/cutover protocol (data
 * integrity, map/switch/TCAM coherence, backing reuse, migrate-home
 * overlay retirement, rejection of ineligible starts, abort on a dead
 * link), and the full elastic plane rebalancing live CAS traffic —
 * with and without the fault plane mangling every message class —
 * while in-flight operations keep exactly-once semantics.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>

#include "core/cluster.h"
#include "isa/program.h"
#include "placement/migration.h"

namespace pulse::placement {
namespace {

constexpr Bytes kSlab = 64 * kKiB;

placement::PlacementConfig
engine_config()
{
    PlacementConfig config;
    config.mode = PlacementMode::kElastic;
    config.slab_bytes = kSlab;
    return config;
}

MigrationEngine
make_engine(core::Cluster& cluster, const PlacementConfig& config)
{
    std::vector<mem::RangeTcam*> tcams;
    std::vector<mem::ChannelSet*> channels;
    for (NodeId node = 0; node < cluster.memory().num_nodes();
         node++) {
        tcams.push_back(&cluster.accelerator(node).tcam());
        channels.push_back(&cluster.channels(node));
    }
    return MigrationEngine(cluster.queue(), cluster.network(),
                           cluster.memory(), cluster.allocator(),
                           std::move(tcams), std::move(channels),
                           config);
}

std::vector<std::uint8_t>
pattern(Bytes length)
{
    std::vector<std::uint8_t> bytes(length);
    for (Bytes i = 0; i < length; i++) {
        bytes[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    return bytes;
}

TEST(MigrationEngine, MigratesSlabAndBackCoherently)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.check.invariants = true;
    core::Cluster cluster(config);
    MigrationEngine engine = make_engine(cluster, engine_config());

    const VirtAddr va = cluster.allocator().alloc_on(0, kSlab, kSlab);
    ASSERT_NE(va, kNullAddr);
    const std::vector<std::uint8_t> data = pattern(kSlab);
    cluster.memory().write(va, data.data(), data.size());

    // Outbound: node 0 -> node 1.
    bool done = false;
    bool success = false;
    ASSERT_TRUE(engine.start(va, kSlab, 1, [&](bool migrated) {
        done = true;
        success = migrated;
    }));
    EXPECT_FALSE(engine.start(va, kSlab, 1, [](bool) {}));  // busy
    cluster.queue().run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(success);

    // Authority, routing and translation all moved together.
    const mem::AddressMap& map = cluster.memory().address_map();
    EXPECT_EQ(*map.node_for(va), 1u);
    EXPECT_EQ(*cluster.network().switch_table().lookup(va), 1u);
    EXPECT_EQ(cluster.accelerator(0)
                  .tcam()
                  .translate(va, mem::Perm::kRead)
                  .status,
              mem::TranslateStatus::kMiss);
    EXPECT_EQ(cluster.accelerator(1)
                  .tcam()
                  .translate(va, mem::Perm::kRead)
                  .status,
              mem::TranslateStatus::kOk);
    EXPECT_EQ(map.remaps().size(), 1u);

    // Bytes are intact — and physically live on node 1 now.
    std::vector<std::uint8_t> readback(kSlab);
    cluster.memory().read(va, readback.data(), readback.size());
    EXPECT_EQ(readback, data);
    EXPECT_EQ(cluster.memory().node(1).read_as<std::uint8_t>(0),
              data[0]);

    // The vacated source backing is reusable, not leaked.
    EXPECT_EQ(cluster.allocator().free_list_bytes(0), kSlab);

    // A traversal started at the migrated pointer routes end to end.
    isa::ProgramBuilder b;
    b.load(8).move(isa::sp(0, 8), isa::dat(0, 8)).ret();
    b.scratch_bytes(8);
    auto program = std::make_shared<const isa::Program>(b.build());
    std::uint64_t loaded = 0;
    offload::Operation op;
    op.program = program;
    op.start_ptr = va;
    op.init_scratch.assign(8, 0);
    op.done = [&](offload::Completion&& completion) {
        EXPECT_EQ(completion.status, isa::TraversalStatus::kDone);
        std::memcpy(&loaded, completion.scratch.data(), 8);
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    std::uint64_t expected = 0;
    std::memcpy(&expected, data.data(), 8);
    EXPECT_EQ(loaded, expected);

    // Homebound: the hole at the old home is the first fit, so the
    // remap overlay retires instead of stacking a second redirect.
    done = false;
    ASSERT_TRUE(engine.start(va, kSlab, 0, [&](bool migrated) {
        done = true;
        success = migrated;
    }));
    cluster.queue().run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(success);
    EXPECT_EQ(*map.node_for(va), 0u);
    EXPECT_TRUE(map.remaps().empty());
    EXPECT_EQ(cluster.accelerator(0).tcam().size(), 1u);  // coalesced
    EXPECT_EQ(cluster.allocator().free_list_bytes(0), 0u);
    EXPECT_EQ(cluster.allocator().free_list_bytes(1), kSlab);
    cluster.memory().read(va, readback.data(), readback.size());
    EXPECT_EQ(readback, data);

    EXPECT_EQ(engine.stats().completed.value(), 2u);
    EXPECT_EQ(engine.stats().aborted.value(), 0u);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

TEST(MigrationEngine, RejectsIneligibleStarts)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    core::Cluster cluster(config);
    MigrationEngine engine = make_engine(cluster, engine_config());
    const mem::AddressMap& map = cluster.memory().address_map();

    const VirtAddr backed = cluster.allocator().alloc_on(0, kSlab, kSlab);
    ASSERT_NE(backed, kNullAddr);
    // Slab-aligned but only partially backed.
    const VirtAddr partial =
        cluster.allocator().alloc_on(0, 4 * kKiB, kSlab);
    ASSERT_NE(partial, kNullAddr);
    const VirtAddr unmapped =
        map.region(1).base + map.region_size();

    auto never = [](bool) { FAIL() << "rejected start ran on_done"; };
    EXPECT_FALSE(engine.start(backed, kSlab, 0, never));   // dst == src
    EXPECT_FALSE(engine.start(backed, kSlab, 7, never));   // bad node
    EXPECT_FALSE(engine.start(backed, 0, 1, never));       // empty span
    EXPECT_FALSE(engine.start(partial, kSlab, 1, never));  // unbacked
    EXPECT_FALSE(engine.start(unmapped, kSlab, 0, never));
    EXPECT_TRUE(cluster.queue().empty());  // nothing was scheduled
    EXPECT_EQ(engine.stats().started.value(), 0u);
}

TEST(MigrationEngine, AbortsOnDeadLinkAndFreesBacking)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.faults.links.loss = 1.0;  // every copy chunk and ack dies
    core::Cluster cluster(config);
    PlacementConfig pconfig = engine_config();
    pconfig.copy_rto = micros(2.0);
    pconfig.copy_max_retries = 3;
    MigrationEngine engine = make_engine(cluster, pconfig);

    const VirtAddr va = cluster.allocator().alloc_on(0, kSlab, kSlab);
    ASSERT_NE(va, kNullAddr);
    bool done = false;
    bool success = true;
    ASSERT_TRUE(engine.start(va, kSlab, 1, [&](bool migrated) {
        done = true;
        success = migrated;
    }));
    cluster.queue().run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(success);
    EXPECT_FALSE(engine.active());
    EXPECT_EQ(engine.stats().aborted.value(), 1u);
    EXPECT_EQ(engine.stats().completed.value(), 0u);
    EXPECT_GT(engine.stats().chunks_retransmitted.value(), 0u);

    // Nothing changed: same owner, same translation, and the reserved
    // destination backing went back to the free list.
    EXPECT_EQ(*cluster.memory().address_map().node_for(va), 0u);
    EXPECT_TRUE(cluster.memory().address_map().remaps().empty());
    EXPECT_EQ(cluster.accelerator(0)
                  .tcam()
                  .translate(va, mem::Perm::kRead)
                  .status,
              mem::TranslateStatus::kOk);
    EXPECT_EQ(cluster.allocator().free_list_bytes(1), kSlab);
    EXPECT_EQ(cluster.allocator().free_list_bytes(0), 0u);
}

isa::Program
cas_increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

/**
 * Drive a closed loop of CAS increments against two slab-aligned
 * counters on node 0 while the elastic plane is live. Returns after
 * the queue drains; every assertion about exactly-once effects and
 * structural invariants runs inside.
 */
void
run_elastic_cas_soak(core::ClusterConfig config, int total,
                     std::uint64_t min_migrations)
{
    config.num_mem_nodes = 2;
    config.check.invariants = true;
    config.placement.mode = PlacementMode::kElastic;
    config.placement.slab_bytes = kSlab;
    config.placement.epoch = micros(5.0);
    config.placement.trigger_imbalance = 1.1;
    config.placement.copy_rto = micros(10.0);
    config.placement.copy_max_retries = 64;
    core::Cluster cluster(config);

    // Two hot slabs on node 0 (a single slab is never migrated: moving
    // all of a node's load somewhere else improves nothing).
    const VirtAddr va0 = cluster.allocator().alloc_on(0, kSlab, kSlab);
    const VirtAddr va1 = cluster.allocator().alloc_on(0, kSlab, kSlab);
    ASSERT_NE(va0, kNullAddr);
    ASSERT_NE(va1, kNullAddr);
    cluster.memory().write_as<std::uint64_t>(va0, 0);
    cluster.memory().write_as<std::uint64_t>(va1, 0);

    auto program =
        std::make_shared<const isa::Program>(cas_increment_program());
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    int submitted = 0;
    int done = 0;
    int ok = 0;
    std::function<void()> submit_next = [&] {
        if (submitted >= total) {
            return;
        }
        const VirtAddr target = (submitted++ % 2 == 0) ? va0 : va1;
        offload::Operation op;
        op.program = program;
        op.start_ptr = target;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            done++;
            if (completion.status == isa::TraversalStatus::kDone) {
                ok++;
            }
            submit_next();
        };
        submit(std::move(op));
    };
    for (int i = 0; i < 16; i++) {
        submit_next();
    }
    cluster.queue().run();

    EXPECT_EQ(done, total);
    EXPECT_GE(ok, total - total / 20);  // chaos may fail a straggler
    // Exactly-once: each successful op incremented exactly one
    // counter exactly once, across every migration of its slab.
    const std::uint64_t sum =
        cluster.memory().read_as<std::uint64_t>(va0) +
        cluster.memory().read_as<std::uint64_t>(va1);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(ok));

    ASSERT_NE(cluster.placement_plane(), nullptr);
    EXPECT_GE(cluster.placement_plane()->migration_stats()
                  .completed.value(),
              min_migrations);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

TEST(PlacementPlane, RebalancesLiveCasTraffic)
{
    run_elastic_cas_soak(core::ClusterConfig(), 600,
                         /*min_migrations=*/1);
}

TEST(PlacementPlane, RebalancesUnderChaos)
{
    core::ClusterConfig config;
    config.faults.links.loss = 0.02;
    config.faults.links.duplicate = 0.01;
    config.faults.links.reorder = 0.02;
    config.faults.links.reorder_jitter = micros(3.0);
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    run_elastic_cas_soak(config, 600, /*min_migrations=*/1);
}

}  // namespace
}  // namespace pulse::placement
