/**
 * @file
 * Tests for the golden differential oracle (src/check): the shadow
 * memory, the independent reference interpreter's equivalence with the
 * production interpreter, exact/weak gating on a live cluster, and the
 * mutation test — an intentionally injected production-interpreter bug
 * must be caught (docs/TESTING.md).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "check/reference_interpreter.h"
#include "check/shadow_memory.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "isa/interpreter.h"
#include "isa/traversal.h"

namespace pulse::check {
namespace {

/** Reset the production-interpreter mutation on scope exit. */
struct MutationGuard
{
    explicit MutationGuard(isa::InterpreterMutation mutation)
    {
        isa::set_interpreter_mutation(mutation);
    }
    ~MutationGuard()
    {
        isa::set_interpreter_mutation(isa::InterpreterMutation::kNone);
    }
};

core::ClusterConfig
checked_config(bool oracle = true, bool invariants = true)
{
    core::ClusterConfig config;
    config.check.oracle = oracle;
    config.check.invariants = invariants;
    config.check.fail_fast = false;
    return config;
}

isa::Program
chain_walk_program()
{
    // Walk next pointers (word 0), folding word 1 into sp[0].
    isa::ProgramBuilder b;
    b.load(16)
        .add(isa::sp(0), isa::sp(0), isa::dat(8))
        .compare(isa::dat(0), isa::imm(0))
        .jump_eq("end")
        .move(isa::cur(), isa::dat(0))
        .next_iter()
        .label("end")
        .ret();
    return b.build();
}

isa::Program
store_program()
{
    // Copy the node's word 0 over its word 1, then stop.
    isa::ProgramBuilder b;
    b.load(16).store(8, 0, 8).ret();
    return b.build();
}

TEST(ShadowMemory, CopyOnWriteIsolation)
{
    mem::GlobalMemory memory(1, 1 * kMiB);
    const VirtAddr base = memory.address_map().region(0).base;
    memory.write_as<std::uint64_t>(base, 42);

    ShadowMemory shadow(memory);
    std::uint64_t word = 0;
    ASSERT_TRUE(shadow.load(base, 8,
                            reinterpret_cast<std::uint8_t*>(&word)));
    EXPECT_EQ(word, 42u);

    const std::uint64_t updated = 99;
    ASSERT_TRUE(shadow.store(
        base, 8, reinterpret_cast<const std::uint8_t*>(&updated)));
    ASSERT_TRUE(shadow.load(base, 8,
                            reinterpret_cast<std::uint8_t*>(&word)));
    EXPECT_EQ(word, 99u);
    // The base memory never sees overlay writes.
    EXPECT_EQ(memory.read_as<std::uint64_t>(base), 42u);
    EXPECT_EQ(shadow.write_ops(), 1u);

    // CAS against the overlay view.
    bool swapped = false;
    ASSERT_TRUE(shadow.cas(base, 99, 7, &swapped));
    EXPECT_TRUE(swapped);
    ASSERT_TRUE(shadow.cas(base, 99, 8, &swapped));
    EXPECT_FALSE(swapped);
    EXPECT_EQ(shadow.write_ops(), 2u);  // one swap applied

    // Invalid spans are rejected, not faulted.
    const mem::NodeRegion& region = memory.address_map().region(0);
    EXPECT_FALSE(shadow.valid_span(region.base + region.size, 8));
    EXPECT_FALSE(shadow.cas(region.base + region.size, 0, 1, &swapped));

    // flush materializes the overlay.
    mem::GlobalMemory target(1, 1 * kMiB);
    shadow.flush(target);
    EXPECT_EQ(target.read_as<std::uint64_t>(base), 7u);
}

TEST(ReferenceInterpreter, MatchesProductionOnChainWalk)
{
    mem::GlobalMemory memory(1, 1 * kMiB);
    const VirtAddr base = memory.address_map().region(0).base;
    // Three-node chain: values 5, 6, 7.
    for (std::uint64_t i = 0; i < 3; i++) {
        const VirtAddr node = base + i * 64;
        memory.write_as<std::uint64_t>(node,
                                       i + 1 < 3 ? base + (i + 1) * 64
                                                 : kNullAddr);
        memory.write_as<std::uint64_t>(node + 8, 5 + i);
    }
    const isa::Program program = chain_walk_program();
    ASSERT_TRUE(program.verify());
    const std::vector<std::uint8_t> init(16, 0);

    isa::MemoryHooks hooks;
    hooks.load = [&](VirtAddr va, std::uint32_t len, std::uint8_t* out) {
        memory.read(va, out, len);
        return true;
    };
    const isa::TraversalOutcome actual =
        isa::run_traversal(program, base, init, hooks);

    ShadowMemory shadow(memory);
    const ReferenceOutcome expected =
        reference_traversal(program, base, init, shadow);

    EXPECT_EQ(actual.status, expected.status);
    EXPECT_EQ(expected.status, isa::TraversalStatus::kDone);
    EXPECT_EQ(actual.iterations, expected.iterations);
    EXPECT_EQ(actual.instructions, expected.instructions);
    EXPECT_EQ(actual.final_ptr, expected.final_ptr);
    EXPECT_EQ(actual.scratch, expected.scratch);
    std::uint64_t fold = 0;
    std::memcpy(&fold, expected.scratch.data(), 8);
    EXPECT_EQ(fold, 5u + 6u + 7u);
}

TEST(ReferenceInterpreter, ExecuteResumesAcrossLegCaps)
{
    mem::GlobalMemory memory(1, 1 * kMiB);
    const VirtAddr base = memory.address_map().region(0).base;
    const std::uint64_t chain = 10;
    for (std::uint64_t i = 0; i < chain; i++) {
        const VirtAddr node = base + i * 64;
        memory.write_as<std::uint64_t>(
            node, i + 1 < chain ? base + (i + 1) * 64 : kNullAddr);
        memory.write_as<std::uint64_t>(node + 8, 1);
    }
    const isa::Program program = chain_walk_program();
    ShadowMemory shadow(memory);
    // Leg cap 3 forces resumes; the totals must match one long run.
    const ReferenceOutcome split = reference_execute(
        program, base, {}, shadow, /*per_visit_cap=*/3,
        /*total_guard=*/1u << 20);
    shadow.clear();
    const ReferenceOutcome whole =
        reference_traversal(program, base, {}, shadow);
    EXPECT_EQ(split.status, isa::TraversalStatus::kDone);
    EXPECT_EQ(split.iterations, whole.iterations);
    EXPECT_EQ(split.scratch, whole.scratch);
    EXPECT_EQ(split.final_ptr, whole.final_ptr);
}

TEST(GoldenOracle, CleanClusterRunHasNoMismatches)
{
    core::Cluster cluster(checked_config());
    ds::HashTableConfig ht;
    ht.num_buckets = 16;
    ds::HashTable table(cluster.memory(), cluster.allocator(), ht);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= 64; k++) {
        keys.push_back(k * 3);
    }
    table.insert_many(keys);

    int done = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (const std::uint64_t key : keys) {
        submit(table.make_find(key, [&](offload::Completion&& c) {
            EXPECT_EQ(c.status, isa::TraversalStatus::kDone);
            done++;
        }));
    }
    // A miss and a write ride along.
    submit(table.make_find(999999,
                           [&](offload::Completion&&) { done++; }));
    std::vector<std::uint8_t> value(ht.value_bytes);
    ds::fill_value_pattern(7, value.data(), value.size());
    submit(table.make_update(keys[0], value,
                             [&](offload::Completion&&) { done++; }));
    cluster.queue().run();

    EXPECT_EQ(done, static_cast<int>(keys.size()) + 2);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    const OracleStats& stats = cluster.checker()->oracle()->stats();
    EXPECT_EQ(stats.armed, keys.size() + 2);
    EXPECT_EQ(stats.completed, keys.size() + 2);
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_GT(stats.exact, 0u);
}

TEST(GoldenOracle, ConcurrentCasFallsBackToWeakChecks)
{
    core::Cluster cluster(checked_config());
    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);

    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    auto program = std::make_shared<const isa::Program>(b.build());

    const int n = 50;
    int done = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&&) { done++; };
        submit(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    // Atomicity itself must hold...
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    // ...and the oracle must not have raised false mismatches: the
    // interleaved CAS retries make exact prediction unsound, so most
    // of these flights are weak-checked.
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    const OracleStats& stats = cluster.checker()->oracle()->stats();
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_GT(stats.weak, 0u);
}

TEST(GoldenOracle, InvalidProgramComparedExactly)
{
    core::Cluster cluster(checked_config());
    // NOT with an immediate destination never verifies.
    std::vector<isa::Instruction> code;
    code.push_back({.op = isa::Opcode::kNot,
                    .dst = isa::imm(1),
                    .src1 = isa::imm(2)});
    code.push_back({.op = isa::Opcode::kReturn});
    auto program = std::make_shared<const isa::Program>(
        isa::Program(std::move(code), 64, 4));
    ASSERT_FALSE(program->verify());

    offload::Completion result;
    offload::Operation op;
    op.program = program;
    op.start_ptr = cluster.memory().address_map().region(0).base;
    op.done = [&](offload::Completion&& c) { result = std::move(c); };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();

    EXPECT_EQ(result.status, isa::TraversalStatus::kExecFault);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    EXPECT_EQ(cluster.checker()->oracle()->stats().mismatches, 0u);
}

/**
 * The mutation test (docs/TESTING.md): arm each intentional
 * production-interpreter bug and prove the oracle reports mismatches
 * for a workload whose results depend on the mutated behaviour.
 */
TEST(GoldenOracle, CatchesAddOffByOneMutation)
{
    // The fold walk accumulates with ADD every iteration, so the
    // off-by-one add skews the scratch result and the read-only exact
    // compare must flag it.
    MutationGuard guard(isa::InterpreterMutation::kAddOffByOne);
    core::Cluster cluster(checked_config());
    const VirtAddr base = cluster.allocator().alloc_on(0, 64 * 4, 256);
    for (std::uint64_t i = 0; i < 4; i++) {
        const VirtAddr node = base + i * 64;
        cluster.memory().write_as<std::uint64_t>(
            node, i + 1 < 4 ? base + (i + 1) * 64 : kNullAddr);
        cluster.memory().write_as<std::uint64_t>(node + 8, 100 + i);
    }
    auto program =
        std::make_shared<const isa::Program>(chain_walk_program());
    ASSERT_TRUE(program->verify());

    int done = 0;
    offload::Operation op;
    op.program = program;
    op.start_ptr = base;
    op.init_scratch.assign(16, 0);
    op.done = [&](offload::Completion&&) { done++; };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();

    EXPECT_EQ(done, 1);
    EXPECT_GT(cluster.checker()->registry().count(
                  InvariantKind::kOracleMismatch),
              0u);
}

TEST(GoldenOracle, CatchesCompareInvertedMutation)
{
    // Flag inversion is invisible to EQ/NEQ jumps (negating zero is
    // still zero) — the program must branch on an ordering condition.
    MutationGuard guard(isa::InterpreterMutation::kCompareInverted);
    core::Cluster cluster(checked_config());
    const VirtAddr node = cluster.allocator().alloc_on(0, 16, 256);
    cluster.memory().write_as<std::uint64_t>(node, 0);
    cluster.memory().write_as<std::uint64_t>(node + 8, 5);

    isa::ProgramBuilder b;
    b.load(16)
        .compare(isa::dat(8), isa::imm(10))
        .jump_lt("less")
        .add(isa::sp(0), isa::sp(0), isa::imm(1))
        .ret()
        .label("less")
        .ret();
    auto program = std::make_shared<const isa::Program>(b.build());
    ASSERT_TRUE(program->verify());

    int done = 0;
    offload::Operation op;
    op.program = program;
    op.start_ptr = node;
    op.init_scratch.assign(16, 0);
    op.done = [&](offload::Completion&&) { done++; };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();

    // 5 < 10, so the untainted path takes the jump and returns
    // sp[0] == 0; the inverted flags fall through and return 1.
    EXPECT_EQ(done, 1);
    EXPECT_GT(cluster.checker()->registry().count(
                  InvariantKind::kOracleMismatch),
              0u);
}

TEST(GoldenOracle, CatchesStoreDropByteMutation)
{
    // A dropped store byte leaves completions identical, so the
    // cluster oracle cannot see it — the program-differential path
    // (production interpreter vs reference, then a byte compare of the
    // two memories) is what catches this one.
    MutationGuard guard(isa::InterpreterMutation::kStoreDropByte);
    mem::GlobalMemory mem_a(1, 1 * kMiB);
    mem::GlobalMemory mem_b(1, 1 * kMiB);
    const VirtAddr base = mem_a.address_map().region(0).base;
    const std::uint64_t value = 0x1122334455667788ull;
    mem_a.write_as<std::uint64_t>(base, value);
    mem_b.write_as<std::uint64_t>(base, value);

    const isa::Program program = store_program();
    ASSERT_TRUE(program.verify());

    isa::MemoryHooks hooks;
    hooks.load = [&](VirtAddr va, std::uint32_t len, std::uint8_t* out) {
        mem_a.read(va, out, len);
        return true;
    };
    hooks.store = [&](VirtAddr va, std::uint32_t len,
                      const std::uint8_t* in) {
        mem_a.write(va, in, len);
        return true;
    };
    const isa::TraversalOutcome actual =
        isa::run_traversal(program, base, ScratchBuffer{}, hooks);
    ASSERT_EQ(actual.status, isa::TraversalStatus::kDone);

    ShadowMemory shadow(mem_b);
    const ReferenceOutcome expected =
        reference_traversal(program, base, {}, shadow);
    ASSERT_EQ(expected.status, isa::TraversalStatus::kDone);
    shadow.flush(mem_b);

    // The mutated production store wrote only 7 of the 8 bytes.
    EXPECT_EQ(mem_b.read_as<std::uint64_t>(base + 8), value);
    EXPECT_NE(mem_a.read_as<std::uint64_t>(base + 8),
              mem_b.read_as<std::uint64_t>(base + 8));
}

TEST(GoldenOracle, CheckerOffConfigBuildsNoChecker)
{
    core::ClusterConfig config;  // all-off default
    core::Cluster cluster(config);
    EXPECT_EQ(cluster.checker(), nullptr);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

}  // namespace
}  // namespace pulse::check
