/**
 * @file
 * Functional tests of the data-structure adapters: every offload
 * program, executed via the traversal engine over real simulated
 * memory, must agree with the host-side reference implementation.
 * These are the "same bytes, two executions" checks that anchor all
 * timing experiments.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "isa/analysis.h"
#include "isa/traversal.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"

namespace pulse::ds {
namespace {

using isa::TraversalStatus;

/** Functional hooks over GlobalMemory. */
isa::MemoryHooks
hooks_for(mem::GlobalMemory& memory)
{
    isa::MemoryHooks hooks;
    hooks.load = [&memory](VirtAddr addr, std::uint32_t len,
                           std::uint8_t* out) {
        memory.read(addr, out, len);
        return true;
    };
    hooks.store = [&memory](VirtAddr addr, std::uint32_t len,
                            const std::uint8_t* in) {
        memory.write(addr, in, len);
        return true;
    };
    return hooks;
}

std::uint64_t
scratch_word(const std::vector<std::uint8_t>& scratch, std::uint32_t off)
{
    std::uint64_t word = 0;
    std::memcpy(&word, scratch.data() + off, 8);
    return word;
}

class DsFixture : public ::testing::Test
{
  protected:
    DsFixture()
        : memory_(2, 64 * kMiB),
          alloc_(memory_.address_map(), mem::AllocPolicy::kPartitioned)
    {
    }

    mem::GlobalMemory memory_;
    mem::ClusterAllocator alloc_;
};

// ---------------------------------------------------------------- list

TEST_F(DsFixture, LinkedListFindHitAndMiss)
{
    LinkedList list(memory_, alloc_);
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 100; v < 200; v += 2) {
        values.push_back(v);
    }
    list.build(values, /*node=*/0);
    ASSERT_EQ(list.size(), values.size());

    auto program = list.find_program();
    ASSERT_TRUE(program->verify());
    const auto hooks = hooks_for(memory_);

    for (const std::uint64_t probe : {100ull, 158ull, 198ull, 159ull,
                                      7ull}) {
        auto op = list.make_find(probe, nullptr);
        auto outcome = run_traversal(*program, op.start_ptr,
                                     op.init_scratch, hooks);
        ASSERT_EQ(outcome.status, TraversalStatus::kDone);
        const std::uint64_t result =
            scratch_word(outcome.scratch, LinkedList::kSpResult);
        const auto expected = list.find_reference(probe);
        if (expected.has_value()) {
            EXPECT_EQ(result, *expected) << "probe " << probe;
        } else {
            EXPECT_EQ(result, kKeyNotFound) << "probe " << probe;
        }
    }
}

TEST_F(DsFixture, LinkedListFindIterationCountMatchesPosition)
{
    LinkedList list(memory_, alloc_);
    list.build({10, 20, 30, 40, 50}, 0);
    auto program = list.find_program();
    const auto hooks = hooks_for(memory_);
    auto op = list.make_find(30, nullptr);
    auto outcome =
        run_traversal(*program, op.start_ptr, op.init_scratch, hooks);
    EXPECT_EQ(outcome.iterations, 3u);  // 3rd node
}

TEST_F(DsFixture, LinkedListWalkStopsAfterExactHops)
{
    LinkedList list(memory_, alloc_);
    std::vector<std::uint64_t> values(64);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = 1000 + i;
    }
    list.build(values, 0);
    auto program = list.walk_program();
    ASSERT_TRUE(program->verify());
    const auto hooks = hooks_for(memory_);
    for (const std::uint64_t hops : {1ull, 5ull, 64ull}) {
        auto op = list.make_walk(hops, nullptr);
        auto outcome = run_traversal(*program, op.start_ptr,
                                     op.init_scratch, hooks);
        ASSERT_EQ(outcome.status, TraversalStatus::kDone);
        EXPECT_EQ(outcome.iterations, hops);
        EXPECT_EQ(scratch_word(outcome.scratch, LinkedList::kSpLast),
                  1000 + hops - 1);
    }
}

// ---------------------------------------------------------- hash table

TEST_F(DsFixture, HashTableFindMatchesReference)
{
    HashTableConfig config;
    config.num_buckets = 16;  // force long chains
    config.partitions = 2;
    HashTable table(memory_, alloc_, config);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= 512; k++) {
        keys.push_back(k * 7919);
    }
    table.insert_many(keys);

    auto program = table.find_program();
    std::string error;
    ASSERT_TRUE(program->verify(&error)) << error;
    const auto hooks = hooks_for(memory_);

    Rng rng(7);
    for (int probe = 0; probe < 64; probe++) {
        const bool present = rng.next_bool(0.7);
        const std::uint64_t key =
            present ? keys[rng.next_below(keys.size())]
                    : rng.next_u64() | 1ull << 62;
        auto op = table.make_find(key, nullptr);
        auto outcome = run_traversal(*program, op.start_ptr,
                                     op.init_scratch, hooks);
        ASSERT_EQ(outcome.status, TraversalStatus::kDone);
        const auto expected = table.find_reference(key);
        const std::uint64_t flag =
            scratch_word(outcome.scratch, HashTable::kSpFlag);
        if (expected.has_value()) {
            ASSERT_EQ(flag, 1u) << "key " << key;
            EXPECT_EQ(scratch_word(outcome.scratch, HashTable::kSpValue),
                      *expected);
            EXPECT_EQ(*expected, value_pattern_word(key));
        } else {
            EXPECT_EQ(flag, kKeyNotFound) << "key " << key;
        }
    }
}

TEST_F(DsFixture, HashTableEtaIsMemoryCentric)
{
    HashTable table(memory_, alloc_, HashTableConfig{});
    const auto analysis = isa::analyze(*table.find_program());
    ASSERT_TRUE(analysis.valid) << analysis.error;
    // UPC's eta ~ 0.06 (Table 2): a handful of instructions per 120 ns
    // load.
    const double eta =
        compute_eta(analysis, nanos(7.0 / 6.0), nanos(120.0));
    EXPECT_LT(eta, 0.15);
    EXPECT_GT(eta, 0.02);
}

TEST_F(DsFixture, HashTablePartitioningKeepsChainsLocal)
{
    HashTableConfig config;
    config.num_buckets = 64;
    config.partitions = 2;
    HashTable table(memory_, alloc_, config);
    for (std::uint64_t k = 0; k < 256; k++) {
        table.insert(k * 13 + 1);
    }
    // Every key's bucket slot and the whole chain must live on the
    // node the partitioner assigned.
    for (std::uint64_t k = 0; k < 256; k++) {
        const std::uint64_t key = k * 13 + 1;
        const NodeId node = table.node_of(key);
        EXPECT_EQ(*memory_.address_map().node_for(table.bucket_slot(key)),
                  node);
        VirtAddr chain = memory_.read_as<std::uint64_t>(
            table.bucket_slot(key));
        while (chain != kNullAddr) {
            EXPECT_EQ(*memory_.address_map().node_for(chain), node);
            chain = memory_.read_as<std::uint64_t>(chain + 8);
        }
    }
}

// --------------------------------------------------------------- btree

class BPTreeFixture : public DsFixture
{
  protected:
    /** Build a TSV-style (inline) tree with keys 10, 20, ..., n*10. */
    BPTree
    build_inline(std::uint64_t n, std::uint32_t partitions = 2)
    {
        BPTreeConfig config;
        config.inline_values = true;
        config.partitioned = true;
        config.partitions = partitions;
        BPTree tree(memory_, alloc_, config);
        std::vector<BPTreeEntry> entries;
        for (std::uint64_t i = 1; i <= n; i++) {
            entries.push_back({i * 10, i * 3});
        }
        tree.build(entries);
        return tree;
    }
};

TEST_F(BPTreeFixture, FindMatchesReference)
{
    BPTree tree = build_inline(500);
    EXPECT_GE(tree.depth(), 3u);
    auto program = tree.find_program();
    std::string error;
    ASSERT_TRUE(program->verify(&error)) << error;
    const auto hooks = hooks_for(memory_);

    for (std::uint64_t probe :
         {10ull, 250ull, 2500ull, 5000ull, 15ull, 99999ull}) {
        auto op = tree.make_find(probe, nullptr);
        auto outcome = run_traversal(*program, op.start_ptr,
                                     op.init_scratch, hooks);
        ASSERT_EQ(outcome.status, TraversalStatus::kDone)
            << "probe " << probe;
        offload::Completion completion;
        completion.status = outcome.status;
        completion.scratch = outcome.scratch;
        const auto result = BPTree::parse_find(completion);
        const auto expected = tree.find_reference(probe);
        EXPECT_EQ(result.found, expected.has_value()) << probe;
        if (expected.has_value()) {
            EXPECT_EQ(result.payload, *expected) << probe;
        }
        EXPECT_EQ(outcome.iterations, tree.depth());
    }
}

TEST_F(BPTreeFixture, AggregateAllKindsMatchReference)
{
    // Signed payloads exercise MIN/MAX signed comparison.
    BPTreeConfig config;
    config.inline_values = true;
    config.partitions = 2;
    BPTree tree(memory_, alloc_, config);
    std::vector<BPTreeEntry> entries;
    Rng rng(11);
    for (std::uint64_t i = 1; i <= 700; i++) {
        const auto value = static_cast<std::int64_t>(
            rng.next_below(20000)) - 10000;
        entries.push_back({i * 5, static_cast<std::uint64_t>(value)});
    }
    tree.build(entries);
    const auto hooks = hooks_for(memory_);

    for (const AggKind kind : {AggKind::kSum, AggKind::kCount,
                               AggKind::kMin, AggKind::kMax}) {
        auto program = tree.aggregate_program(kind);
        std::string error;
        ASSERT_TRUE(program->verify(&error)) << error;
        for (const auto& [lo, hi] :
             std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                 {5, 3500}, {100, 120}, {3400, 9999}, {4000, 4000},
                 {9000, 9999}}) {
            auto op = tree.make_aggregate(kind, lo, hi, nullptr);
            auto outcome = run_traversal(*program, op.start_ptr,
                                         op.init_scratch, hooks);
            ASSERT_EQ(outcome.status, TraversalStatus::kDone);
            offload::Completion completion;
            completion.status = outcome.status;
            completion.scratch = outcome.scratch;
            const auto got = BPTree::parse_aggregate(completion, kind);
            const auto want = tree.aggregate_reference(kind, lo, hi);
            EXPECT_EQ(got.value, want.value)
                << "kind " << static_cast<int>(kind) << " [" << lo
                << "," << hi << "]";
            if (kind == AggKind::kSum || kind == AggKind::kCount) {
                EXPECT_EQ(got.count, want.count);
            }
        }
    }
}

TEST_F(BPTreeFixture, ScanFoldMatchesReference)
{
    BPTreeConfig config;
    config.inline_values = false;  // TC-style value objects
    config.leaf_slots = 8;
    config.leaf_fill = 7;
    config.partitions = 2;
    BPTree tree(memory_, alloc_, config);
    std::vector<BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 600; i++) {
        entries.push_back({i * 2, 0});
    }
    tree.build(entries);

    auto program = tree.scan_fold_program();
    std::string error;
    ASSERT_TRUE(program->verify(&error)) << error;
    const auto hooks = hooks_for(memory_);

    for (const auto& [start, count] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {2, 10}, {3, 64}, {100, 1}, {1100, 200}, {1198, 50}}) {
        auto op = tree.make_scan(start, count, nullptr);
        auto outcome = run_traversal(*program, op.start_ptr,
                                     op.init_scratch, hooks,
                                     /*max_iters=*/4096);
        ASSERT_EQ(outcome.status, TraversalStatus::kDone)
            << start << "+" << count;
        offload::Completion completion;
        completion.status = outcome.status;
        completion.scratch = outcome.scratch;
        const auto got = BPTree::parse_scan(completion);
        const auto want = tree.scan_reference(start, count);
        EXPECT_EQ(got.count, want.count) << start << "+" << count;
        EXPECT_EQ(got.fold, want.fold) << start << "+" << count;
        EXPECT_EQ(got.last_key, want.last_key) << start << "+" << count;
    }
}

TEST_F(BPTreeFixture, ScanIterationCountIsEntryGranular)
{
    BPTreeConfig config;
    config.inline_values = false;
    config.leaf_slots = 8;
    config.leaf_fill = 7;
    config.partitions = 1;
    BPTree tree(memory_, alloc_, config);
    std::vector<BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 1000; i++) {
        entries.push_back({i, 0});
    }
    tree.build(entries);
    const auto hooks = hooks_for(memory_);
    auto op = tree.make_scan(1, 64, nullptr);
    auto outcome = run_traversal(*tree.scan_fold_program(), op.start_ptr,
                                 op.init_scratch, hooks, 4096);
    ASSERT_EQ(outcome.status, TraversalStatus::kDone);
    // descent + one iteration per value + one per visited leaf.
    EXPECT_GE(outcome.iterations, tree.depth() + 64);
    EXPECT_LE(outcome.iterations, tree.depth() + 64 + 64 / 7 + 2);
}

TEST_F(BPTreeFixture, EtaStaysBelowOffloadThreshold)
{
    // Every program the evaluation offloads must pass the eta <= 1
    // test, or systems silently fall back and the comparisons break.
    BPTree tsv = build_inline(200);
    BPTreeConfig tc_config;
    tc_config.inline_values = false;
    tc_config.leaf_slots = 8;
    tc_config.leaf_fill = 7;
    tc_config.partitions = 1;
    BPTree tc(memory_, alloc_, tc_config);
    std::vector<BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 100; i++) {
        entries.push_back({i, 0});
    }
    tc.build(entries);

    const Time t_i = nanos(7.0 / 6.0);
    const Time t_d = nanos(120.0);
    std::vector<std::shared_ptr<const isa::Program>> programs = {
        tsv.find_program(),
        tsv.aggregate_program(AggKind::kSum),
        tsv.aggregate_program(AggKind::kCount),
        tsv.aggregate_program(AggKind::kMin),
        tsv.aggregate_program(AggKind::kMax),
        tc.find_program(),
        tc.scan_fold_program(),
    };
    for (const auto& program : programs) {
        const auto analysis = isa::analyze(*program);
        ASSERT_TRUE(analysis.valid) << analysis.error;
        const double eta = compute_eta(analysis, t_i, t_d);
        EXPECT_LE(eta, 1.0) << "program with " << program->size()
                            << " instructions, eta " << eta;
        EXPECT_GT(eta, 0.0);
    }
}

TEST_F(BPTreeFixture, PartitionedPlacementSplitsLeavesAcrossNodes)
{
    BPTree tree = build_inline(1000, /*partitions=*/2);
    // Low keys on node 0, high keys on node 1.
    EXPECT_EQ(tree.node_of_key(10), 0u);
    EXPECT_EQ(tree.node_of_key(10000), 1u);
    // Walk the leaf chain: placements must be monotone 0 -> 1.
    VirtAddr leaf = tree.first_leaf();
    NodeId last = 0;
    std::uint64_t on_node0 = 0;
    std::uint64_t on_node1 = 0;
    while (leaf != kNullAddr) {
        const NodeId node = *memory_.address_map().node_for(leaf);
        EXPECT_GE(node, last);
        last = node;
        (node == 0 ? on_node0 : on_node1)++;
        leaf = memory_.read_as<std::uint64_t>(leaf + 8);
    }
    EXPECT_GT(on_node0, 0u);
    EXPECT_GT(on_node1, 0u);
    // Roughly balanced halves.
    EXPECT_NEAR(static_cast<double>(on_node0),
                static_cast<double>(on_node1),
                static_cast<double>(on_node0 + on_node1) * 0.2);
}

}  // namespace
}  // namespace pulse::ds
