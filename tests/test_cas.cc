/**
 * @file
 * Tests for the atomic CAS extension (the supplementary section B
 * "near-memory synchronization" future-work item): verification
 * rules, interpreter semantics, assembler support, and the headline
 * property — N concurrent lock-free increments through the full rack
 * produce exactly N, with retries visible under contention.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "isa/assembler.h"
#include "isa/analysis.h"
#include "isa/codec.h"
#include "isa/traversal.h"

namespace pulse::isa {
namespace {

/**
 * Lock-free fetch-and-add: load the counter word, CAS old -> old+1,
 * retry on failure. sp[0] gets the number of attempts.
 */
Program
increment_program()
{
    ProgramBuilder b;
    b.load(8)
        .add(sp(0), sp(0), imm(1))           // attempts++
        .add(sp(8), dat(0), imm(1))          // desired = current + 1
        .cas(0, dat(0), sp(8))
        .jump_eq("done")
        .next_iter()                          // reload and retry
        .label("done")
        .ret();
    return b.build();
}

TEST(CasVerify, ShapeRules)
{
    // Offset must be an immediate within the 256 B vicinity.
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kCas, .dst = sp(0),
                        .src1 = imm(0), .src2 = imm(1)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_FALSE(Program(std::move(code), 64, 4).verify());
    }
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kCas, .dst = imm(252),
                        .src1 = imm(0), .src2 = imm(1)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_FALSE(Program(std::move(code), 64, 4).verify());
    }
    EXPECT_TRUE(increment_program().verify());
    const auto analysis = analyze(increment_program());
    EXPECT_TRUE(analysis.has_cas);
}

TEST(CasInterpreter, SuccessAndFailureSetFlags)
{
    Program program = increment_program();
    Workspace ws;
    ws.configure(program);
    std::memset(ws.data.data(), 0, 8);  // counter = 0

    // Successful swap.
    bool invoked = false;
    CasFn succeed = [&](std::uint64_t off, std::uint64_t expected,
                        std::uint64_t desired) {
        invoked = true;
        EXPECT_EQ(off, 0u);
        EXPECT_EQ(expected, 0u);
        EXPECT_EQ(desired, 1u);
        return true;
    };
    auto iter = run_iteration(program, ws, succeed);
    EXPECT_TRUE(invoked);
    EXPECT_EQ(iter.end, IterEnd::kReturn);  // JUMP_EQ done

    // Failed swap retries via NEXT_ITER.
    ws.configure(program);
    CasFn fail = [](std::uint64_t, std::uint64_t, std::uint64_t) {
        return false;
    };
    iter = run_iteration(program, ws, fail);
    EXPECT_EQ(iter.end, IterEnd::kNextIter);
}

TEST(CasInterpreter, FaultsWithoutAtomicPath)
{
    Program program = increment_program();
    Workspace ws;
    ws.configure(program);
    const auto iter = run_iteration(program, ws, nullptr);
    EXPECT_EQ(iter.end, IterEnd::kFault);
    EXPECT_EQ(iter.fault, ExecFault::kIllegalInstruction);
}

TEST(CasCodec, RoundTripsAndAssembles)
{
    Program program = increment_program();
    const auto decoded = decode_program(encode_program(program));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, program);

    const auto assembled = assemble("LOAD 8\n"
                                    "CAS 0 data[0] sp[8]\n"
                                    "JUMP_EQ done\n"
                                    "NEXT_ITER\n"
                                    "done:\n"
                                    "RETURN\n");
    ASSERT_TRUE(assembled.ok()) << assembled.error;
    EXPECT_TRUE(assembled.program->verify());
    EXPECT_EQ(assembled.program->code()[1].op, Opcode::kCas);
    EXPECT_NE(assembled.program->disassemble().find("CAS"),
              std::string::npos);
}

TEST(CasCluster, ConcurrentIncrementsAreExact)
{
    core::ClusterConfig config;
    config.accel.workspaces_per_logic = 8;
    core::Cluster cluster(config);
    const VirtAddr counter =
        cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);

    auto program = std::make_shared<const Program>(increment_program());
    const int n = 200;
    int done = 0;
    std::uint64_t attempts = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            EXPECT_TRUE(completion.offloaded);  // CAS forces offload
            std::uint64_t tries = 0;
            std::memcpy(&tries, completion.scratch.data(), 8);
            attempts += tries;
            done++;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(done, n);
    // The whole point: no lost updates under full concurrency.
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    // Contention happened (some ops needed >1 attempt)...
    EXPECT_GT(attempts, static_cast<std::uint64_t>(n));
    // ...and every successful swap is counted once.
    EXPECT_EQ(cluster.accelerator(0).stats().cas_ops.value(),
              static_cast<std::uint64_t>(n));
}

TEST(CasCluster, RpcPathAlsoAtomic)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    const VirtAddr counter =
        cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);

    auto program = std::make_shared<const Program>(increment_program());
    const int n = 64;
    int done = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            done++;
        };
        cluster.submitter(core::SystemKind::kRpc)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
}

TEST(CasCluster, ProtectionFaultSurfacesAsMemFault)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    const VirtAddr counter =
        cluster.allocator().alloc_on(0, 8, 256);
    // Re-install the node's TCAM entry read-only.
    auto& tcam = cluster.accelerator(0).tcam();
    const auto& region = cluster.memory().address_map().region(0);
    tcam.remove(region.base);
    ASSERT_TRUE(tcam.insert(
        {region.base, region.size, 0, mem::Perm::kRead}));

    auto program = std::make_shared<const Program>(increment_program());
    offload::Operation op;
    op.program = program;
    op.start_ptr = counter;
    op.init_scratch.assign(16, 0);
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    EXPECT_EQ(result.status, TraversalStatus::kMemFault);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter), 0u);
}

}  // namespace
}  // namespace pulse::isa
