/**
 * @file
 * Property-based tests: randomized sweeps over seeds asserting the
 * system's core invariants.
 *
 *  - Cross-system equivalence: every compared system computes the
 *    same result for the same operation over the same memory bytes.
 *  - Verifier soundness: programs that pass verify() never trip an
 *    interpreter-internal assertion, terminate within their iteration
 *    caps, and never read/write outside their register vectors.
 *  - Codec totality: decode never crashes on arbitrary bytes, and
 *    encode/decode round-trips every random valid program.
 *  - Aggregation equivalence under random windows and signed values.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "isa/analysis.h"
#include "isa/codec.h"
#include "isa/traversal.h"

namespace pulse {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

offload::Completion
run_on(Cluster& cluster, SystemKind kind, offload::Operation op)
{
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(kind)(std::move(op));
    cluster.queue().run();
    return result;
}

// --------------------------------------- cross-system equivalence

class CrossSystem : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrossSystem, HashFindsAgreeEverywhere)
{
    Rng rng(GetParam());
    ClusterConfig config;
    config.num_mem_nodes = 1 + rng.next_below(2) * 1;
    Cluster cluster(config);

    ds::HashTableConfig ht;
    ht.num_buckets = 4 + rng.next_below(60);
    ht.partitions = config.num_mem_nodes;
    ds::HashTable table(cluster.memory(), cluster.allocator(), ht);
    const std::uint64_t n = 50 + rng.next_below(400);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < n; i++) {
        keys.push_back(rng.next_u64() % ds::kPadKey | 1);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    table.insert_many(keys);

    for (int probe = 0; probe < 12; probe++) {
        const std::uint64_t key = rng.next_bool(0.5)
                                      ? keys[rng.next_below(keys.size())]
                                      : (rng.next_u64() | 1);
        const auto expected = table.find_reference(key);
        for (const SystemKind kind :
             {SystemKind::kPulse, SystemKind::kCache,
              SystemKind::kRpc, SystemKind::kRpcWimpy}) {
            const auto completion =
                run_on(cluster, kind, table.make_find(key, {}));
            ASSERT_EQ(completion.status,
                      isa::TraversalStatus::kDone)
                << core::system_name(kind);
            const auto result = table.parse_find(completion);
            ASSERT_EQ(result.found, expected.has_value())
                << core::system_name(kind) << " key " << key;
            if (expected) {
                ASSERT_EQ(result.value_word, *expected)
                    << core::system_name(kind);
            }
        }
    }
}

TEST_P(CrossSystem, AggregatesAgreeEverywhere)
{
    Rng rng(GetParam() * 7919 + 5);
    ClusterConfig config;
    config.num_mem_nodes = 2;
    Cluster cluster(config);

    ds::BPTreeConfig tree_config;
    tree_config.inline_values = true;
    tree_config.partitions = 2;
    ds::BPTree tree(cluster.memory(), cluster.allocator(),
                    tree_config);
    std::vector<ds::BPTreeEntry> entries;
    std::uint64_t key = 10;
    const std::uint64_t n = 100 + rng.next_below(900);
    for (std::uint64_t i = 0; i < n; i++) {
        key += 1 + rng.next_below(20);
        const auto value =
            static_cast<std::int64_t>(rng.next_below(100'000)) -
            50'000;
        entries.push_back({key, static_cast<std::uint64_t>(value)});
    }
    tree.build(entries);

    for (int probe = 0; probe < 6; probe++) {
        const std::uint64_t lo = rng.next_range(1, key);
        const std::uint64_t hi = lo + rng.next_below(key);
        const auto kind = static_cast<ds::AggKind>(rng.next_below(4));
        const auto expected =
            tree.aggregate_reference(kind, lo, hi);
        for (const SystemKind system :
             {SystemKind::kPulse, SystemKind::kRpc}) {
            const auto completion = run_on(
                cluster, system,
                tree.make_aggregate(kind, lo, hi, {}));
            ASSERT_EQ(completion.status,
                      isa::TraversalStatus::kDone);
            const auto result =
                ds::BPTree::parse_aggregate(completion, kind);
            ASSERT_EQ(result.value, expected.value)
                << core::system_name(system) << " ["
                << lo << "," << hi << "] kind "
                << static_cast<int>(kind);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSystem,
                         ::testing::Range<std::uint64_t>(1, 9));

// -------------------------------------------------- program fuzzing

isa::Operand
random_operand(Rng& rng, std::uint32_t scratch_bytes, bool writable)
{
    const int kind = static_cast<int>(rng.next_below(writable ? 3 : 4));
    const std::uint16_t width = static_cast<std::uint16_t>(
        1u << rng.next_below(4));  // 1/2/4/8
    switch (kind) {
      case 0:
        return isa::sp(
            static_cast<std::uint32_t>(
                rng.next_below(scratch_bytes - width + 1)),
            width);
      case 1:
        return isa::dat(static_cast<std::uint32_t>(rng.next_below(
                            isa::kMaxLoadBytes - width + 1)),
                        width);
      case 2:
        return isa::cur();
      default:
        return isa::imm(rng.next_u64());
    }
}

/** Generate a random structurally-valid program. */
isa::Program
random_program(Rng& rng)
{
    const std::uint32_t scratch = 64 + 8 * static_cast<std::uint32_t>(
                                           rng.next_below(24));
    const std::uint32_t body =
        3 + static_cast<std::uint32_t>(rng.next_below(40));
    std::vector<isa::Instruction> code;
    code.push_back({.op = isa::Opcode::kLoad,
                    .src1 = isa::imm(1 + rng.next_below(256))});
    for (std::uint32_t i = 0; i < body; i++) {
        const int choice = static_cast<int>(rng.next_below(8));
        isa::Instruction insn;
        switch (choice) {
          case 0:
          case 1:
          case 2: {
            static const isa::Opcode alu[] = {
                isa::Opcode::kAdd, isa::Opcode::kSub,
                isa::Opcode::kMul, isa::Opcode::kAnd,
                isa::Opcode::kOr};
            insn.op = alu[rng.next_below(5)];
            insn.dst = random_operand(rng, scratch, true);
            insn.src1 = random_operand(rng, scratch, false);
            insn.src2 = random_operand(rng, scratch, false);
            break;
          }
          case 3:
            insn.op = isa::Opcode::kMove;
            insn.dst = random_operand(rng, scratch, true);
            insn.src1 = random_operand(rng, scratch, false);
            break;
          case 4:
            insn.op = isa::Opcode::kCompare;
            insn.src1 = random_operand(rng, scratch, false);
            insn.src2 = random_operand(rng, scratch, false);
            break;
          case 5: {
            insn.op = isa::Opcode::kJump;
            insn.cond = static_cast<isa::Cond>(rng.next_below(7));
            // Forward target, possibly the terminal slot.
            const std::uint32_t current =
                static_cast<std::uint32_t>(code.size());
            insn.target = current + 1 +
                          static_cast<std::uint32_t>(rng.next_below(
                              body + 1 - current > 0
                                  ? body + 1 - current
                                  : 1));
            break;
          }
          case 6:
            insn.op = isa::Opcode::kNot;
            insn.dst = random_operand(rng, scratch, true);
            insn.src1 = random_operand(rng, scratch, false);
            break;
          default:
            insn.op = isa::Opcode::kNextIter;
            break;
        }
        code.push_back(insn);
    }
    code.push_back({.op = isa::Opcode::kReturn});
    // Patch any jump that overshot the terminal RETURN.
    for (std::size_t i = 0; i < code.size(); i++) {
        if (code[i].op == isa::Opcode::kJump &&
            code[i].target >= code.size()) {
            code[i].target =
                static_cast<std::uint32_t>(code.size() - 1);
        }
    }
    return isa::Program(std::move(code), scratch,
                        16 + static_cast<std::uint32_t>(
                                 rng.next_below(64)));
}

class ProgramFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProgramFuzz, VerifiedProgramsExecuteSafely)
{
    Rng rng(GetParam() * 1000003);
    int verified = 0;
    for (int trial = 0; trial < 200; trial++) {
        isa::Program program = random_program(rng);
        std::string error;
        if (!program.verify(&error)) {
            continue;  // rejected programs must merely not crash
        }
        verified++;
        // Execute with a self-looping memory: every load returns bytes
        // that point back at a valid address.
        isa::MemoryHooks hooks;
        hooks.load = [&rng](VirtAddr, std::uint32_t len,
                            std::uint8_t* out) {
            for (std::uint32_t i = 0; i < len; i++) {
                out[i] = static_cast<std::uint8_t>(rng.next_u64());
            }
            return true;
        };
        hooks.store = [](VirtAddr, std::uint32_t, const std::uint8_t*) {
            return true;
        };
        const auto outcome = run_traversal(program, 0x1000, ScratchBuffer{}, hooks);
        // Must terminate via a legal status within the iteration cap.
        EXPECT_LE(outcome.iterations, program.max_iters());
        EXPECT_TRUE(outcome.status == isa::TraversalStatus::kDone ||
                    outcome.status == isa::TraversalStatus::kMaxIter ||
                    outcome.status ==
                        isa::TraversalStatus::kExecFault);
        EXPECT_EQ(outcome.scratch.size(), program.scratch_bytes());
    }
    EXPECT_GT(verified, 10) << "fuzzer generates too few valid programs";
}

TEST_P(ProgramFuzz, CodecRoundTripsRandomPrograms)
{
    Rng rng(GetParam() * 7 + 3);
    for (int trial = 0; trial < 100; trial++) {
        isa::Program program = random_program(rng);
        const auto bytes = isa::encode_program(program);
        const auto decoded = isa::decode_program(bytes);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, program);
        EXPECT_LE(isa::wire_code_size(program), isa::encoded_size(program));
    }
}

TEST_P(ProgramFuzz, DecoderToleratesGarbage)
{
    Rng rng(GetParam() * 31 + 17);
    for (int trial = 0; trial < 300; trial++) {
        std::vector<std::uint8_t> garbage(rng.next_below(400));
        for (auto& byte : garbage) {
            byte = static_cast<std::uint8_t>(rng.next_u64());
        }
        // Must not crash; may or may not decode.
        const auto decoded = isa::decode_program(garbage);
        if (decoded) {
            std::string error;
            decoded->verify(&error);  // must not crash either
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------- scan fold equivalence

class ScanProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ScanProperty, OffloadedScansMatchReferenceAcrossShapes)
{
    Rng rng(GetParam() * 104729);
    ClusterConfig config;
    config.num_mem_nodes = 2;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    Cluster cluster(config);

    ds::BPTreeConfig tree_config;
    tree_config.inline_values = false;
    tree_config.leaf_slots =
        4 + static_cast<std::uint32_t>(rng.next_below(5));  // 4..8
    tree_config.leaf_fill = tree_config.leaf_slots -
                            static_cast<std::uint32_t>(
                                rng.next_below(2));
    tree_config.partitioned = false;
    tree_config.scatter_values = rng.next_bool(0.5);
    ds::BPTree tree(cluster.memory(), cluster.allocator(),
                    tree_config);
    std::vector<ds::BPTreeEntry> entries;
    std::uint64_t key = 1;
    const std::uint64_t n = 200 + rng.next_below(800);
    for (std::uint64_t i = 0; i < n; i++) {
        key += 1 + rng.next_below(5);
        entries.push_back({key, 0});
    }
    tree.build(entries);

    for (int probe = 0; probe < 5; probe++) {
        const std::uint64_t start = rng.next_range(1, key + 10);
        const std::uint64_t count = 1 + rng.next_below(100);
        const auto expected = tree.scan_reference(start, count);
        const auto completion = run_on(
            cluster, SystemKind::kPulse,
            tree.make_scan(start, count, {}));
        ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
        const auto result = ds::BPTree::parse_scan(completion);
        EXPECT_EQ(result.count, expected.count)
            << "start " << start << " count " << count;
        EXPECT_EQ(result.fold, expected.fold);
        EXPECT_EQ(result.last_key, expected.last_key);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace pulse
