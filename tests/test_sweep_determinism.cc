/**
 * @file
 * Determinism contract of the parallel sweep runner: a sweep executed
 * on N worker threads must produce results byte-identical to the
 * serial (--threads=1) run — same outcomes bit-for-bit, consume
 * callbacks and deferred metrics replay in add() order regardless of
 * which worker finished first.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sweep_runner.h"

namespace pulse::bench {
namespace {

/** Small, fast cells that still exercise distinct simulations. */
std::vector<RunSpec>
tiny_cells()
{
    std::vector<RunSpec> cells;
    for (const App app : {App::kUpc, App::kTc, App::kTsv15}) {
        for (const std::uint32_t concurrency : {1u, 4u}) {
            RunSpec spec =
                main_spec(app, core::SystemKind::kPulse, 1);
            spec.concurrency = concurrency;
            spec.warmup_ops = 5;
            spec.measure_ops = 20;
            cells.push_back(spec);
        }
    }
    return cells;
}

/** Run the tiny sweep at the given worker count, collecting outcomes
 *  and the order in which consume callbacks fire. */
std::vector<RunOutcome>
run_sweep(unsigned threads, std::vector<std::string>* consume_order)
{
    const unsigned saved = bench_options().threads;
    bench_options().threads = threads;
    const std::vector<RunSpec> cells = tiny_cells();
    std::vector<RunOutcome> outcomes(cells.size());
    SweepRunner sweep("determinism_test");
    for (std::size_t i = 0; i < cells.size(); i++) {
        const std::string label = cell_label(cells[i]);
        sweep.add_spec(label, cells[i],
                       [i, label, &outcomes,
                        consume_order](const RunOutcome& outcome) {
                           outcomes[i] = outcome;
                           if (consume_order != nullptr) {
                               consume_order->push_back(label);
                           }
                       });
    }
    sweep.run_all();
    bench_options().threads = saved;
    return outcomes;
}

/** Exact (bitwise) double equality — determinism means identical
 *  arithmetic, not merely close results. */
bool
same_bits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(SweepDeterminism, ParallelMatchesSerialBitForBit)
{
    const std::vector<RunOutcome> serial = run_sweep(1, nullptr);
    const std::vector<RunOutcome> parallel = run_sweep(4, nullptr);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); i++) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_EQ(serial[i].driver.completed,
                  parallel[i].driver.completed);
        EXPECT_EQ(serial[i].driver.iterations,
                  parallel[i].driver.iterations);
        EXPECT_EQ(serial[i].driver.errors, parallel[i].driver.errors);
        EXPECT_TRUE(same_bits(serial[i].mean_us,
                              parallel[i].mean_us));
        EXPECT_TRUE(same_bits(serial[i].p99_us, parallel[i].p99_us));
        EXPECT_TRUE(same_bits(serial[i].kops, parallel[i].kops));
        EXPECT_TRUE(same_bits(serial[i].mem_bw, parallel[i].mem_bw));
        EXPECT_TRUE(same_bits(serial[i].net_bw, parallel[i].net_bw));
        EXPECT_TRUE(same_bits(serial[i].joules_per_op,
                              parallel[i].joules_per_op));
        EXPECT_TRUE(same_bits(serial[i].avg_iterations,
                              parallel[i].avg_iterations));
    }
}

TEST(SweepDeterminism, ConsumeRunsInAddOrderUnderParallelism)
{
    std::vector<std::string> expected_order;
    for (const RunSpec& spec : tiny_cells()) {
        expected_order.push_back(cell_label(spec));
    }
    std::vector<std::string> order;
    run_sweep(4, &order);
    EXPECT_EQ(order, expected_order);
}

TEST(SweepDeterminism, RepeatedSerialRunsAreIdentical)
{
    const std::vector<RunOutcome> first = run_sweep(1, nullptr);
    const std::vector<RunOutcome> second = run_sweep(1, nullptr);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++) {
        EXPECT_TRUE(same_bits(first[i].mean_us, second[i].mean_us));
        EXPECT_EQ(first[i].driver.completed,
                  second[i].driver.completed);
    }
}

TEST(SweepDeterminism, BespokeCellsRunAndAccountEvents)
{
    bench_options().threads = 2;
    std::vector<int> ran(3, 0);
    SweepRunner sweep("bespoke_test");
    for (int i = 0; i < 3; i++) {
        sweep.add("cell" + std::to_string(i),
                  [i, &ran](CellContext& ctx) {
                      ctx.add_events(100);
                      ran[i] = i + 1;
                  });
    }
    sweep.run_all();
    bench_options().threads = 1;
    EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(BenchOptions, ParseArgsStripsHarnessFlags)
{
    const unsigned saved_threads = bench_options().threads;
    const double saved_scale = bench_options().ops_scale;

    char prog[] = "bench";
    char threads_flag[] = "--threads=3";
    char keep[] = "--benchmark_filter=x";
    char scale_flag[] = "--ops-scale=0.5";
    char* argv[] = {prog, threads_flag, keep, scale_flag, nullptr};
    int argc = 4;
    parse_bench_args(argc, argv);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--benchmark_filter=x");
    EXPECT_EQ(argv[2], nullptr);
    EXPECT_EQ(bench_options().threads, 3u);
    EXPECT_EQ(bench_options().ops_scale, 0.5);

    bench_options().threads = saved_threads;
    bench_options().ops_scale = saved_scale;
}

TEST(BenchOptions, OpsScaleFloorsAtOneOp)
{
    const double saved = bench_options().ops_scale;
    RunSpec spec;
    spec.warmup_ops = 100;
    spec.measure_ops = 600;

    bench_options().ops_scale = 0.001;
    RunSpec scaled = apply_ops_scale(spec);
    EXPECT_EQ(scaled.warmup_ops, 1u);
    EXPECT_EQ(scaled.measure_ops, 1u);

    // Exactly 1.0 bypasses the arithmetic entirely (bit-identity).
    bench_options().ops_scale = 1.0;
    scaled = apply_ops_scale(spec);
    EXPECT_EQ(scaled.warmup_ops, 100u);
    EXPECT_EQ(scaled.measure_ops, 600u);

    bench_options().ops_scale = saved;
}

}  // namespace
}  // namespace pulse::bench
