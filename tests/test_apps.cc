/**
 * @file
 * Tests for the application layer (UPC / TC / TSV setups) — the
 * paper-facing workload characteristics of Table 2: chain lengths,
 * iteration counts, eta values, and partitioning behaviour.
 */
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "isa/analysis.h"

namespace pulse::apps {
namespace {

offload::Completion
run_op(core::Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    return result;
}

AppScale
small_scale()
{
    AppScale scale;
    scale.upc_keys = 20'000;
    scale.tc_keys = 15'000;
    scale.tsv_samples = 60'000;
    return scale;
}

TEST(UpcApp, ChainLengthMatchesTable2)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    core::Cluster cluster(config);
    UpcApp app(cluster, small_scale());

    // Table 2: ~100 visited nodes per lookup (high load factor).
    Rng rng(1);
    auto factory = app.factory();
    std::uint64_t iterations = 0;
    const int n = 60;
    for (int i = 0; i < n; i++) {
        const auto completion = run_op(cluster, factory(i));
        ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
        iterations += completion.iterations;
    }
    const double avg = static_cast<double>(iterations) / n;
    EXPECT_GT(avg, 60.0);
    EXPECT_LT(avg, 160.0);
}

TEST(UpcApp, LookupsAlwaysSucceedAndVerify)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    UpcApp app(cluster, small_scale());
    auto factory = app.factory();
    for (int i = 0; i < 30; i++) {
        auto op = factory(i);
        const std::uint64_t key = op.object_id;  // factory sets it
        const auto completion = run_op(cluster, std::move(op));
        const auto result = app.table().parse_find(completion);
        ASSERT_TRUE(result.found) << "op " << i;
        EXPECT_EQ(result.value_word, ds::value_pattern_word(key));
    }
}

TEST(TsvApp, IterationCountsScaleWithWindow)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    const AppScale scale = small_scale();

    double last_avg = 0.0;
    for (const double window : {7.5, 15.0}) {
        TsvApp app(cluster, scale, window, false,
                   /*seed=*/static_cast<std::uint64_t>(window * 10));
        auto factory = app.factory();
        std::uint64_t iterations = 0;
        const int n = 25;
        for (int i = 0; i < n; i++) {
            const auto completion = run_op(cluster, factory(i));
            ASSERT_EQ(completion.status,
                      isa::TraversalStatus::kDone);
            iterations += completion.iterations;
        }
        const double avg = static_cast<double>(iterations) / n;
        // Table 2: ~45 iterations at 7.5 s, roughly doubling per
        // window doubling.
        if (window == 7.5) {
            EXPECT_NEAR(avg, 45.0, 8.0);
        } else {
            EXPECT_NEAR(avg, 2.0 * last_avg, last_avg * 0.2);
        }
        last_avg = avg;
    }
}

TEST(TcApp, ScansFoldConsistently)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    core::Cluster cluster(config);
    TcApp app(cluster, small_scale(), /*uniform_alloc=*/true);
    auto factory = app.factory();
    for (int i = 0; i < 15; i++) {
        const auto completion = run_op(cluster, factory(i));
        ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
        const auto result = ds::BPTree::parse_scan(completion);
        EXPECT_TRUE(result.complete);
        EXPECT_GE(result.count, 1u);
    }
}

TEST(Apps, DataByteEstimatesAreSane)
{
    const AppScale scale = small_scale();
    EXPECT_GT(upc_data_bytes(scale), scale.upc_keys * 256);
    EXPECT_GT(tc_data_bytes(scale), scale.tc_keys * 240);
    EXPECT_GT(tsv_data_bytes(scale), scale.tsv_samples * 16);
}

TEST(Apps, Table2EtaOrdering)
{
    // eta(UPC) << eta(TC) < eta(TSV), all <= 1 (Table 2).
    core::ClusterConfig config;
    core::Cluster cluster(config);
    const AppScale scale = small_scale();
    UpcApp upc(cluster, scale);
    TcApp tc(cluster, scale);
    TsvApp tsv(cluster, scale, 7.5);

    auto& engine = cluster.offload_engine();
    const auto eta = [&](const auto& program) {
        return compute_eta(engine.analysis_for(program),
                           engine.config().t_i, engine.config().t_d);
    };
    const double upc_eta = eta(upc.table().find_program());
    const double tc_eta = eta(tc.tree().scan_fold_program());
    const double tsv_eta =
        eta(tsv.tree().aggregate_program(ds::AggKind::kMin));
    EXPECT_LT(upc_eta, 0.15);
    EXPECT_GT(tc_eta, upc_eta * 4);
    EXPECT_GT(tsv_eta, tc_eta);
    EXPECT_LE(tsv_eta, 1.0);
}

}  // namespace
}  // namespace pulse::apps
