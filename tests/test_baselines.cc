/**
 * @file
 * Unit tests for the baseline systems: the page cache, the Cache-based
 * client, the RPC runtime (worker pools, bounces, TCP factor) and the
 * AIFM-style object cache.
 */
#include <gtest/gtest.h>

#include "baselines/page_cache.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "workloads/driver.h"

namespace pulse::baselines {
namespace {

using isa::TraversalStatus;

// -------------------------------------------------------- page cache

TEST(PageCache, LruEviction)
{
    PageCache cache(3 * 4096, 4096);
    EXPECT_EQ(cache.capacity_pages(), 3u);
    cache.fill(0x0000);
    cache.fill(0x1000);
    cache.fill(0x2000);
    EXPECT_TRUE(cache.access(0x0000));  // refresh page 0
    cache.fill(0x3000);                 // evicts LRU = page 1
    EXPECT_TRUE(cache.access(0x0000));
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x2000));
    EXPECT_TRUE(cache.access(0x3000));
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(PageCache, PageAlignment)
{
    PageCache cache(16 * 4096, 4096);
    cache.fill(0x1234);  // fills page 0x1000
    EXPECT_TRUE(cache.access(0x1FFF));
    EXPECT_FALSE(cache.access(0x2000));
    EXPECT_EQ(cache.page_of(0x1FFF), 0x1000u);
}

TEST(PageCache, RedundantFillIsNoop)
{
    PageCache cache(2 * 4096, 4096);
    cache.fill(0x1000);
    cache.fill(0x1100);  // same page
    EXPECT_EQ(cache.resident(), 1u);
}

TEST(PageCache, StatsAndClear)
{
    PageCache cache(2 * 4096, 4096);
    cache.fill(0x0);
    cache.access(0x0);
    cache.access(0x5000);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.clear();
    EXPECT_EQ(cache.resident(), 0u);
    cache.reset_stats();
    EXPECT_EQ(cache.hits(), 0u);
}

// ------------------------------------------------------ cache client

TEST(CacheClient, WarmRunsAvoidFaults)
{
    core::ClusterConfig config;
    config.cache.cache_bytes = 8 * kMiB;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(100);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    auto run_find = [&](std::uint64_t value) {
        offload::Completion result;
        auto op = list.make_find(value, {});
        op.done = [&](offload::Completion&& completion) {
            result = std::move(completion);
        };
        cluster.cache_client().submit(std::move(op));
        cluster.queue().run();
        return result;
    };

    const auto cold = run_find(99);
    const std::uint64_t cold_faults =
        cluster.cache_client().stats().faults.value();
    EXPECT_GT(cold_faults, 0u);
    const auto warm = run_find(99);
    EXPECT_EQ(cluster.cache_client().stats().faults.value(),
              cold_faults);
    // Warm run: pure hit-path latency (100 hits x ~80 ns) -- no
    // faults, so at least the two cold fault round-trips are gone.
    EXPECT_LT(warm.latency, cold.latency / 2);
    EXPECT_LT(warm.latency, micros(15.0));
    EXPECT_EQ(warm.iterations, cold.iterations);
}

TEST(CacheClient, FaultHandlersBoundConcurrency)
{
    // With one fault handler, concurrent misses serialize; with many
    // they overlap. Compare makespans for 8 parallel single-fault ops.
    const auto run = [](std::uint32_t handlers) {
        core::ClusterConfig config;
        config.cache.fault_handlers = handlers;
        config.cache.cache_bytes = 256 * kKiB;
        core::Cluster cluster(config);
        ds::LinkedList list(cluster.memory(), cluster.allocator());
        // Nodes page-aligned apart: every find(1 hop) is 1 fault.
        std::vector<std::uint64_t> values(8);
        for (std::size_t i = 0; i < values.size(); i++) {
            values[i] = i;
            list.build({i}, 0);
        }
        workloads::DriverConfig driver;
        driver.warmup_ops = 0;
        driver.measure_ops = 8;
        driver.concurrency = 8;
        Rng rng(1);
        auto result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kCache),
            [&](std::uint64_t i) {
                return list.make_find(i % 8, {});
            },
            driver);
        return result.measure_time;
    };
    EXPECT_GT(run(1), run(8));
}

TEST(CacheClient, UnmappedPointerFaults)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1}, 0);
    cluster.memory().write_as<std::uint64_t>(list.head() + 8,
                                             0xBAD000ull);
    offload::Completion result;
    auto op = list.make_find(2, {});
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.cache_client().submit(std::move(op));
    cluster.queue().run();
    EXPECT_EQ(result.status, TraversalStatus::kMemFault);
}

// -------------------------------------------------------------- rpc

TEST(RpcRuntime, WorkersParallelizeThroughput)
{
    const auto run = [](std::uint32_t workers) {
        core::ClusterConfig config;
        config.rpc.workers_per_node = workers;
        core::Cluster cluster(config);
        ds::HashTable table(cluster.memory(), cluster.allocator(),
                            ds::HashTableConfig{.num_buckets = 32});
        for (std::uint64_t k = 1; k <= 512; k++) {
            table.insert(k);
        }
        Rng rng(3);
        workloads::DriverConfig driver;
        driver.warmup_ops = 32;
        driver.measure_ops = 400;
        driver.concurrency = 64;
        auto result = run_closed_loop(
            cluster.queue(), cluster.submitter(core::SystemKind::kRpc),
            [&](std::uint64_t) {
                return table.make_find(1 + rng.next_below(512), {});
            },
            driver);
        return result.throughput;
    };
    const double one = run(1);
    const double four = run(4);
    EXPECT_GT(four, one * 3.0);
}

TEST(RpcRuntime, BusyTimeTracksWork)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(50);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);
    offload::Completion result;
    auto op = list.make_find(49, {});
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.rpc().submit(std::move(op));
    cluster.queue().run();
    EXPECT_EQ(result.status, TraversalStatus::kDone);
    // Busy >= 50 iterations x dram latency.
    EXPECT_GE(cluster.rpc().stats().worker_busy_time.sum(),
              50.0 * static_cast<double>(nanos(100.0)));
    EXPECT_EQ(cluster.rpc().stats().iterations.value(), 50u);
}

TEST(RpcRuntime, TcpTransportSlowerThanErpc)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 16});
    for (std::uint64_t k = 1; k <= 64; k++) {
        table.insert(k);
    }
    const auto run = [&](baselines::RpcRuntime& rpc) {
        offload::Completion result;
        auto op = table.make_find(7, {});
        op.done = [&](offload::Completion&& completion) {
            result = std::move(completion);
        };
        rpc.submit(std::move(op));
        cluster.queue().run();
        return result.latency;
    };
    const Time erpc = run(cluster.rpc());
    const Time tcp = run(cluster.rpc_tcp());
    EXPECT_GT(tcp, erpc);
}

// -------------------------------------------------------------- aifm

TEST(Aifm, EvictsByBytes)
{
    core::ClusterConfig config;
    config.aifm.cache_bytes = 1024;  // 4 x 256 B objects
    core::Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 8});
    for (std::uint64_t k = 1; k <= 16; k++) {
        table.insert(k);
    }
    auto run = [&](std::uint64_t key) {
        auto op = table.make_find(key, {});
        op.object_id = key;
        op.object_bytes = 256;
        op.done = nullptr;
        cluster.aifm().submit(std::move(op));
        cluster.queue().run();
    };
    for (std::uint64_t k = 1; k <= 6; k++) {
        run(k);  // 6 objects through a 4-object cache
    }
    EXPECT_EQ(cluster.aifm().stats().evictions.value(), 2u);
    run(6);  // most recent: still cached
    EXPECT_EQ(cluster.aifm().stats().hits.value(), 1u);
    run(1);  // evicted long ago
    EXPECT_EQ(cluster.aifm().stats().misses.value(), 7u);
}

TEST(Aifm, UncacheableOpsBypassTheCache)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 8});
    table.insert(5);
    for (int i = 0; i < 3; i++) {
        auto op = table.make_find(5, {});
        op.object_bytes = 0;  // not cacheable
        op.done = nullptr;
        cluster.aifm().submit(std::move(op));
        cluster.queue().run();
    }
    EXPECT_EQ(cluster.aifm().stats().hits.value(), 0u);
    EXPECT_EQ(cluster.aifm().stats().misses.value(), 0u);
    EXPECT_EQ(cluster.aifm().stats().operations.value(), 3u);
}

}  // namespace
}  // namespace pulse::baselines
