/**
 * @file
 * Unit tests for the pulse ISA: program verification, the builder,
 * assembler/disassembler, binary codec, interpreter semantics, and the
 * traversal engine (including null-page and MAX_ITER behaviour).
 */
#include <gtest/gtest.h>

#include <cstring>

#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/codec.h"
#include "isa/interpreter.h"
#include "isa/program.h"
#include "isa/traversal.h"

namespace pulse::isa {
namespace {

Program
simple_count_program(std::uint64_t until)
{
    // Counts iterations in sp[0]; never loads memory. Terminates when
    // sp[0] == until.
    ProgramBuilder b;
    b.add(sp(0), sp(0), imm(1))
        .compare(sp(0), imm(until))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

TEST(ProgramVerify, EmptyProgramRejected)
{
    Program program;
    std::string error;
    EXPECT_FALSE(program.verify(&error));
    EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(ProgramVerify, BackwardJumpRejected)
{
    std::vector<Instruction> code;
    code.push_back({.op = Opcode::kMove, .dst = sp(0), .src1 = imm(1)});
    code.push_back({.op = Opcode::kJump, .cond = Cond::kAlways,
                    .target = 0});
    code.push_back({.op = Opcode::kReturn});
    Program program(std::move(code), 64, 16);
    std::string error;
    EXPECT_FALSE(program.verify(&error));
    EXPECT_NE(error.find("backward"), std::string::npos);
}

TEST(ProgramVerify, LoadOnlyAtInstructionZero)
{
    std::vector<Instruction> code;
    code.push_back({.op = Opcode::kMove, .dst = sp(0), .src1 = imm(1)});
    code.push_back({.op = Opcode::kLoad, .src1 = imm(64)});
    code.push_back({.op = Opcode::kReturn});
    Program program(std::move(code), 64, 16);
    EXPECT_FALSE(program.verify());
}

TEST(ProgramVerify, LoadSizeBounds)
{
    for (const std::uint64_t len : {std::uint64_t{0},
                                    std::uint64_t{257}}) {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kLoad, .src1 = imm(len)});
        code.push_back({.op = Opcode::kReturn});
        Program program(std::move(code), 64, 16);
        EXPECT_FALSE(program.verify()) << "len=" << len;
    }
}

TEST(ProgramVerify, ScratchOffsetOutOfRangeRejected)
{
    std::vector<Instruction> code;
    code.push_back({.op = Opcode::kMove, .dst = sp(60), .src1 = imm(1)});
    code.push_back({.op = Opcode::kReturn});
    Program program(std::move(code), 64, 16);
    EXPECT_FALSE(program.verify());  // 60 + 8 > 64
}

TEST(ProgramVerify, FallOffEndRejected)
{
    std::vector<Instruction> code;
    code.push_back({.op = Opcode::kMove, .dst = sp(0), .src1 = imm(1)});
    Program program(std::move(code), 64, 16);
    EXPECT_FALSE(program.verify());
}

TEST(ProgramVerify, VectorMoveRequiresEqualVectorOperands)
{
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kMove, .dst = sp(0, 64),
                        .src1 = dat(0, 64)});
        code.push_back({.op = Opcode::kReturn});
        Program ok(std::move(code), 128, 16);
        EXPECT_TRUE(ok.verify());
    }
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kMove, .dst = sp(0, 64),
                        .src1 = imm(1)});
        code.push_back({.op = Opcode::kReturn});
        Program bad(std::move(code), 128, 16);
        EXPECT_FALSE(bad.verify());
    }
    {
        // Wide widths on ALU ops stay illegal.
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kAdd, .dst = sp(0, 64),
                        .src1 = sp(0, 64), .src2 = imm(1)});
        code.push_back({.op = Opcode::kReturn});
        Program bad(std::move(code), 128, 16);
        EXPECT_FALSE(bad.verify());
    }
}

TEST(Interpreter, AluAndFlags)
{
    ProgramBuilder b;
    b.move(sp(0), imm(21))
        .add(sp(0), sp(0), sp(0))     // 42
        .sub(sp(8), sp(0), imm(2))    // 40
        .mul(sp(16), sp(8), imm(3))   // 120
        .div(sp(24), sp(16), imm(7))  // 17
        .band(sp(32), sp(24), imm(0xF))
        .bor(sp(40), sp(32), imm(0x10))
        .bnot(sp(48), imm(0))
        .ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());

    Workspace ws;
    ws.configure(program);
    IterationResult result = run_iteration(program, ws);
    EXPECT_EQ(result.end, IterEnd::kReturn);
    EXPECT_EQ(ws.read(sp(0)), 42u);
    EXPECT_EQ(ws.read(sp(8)), 40u);
    EXPECT_EQ(ws.read(sp(16)), 120u);
    EXPECT_EQ(ws.read(sp(24)), 17u);
    EXPECT_EQ(ws.read(sp(32)), 0x1u);
    EXPECT_EQ(ws.read(sp(40)), 0x11u);
    EXPECT_EQ(ws.read(sp(48)), ~std::uint64_t{0});
}

TEST(Interpreter, DivideByZeroFaults)
{
    ProgramBuilder b;
    b.div(sp(0), imm(1), sp(8)).ret();
    Program program = b.build();
    Workspace ws;
    ws.configure(program);
    IterationResult result = run_iteration(program, ws);
    EXPECT_EQ(result.end, IterEnd::kFault);
    EXPECT_EQ(result.fault, ExecFault::kDivideByZero);
}

TEST(Interpreter, SignedCompareSemantics)
{
    // -1 < 1 under signed comparison even though 0xFF... > 1 unsigned.
    ProgramBuilder b;
    b.compare(imm(~std::uint64_t{0}), imm(1))
        .jump_lt("lt")
        .move(sp(0), imm(2))
        .ret()
        .label("lt")
        .move(sp(0), imm(1))
        .ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    Workspace ws;
    ws.configure(program);
    run_iteration(program, ws);
    EXPECT_EQ(ws.read(sp(0)), 1u);
}

TEST(Interpreter, NarrowWidthsZeroExtendAndTruncate)
{
    ProgramBuilder b;
    b.move(sp(0), imm(0x1122334455667788ull))
        .move(sp(8, 2), sp(0, 2))     // low 16 bits
        .move(sp(16), sp(8, 2))       // zero-extended read
        .ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    Workspace ws;
    ws.configure(program);
    run_iteration(program, ws);
    EXPECT_EQ(ws.read(sp(16)), 0x7788u);
}

TEST(Interpreter, VectorMoveCopiesBytes)
{
    ProgramBuilder b;
    b.move(sp(0, 32), dat(8, 32)).ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    Workspace ws;
    ws.configure(program);
    for (int i = 0; i < 64; i++) {
        ws.data[i] = static_cast<std::uint8_t>(i);
    }
    run_iteration(program, ws);
    for (int i = 0; i < 32; i++) {
        EXPECT_EQ(ws.scratch[i], i + 8);
    }
}

TEST(Interpreter, StoreCapturedNotApplied)
{
    ProgramBuilder b;
    b.store(16, 0, 8).ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    Workspace ws;
    ws.configure(program);
    IterationResult result = run_iteration(program, ws);
    ASSERT_EQ(result.stores.size(), 1u);
    EXPECT_EQ(result.stores[0].mem_offset, 16u);
    EXPECT_EQ(result.stores[0].length, 8u);
}

TEST(Traversal, CountLoopTerminates)
{
    Program program = simple_count_program(10);
    MemoryHooks hooks;  // no loads in this program
    TraversalOutcome outcome =
        run_traversal(program, kNullAddr, ScratchBuffer{}, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kDone);
    EXPECT_EQ(outcome.iterations, 10u);
}

TEST(Traversal, MaxIterStopsRunaway)
{
    Program program = simple_count_program(1000);
    MemoryHooks hooks;
    TraversalOutcome outcome =
        run_traversal(program, kNullAddr, ScratchBuffer{}, hooks, /*max_iters=*/16);
    EXPECT_EQ(outcome.status, TraversalStatus::kMaxIter);
    EXPECT_EQ(outcome.iterations, 16u);
    // Repeated continuations from the returned scratch (what the
    // offload engine does) complete the traversal.
    std::uint64_t total = outcome.iterations;
    int rounds = 0;
    while (outcome.status == TraversalStatus::kMaxIter) {
        outcome = run_traversal(program, outcome.final_ptr,
                                outcome.scratch, hooks, 16);
        total += outcome.iterations;
        ASSERT_LT(++rounds, 100);
    }
    EXPECT_EQ(outcome.status, TraversalStatus::kDone);
    EXPECT_EQ(total, 1000u);
}

TEST(Traversal, NullPointerLoadsZeros)
{
    // Program checks cur_ptr == 0 -> writes marker and returns.
    ProgramBuilder b;
    b.load(16)
        .compare(cur(), imm(0))
        .jump_eq("null")
        .move(cur(), imm(0))
        .next_iter()
        .label("null")
        .move(sp(0), dat(0))  // zeros from the null page
        .move(sp(8), imm(7))
        .ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    int loads = 0;
    MemoryHooks hooks;
    hooks.load = [&](VirtAddr, std::uint32_t, std::uint8_t*) {
        loads++;
        return true;
    };
    TraversalOutcome outcome =
        run_traversal(program, kNullAddr, ScratchBuffer{}, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kDone);
    EXPECT_EQ(loads, 0);  // the null page never reaches the hook
    std::uint64_t marker = 0;
    std::memcpy(&marker, outcome.scratch.data() + 8, 8);
    EXPECT_EQ(marker, 7u);
}

TEST(Traversal, LoadFailureReportsMemFault)
{
    ProgramBuilder b;
    b.load(16).move(cur(), dat(0)).next_iter();
    Program program = b.build();
    ASSERT_TRUE(program.verify());
    MemoryHooks hooks;
    hooks.load = [](VirtAddr, std::uint32_t, std::uint8_t*) {
        return false;
    };
    TraversalOutcome outcome =
        run_traversal(program, 0x1000, ScratchBuffer{}, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kMemFault);
}

TEST(Analysis, WorstPathUsesLongestBranch)
{
    // Branchy program: taken path is 2 logic instructions, fallthrough
    // is 5; worst path must be the fallthrough.
    ProgramBuilder b;
    b.compare(sp(0), imm(1))
        .jump_eq("short")
        .add(sp(8), sp(8), imm(1))
        .add(sp(8), sp(8), imm(1))
        .add(sp(8), sp(8), imm(1))
        .ret()
        .label("short")
        .ret();
    Program program = b.build();
    ProgramAnalysis analysis = analyze(program);
    ASSERT_TRUE(analysis.valid);
    // COMPARE, JUMP, ADD, ADD, ADD, RETURN
    EXPECT_EQ(analysis.worst_path_instructions, 6u);
}

TEST(Analysis, FootprintsAndFlags)
{
    ProgramBuilder b;
    b.load(64)
        .div(sp(0), dat(56), imm(2))
        .store(8, 0, 16)
        .move(sp(120), imm(1))
        .ret();
    Program program = b.build();
    ProgramAnalysis analysis = analyze(program);
    ASSERT_TRUE(analysis.valid) << analysis.error;
    EXPECT_EQ(analysis.load_bytes, 64u);
    EXPECT_EQ(analysis.max_data_ref, 64u);       // dat(56) + 8
    EXPECT_EQ(analysis.scratch_footprint, 128u); // sp(120) + 8
    EXPECT_TRUE(analysis.has_store);
    EXPECT_TRUE(analysis.has_div);
}

TEST(Analysis, EtaMatchesHandComputation)
{
    ProgramBuilder b;
    b.load(16)
        .compare(sp(0), dat(0))
        .jump_eq("done")
        .move(cur(), dat(8))
        .next_iter()
        .label("done")
        .ret();
    Program program = b.build();
    ProgramAnalysis analysis = analyze(program);
    ASSERT_TRUE(analysis.valid);
    // Worst path: COMPARE, JUMP, MOVE, NEXT_ITER = 4.
    EXPECT_EQ(analysis.worst_path_instructions, 4u);
    const Time t_i = nanos(1.0);
    EXPECT_EQ(compute_time(analysis, t_i), nanos(4.0));
    EXPECT_DOUBLE_EQ(compute_eta(analysis, t_i, nanos(100.0)), 0.04);
}

TEST(Codec, RoundTripPreservesProgram)
{
    ProgramBuilder b;
    b.load(256)
        .compare(sp(0), dat(0))
        .jump_eq("found")
        .compare(imm(0), dat(8))
        .jump_eq("notfound")
        .move(cur(), dat(8))
        .next_iter()
        .label("notfound")
        .move(sp(8), imm(0xDEADBEEFDEADBEEFull))
        .ret()
        .label("found")
        .move(sp(16, 240), dat(16, 240))
        .ret();
    b.scratch_bytes(264).max_iters(128);
    Program program = b.build();
    ASSERT_TRUE(program.verify());

    const auto bytes = encode_program(program);
    EXPECT_EQ(bytes.size(), encoded_size(program));
    const auto decoded = decode_program(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, program);
    EXPECT_TRUE(decoded->verify());
}

TEST(Codec, RejectsCorruptBuffers)
{
    ProgramBuilder b;
    b.move(sp(0), imm(1)).ret();
    Program program = b.build();
    auto bytes = encode_program(program);

    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_FALSE(decode_program(truncated).has_value());

    auto bad_opcode = bytes;
    bad_opcode[8] = 0xFF;
    EXPECT_FALSE(decode_program(bad_opcode).has_value());

    EXPECT_FALSE(decode_program({}).has_value());
}

TEST(Codec, WireSizeSmallerThanDiagnostic)
{
    ProgramBuilder b;
    b.load(64)
        .move(sp(0), imm(0x123456789ABCDEFull))
        .move(sp(8), imm(0x123456789ABCDEFull))  // deduplicated
        .ret();
    Program program = b.build();
    const Bytes wire = wire_code_size(program);
    EXPECT_LT(wire, encoded_size(program));
    // header 8 + 4 insns * 8 + 1 pooled immediate * 8.
    EXPECT_EQ(wire, 8u + 4 * 8 + 8);
}

TEST(Assembler, RoundTripWithDisassembler)
{
    const char* source = R"(
        .scratch 64
        .max_iters 32
        LOAD 16
        COMPARE sp[0:8] data[0:8]
        JUMP_EQ found
        COMPARE 0 data[8]
        JUMP_EQ notfound
        MOVE cur_ptr data[8]
        NEXT_ITER
      notfound:
        MOVE sp[8] 42
        RETURN
      found:
        MOVE sp[8] data[8]
        RETURN
    )";
    AssembleResult result = assemble(source);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(result.program->verify());
    EXPECT_EQ(result.program->scratch_bytes(), 64u);
    EXPECT_EQ(result.program->max_iters(), 32u);
    EXPECT_EQ(result.program->size(), 11u);
    EXPECT_FALSE(result.program->disassemble().empty());
}

TEST(Assembler, DiagnosticsCarryLineNumbers)
{
    AssembleResult result = assemble("LOAD 16\nBOGUS x y\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("line 2"), std::string::npos);

    result = assemble("JUMP_EQ nowhere\nRETURN\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("undefined label"), std::string::npos);

    result = assemble("x:\nx:\nRETURN\n");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("duplicate"), std::string::npos);
}

}  // namespace
}  // namespace pulse::isa
