/**
 * @file
 * Property tests for the adaptive RTO estimator (RFC 6298 in integer
 * picoseconds): clamp bounds hold under arbitrary jitter streams, the
 * timeout is monotone in sample variance, the srtt-multiplier floor is
 * respected, and reset() restores the pre-sample state.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "offload/rto_estimator.h"

namespace pulse::offload {
namespace {

constexpr Time kInitial = 1'000'000;  // 1 us in ps
constexpr Time kMin = 100'000;
constexpr Time kMax = 50'000'000;

TEST(RtoEstimator, InitialTimeoutUntilFirstSample)
{
    RtoEstimator estimator(kInitial, kMin, kMax, 1.5);
    EXPECT_FALSE(estimator.has_sample());
    EXPECT_EQ(estimator.rto(), kInitial);

    estimator.sample(800'000);
    EXPECT_TRUE(estimator.has_sample());
    // RFC 6298 first sample: srtt = R, rttvar = R/2.
    EXPECT_EQ(estimator.srtt(), 800'000);
    EXPECT_EQ(estimator.rttvar(), 400'000);
    EXPECT_EQ(estimator.rto(), 800'000 + 4 * 400'000);

    estimator.reset();
    EXPECT_FALSE(estimator.has_sample());
    EXPECT_EQ(estimator.rto(), kInitial);
}

TEST(RtoEstimator, ClampBoundsHoldUnderExtremeJitter)
{
    // Property: whatever the sample stream — huge spikes, zeros,
    // alternating extremes — rto() stays inside [min, max].
    Rng rng(0xD15EA5E);
    for (int stream = 0; stream < 64; stream++) {
        RtoEstimator estimator(kInitial, kMin, kMax, 1.5);
        const int n = 1 + static_cast<int>(rng.next_below(200));
        for (int i = 0; i < n; i++) {
            Time rtt = 0;
            switch (rng.next_below(4)) {
            case 0:  // tiny
                rtt = static_cast<Time>(rng.next_below(1000));
                break;
            case 1:  // around the initial value
                rtt = static_cast<Time>(rng.next_range(
                    500'000, 2'000'000));
                break;
            case 2:  // enormous spike (would exceed max unclamped)
                rtt = static_cast<Time>(rng.next_range(
                    100'000'000, 10'000'000'000ull));
                break;
            default:  // negative input is clamped to zero inside
                rtt = -static_cast<Time>(rng.next_below(1'000'000));
                break;
            }
            estimator.sample(rtt);
            const Time rto = estimator.rto();
            EXPECT_GE(rto, kMin) << "stream " << stream;
            EXPECT_LE(rto, kMax) << "stream " << stream;
            EXPECT_GE(estimator.rttvar(), 0) << "stream " << stream;
        }
    }
}

/** Feed an alternating center +/- dev stream; return the final rto. */
Time
rto_for_deviation(Time center, Time dev, int samples)
{
    RtoEstimator estimator(kInitial, kMin, kMax, /*multiplier=*/1.0);
    for (int i = 0; i < samples; i++) {
        estimator.sample(i % 2 == 0 ? center + dev : center - dev);
    }
    return estimator.rto();
}

TEST(RtoEstimator, TimeoutIsMonotoneInVariance)
{
    // Property: same center, more jitter => never a smaller timeout.
    const Time center = 5'000'000;
    Time previous = 0;
    for (const Time dev :
         {0ll, 10'000ll, 100'000ll, 500'000ll, 1'000'000ll,
          2'000'000ll}) {
        const Time rto = rto_for_deviation(center, dev, 64);
        EXPECT_GE(rto, previous) << "dev " << dev;
        previous = rto;
    }
}

TEST(RtoEstimator, UniformRttsConvergeTowardSrttFloor)
{
    // Identical samples collapse rttvar; the srtt-multiplier floor
    // must keep rto() >= srtt * multiplier (then clamped).
    RtoEstimator estimator(kInitial, kMin, kMax, /*multiplier=*/2.0);
    for (int i = 0; i < 256; i++) {
        estimator.sample(1'000'000);
    }
    EXPECT_EQ(estimator.srtt(), 1'000'000);
    EXPECT_GE(estimator.rto(), 2'000'000);

    // And the floor itself is clamped by max_rto.
    RtoEstimator capped(kInitial, kMin, /*max_rto=*/1'500'000, 2.0);
    for (int i = 0; i < 256; i++) {
        capped.sample(1'000'000);
    }
    EXPECT_EQ(capped.rto(), 1'500'000);
}

TEST(RtoEstimator, SpikeRaisesThenCalmDecays)
{
    // Sanity on the Jacobson dynamics: a spike inflates the timeout,
    // a long calm stretch brings it back down (never below the floor).
    RtoEstimator estimator(kInitial, kMin, kMax, 1.0);
    for (int i = 0; i < 32; i++) {
        estimator.sample(1'000'000);
    }
    const Time calm = estimator.rto();
    estimator.sample(20'000'000);
    const Time spiked = estimator.rto();
    EXPECT_GT(spiked, calm);
    for (int i = 0; i < 256; i++) {
        estimator.sample(1'000'000);
    }
    EXPECT_LT(estimator.rto(), spiked);
}

}  // namespace
}  // namespace pulse::offload
