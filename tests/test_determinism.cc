/**
 * @file
 * Determinism: two identically-configured simulations must produce
 * bit-identical results and timings. Every benchmark number in
 * EXPERIMENTS.md rests on this property — equal-timestamp events run
 * in FIFO insertion order and all randomness is seeded.
 */
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "workloads/driver.h"

namespace pulse {
namespace {

struct RunDigest
{
    std::uint64_t completed = 0;
    std::uint64_t iterations = 0;
    Time mean = 0;
    Time p99 = 0;
    Time measure_time = 0;
    Bytes client_bytes = 0;
    std::uint64_t accel_loads = 0;

    friend bool operator==(const RunDigest&,
                           const RunDigest&) = default;
};

RunDigest
run_once(core::SystemKind system, std::uint32_t concurrency)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.accel.workspaces_per_logic = 8;
    core::Cluster cluster(config);
    apps::AppScale scale;
    scale.upc_keys = 25'000;
    apps::UpcApp app(cluster, scale);

    workloads::DriverConfig driver;
    driver.warmup_ops = 30;
    driver.measure_ops = 300;
    driver.concurrency = concurrency;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    const auto result =
        run_closed_loop(cluster.queue(), cluster.submitter(system),
                        app.factory(), driver);

    RunDigest digest;
    digest.completed = result.completed;
    digest.iterations = result.iterations;
    digest.mean = result.latency.mean();
    digest.p99 = result.latency.percentile(0.99);
    digest.measure_time = result.measure_time;
    digest.client_bytes = cluster.client_network_bytes();
    for (NodeId node = 0; node < 2; node++) {
        digest.accel_loads +=
            cluster.accelerator(node).stats().loads.value();
    }
    return digest;
}

TEST(Determinism, PulseUnloadedRunsAreBitIdentical)
{
    EXPECT_EQ(run_once(core::SystemKind::kPulse, 1),
              run_once(core::SystemKind::kPulse, 1));
}

TEST(Determinism, PulseLoadedRunsAreBitIdentical)
{
    EXPECT_EQ(run_once(core::SystemKind::kPulse, 64),
              run_once(core::SystemKind::kPulse, 64));
}

TEST(Determinism, BaselinesAreBitIdenticalToo)
{
    for (const core::SystemKind system :
         {core::SystemKind::kRpc, core::SystemKind::kCache}) {
        EXPECT_EQ(run_once(system, 8), run_once(system, 8))
            << core::system_name(system);
    }
}

TEST(Determinism, LossyNetworkIsSeededDeterministic)
{
    const auto run = [] {
        core::ClusterConfig config;
        config.network.loss_probability = 0.05;
        config.offload.retransmit_timeout = micros(300.0);
        core::Cluster cluster(config);
        apps::AppScale scale;
        scale.upc_keys = 5'000;
        apps::UpcApp app(cluster, scale);
        workloads::DriverConfig driver;
        driver.warmup_ops = 0;
        driver.measure_ops = 100;
        driver.concurrency = 4;
        const auto result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse),
            app.factory(), driver);
        return std::make_tuple(
            result.completed, result.errors,
            result.latency.mean(),
            cluster.offload_engine().stats().retransmits.value(),
            cluster.network().packets_dropped());
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pulse
