/**
 * @file
 * Unit tests for the network substrate: packets, links, the
 * programmable switch's routing policy, and the rack network.
 */
#include <gtest/gtest.h>

#include "isa/program.h"
#include "net/network.h"

namespace pulse::net {
namespace {

std::shared_ptr<const isa::Program>
tiny_program()
{
    isa::ProgramBuilder b;
    b.load(16)
        .compare(isa::sp(0), isa::dat(0))
        .jump_eq("done")
        .move(isa::cur(), isa::dat(8))
        .next_iter()
        .label("done")
        .ret();
    return std::make_shared<const isa::Program>(b.build());
}

// ----------------------------------------------------------- packet

TEST(Packet, WireSizeAccountsAllFields)
{
    const auto program = tiny_program();
    TraversalPacket packet;
    attach_program(packet, program);
    packet.scratch.assign(64, 0);
    EXPECT_EQ(packet.wire_size(), kNetHeaderBytes + kPulseHeaderBytes +
                                      packet.code_size + 64);
    EXPECT_GT(packet.code_size, 0u);
    // Program ids are much smaller than shipped code.
    EXPECT_GT(packet.code_size, kCodeIdBytes);
}

// ------------------------------------------------------------- link

TEST(Link, SerializationPlusPropagation)
{
    Link link(gbps_bits(100.0), micros(2.0));
    // 12500 B at 12.5 GB/s = 1 us serialization + 2 us propagation.
    const Time arrival = link.transmit(0, 12'500);
    EXPECT_EQ(arrival, micros(3.0));
    EXPECT_EQ(link.bytes_sent(), 12'500u);
}

TEST(Link, BackToBackPacketsQueue)
{
    Link link(gbps_bits(100.0), 0);
    const Time first = link.transmit(0, 12'500);
    const Time second = link.transmit(0, 12'500);
    EXPECT_EQ(second, 2 * first);
    // After idle, no queueing.
    const Time third = link.transmit(second + micros(5.0), 12'500);
    EXPECT_EQ(third, second + micros(5.0) + first);
}

// ------------------------------------------------------------ switch

TEST(SwitchTable, LookupByRange)
{
    SwitchTable table;
    table.add_rule({0x1000, 0x1000, 0});
    table.add_rule({0x2000, 0x1000, 1});
    EXPECT_EQ(table.num_rules(), 2u);
    EXPECT_EQ(*table.lookup(0x1800), 0u);
    EXPECT_EQ(*table.lookup(0x2000), 1u);
    EXPECT_FALSE(table.lookup(0x3000).has_value());
    EXPECT_TRUE(table.remove_rule(0));
    EXPECT_FALSE(table.lookup(0x1800).has_value());
}

TEST(SwitchTable, RequestsRouteByCurPtr)
{
    SwitchTable table;
    table.add_rule({0x1000, 0x1000, 0});
    TraversalPacket packet;
    packet.origin = 3;
    packet.cur_ptr = 0x1400;
    const RouteDecision decision = table.route(packet);
    EXPECT_EQ(decision.destination,
              EndpointAddr::mem_node(0));
    EXPECT_FALSE(decision.invalid_pointer);
}

TEST(SwitchTable, NotLocalResponsesReRoute)
{
    SwitchTable table;
    table.add_rule({0x1000, 0x1000, 0});
    table.add_rule({0x2000, 0x1000, 1});
    TraversalPacket packet;
    packet.origin = 0;
    packet.is_response = true;
    packet.status = isa::TraversalStatus::kNotLocal;
    packet.cur_ptr = 0x2400;
    packet.allow_switch_continuation = true;
    EXPECT_EQ(table.route(packet).destination,
              EndpointAddr::mem_node(1));

    // pulse-ACC: the same packet goes back to the client.
    packet.allow_switch_continuation = false;
    EXPECT_EQ(table.route(packet).destination,
              EndpointAddr::client(0));
}

TEST(SwitchTable, CompletedResponsesGoToOrigin)
{
    SwitchTable table;
    table.add_rule({0x1000, 0x1000, 0});
    TraversalPacket packet;
    packet.origin = 2;
    packet.is_response = true;
    packet.status = isa::TraversalStatus::kDone;
    packet.cur_ptr = 0x1400;  // even though it matches a node
    EXPECT_EQ(table.route(packet).destination,
              EndpointAddr::client(2));
}

TEST(SwitchTable, InvalidPointerFlagged)
{
    SwitchTable table;
    table.add_rule({0x1000, 0x1000, 0});
    TraversalPacket packet;
    packet.origin = 1;
    packet.cur_ptr = 0x9999;
    const RouteDecision decision = table.route(packet);
    EXPECT_TRUE(decision.invalid_pointer);
    EXPECT_EQ(decision.destination, EndpointAddr::client(1));
}

// ----------------------------------------------------------- network

struct NetFixture : ::testing::Test
{
    NetFixture()
    {
        config.num_clients = 1;
        config.num_mem_nodes = 2;
    }

    sim::EventQueue queue;
    NetworkConfig config;
};

TEST_F(NetFixture, MessageDeliveryTiming)
{
    Network network(queue, config);
    Time delivered_at = -1;
    network.send_message(EndpointAddr::client(0),
                         EndpointAddr::mem_node(1), 1250,
                         [&] { delivered_at = queue.now(); });
    queue.run();
    // NIC 350 ns + serialization 100 ns + prop 2 us + switch 600 ns +
    // serialization 100 ns + prop 2 us = ~5.15 us.
    EXPECT_NEAR(to_micros(delivered_at), 5.15, 0.05);
    EXPECT_EQ(network.bytes_sent_by(EndpointAddr::client(0)), 1250u);
    EXPECT_EQ(network.bytes_received_by(EndpointAddr::mem_node(1)),
              1250u);
}

TEST_F(NetFixture, TraversalRoutedThroughSwitchTable)
{
    Network network(queue, config);
    network.switch_table().add_rule({0x5000, 0x1000, 1});
    bool delivered = false;
    network.attach_traversal_sink(
        EndpointAddr::mem_node(1), [&](TraversalPacket&& packet) {
            delivered = true;
            EXPECT_EQ(packet.cur_ptr, 0x5800u);
        });
    network.attach_traversal_sink(EndpointAddr::mem_node(0),
                                  [&](TraversalPacket&&) {
                                      FAIL() << "routed to wrong node";
                                  });
    const auto program = tiny_program();
    TraversalPacket packet;
    attach_program(packet, program);
    packet.cur_ptr = 0x5800;
    network.send_traversal(EndpointAddr::client(0), std::move(packet));
    queue.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(network.packets_routed(), 1u);
}

TEST_F(NetFixture, InvalidPointerBecomesMemFaultResponse)
{
    Network network(queue, config);  // no rules installed
    bool delivered = false;
    network.attach_traversal_sink(
        EndpointAddr::client(0), [&](TraversalPacket&& packet) {
            delivered = true;
            EXPECT_TRUE(packet.is_response);
            EXPECT_EQ(packet.status,
                      isa::TraversalStatus::kMemFault);
        });
    const auto program = tiny_program();
    TraversalPacket packet;
    attach_program(packet, program);
    packet.origin = 0;
    packet.cur_ptr = 0xBAD;
    network.send_traversal(EndpointAddr::client(0), std::move(packet));
    queue.run();
    EXPECT_TRUE(delivered);
}

TEST_F(NetFixture, ForwardedContinuationBecomesRequest)
{
    Network network(queue, config);
    network.switch_table().add_rule({0x5000, 0x1000, 1});
    bool delivered = false;
    network.attach_traversal_sink(
        EndpointAddr::mem_node(1), [&](TraversalPacket&& packet) {
            delivered = true;
            EXPECT_FALSE(packet.is_response);  // request again
        });
    const auto program = tiny_program();
    TraversalPacket packet;
    attach_program(packet, program);
    packet.is_response = true;
    packet.status = isa::TraversalStatus::kNotLocal;
    packet.cur_ptr = 0x5100;
    network.send_traversal(EndpointAddr::mem_node(0),
                           std::move(packet));
    queue.run();
    EXPECT_TRUE(delivered);
}

TEST_F(NetFixture, LossDropsDeterministically)
{
    config.loss_probability = 1.0;
    Network network(queue, config);
    network.send_message(EndpointAddr::client(0),
                         EndpointAddr::mem_node(0), 100,
                         [] { FAIL() << "lost packet delivered"; });
    queue.run();
    EXPECT_EQ(network.packets_dropped(), 1u);
}

TEST_F(NetFixture, StatsReset)
{
    Network network(queue, config);
    network.send_message(EndpointAddr::client(0),
                         EndpointAddr::mem_node(0), 500, [] {});
    queue.run();
    EXPECT_GT(network.bytes_sent_by(EndpointAddr::client(0)), 0u);
    network.reset_stats();
    EXPECT_EQ(network.bytes_sent_by(EndpointAddr::client(0)), 0u);
    EXPECT_EQ(network.packets_routed(), 0u);
}

}  // namespace
}  // namespace pulse::net
