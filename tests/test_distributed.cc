/**
 * @file
 * Deep tests of rack-scale distributed traversals (paper section 5):
 * scratchpad integrity across many continuation hops, 4-node routing,
 * loss during forwarding, hierarchical-translation consistency, and
 * per-visit budgets interacting with node crossings.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/linked_list.h"

namespace pulse::core {
namespace {

using isa::TraversalStatus;

offload::Completion
run_op(Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    bool done = false;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
        done = true;
    };
    cluster.offload_engine().submit(std::move(op));
    cluster.queue().run();
    EXPECT_TRUE(done);
    return result;
}

/** A list that visits all nodes round-robin. */
ds::LinkedList
round_robin_list(Cluster& cluster, std::uint64_t length,
                 std::uint32_t nodes)
{
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    for (std::uint64_t v = 0; v < length; v++) {
        list.build({v}, static_cast<NodeId>(v % nodes));
    }
    return list;
}

TEST(Distributed, ScratchpadStateSurvivesEveryHop)
{
    // The walk program accumulates state (remaining counter + last
    // value) in the scratch_pad across 63 cross-node continuations;
    // any lost or stale byte would corrupt the count.
    ClusterConfig config;
    config.num_mem_nodes = 4;
    Cluster cluster(config);
    ds::LinkedList list = round_robin_list(cluster, 64, 4);

    const auto completion = run_op(cluster, list.make_walk(64, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.iterations, 64u);
    std::uint64_t last = 0;
    std::memcpy(&last,
                completion.scratch.data() + ds::LinkedList::kSpLast, 8);
    EXPECT_EQ(last, 63u);
    // All four accelerators took part.
    for (NodeId node = 0; node < 4; node++) {
        EXPECT_GT(cluster.accelerator(node).stats().loads.value(), 0u)
            << "node " << node;
    }
}

TEST(Distributed, FourNodeRoutingIsExact)
{
    ClusterConfig config;
    config.num_mem_nodes = 4;
    Cluster cluster(config);
    ds::LinkedList list = round_robin_list(cluster, 16, 4);
    run_op(cluster, list.make_walk(16, {}));
    // Each node performed exactly its share of the 16 loads.
    for (NodeId node = 0; node < 4; node++) {
        EXPECT_EQ(cluster.accelerator(node).stats().loads.value(), 4u);
    }
    // 15 hops cross nodes (round-robin never stays local).
    std::uint64_t forwards = 0;
    for (NodeId node = 0; node < 4; node++) {
        forwards +=
            cluster.accelerator(node).stats().forwards_sent.value();
    }
    EXPECT_EQ(forwards, 15u);
}

TEST(Distributed, LossDuringForwardingIsRecovered)
{
    ClusterConfig config;
    config.num_mem_nodes = 2;
    // Each walk is ~26 packets end to end (every hop forwards), so
    // per-attempt success is loss^26-ish; 2% loss leaves ~59% per
    // attempt and retransmission recovers essentially everything.
    config.network.loss_probability = 0.02;
    config.offload.retransmit_timeout = micros(400.0);
    Cluster cluster(config);
    ds::LinkedList list = round_robin_list(cluster, 24, 2);

    int successes = 0;
    for (int trial = 0; trial < 20; trial++) {
        const auto completion =
            run_op(cluster, list.make_walk(24, {}));
        if (completion.status == TraversalStatus::kDone) {
            std::uint64_t last = 0;
            std::memcpy(&last,
                        completion.scratch.data() +
                            ds::LinkedList::kSpLast,
                        8);
            EXPECT_EQ(last, 23u);  // retries never corrupt results
            successes++;
        }
    }
    EXPECT_GE(successes, 19);
    EXPECT_GT(cluster.offload_engine().stats().retransmits.value(),
              0u);
}

TEST(Distributed, PerVisitBudgetSpansNodeCrossings)
{
    // A 2-node round-robin list longer than MAX_ITER: continuations
    // from both the iteration cap and node crossings interleave.
    ClusterConfig config;
    config.num_mem_nodes = 2;
    Cluster cluster(config);
    ds::LinkedList list = round_robin_list(cluster, 700, 2);

    const auto completion = run_op(cluster, list.make_find(699, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.iterations, 700u);
    std::uint64_t found = 0;
    std::memcpy(&found,
                completion.scratch.data() + ds::LinkedList::kSpResult,
                8);
    EXPECT_EQ(found, *list.find_reference(699));
}

TEST(Distributed, SwitchTableConsistentWithTcams)
{
    // Hierarchical translation invariant: any VA the switch maps to a
    // node must translate in that node's TCAM, and vice versa.
    ClusterConfig config;
    config.num_mem_nodes = 3;
    Cluster cluster(config);
    Rng rng(4);
    const auto& map = cluster.memory().address_map();
    for (int i = 0; i < 2000; i++) {
        const VirtAddr va =
            mem::AddressMap::kDefaultBase +
            rng.next_below(3ull * config.node_capacity);
        const auto switch_node =
            cluster.network().switch_table().lookup(va);
        const auto map_node = map.node_for(va);
        ASSERT_EQ(switch_node.has_value(), map_node.has_value());
        if (switch_node) {
            EXPECT_EQ(*switch_node, *map_node);
            const auto translated =
                cluster.accelerator(*switch_node)
                    .tcam()
                    .translate(va, mem::Perm::kRead);
            EXPECT_EQ(translated.status,
                      mem::TranslateStatus::kOk);
            EXPECT_EQ(translated.phys, map.offset_in_region(va));
        }
    }
}

TEST(Distributed, PartitionedBPTreeCrossesOnlyAtTheSeam)
{
    // Partitioned placement: an aggregate window inside one partition
    // never crosses; a window spanning the partition boundary crosses
    // exactly once.
    ClusterConfig config;
    config.num_mem_nodes = 2;
    Cluster cluster(config);
    ds::BPTreeConfig tree_config;
    tree_config.inline_values = true;
    tree_config.partitioned = true;
    tree_config.partitions = 2;
    ds::BPTree tree(cluster.memory(), cluster.allocator(),
                    tree_config);
    std::vector<ds::BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 2000; i++) {
        entries.push_back({i * 10, i});
    }
    tree.build(entries);

    const auto count_forwards = [&] {
        std::uint64_t forwards = 0;
        for (NodeId node = 0; node < 2; node++) {
            forwards += cluster.accelerator(node)
                            .stats()
                            .forwards_sent.value();
        }
        return forwards;
    };

    // Window fully inside partition 0 (low keys; the root also lives
    // on node 0): zero crossings.
    cluster.reset_stats();
    auto inside = run_op(cluster, tree.make_aggregate(
                                      ds::AggKind::kSum, 2'000,
                                      2'500, {}));
    ASSERT_EQ(inside.status, TraversalStatus::kDone);
    EXPECT_EQ(count_forwards(), 0u);

    // Window fully inside partition 1: exactly one crossing, during
    // the descent from the node-0 root into the node-1 subtree.
    cluster.reset_stats();
    auto far_side = run_op(cluster, tree.make_aggregate(
                                        ds::AggKind::kSum, 15'000,
                                        15'500, {}));
    ASSERT_EQ(far_side.status, TraversalStatus::kDone);
    EXPECT_EQ(count_forwards(), 1u);

    // Window spanning the seam: descends within node 0, crosses once
    // while walking the leaf chain into partition 1.
    cluster.reset_stats();
    auto spanning = run_op(cluster, tree.make_aggregate(
                                        ds::AggKind::kSum, 9'800,
                                        10'300, {}));
    ASSERT_EQ(spanning.status, TraversalStatus::kDone);
    EXPECT_EQ(count_forwards(), 1u);
    // And the result is still exact.
    EXPECT_EQ(
        ds::BPTree::parse_aggregate(spanning, ds::AggKind::kSum).value,
        tree.aggregate_reference(ds::AggKind::kSum, 9'800, 10'300)
            .value);
}

}  // namespace
}  // namespace pulse::core
