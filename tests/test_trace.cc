/**
 * @file
 * Tests for the tracing + metrics layer (src/trace): the span ring
 * buffer, the deterministic exports, the metrics exporter, and the
 * end-to-end properties the subsystem promises — tracing must not
 * perturb simulation results, identically-seeded runs must export
 * byte-identical traces, and the trace-derived latency decomposition
 * must agree with the accelerator's built-in busy-time accounting.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "ds/linked_list.h"
#include "trace/metrics_exporter.h"
#include "trace/trace.h"
#include "workloads/driver.h"

namespace pulse {
namespace {

using trace::Location;
using trace::SpanEvent;
using trace::SpanKind;

SpanEvent
make_event(std::uint64_t seq, Time start = 0, Time duration = 10)
{
    SpanEvent event;
    event.request = RequestId{0, seq};
    event.kind = SpanKind::kAccelScheduler;
    event.location = Location::kMemNode;
    event.start = start;
    event.duration = duration;
    return event;
}

// ----------------------------------------------------------- tracer

TEST(Tracer, DisabledRecordsNothing)
{
    trace::Tracer tracer;  // default config: disabled
    EXPECT_FALSE(tracer.enabled());
    tracer.record(make_event(1));
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, RecordsInOrder)
{
    trace::TraceConfig config;
    config.enabled = true;
    trace::Tracer tracer(config);
    for (std::uint64_t seq = 0; seq < 5; seq++) {
        tracer.record(make_event(seq));
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t seq = 0; seq < 5; seq++) {
        EXPECT_EQ(events[seq].request.seq, seq);
    }
    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldest)
{
    trace::TraceConfig config;
    config.enabled = true;
    config.ring_capacity = 4;
    trace::Tracer tracer(config);
    for (std::uint64_t seq = 0; seq < 7; seq++) {
        tracer.record(make_event(seq));
    }
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 7u);
    EXPECT_EQ(tracer.dropped(), 3u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // The oldest retained event is seq 3; order is preserved.
    for (std::uint64_t i = 0; i < 4; i++) {
        EXPECT_EQ(events[i].request.seq, i + 3);
    }
}

TEST(Tracer, ClearResetsEverything)
{
    trace::TraceConfig config;
    config.enabled = true;
    config.ring_capacity = 2;
    trace::Tracer tracer(config);
    for (std::uint64_t seq = 0; seq < 5; seq++) {
        tracer.record(make_event(seq));
    }
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    tracer.record(make_event(9));
    ASSERT_EQ(tracer.events().size(), 1u);
    EXPECT_EQ(tracer.events()[0].request.seq, 9u);
}

TEST(Tracer, CsvHasHeaderAndOneLinePerEvent)
{
    trace::TraceConfig config;
    config.enabled = true;
    trace::Tracer tracer(config);
    tracer.record(make_event(7, nanos(1.0), nanos(2.0)));
    const std::string csv = tracer.to_csv();
    EXPECT_EQ(csv,
              "client,seq,kind,location,location_index,start_ps,"
              "duration_ps,detail\n"
              "0,7,scheduler,node,0,1000,2000,0\n");
}

TEST(Trace, AggregateBreakdownCountsLoads)
{
    std::vector<SpanEvent> events;
    SpanEvent mem = make_event(1, 0, nanos(120.0));
    mem.kind = SpanKind::kAccelMemPipeline;
    mem.detail = 64;  // performed a DRAM load
    events.push_back(mem);
    mem.detail = 0;  // TCAM-only (null pointer chase)
    mem.duration = nanos(6.0);
    events.push_back(mem);
    SpanEvent logic = make_event(1, 0, nanos(7.0));
    logic.kind = SpanKind::kAccelLogicPipeline;
    events.push_back(logic);

    const trace::Breakdown breakdown =
        trace::aggregate_breakdown(events);
    EXPECT_EQ(breakdown.of(SpanKind::kAccelMemPipeline).count, 2u);
    EXPECT_EQ(breakdown.dram_loads, 1u);
    // Per-load time divides the full pipeline time by loads only.
    EXPECT_DOUBLE_EQ(breakdown.mem_pipeline_ns_per_load(), 126.0);
    EXPECT_DOUBLE_EQ(breakdown.logic_ns_per_iter(), 7.0);
}

// ------------------------------------------------- metrics exporter

TEST(MetricsExporter, DeterministicSortedJson)
{
    trace::MetricsExporter exporter;
    exporter.set("b.second", 2.5);
    exporter.set("a.first", 1.0);
    const std::string json = exporter.json();
    EXPECT_EQ(json,
              "{\n  \"a.first\": 1,\n  \"b.second\": 2.5\n}\n");
    trace::MetricsExporter same;
    same.set("a.first", 1.0);
    same.set("b.second", 2.5);
    EXPECT_EQ(same.json(), json);
}

TEST(MetricsExporter, CsvRender)
{
    trace::MetricsExporter exporter;
    exporter.set("x", 0.1);
    EXPECT_EQ(exporter.csv(), "metric,value\nx,0.1\n");
}

TEST(MetricsExporter, HistogramSummary)
{
    Histogram histogram;
    for (int i = 1; i <= 10; i++) {
        histogram.add(i);
    }
    trace::MetricsExporter exporter;
    exporter.add_histogram("lat", histogram);
    const std::string json = exporter.json();
    EXPECT_NE(json.find("\"lat.count\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"lat.min\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"lat.max\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"lat.p50\""), std::string::npos);
}

// ------------------------------------------------------ end-to-end

struct TracedRun
{
    workloads::DriverResult result;
    std::string trace_csv;
    accel::AccelStats stats;
};

TracedRun
run_list_walk(bool tracing)
{
    core::ClusterConfig config;
    config.trace.enabled = tracing;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator(), 64);
    std::vector<std::uint64_t> values(256);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    workloads::DriverConfig driver;
    driver.warmup_ops = 10;
    driver.measure_ops = 100;
    driver.concurrency = 4;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    TracedRun run;
    run.result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t op) {
            return list.make_walk(8 + op % 16, {});
        },
        driver);
    run.trace_csv = cluster.tracer().to_csv();
    run.stats = cluster.accelerator(0).stats();
    return run;
}

TEST(TraceEndToEnd, TracingDoesNotPerturbResults)
{
    const TracedRun off = run_list_walk(false);
    const TracedRun on = run_list_walk(true);
    EXPECT_EQ(off.result.completed, on.result.completed);
    EXPECT_EQ(off.result.measure_time, on.result.measure_time);
    EXPECT_EQ(off.result.iterations, on.result.iterations);
    EXPECT_EQ(off.result.latency.count(), on.result.latency.count());
    EXPECT_EQ(off.result.latency.sum(), on.result.latency.sum());
    // Disabled run exported nothing; enabled run recorded spans.
    EXPECT_EQ(off.trace_csv.find("\n0,"), std::string::npos);
    EXPECT_NE(on.trace_csv.find("net_stack_rx"), std::string::npos);
}

TEST(TraceEndToEnd, SeededRunsExportIdenticalTraces)
{
    const TracedRun a = run_list_walk(true);
    const TracedRun b = run_list_walk(true);
    EXPECT_EQ(a.trace_csv, b.trace_csv);
}

TEST(TraceEndToEnd, BreakdownMatchesAccountingExactly)
{
    core::ClusterConfig config;
    config.trace.enabled = true;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator(), 64);
    std::vector<std::uint64_t> values(256);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    workloads::DriverConfig driver;
    driver.warmup_ops = 10;
    driver.measure_ops = 150;
    driver.concurrency = 2;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t op) {
            return list.make_walk(4 + op % 8, {});
        },
        driver);

    const trace::Breakdown breakdown =
        trace::aggregate_breakdown(cluster.tracer().events());
    const auto& stats = cluster.accelerator(0).stats();
    // Span durations mirror the busy-time accumulators one-for-one,
    // so the sums agree exactly, not just within a tolerance.
    EXPECT_DOUBLE_EQ(
        breakdown.of(SpanKind::kAccelNetStackRx).total_ps +
            breakdown.of(SpanKind::kAccelNetStackTx).total_ps,
        stats.net_stack_time.sum());
    EXPECT_DOUBLE_EQ(breakdown.of(SpanKind::kAccelScheduler).total_ps,
                     stats.scheduler_time.sum());
    EXPECT_DOUBLE_EQ(
        breakdown.of(SpanKind::kAccelMemPipeline).total_ps,
        stats.mem_pipeline_time.sum());
    EXPECT_DOUBLE_EQ(
        breakdown.of(SpanKind::kAccelLogicPipeline).total_ps,
        stats.logic_pipeline_time.sum());
    EXPECT_DOUBLE_EQ(
        breakdown.of(SpanKind::kAccelWorkspaceWait).total_ps,
        stats.workspace_wait_time.sum());
    EXPECT_EQ(breakdown.dram_loads, stats.loads.value());
    EXPECT_EQ(breakdown.of(SpanKind::kAccelLogicPipeline).count,
              stats.iterations.value());
}

TEST(TraceEndToEnd, ResetStatsClearsTracer)
{
    core::ClusterConfig config;
    config.trace.enabled = true;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator(), 64);
    list.build({1, 2, 3, 4}, 0);
    bool done = false;
    auto op = list.make_walk(3, {});
    op.done = [&done](offload::Completion&&) { done = true; };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    ASSERT_TRUE(done);
    EXPECT_GT(cluster.tracer().size(), 0u);
    cluster.reset_stats();
    EXPECT_EQ(cluster.tracer().size(), 0u);
    EXPECT_EQ(cluster.tracer().recorded(), 0u);
}

}  // namespace
}  // namespace pulse
