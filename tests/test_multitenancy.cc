/**
 * @file
 * Multi-tenant tests: multiple CPU nodes sharing one rack's
 * accelerators (request ids keep completions separated), plus the
 * fair-share admission policy of the supplementary material's
 * isolation extension — a flooding tenant must not starve a light one.
 */
#include <gtest/gtest.h>

#include "accel/admission_queue.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "serve/qos.h"
#include "sim/event_queue.h"

namespace pulse {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

// ------------------------------------------------- admission queue

net::TraversalPacket
packet_from(ClientId client, std::uint64_t seq)
{
    net::TraversalPacket packet;
    packet.id = RequestId{client, seq};
    packet.origin = client;
    return packet;
}

TEST(AdmissionQueue, FifoPreservesArrivalOrder)
{
    accel::AdmissionQueue queue(accel::SchedPolicy::kFifo);
    queue.push(packet_from(0, 1));
    queue.push(packet_from(1, 2));
    queue.push(packet_from(0, 3));
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.pop().id.seq, 1u);
    EXPECT_EQ(queue.pop().id.seq, 2u);
    EXPECT_EQ(queue.pop().id.seq, 3u);
    EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueue, FairShareInterleavesClients)
{
    accel::AdmissionQueue queue(accel::SchedPolicy::kFairShare);
    // Client 0 floods; client 1 enqueues one request last.
    for (std::uint64_t i = 1; i <= 5; i++) {
        queue.push(packet_from(0, i));
    }
    queue.push(packet_from(1, 100));
    // The lone client-1 request is served within the first two pops.
    const auto first = queue.pop();
    const auto second = queue.pop();
    EXPECT_TRUE(first.origin == 1 || second.origin == 1);
    // Remaining pops drain client 0 in its own FIFO order.
    std::uint64_t previous = 0;
    while (!queue.empty()) {
        const auto packet = queue.pop();
        EXPECT_EQ(packet.origin, 0u);
        EXPECT_GT(packet.id.seq, previous);
        previous = packet.id.seq;
    }
}

TEST(AdmissionQueue, FairShareRoundRobinsManyClients)
{
    accel::AdmissionQueue queue(accel::SchedPolicy::kFairShare);
    for (ClientId client = 0; client < 4; client++) {
        for (std::uint64_t i = 0; i < 3; i++) {
            queue.push(packet_from(client, i));
        }
    }
    // Twelve pops: each window of 4 serves all 4 clients once.
    for (int round = 0; round < 3; round++) {
        std::set<ClientId> seen;
        for (int i = 0; i < 4; i++) {
            seen.insert(queue.pop().origin);
        }
        EXPECT_EQ(seen.size(), 4u) << "round " << round;
    }
}

/**
 * Regression: a flow that drains and immediately re-arrives must wait
 * one full rotation, not jump back to the head. The old cursor-based
 * round-robin left the cursor just past the drained flow's key, so a
 * fast re-arriving client could be re-served before peers that had
 * been waiting longer got their turn.
 */
TEST(AdmissionQueue, FairShareReArrivingClientWaitsItsTurn)
{
    accel::AdmissionQueue queue(accel::SchedPolicy::kFairShare);
    queue.push(packet_from(0, 1));
    queue.push(packet_from(0, 2));
    queue.push(packet_from(0, 3));
    queue.push(packet_from(1, 100));
    EXPECT_EQ(queue.pop().id.seq, 1u);    // client 0's turn
    EXPECT_EQ(queue.pop().id.seq, 100u);  // client 1 drains here
    // Client 1 re-arrives: it joins the ring's tail, behind client 0.
    queue.push(packet_from(1, 101));
    EXPECT_EQ(queue.pop().id.seq, 2u);
    EXPECT_EQ(queue.pop().id.seq, 101u);
    EXPECT_EQ(queue.pop().id.seq, 3u);
    EXPECT_TRUE(queue.empty());
}

net::TraversalPacket
tenant_packet(std::uint32_t tenant, std::uint64_t seq)
{
    net::TraversalPacket packet = packet_from(0, seq);
    packet.tenant = tenant;
    return packet;
}

TEST(AdmissionQueue, WeightedDrrWithoutQosIsPlainRoundRobin)
{
    accel::AdmissionQueue queue(accel::SchedPolicy::kWeightedDrr);
    for (std::uint64_t i = 0; i < 3; i++) {
        queue.push(tenant_packet(0, i * 2));
        queue.push(tenant_packet(1, i * 2 + 1));
    }
    // No controller attached: every tenant's quantum is 1.
    for (int round = 0; round < 3; round++) {
        EXPECT_EQ(queue.pop().tenant, 0u) << "round " << round;
        EXPECT_EQ(queue.pop().tenant, 1u) << "round " << round;
    }
}

TEST(AdmissionQueue, WeightedDrrServesTenantsInWeightProportion)
{
    sim::EventQueue clock;
    serve::ServeConfig serve_config;
    serve_config.on = true;
    serve_config.tenants.push_back({.id = 0, .weight = 3});
    serve_config.tenants.push_back({.id = 1, .weight = 1});
    serve::QosController qos(clock, serve_config);

    accel::AdmissionQueue queue(accel::SchedPolicy::kWeightedDrr);
    queue.set_qos(&qos);
    for (std::uint64_t i = 0; i < 8; i++) {
        queue.push(tenant_packet(0, i));
        queue.push(tenant_packet(1, 100 + i));
    }
    // Weight 3 vs 1: each full round serves 3 of tenant 0, then 1 of
    // tenant 1, and packets within a tenant stay in FIFO order.
    const std::uint32_t expected[] = {0, 0, 0, 1, 0, 0, 0, 1,
                                      0, 0, 1, 1};
    std::uint64_t seq0 = 0;
    std::uint64_t seq1 = 100;
    for (std::size_t i = 0; i < std::size(expected); i++) {
        const auto packet = queue.pop();
        EXPECT_EQ(packet.tenant, expected[i]) << "pop " << i;
        if (packet.tenant == 0) {
            EXPECT_EQ(packet.id.seq, seq0++);
        } else {
            EXPECT_EQ(packet.id.seq, seq1++);
        }
    }
    // Tenant 0 drained after 8 pops of its packets; the tail is all
    // tenant 1.
    while (!queue.empty()) {
        EXPECT_EQ(queue.pop().tenant, 1u);
    }
    EXPECT_EQ(seq0, 8u);
}

// ---------------------------------------------------- multi-client

TEST(MultiClient, TwoClientsShareTheRackCorrectly)
{
    ClusterConfig config;
    config.num_clients = 2;
    config.num_mem_nodes = 2;
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 16,
                                            .partitions = 2});
    for (std::uint64_t k = 1; k <= 200; k++) {
        table.insert(k);
    }

    int done[2] = {0, 0};
    int correct[2] = {0, 0};
    for (int i = 0; i < 40; i++) {
        const ClientId client = i % 2;
        const std::uint64_t key = 1 + (i * 7) % 200;
        auto op = table.make_find(key, {});
        op.done = [&, client, key](offload::Completion&& completion) {
            done[client]++;
            const auto result = table.parse_find(completion);
            if (result.found &&
                result.value_word == ds::value_pattern_word(key)) {
                correct[client]++;
            }
        };
        cluster.submitter(SystemKind::kPulse, client)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(done[0], 20);
    EXPECT_EQ(done[1], 20);
    EXPECT_EQ(correct[0], 20);
    EXPECT_EQ(correct[1], 20);
    EXPECT_EQ(cluster.offload_engine(0).stats().offloaded.value(),
              20u);
    EXPECT_EQ(cluster.offload_engine(1).stats().offloaded.value(),
              20u);
}

// --------------------------------------------------- fair isolation

/**
 * Tenant A floods a small accelerator with long walks while tenant B
 * issues short lookups. Under FIFO, B queues behind A's backlog;
 * under fair share, B's requests jump the per-client queue.
 */
Time
victim_latency(accel::SchedPolicy policy)
{
    ClusterConfig config;
    config.num_clients = 2;
    config.accel.sched_policy = policy;
    // A tiny accelerator so queueing dominates: 1 core, 1 workspace.
    config.accel.num_cores = 1;
    config.accel.workspaces_per_logic = 1;
    Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(512);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    // Tenant A: 32 long walks, all submitted at t=0.
    for (int i = 0; i < 32; i++) {
        auto op = list.make_walk(400, {});
        op.done = nullptr;
        cluster.submitter(SystemKind::kPulse, 0)(std::move(op));
    }
    // Tenant B: one short lookup, submitted just after.
    Time latency = 0;
    bool done = false;
    cluster.queue().schedule_after(micros(5.0), [&] {
        auto op = list.make_walk(4, {});
        op.done = [&](offload::Completion&& completion) {
            latency = completion.latency;
            done = true;
        };
        cluster.submitter(SystemKind::kPulse, 1)(std::move(op));
    });
    cluster.queue().run();
    EXPECT_TRUE(done);
    return latency;
}

TEST(FairShare, IsolatesVictimFromFloodingTenant)
{
    const Time fifo = victim_latency(accel::SchedPolicy::kFifo);
    const Time fair = victim_latency(accel::SchedPolicy::kFairShare);
    // Under FIFO the victim waits for most of the flood; fair-share
    // serves it after at most one in-service request.
    EXPECT_GT(fifo, fair * 5);
    EXPECT_LT(fair, micros(120.0));
}

}  // namespace
}  // namespace pulse
