/**
 * @file
 * End-to-end integration tests: operations submitted through the full
 * simulated rack (offload engine -> NIC -> switch -> accelerator ->
 * response, and each baseline's path) must return correct results with
 * sane timing, including multi-node traversals continued in-network.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "workloads/driver.h"

namespace pulse::core {
namespace {

using baselines::CacheClientConfig;
using ds::kKeyNotFound;
using isa::TraversalStatus;

/** Submit one op and run the queue until its completion arrives. */
offload::Completion
run_one(Cluster& cluster, SystemKind kind, offload::Operation op)
{
    offload::Completion result;
    bool done = false;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
        done = true;
    };
    cluster.submitter(kind)(std::move(op));
    cluster.queue().run();
    EXPECT_TRUE(done) << "no completion for " << system_name(kind);
    return result;
}

TEST(ClusterPulse, SingleNodeHashFind)
{
    ClusterConfig config;
    config.num_mem_nodes = 1;
    Cluster cluster(config);

    ds::HashTableConfig ht_config;
    ht_config.num_buckets = 8;
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ht_config);
    for (std::uint64_t k = 1; k <= 200; k++) {
        table.insert(k * 3);
    }

    // Hit.
    auto completion =
        run_one(cluster, SystemKind::kPulse, table.make_find(300, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_TRUE(completion.offloaded);
    const auto result = table.parse_find(completion);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.value_word, ds::value_pattern_word(300));
    // Latency must be at least one round trip (~2x propagation).
    EXPECT_GT(completion.latency,
              2 * config.network.link_propagation);

    // Miss.
    completion =
        run_one(cluster, SystemKind::kPulse, table.make_find(301, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_FALSE(table.parse_find(completion).found);
}

TEST(ClusterPulse, DistributedTraversalContinuesInNetwork)
{
    // A linked list that zig-zags between two memory nodes: every hop
    // crosses nodes, exercising switch re-routing with scratch state.
    ClusterConfig config;
    config.num_mem_nodes = 2;
    Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    for (std::uint64_t v = 0; v < 32; v++) {
        list.build({1000 + v}, static_cast<NodeId>(v % 2));
    }

    auto completion = run_one(cluster, SystemKind::kPulse,
                              list.make_find(1000 + 31, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    std::uint64_t result = 0;
    std::memcpy(&result, completion.scratch.data() + 8, 8);
    EXPECT_EQ(result, *list.find_reference(1000 + 31));
    EXPECT_EQ(completion.iterations, 32u);
    // In-network continuation: no client bounces.
    EXPECT_EQ(completion.client_bounces, 0u);
    // 31 cross-node hops must have been forwarded by the switch.
    const auto& accel0 = cluster.accelerator(0).stats();
    const auto& accel1 = cluster.accelerator(1).stats();
    EXPECT_EQ(accel0.forwards_sent.value() +
                  accel1.forwards_sent.value(),
              31u);
}

TEST(ClusterPulseAcc, DistributedTraversalBouncesThroughClient)
{
    ClusterConfig config;
    config.num_mem_nodes = 2;
    config.set_pulse_acc(true);
    Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    for (std::uint64_t v = 0; v < 16; v++) {
        list.build({2000 + v}, static_cast<NodeId>(v % 2));
    }

    auto completion = run_one(cluster, SystemKind::kPulse,
                              list.make_find(2000 + 15, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.client_bounces, 15u);

    // The ACC variant must be slower than in-network continuation.
    ClusterConfig fast_config;
    fast_config.num_mem_nodes = 2;
    Cluster fast(fast_config);
    ds::LinkedList fast_list(fast.memory(), fast.allocator());
    for (std::uint64_t v = 0; v < 16; v++) {
        fast_list.build({2000 + v}, static_cast<NodeId>(v % 2));
    }
    auto fast_completion = run_one(fast, SystemKind::kPulse,
                                   fast_list.make_find(2000 + 15, {}));
    ASSERT_EQ(fast_completion.status, TraversalStatus::kDone);
    EXPECT_GT(completion.latency, fast_completion.latency * 3 / 2);
}

TEST(ClusterPulse, MaxIterContinuationIsTransparent)
{
    ClusterConfig config;
    Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v < 1500; v++) {
        values.push_back(v);
    }
    list.build(values, 0);  // longer than kDefaultMaxIters = 512

    auto completion = run_one(cluster, SystemKind::kPulse,
                              list.make_find(1499, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.iterations, 1500u);
    EXPECT_GE(completion.continuations, 2u);
    std::uint64_t result = 0;
    std::memcpy(&result, completion.scratch.data() + 8, 8);
    EXPECT_EQ(result, *list.find_reference(1499));
}

TEST(ClusterPulse, InvalidPointerReturnsMemFault)
{
    ClusterConfig config;
    Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({42}, 0);
    // Corrupt the node's next pointer to an unmapped address.
    cluster.memory().write_as<std::uint64_t>(list.head() + 8,
                                             0xDEAD0000ull);
    auto completion =
        run_one(cluster, SystemKind::kPulse, list.make_find(43, {}));
    EXPECT_EQ(completion.status, TraversalStatus::kMemFault);
}

TEST(ClusterPulse, RetransmissionSurvivesPacketLoss)
{
    ClusterConfig config;
    config.network.loss_probability = 0.2;
    config.offload.retransmit_timeout = micros(50.0);
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 4});
    for (std::uint64_t k = 1; k <= 50; k++) {
        table.insert(k);
    }

    int done = 0;
    int found = 0;
    for (std::uint64_t k = 1; k <= 50; k++) {
        auto op = table.make_find(k, {});
        op.done = [&](offload::Completion&& completion) {
            done++;
            if (completion.status == TraversalStatus::kDone &&
                table.parse_find(completion).found) {
                found++;
            }
        };
        cluster.submitter(SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(done, 50);
    // With 8 retries at 20% loss, effectively everything completes.
    EXPECT_GE(found, 48);
    EXPECT_GT(cluster.offload_engine().stats().retransmits.value(), 0u);
}

TEST(ClusterBaselines, AllSystemsReturnIdenticalResults)
{
    ClusterConfig config;
    config.num_mem_nodes = 1;
    config.cache.cache_bytes = 1 * kMiB;
    Cluster cluster(config);

    ds::HashTableConfig ht_config;
    ht_config.num_buckets = 16;
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ht_config);
    for (std::uint64_t k = 1; k <= 300; k++) {
        table.insert(k * 11);
    }

    for (const SystemKind kind :
         {SystemKind::kPulse, SystemKind::kCache, SystemKind::kRpc,
          SystemKind::kRpcWimpy, SystemKind::kCacheRpc}) {
        for (const std::uint64_t key : {11ull, 1650ull, 3300ull,
                                        12ull}) {
            auto op = table.make_find(key, {});
            auto completion = run_one(cluster, kind, std::move(op));
            ASSERT_EQ(completion.status, TraversalStatus::kDone)
                << system_name(kind) << " key " << key;
            const auto expected = table.find_reference(key);
            const auto result = table.parse_find(completion);
            EXPECT_EQ(result.found, expected.has_value())
                << system_name(kind) << " key " << key;
            if (expected) {
                EXPECT_EQ(result.value_word, *expected)
                    << system_name(kind);
            }
        }
    }
}

TEST(ClusterBaselines, RpcBouncesAcrossNodesViaClient)
{
    ClusterConfig config;
    config.num_mem_nodes = 2;
    Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    for (std::uint64_t v = 0; v < 8; v++) {
        list.build({500 + v}, static_cast<NodeId>(v % 2));
    }
    auto completion =
        run_one(cluster, SystemKind::kRpc, list.make_find(507, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_EQ(completion.client_bounces, 7u);
    EXPECT_EQ(cluster.rpc().stats().node_bounces.value(), 7u);
}

TEST(ClusterBaselines, CacheClientHitsAfterWarmup)
{
    ClusterConfig config;
    config.cache.cache_bytes = 16 * kMiB;  // fits the whole table
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 8});
    for (std::uint64_t k = 1; k <= 64; k++) {
        table.insert(k);
    }

    auto cold =
        run_one(cluster, SystemKind::kCache, table.make_find(64, {}));
    ASSERT_EQ(cold.status, TraversalStatus::kDone);
    const std::uint64_t faults_after_cold =
        cluster.cache_client().stats().faults.value();
    EXPECT_GT(faults_after_cold, 0u);

    auto warm =
        run_one(cluster, SystemKind::kCache, table.make_find(64, {}));
    ASSERT_EQ(warm.status, TraversalStatus::kDone);
    EXPECT_EQ(cluster.cache_client().stats().faults.value(),
              faults_after_cold);  // all hits the second time
    EXPECT_LT(warm.latency, cold.latency / 10);
}

TEST(ClusterBaselines, AifmCachesObjects)
{
    ClusterConfig config;
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 8});
    for (std::uint64_t k = 1; k <= 64; k++) {
        table.insert(k);
    }
    auto make_op = [&](std::uint64_t key) {
        auto op = table.make_find(key, {});
        op.object_id = key;
        op.object_bytes = 256;
        return op;
    };
    auto cold = run_one(cluster, SystemKind::kCacheRpc, make_op(7));
    ASSERT_EQ(cold.status, TraversalStatus::kDone);
    auto warm = run_one(cluster, SystemKind::kCacheRpc, make_op(7));
    ASSERT_EQ(warm.status, TraversalStatus::kDone);
    EXPECT_EQ(cluster.aifm().stats().hits.value(), 1u);
    EXPECT_LT(warm.latency, cold.latency / 5);
}

TEST(ClusterDriver, ClosedLoopMeasuresThroughput)
{
    ClusterConfig config;
    config.accel.workspaces_per_logic = 8;
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 64});
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= 2000; k++) {
        keys.push_back(k);
    }
    table.insert_many(keys);

    Rng rng(3);
    workloads::DriverConfig driver;
    driver.warmup_ops = 50;
    driver.measure_ops = 500;
    driver.concurrency = 16;
    auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(SystemKind::kPulse),
        [&](std::uint64_t) {
            return table.make_find(keys[rng.next_below(keys.size())],
                                   {});
        },
        driver);
    EXPECT_EQ(result.completed, 500u);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_GT(result.throughput, 0.0);
    EXPECT_GT(result.latency.mean(), 0);
    EXPECT_LE(result.latency.percentile(0.5),
              result.latency.percentile(0.99));
}


TEST(ClusterStats, RegistryCoversAllComponents)
{
    ClusterConfig config;
    config.num_mem_nodes = 2;
    config.num_clients = 2;
    Cluster cluster(config);
    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 8,
                                            .partitions = 2});
    for (std::uint64_t k = 1; k <= 50; k++) {
        table.insert(k);
    }
    run_one(cluster, SystemKind::kPulse, table.make_find(7, {}));
    run_one(cluster, SystemKind::kRpc, table.make_find(7, {}));
    run_one(cluster, SystemKind::kCache, table.make_find(7, {}));

    StatRegistry registry;
    cluster.register_stats(registry);
    const auto snapshot = registry.snapshot();
    EXPECT_GT(snapshot.at("node0.accel.requests") +
                  snapshot.at("node1.accel.requests"),
              0.0);
    EXPECT_EQ(snapshot.at("client0.offload.submitted"), 1.0);
    EXPECT_EQ(snapshot.at("client1.offload.submitted"), 0.0);
    EXPECT_EQ(snapshot.at("rpc.requests"), 1.0);
    EXPECT_GT(snapshot.at("client0.cache.faults"), 0.0);
    EXPECT_EQ(snapshot.at("client0.aifm.operations"), 0.0);
    // The dump renders every registered name.
    const std::string dump = registry.dump();
    EXPECT_NE(dump.find("rpc_wimpy.worker_busy_ps"),
              std::string::npos);
}

/**
 * Reset-coverage audit: after reset_stats(), a re-run of the same
 * measured workload must reproduce every registered statistic exactly.
 * Any counter or accumulator missed by a component's reset (or any
 * stat secretly keyed to absolute time) would leak the first run into
 * the second and break the equality. The first run's warmup absorbs
 * one-time state transitions (program code installation) so both
 * measured windows see an identical steady state.
 */
TEST(ClusterStats, ResetThenRerunReproducesStatsExactly)
{
    ClusterConfig config;
    config.trace.enabled = true;  // tracer must reset too
    Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator(), 64);
    std::vector<std::uint64_t> values(512);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    workloads::DriverConfig driver;
    driver.warmup_ops = 50;
    driver.measure_ops = 200;
    driver.concurrency = 4;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    const auto factory = [&](std::uint64_t op) {
        return list.make_walk(6 + op % 10, {});
    };

    const auto measure = [&] {
        return run_closed_loop(cluster.queue(),
                               cluster.submitter(SystemKind::kPulse),
                               factory, driver);
    };
    // Priming run (discarded): absorbs one-time program-code
    // installation so the two compared runs begin from the same
    // steady state — fully drained, code installed.
    measure();
    const workloads::DriverResult first = measure();
    StatRegistry registry;
    cluster.register_stats(registry);
    const auto snapshot1 = registry.snapshot();
    const std::uint64_t spans1 = cluster.tracer().recorded();

    const workloads::DriverResult second = measure();
    const auto snapshot2 = registry.snapshot();

    ASSERT_EQ(snapshot1.size(), snapshot2.size());
    for (const auto& [name, value] : snapshot1) {
        ASSERT_TRUE(snapshot2.count(name)) << name;
        EXPECT_EQ(value, snapshot2.at(name)) << name;
    }
    EXPECT_EQ(first.completed, second.completed);
    EXPECT_EQ(first.iterations, second.iterations);
    EXPECT_EQ(first.measure_time, second.measure_time);
    EXPECT_EQ(first.latency.sum(), second.latency.sum());
    EXPECT_EQ(first.latency.min(), second.latency.min());
    EXPECT_EQ(first.latency.max(), second.latency.max());
    EXPECT_EQ(spans1, cluster.tracer().recorded());
}

}  // namespace
}  // namespace pulse::core
