/**
 * @file
 * Unit tests for the common substrate: units, RNG + Zipf, histogram,
 * and the statistics registry.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/units.h"

namespace pulse {
namespace {

// ----------------------------------------------------------- units

TEST(Units, ConversionRoundTrips)
{
    EXPECT_EQ(nanos(1.0), kNanosecond);
    EXPECT_EQ(micros(1.0), kMicrosecond);
    EXPECT_DOUBLE_EQ(to_nanos(nanos(123.5)), 123.5);
    EXPECT_DOUBLE_EQ(to_micros(micros(7.25)), 7.25);
    EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
}

TEST(Units, TransferTime)
{
    // 1000 bytes at 1 GB/s = 1 us.
    EXPECT_EQ(transfer_time(1000, 1e9), kMicrosecond);
    EXPECT_EQ(transfer_time(0, 1e9), 0);
    // Sub-picosecond transfers round up to 1 ps (strict ordering).
    EXPECT_EQ(transfer_time(1, 1e15), 1);
}

TEST(Units, RateHelpers)
{
    EXPECT_DOUBLE_EQ(gbps_bytes(25.0), 25e9);
    EXPECT_DOUBLE_EQ(gbps_bits(100.0), 12.5e9);
}

TEST(Units, Formatting)
{
    EXPECT_EQ(format_time(nanos(500)), "500.0 ns");
    EXPECT_EQ(format_time(micros(12.5)), "12.50 us");
    EXPECT_EQ(format_bytes(512), "512 B");
    EXPECT_EQ(format_bytes(2 * kMiB), "2.0 MiB");
}

// ------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; i++) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
    Rng c(43);
    EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(1);
    for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 500; i++) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(2);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        const std::uint64_t v = rng.next_range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformityCoarse)
{
    Rng rng(3);
    std::vector<int> buckets(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; i++) {
        buckets[rng.next_below(10)]++;
    }
    for (const int count : buckets) {
        EXPECT_NEAR(count, n / 10, n / 100);
    }
}

TEST(Rng, NextBelowChiSquaredUniform)
{
    // Chi-squared goodness-of-fit for the debiased bounded sampler.
    // Bound 101 is prime (does not divide 2^64), the case where a
    // bare multiply-shift or modulo reduction is biased. 100 degrees
    // of freedom: accept chi2 in (61.9, 149.4) — the 0.1% tails on
    // both sides, so the test also catches a too-perfect (non-random)
    // stream. Deterministic seed, so this can never flake.
    Rng rng(12345);
    constexpr std::uint64_t kBound = 101;
    constexpr std::uint64_t kDraws = 101'000;
    std::vector<std::uint64_t> cells(kBound, 0);
    for (std::uint64_t i = 0; i < kDraws; i++) {
        const std::uint64_t v = rng.next_below(kBound);
        ASSERT_LT(v, kBound);
        cells[v]++;
    }
    const double expected =
        static_cast<double>(kDraws) / static_cast<double>(kBound);
    double chi2 = 0.0;
    for (const std::uint64_t count : cells) {
        const double delta = static_cast<double>(count) - expected;
        chi2 += delta * delta / expected;
    }
    EXPECT_GT(chi2, 61.9);
    EXPECT_LT(chi2, 149.4);
}

TEST(Rng, NextBelowLargeBoundStaysUniform)
{
    // A bound just above 2^63 maximizes the stripe excess the
    // rejection must remove (2^64 mod bound = 2^64 - bound can
    // approach bound itself). Smoke-check halves balance.
    Rng rng(777);
    const std::uint64_t bound = (1ull << 63) + 12345;
    int upper_half = 0;
    const int n = 20'000;
    for (int i = 0; i < n; i++) {
        const std::uint64_t v = rng.next_below(bound);
        ASSERT_LT(v, bound);
        if (v >= bound / 2) {
            upper_half++;
        }
    }
    EXPECT_NEAR(upper_half, n / 2, n / 20);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(4);
    double sum = 0;
    for (int i = 0; i < 10'000; i++) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Zipf, RankZeroMostPopular)
{
    ZipfGenerator zipf(1000, 0.99);
    Rng rng(5);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200'000; i++) {
        const std::uint64_t rank = zipf.next(rng);
        ASSERT_LT(rank, 1000u);
        counts[rank]++;
    }
    // Head dominance: rank 0 beats rank 100 by a wide margin.
    EXPECT_GT(counts[0], counts[100] * 5);
    EXPECT_GT(counts[0], counts[999]);
    // Skew: the top 10 ranks take a disproportionate share.
    int head = 0;
    for (int i = 0; i < 10; i++) {
        head += counts[i];
    }
    EXPECT_GT(head, 200'000 / 10);
}

// -------------------------------------------------------- histogram

TEST(Histogram, ExactStats)
{
    Histogram histogram;
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.mean(), 0);
    for (const Time sample : {100, 200, 300, 400}) {
        histogram.add(sample);
    }
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_EQ(histogram.mean(), 250);
    EXPECT_EQ(histogram.min(), 100);
    EXPECT_EQ(histogram.max(), 400);
    EXPECT_EQ(histogram.sum(), 1000);
}

TEST(Histogram, NegativeClampedToZero)
{
    Histogram histogram;
    histogram.add(-5);
    EXPECT_EQ(histogram.min(), 0);
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(Histogram, PercentileBounds)
{
    Histogram histogram;
    for (Time t = 1; t <= 1000; t++) {
        histogram.add(t * kNanosecond);
    }
    EXPECT_LE(histogram.percentile(0.0), histogram.percentile(0.5));
    EXPECT_LE(histogram.percentile(0.5), histogram.percentile(0.99));
    EXPECT_LE(histogram.percentile(1.0), histogram.max());
    // Median within bucket error (~3%) of the true median.
    EXPECT_NEAR(static_cast<double>(histogram.percentile(0.5)),
                static_cast<double>(500 * kNanosecond),
                static_cast<double>(500 * kNanosecond) * 0.05);
}

TEST(Histogram, NearestRankExtremes)
{
    // Regression: samples {1000, 1003} share one log-bucket whose
    // upper bound (1007) exceeds both samples; percentile(0.0) used to
    // report that bound instead of the minimum.
    Histogram histogram;
    histogram.add(1000);
    histogram.add(1003);
    EXPECT_EQ(histogram.percentile(0.0), 1000);
    EXPECT_EQ(histogram.percentile(1.0), 1003);
    // A low quantile whose nearest rank is 0 is pinned to min() too.
    Histogram many;
    for (Time t = 0; t < 100; t++) {
        many.add(1000 + t);
    }
    EXPECT_EQ(many.percentile(0.001), many.min());
    EXPECT_EQ(many.percentile(1.0), many.max());
    // No reported percentile may exceed the largest recorded sample.
    for (const double q : {0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_LE(many.percentile(q), many.max());
        EXPECT_GE(many.percentile(q), many.min());
    }
}

TEST(Histogram, MergeCombines)
{
    Histogram a;
    Histogram b;
    a.add(10);
    a.add(20);
    b.add(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 30);
    EXPECT_EQ(a.mean(), 20);
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, ResetClears)
{
    Histogram histogram;
    histogram.add(123);
    histogram.reset();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.percentile(0.5), 0);
}

/** Property sweep: bucket-relative error stays bounded across scales. */
class HistogramProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramProperty, PercentileTracksSortedReference)
{
    Rng rng(GetParam());
    Histogram histogram;
    std::vector<Time> samples;
    for (int i = 0; i < 5000; i++) {
        // Mix of scales: ns to ms.
        const Time sample = static_cast<Time>(
            rng.next_range(1, 1000) *
            (rng.next_bool(0.5) ? kNanosecond : kMicrosecond));
        samples.push_back(sample);
        histogram.add(sample);
    }
    std::sort(samples.begin(), samples.end());
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        const Time expected = samples[static_cast<std::size_t>(
            q * (samples.size() - 1))];
        const Time got = histogram.percentile(q);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expected),
                    static_cast<double>(expected) * 0.04 + 1.0)
            << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------ stats

TEST(Stats, CounterAndAccumulator)
{
    Counter counter;
    counter.increment();
    counter.increment(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);

    Accumulator acc;
    acc.add(1.5);
    acc.add(2.5);
    EXPECT_DOUBLE_EQ(acc.sum(), 4.0);
    EXPECT_EQ(acc.count(), 2u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(Stats, RegistrySnapshotAndDump)
{
    StatRegistry registry;
    Counter counter;
    Accumulator acc;
    counter.increment(7);
    acc.add(2.5);
    registry.register_counter("node0.requests", &counter);
    registry.register_accumulator("node0.busy", &acc);
    const auto snapshot = registry.snapshot();
    EXPECT_DOUBLE_EQ(snapshot.at("node0.requests"), 7.0);
    EXPECT_DOUBLE_EQ(snapshot.at("node0.busy"), 2.5);
    const std::string dump = registry.dump();
    EXPECT_NE(dump.find("node0.requests"), std::string::npos);
}

}  // namespace
}  // namespace pulse
