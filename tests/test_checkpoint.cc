/**
 * @file
 * Checkpoint/restore determinism (docs/PERF.md): a run restored from a
 * quiesce-point snapshot must continue *bit-identically* to the run
 * that kept going without the save/restore cycle — same clock, same
 * latencies, same counters, byte-identical metrics export. Long
 * scenarios rely on this to fork from a warmed snapshot instead of
 * replaying the build + warmup phases.
 *
 * The op streams here are deterministic *by index* (no shared RNG
 * state), so the continuation issues the same operations whether it
 * runs on the original cluster or on a freshly-built one that loaded
 * the snapshot.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "apps/apps.h"
#include "check/fuzzer.h"
#include "common/random.h"
#include "ds/bptree.h"
#include "ds/ds_common.h"
#include "trace/metrics_exporter.h"
#include "workloads/driver.h"

namespace pulse {
namespace {

core::ClusterConfig
test_config()
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.accel.workspaces_per_logic = 8;
    return config;
}

apps::AppScale
test_scale()
{
    apps::AppScale scale;
    scale.upc_keys = 20'000;
    return scale;
}

/** Lookup stream deterministic by op index: same index, same key, no
 *  matter which cluster instance or driver invocation issues it. */
workloads::OpFactory
indexed_factory(apps::UpcApp& app, std::uint64_t offset)
{
    return [&app, offset](std::uint64_t index) {
        const std::uint64_t mixed =
            (offset + index) * 0x9E3779B97F4A7C15ull;
        const std::uint64_t key =
            workloads::key_of(mixed % app.num_keys());
        return app.table().make_find(key, nullptr);
    };
}

workloads::DriverResult
run_ops(core::Cluster& cluster, apps::UpcApp& app, std::uint64_t offset,
        std::uint64_t ops, std::uint32_t concurrency)
{
    workloads::DriverConfig driver;
    driver.warmup_ops = 0;
    driver.measure_ops = ops;
    driver.concurrency = concurrency;
    return run_closed_loop(cluster.queue(),
                           cluster.submitter(core::SystemKind::kPulse),
                           indexed_factory(app, offset), driver);
}

/** Everything observable about a finished continuation, including the
 *  full metrics export (every registered counter, bit-exact). */
std::tuple<std::uint64_t, std::uint64_t, Time, Time, Time, std::string>
digest(const workloads::DriverResult& result, core::Cluster& cluster)
{
    trace::MetricsExporter exporter;
    cluster.export_metrics(exporter);
    return {result.completed,
            result.iterations,
            result.latency.mean(),
            result.latency.percentile(0.99),
            cluster.queue().now(),
            exporter.json()};
}

TEST(Checkpoint, RestoredContinuationIsBitIdentical)
{
    constexpr std::uint64_t kPhase1 = 400;
    constexpr std::uint64_t kPhase2 = 300;

    // Original: run phase 1, snapshot at the quiesce point, keep going.
    core::Cluster original(test_config());
    apps::UpcApp app_a(original, test_scale());
    run_ops(original, app_a, 0, kPhase1, 8);
    const std::vector<std::uint8_t> blob = original.save_checkpoint();
    const auto continued =
        digest(run_ops(original, app_a, kPhase1, kPhase2, 8), original);

    // Fork: identically-built cluster loads the snapshot (the app
    // rebuild re-populates memory; restore overwrites it with the
    // snapshot's bytes and counters) and runs the same continuation.
    core::Cluster forked(test_config());
    apps::UpcApp app_b(forked, test_scale());
    forked.restore_checkpoint(blob);
    const auto restored =
        digest(run_ops(forked, app_b, kPhase1, kPhase2, 8), forked);

    EXPECT_EQ(continued, restored);
}

TEST(Checkpoint, SaveRestoreSaveIsByteStable)
{
    core::Cluster original(test_config());
    apps::UpcApp app_a(original, test_scale());
    run_ops(original, app_a, 0, 200, 4);
    const std::vector<std::uint8_t> blob = original.save_checkpoint();

    core::Cluster forked(test_config());
    apps::UpcApp app_b(forked, test_scale());
    forked.restore_checkpoint(blob);
    EXPECT_EQ(forked.save_checkpoint(), blob);
}

TEST(Checkpoint, FileRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "pulse_ckpt_test.bin")
            .string();

    core::Cluster original(test_config());
    apps::UpcApp app_a(original, test_scale());
    run_ops(original, app_a, 0, 150, 4);
    original.save_checkpoint_file(path);

    core::Cluster forked(test_config());
    apps::UpcApp app_b(forked, test_scale());
    forked.restore_checkpoint_file(path);
    EXPECT_EQ(forked.save_checkpoint(), original.save_checkpoint());
    std::filesystem::remove(path);
}

TEST(Checkpoint, FingerprintMismatchIsFatal)
{
    core::Cluster original(test_config());
    apps::UpcApp app(original, test_scale());
    run_ops(original, app, 0, 50, 2);
    const std::vector<std::uint8_t> blob = original.save_checkpoint();

    core::ClusterConfig other = test_config();
    other.num_mem_nodes = 3;
    core::Cluster mismatched(other);
    EXPECT_DEATH(mismatched.restore_checkpoint(blob), "fingerprint");
}

/**
 * Replays a committed fuzz-corpus seed through a restore: the corpus
 * program (check/fuzzer.h, same generator the reproducer suite uses)
 * runs as the continuation workload on both the original and the
 * restored cluster. Exercises the restore path with adversarial ISA
 * programs — protection faults, iteration caps and all — instead of
 * only the well-formed app traversals above.
 */
TEST(Checkpoint, FuzzCorpusSeedReplaysThroughRestore)
{
    const std::filesystem::path corpus_file =
        std::filesystem::path(PULSE_FUZZ_CORPUS_DIR) /
        "program_seed2001.json";
    std::ifstream in(corpus_file);
    ASSERT_TRUE(in.good()) << corpus_file;
    std::stringstream buffer;
    buffer << in.rdbuf();
    check::FuzzCase corpus_case;
    std::string error;
    ASSERT_TRUE(
        check::FuzzCase::from_json(buffer.str(), &corpus_case, &error))
        << error;

    const auto program = std::make_shared<isa::Program>(
        check::random_program(corpus_case.seed));

    const auto fuzz_run = [&](core::Cluster& cluster,
                              apps::UpcApp& app) {
        workloads::DriverConfig driver;
        driver.warmup_ops = 0;
        driver.measure_ops = 64;
        driver.concurrency = 4;
        const workloads::OpFactory factory =
            [&app, &program](std::uint64_t index) {
                const std::uint64_t key = workloads::key_of(
                    (index * 0x9E3779B97F4A7C15ull) % app.num_keys());
                offload::Operation op =
                    app.table().make_find(key, nullptr);
                op.program = program;  // corpus program, app memory
                return op;
            };
        const workloads::DriverResult result = run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse), factory,
            driver);
        return digest(result, cluster);
    };

    core::Cluster original(test_config());
    apps::UpcApp app_a(original, test_scale());
    run_ops(original, app_a, 0, 200, 4);
    const std::vector<std::uint8_t> blob = original.save_checkpoint();
    const auto continued = fuzz_run(original, app_a);

    core::Cluster forked(test_config());
    apps::UpcApp app_b(forked, test_scale());
    forked.restore_checkpoint(blob);
    const auto restored = fuzz_run(forked, app_b);

    EXPECT_EQ(continued, restored);
}

/**
 * Fork/join traversals across a save/restore cycle: the checkpoint
 * serializer carries the engine's join-state records (fork/join
 * counters; in-flight join records are empty at the quiesce point by
 * construction), and a restored run issuing the same forked
 * aggregates must continue bit-identically — every sub-traversal
 * spawn, every join fold, every latency sample.
 */
TEST(Checkpoint, ForkedWorkRestoresBitIdentically)
{
    constexpr std::uint64_t kPhase1 = 100;
    constexpr std::uint64_t kPhase2 = 80;
    constexpr std::uint64_t kKeySpan = 20'000;

    const auto build_tree = [](core::Cluster& cluster) {
        ds::BPTreeConfig bt;
        bt.inline_values = true;
        bt.partitions = 2;
        auto tree = std::make_unique<ds::BPTree>(
            cluster.memory(), cluster.allocator(), bt);
        std::vector<ds::BPTreeEntry> entries;
        Rng rng(31);
        std::uint64_t key = 100;
        for (int i = 0; i < 2000; i++) {
            key += 1 + rng.next_below(18);
            entries.push_back({key, ds::value_pattern_word(key)});
        }
        tree->build(entries);
        return tree;
    };
    // Forked-sum stream deterministic by op index.
    const auto forked_factory = [](ds::BPTree& tree) {
        return [&tree](std::uint64_t index) {
            const std::uint64_t mixed =
                index * 0x9E3779B97F4A7C15ull;
            const std::uint64_t lo = 100 + mixed % kKeySpan;
            return tree.make_aggregate_forked(lo, lo + 4000, nullptr);
        };
    };
    const auto run_forked = [&](core::Cluster& cluster,
                                ds::BPTree& tree, std::uint64_t ops) {
        workloads::DriverConfig driver;
        driver.warmup_ops = 0;
        driver.measure_ops = ops;
        driver.concurrency = 6;
        return run_closed_loop(
            cluster.queue(),
            cluster.submitter(core::SystemKind::kPulse),
            forked_factory(tree), driver);
    };

    core::Cluster original(test_config());
    auto tree_a = build_tree(original);
    run_forked(original, *tree_a, kPhase1);
    const std::vector<std::uint8_t> blob = original.save_checkpoint();
    const auto continued =
        digest(run_forked(original, *tree_a, kPhase2), original);

    core::Cluster forked(test_config());
    auto tree_b = build_tree(forked);
    forked.restore_checkpoint(blob);
    // The snapshot (join-state records included) is byte-stable...
    EXPECT_EQ(forked.save_checkpoint(), blob);
    // ...and the restored continuation is bit-identical.
    const auto restored =
        digest(run_forked(forked, *tree_b, kPhase2), forked);
    EXPECT_EQ(continued, restored);
}

}  // namespace
}  // namespace pulse
