/**
 * @file
 * Tests for the fork/join ISA extension (SPAWN / REDUCE / JOIN): codec
 * round-trips with the packed spawn-depth byte, assembler syntax, the
 * verifier's structural fork rules, join-count underflow/overflow
 * rejection in the JoinAccumulator, order-insensitivity of the
 * commutative reduce, and end-to-end DAG execution through the engine
 * (nested spawns, depth faults, and both forking workloads against
 * their host references).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/ds_common.h"
#include "ds/prox_graph.h"
#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/codec.h"
#include "isa/program.h"
#include "offload/fork_join.h"

namespace pulse::isa {
namespace {

using offload::JoinAccumulator;

/** A minimal valid forking program: fork data[0], fold one lane. */
Program
tiny_fork_program(std::uint32_t depth = 1)
{
    ProgramBuilder b;
    b.load(16)
        .reduce(ReduceOp::kAdd, 8, 1)
        .add(sp(8), sp(8), dat(8))
        .spawn(dat(0), 0, 8)
        .join();
    b.scratch_bytes(32);
    b.max_spawn_depth(depth);
    return b.build();
}

TEST(ForkJoinIsa, VerifyAcceptsWellFormedForkProgram)
{
    std::string error;
    EXPECT_TRUE(tiny_fork_program().verify(&error)) << error;
}

TEST(ForkJoinIsa, AnalysisReportsForkShape)
{
    const Program program = tiny_fork_program();
    const ProgramAnalysis analysis = analyze(program);
    ASSERT_TRUE(analysis.valid) << analysis.error;
    EXPECT_TRUE(analysis.has_spawn);
    EXPECT_EQ(analysis.spawn_sites, 1u);
    EXPECT_EQ(analysis.reduce_op, ReduceOp::kAdd);
    EXPECT_EQ(analysis.reduce_offset, 8u);
    EXPECT_EQ(analysis.reduce_lanes, 1u);
}

TEST(ForkJoinIsa, CodecRoundTripsSpawnPrograms)
{
    for (std::uint32_t depth = 1; depth <= kMaxSpawnDepthLimit;
         depth++) {
        const Program program = tiny_fork_program(depth);
        const auto bytes = encode_program(program);
        const auto decoded = decode_program(bytes);
        ASSERT_TRUE(decoded.has_value()) << "depth " << depth;
        EXPECT_EQ(*decoded, program);
        EXPECT_EQ(decoded->max_spawn_depth(), depth);
    }
}

TEST(ForkJoinIsa, DepthZeroEncodingIsUnchanged)
{
    // The iter_word packs max_spawn_depth in its top byte: sequential
    // programs (depth 0) must encode bit-identically to the format
    // that predates the fork extension — the wire-compat guarantee
    // the determinism CI lane checks end to end.
    ProgramBuilder b;
    b.load(8).move(cur(), dat(0)).next_iter();
    b.max_iters(100);
    const Program program = b.build();
    const auto bytes = encode_program(program);
    // header: num_insns u16 | scratch u16 | iter_word u32
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes[7], 0u);  // top iter_word byte == depth == 0
    const auto decoded = decode_program(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->max_iters(), 100u);
    EXPECT_EQ(decoded->max_spawn_depth(), 0u);
}

TEST(ForkJoinIsa, AssemblerParsesForkSyntax)
{
    const auto result = assemble(R"(
        .scratch 48
        .max_spawn_depth 2
        LOAD 32
        REDUCE 8, 2, ADD
        ADD sp[8:8] sp[8:8] data[16:8]
        COMPARE sp[0:8] 0
        JUMP_EQ done
        SUB sp[0:8] sp[0:8] 1
        SPAWN sp[0:8], data[0:8]
        SPAWN sp[0:8], data[8:8]
      done:
        JOIN
    )");
    ASSERT_TRUE(result.ok()) << result.error;
    const Program& program = *result.program;
    std::string error;
    EXPECT_TRUE(program.verify(&error)) << error;
    EXPECT_EQ(program.max_spawn_depth(), 2u);
    const ProgramAnalysis analysis = analyze(program);
    EXPECT_EQ(analysis.spawn_sites, 2u);
    EXPECT_EQ(analysis.reduce_lanes, 2u);
    EXPECT_EQ(analysis.reduce_offset, 8u);
    // The diagnostic disassembly names the fork opcodes.
    const std::string text = program.disassemble();
    EXPECT_NE(text.find("SPAWN"), std::string::npos);
    EXPECT_NE(text.find("REDUCE"), std::string::npos);
    EXPECT_NE(text.find("JOIN"), std::string::npos);
}

TEST(ForkJoinIsa, VerifyRejectsSpawnWithoutDepthBudget)
{
    ProgramBuilder b;
    b.load(16)
        .reduce(ReduceOp::kAdd, 8, 1)
        .spawn(dat(0), 0, 8)
        .join();
    b.scratch_bytes(32);  // max_spawn_depth left at 0
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
    EXPECT_FALSE(error.empty());
}

TEST(ForkJoinIsa, VerifyRejectsSpawnWithoutReduce)
{
    ProgramBuilder b;
    b.load(16).spawn(dat(0), 0, 8).join();
    b.scratch_bytes(32);
    b.max_spawn_depth(1);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, VerifyRejectsReduceWithoutSpawn)
{
    ProgramBuilder b;
    b.load(16).reduce(ReduceOp::kAdd, 8, 1).ret();
    b.scratch_bytes(32);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, VerifyRejectsReturnInForkingProgram)
{
    ProgramBuilder b;
    b.load(16)
        .reduce(ReduceOp::kAdd, 8, 1)
        .spawn(dat(0), 0, 8)
        .ret();  // forking programs must end in JOIN
    b.scratch_bytes(32);
    b.max_spawn_depth(1);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, VerifyRejectsStoreInForkingProgram)
{
    ProgramBuilder b;
    b.load(16)
        .reduce(ReduceOp::kAdd, 8, 1)
        .store(0, 0, 8)
        .spawn(dat(0), 0, 8)
        .join();
    b.scratch_bytes(32);
    b.max_spawn_depth(1);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, VerifyRejectsExcessSpawnSites)
{
    ProgramBuilder b;
    b.load(256).reduce(ReduceOp::kAdd, 8, 1);
    for (std::uint32_t i = 0; i <= kMaxSpawnsPerVisit; i++) {
        b.spawn(dat(i * 8), 0, 8);
    }
    b.join();
    b.scratch_bytes(32);
    b.max_spawn_depth(1);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, VerifyRejectsDepthBeyondLimit)
{
    ProgramBuilder b;
    b.load(16)
        .reduce(ReduceOp::kAdd, 8, 1)
        .spawn(dat(0), 0, 8)
        .join();
    b.scratch_bytes(32);
    b.max_spawn_depth(kMaxSpawnDepthLimit + 1);
    std::string error;
    EXPECT_FALSE(b.build().verify(&error));
}

TEST(ForkJoinIsa, JoinCountUnderflowIsRejected)
{
    JoinAccumulator acc;
    acc.configure(ReduceOp::kAdd, 1);
    const std::uint8_t scratch[16] = {};
    // A completion with no registered branch must not be absorbed.
    EXPECT_FALSE(acc.complete_branch(scratch, sizeof(scratch), 8));
    ASSERT_TRUE(acc.register_branch());
    EXPECT_TRUE(acc.complete_branch(scratch, sizeof(scratch), 8));
    EXPECT_TRUE(acc.all_joined());
    // ... and the double-join after everything joined is underflow too.
    EXPECT_FALSE(acc.complete_branch(scratch, sizeof(scratch), 8));
}

TEST(ForkJoinIsa, JoinCountOverflowIsRejected)
{
    JoinAccumulator acc;
    acc.configure(ReduceOp::kAdd, 1);
    for (std::uint64_t i = 0; i < 4; i++) {
        EXPECT_TRUE(acc.register_branch(/*cap=*/4));
    }
    EXPECT_FALSE(acc.register_branch(/*cap=*/4));
    EXPECT_EQ(acc.registered(), 4u);
    EXPECT_EQ(acc.pending(), 4u);
}

TEST(ForkJoinIsa, ReduceFoldIsCompletionOrderInsensitive)
{
    // Every operator, every permutation of four branch completions:
    // the folded lanes must be identical — the property the oracle's
    // order-insensitive exact comparison rests on.
    const ReduceOp ops[] = {ReduceOp::kAdd, ReduceOp::kAnd,
                            ReduceOp::kOr,  ReduceOp::kXor,
                            ReduceOp::kMin, ReduceOp::kMax};
    const std::uint64_t values[4][2] = {{17, 0xF0F0},
                                        {0, 0x0FF0},
                                        {901, 0xFFFF},
                                        {42, 0x1234}};
    for (const ReduceOp op : ops) {
        std::vector<std::size_t> order = {0, 1, 2, 3};
        std::uint64_t expected[2] = {0, 0};
        bool first_order = true;
        do {
            JoinAccumulator acc;
            acc.configure(op, 2);
            for (std::size_t i = 0; i < order.size(); i++) {
                ASSERT_TRUE(acc.register_branch());
            }
            for (const std::size_t branch : order) {
                std::uint8_t scratch[24] = {};
                std::memcpy(scratch + 8, &values[branch][0], 8);
                std::memcpy(scratch + 16, &values[branch][1], 8);
                ASSERT_TRUE(
                    acc.complete_branch(scratch, sizeof(scratch), 8));
            }
            EXPECT_TRUE(acc.all_joined());
            if (first_order) {
                expected[0] = acc.lane(0);
                expected[1] = acc.lane(1);
                first_order = false;
            } else {
                EXPECT_EQ(acc.lane(0), expected[0])
                    << reduce_op_name(op);
                EXPECT_EQ(acc.lane(1), expected[1])
                    << reduce_op_name(op);
            }
        } while (std::next_permutation(order.begin(), order.end()));
    }
}

TEST(ForkJoinIsa, ReduceIdentitiesAreNeutral)
{
    const ReduceOp ops[] = {ReduceOp::kAdd, ReduceOp::kAnd,
                            ReduceOp::kOr,  ReduceOp::kXor,
                            ReduceOp::kMin, ReduceOp::kMax};
    const std::uint64_t probes[] = {0, 1, 42, ~0ull, 1ull << 63};
    for (const ReduceOp op : ops) {
        for (const std::uint64_t x : probes) {
            EXPECT_EQ(reduce_apply(op, reduce_identity(op), x), x)
                << reduce_op_name(op);
        }
    }
}

// --- End-to-end DAG execution through the cluster -------------------

offload::Completion
run_pulse(core::Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    return result;
}

std::vector<std::uint64_t>
make_keys(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    std::uint64_t key = 100;
    for (std::uint64_t i = 0; i < n; i++) {
        key += 1 + rng.next_below(40);
        keys.push_back(key);
    }
    return keys;
}

TEST(ForkJoinDag, NestedSpawnsMatchHostReference)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 3;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    config.uniform_chunk_bytes = 4 * kKiB;
    core::Cluster cluster(config);
    ds::ProxGraph graph(cluster.memory(), cluster.allocator());
    graph.build(make_keys(128, 7));

    for (std::uint32_t hops = 1; hops <= 3; hops++) {
        const auto completion =
            run_pulse(cluster, graph.make_nhood(kNullAddr, hops, {}));
        ASSERT_EQ(completion.status, TraversalStatus::kDone)
            << "hops " << hops;
        EXPECT_TRUE(completion.offloaded);
        const auto got = ds::ProxGraph::parse_nhood(completion);
        const auto want = graph.nhood_reference(kNullAddr, hops);
        ASSERT_TRUE(got.complete);
        EXPECT_EQ(got.vertices, want.vertices) << "hops " << hops;
        EXPECT_EQ(got.key_sum, want.key_sum) << "hops " << hops;
        // The DAG actually fanned out: a k-hop expansion visits far
        // more vertices than a chain of the same length.
        EXPECT_GT(completion.iterations, hops);
    }
}

TEST(ForkJoinDag, SpawnBeyondDepthBudgetFaults)
{
    core::ClusterConfig config;
    core::Cluster cluster(config);
    ds::ProxGraph graph(cluster.memory(), cluster.allocator());
    graph.build(make_keys(64, 8), 0);

    // A 2-hop request forced through the 1-hop program: the hop-1
    // children still see hops-remaining > 0 and SPAWN at the depth
    // budget — the depth check fires before the pointer is even read.
    offload::Operation op = graph.make_nhood(kNullAddr, 1, {});
    const std::uint64_t hops = 2;
    std::memcpy(op.init_scratch.data() + ds::ProxGraph::kNhHops, &hops,
                8);
    const auto completion = run_pulse(cluster, std::move(op));
    EXPECT_EQ(completion.status, TraversalStatus::kExecFault);
    EXPECT_EQ(completion.fault, ExecFault::kSpawnDepth);
}

TEST(ForkJoinDag, ForkedBPTreeSumMatchesSequentialAndReference)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 4;
    core::Cluster cluster(config);
    ds::BPTreeConfig bt;
    bt.inline_values = true;
    bt.partitions = config.num_mem_nodes;
    ds::BPTree tree(cluster.memory(), cluster.allocator(), bt);
    const auto keys = make_keys(3000, 9);
    std::vector<ds::BPTreeEntry> entries;
    entries.reserve(keys.size());
    for (const std::uint64_t k : keys) {
        entries.push_back({k, ds::value_pattern_word(k)});
    }
    tree.build(entries);

    Rng rng(10);
    for (int probe = 0; probe < 12; probe++) {
        const std::uint64_t lo =
            keys.front() + rng.next_below(keys.back() - keys.front());
        const std::uint64_t hi = lo + 1 + rng.next_below(20000);
        const auto forked =
            run_pulse(cluster, tree.make_aggregate_forked(lo, hi, {}));
        ASSERT_EQ(forked.status, TraversalStatus::kDone)
            << "[" << lo << ", " << hi << "]";
        const auto got = ds::BPTree::parse_aggregate_forked(forked);
        ASSERT_TRUE(got.complete);
        const auto want =
            tree.aggregate_reference(ds::AggKind::kSum, lo, hi);
        EXPECT_EQ(got.count, want.count) << "[" << lo << ", " << hi
                                         << "]";
        EXPECT_EQ(got.value, want.value);
        // And the sequential aggregate program agrees.
        const auto sequential = run_pulse(
            cluster,
            tree.make_aggregate(ds::AggKind::kSum, lo, hi, {}));
        const auto seq = ds::BPTree::parse_aggregate(
            sequential, ds::AggKind::kSum);
        ASSERT_TRUE(seq.complete);
        EXPECT_EQ(got.count, seq.count);
        EXPECT_EQ(got.value, seq.value);
    }
}

TEST(ForkJoinDag, ForkedProgramsPassTheOracle)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.check.oracle = true;
    config.check.invariants = true;
    config.check.fail_fast = false;
    core::Cluster cluster(config);
    ds::ProxGraph graph(cluster.memory(), cluster.allocator());
    graph.build(make_keys(96, 11));

    for (int probe = 0; probe < 8; probe++) {
        const auto completion = run_pulse(
            cluster,
            graph.make_nhood(kNullAddr, 1 + (probe % 3), {}));
        ASSERT_EQ(completion.status, TraversalStatus::kDone);
    }
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    EXPECT_GT(cluster.checker()->oracle()->stats().exact, 0u);
}

}  // namespace
}  // namespace pulse::isa
