/**
 * @file
 * Fault-tolerance plane tests: heartbeat detector semantics (stall vs
 * blackout), PULSE_REPLICATION parsing and off-gating, replica
 * establishment + failover serving reads from the survivor, and the
 * chaos CAS soak — a node blackout injected at every phase of the
 * replication protocol (before the first scan, mid-copy, after
 * establishment, deep into mirrored CAS traffic) while a closed loop
 * of CAS increments runs with driver retry on. Every operation must
 * eventually complete exactly once: the counter sum equals the op
 * count no matter when the responder died.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/cluster.h"
#include "isa/program.h"
#include "replication/replication_plane.h"
#include "workloads/driver.h"

namespace pulse::replication {
namespace {

// ---------------------------------------------------------------------
// Config parsing / gating
// ---------------------------------------------------------------------

TEST(ReplicationConfig, FromEnv)
{
    unsetenv("PULSE_REPLICATION");
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 1u);
    EXPECT_FALSE(ReplicationConfig::from_env().enabled());

    setenv("PULSE_REPLICATION", "", 1);
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 1u);

    setenv("PULSE_REPLICATION", "off", 1);
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 1u);

    setenv("PULSE_REPLICATION", "k2", 1);
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 2u);
    EXPECT_TRUE(ReplicationConfig::from_env().enabled());

    setenv("PULSE_REPLICATION", "k3", 1);
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 3u);

    // Typos stay off, so existing runs cannot be perturbed by one.
    setenv("PULSE_REPLICATION", "k4oops", 1);
    EXPECT_EQ(ReplicationConfig::from_env().replication_factor, 1u);

    unsetenv("PULSE_REPLICATION");
}

TEST(ReplicationPlane, OffModeBuildsNoPlane)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    core::Cluster off(config);
    EXPECT_EQ(off.replication_plane(), nullptr);

    config.replication.replication_factor = 2;
    core::Cluster on(config);
    ASSERT_NE(on.replication_plane(), nullptr);
    EXPECT_EQ(on.replication_plane()->config().replication_factor, 2u);
}

// ---------------------------------------------------------------------
// Heartbeat detector
// ---------------------------------------------------------------------

constexpr Time kProbe = micros(20.0);

TEST(HeartbeatDetector, BlackoutDeclaredStallIsNot)
{
    net::HeartbeatDetector detector(2, kProbe, /*threshold=*/8.0,
                                    /*min_missed=*/4);

    // Healthy warmup: acks every interval keep suspicion near 1.
    Time now = 0;
    for (int round = 0; round < 5; round++) {
        now += kProbe;
        detector.on_probe_sent(0, now);
        detector.on_probe_sent(1, now);
        detector.on_ack(0, now + micros(1.0));
        detector.on_ack(1, now + micros(1.0));
    }
    EXPECT_LT(detector.suspicion(0, now + micros(2.0)), 2.0);
    EXPECT_FALSE(detector.should_declare(0, now + micros(2.0)));
    EXPECT_FALSE(detector.unresolved());

    // Stall: three probes go silent, then the NIC flushes the held
    // acks. Suspicion spikes but the missed-probe floor (4) is never
    // reached, so the node is not declared.
    const Time stall_base = now;
    for (int round = 1; round <= 3; round++) {
        detector.on_probe_sent(0, stall_base + round * kProbe);
        EXPECT_FALSE(detector.should_declare(
            0, stall_base + round * kProbe));
    }
    EXPECT_TRUE(detector.unresolved());
    detector.on_ack(0, stall_base + 3 * kProbe + micros(5.0));
    EXPECT_FALSE(detector.should_declare(
        0, stall_base + 4 * kProbe));
    EXPECT_FALSE(detector.is_dead(0));

    // Blackout: probes and acks both vanish. After the missed floor
    // (4 consecutive unanswered probes — the first silent round only
    // opens the outstanding window) AND the suspicion threshold
    // (8 smoothed intervals of silence) the node is declared.
    now = stall_base + 3 * kProbe + micros(5.0);
    for (int round = 1; round <= 5; round++) {
        detector.on_probe_sent(0, now + round * kProbe);
    }
    // The missed floor is reached, but only ~5 intervals of silence
    // have accrued: not declared yet.
    EXPECT_FALSE(detector.should_declare(0, now + 5 * kProbe));
    // ...and once the silence passes 8 smoothed intervals (the stall
    // ack stretched the EWMA above the 20us floor), it is.
    EXPECT_TRUE(detector.should_declare(0, now + 14 * kProbe));

    detector.declare_dead(0);
    EXPECT_TRUE(detector.is_dead(0));
    EXPECT_EQ(detector.suspicion(0, now + 20 * kProbe), 0.0);
    // The dead node's outstanding probe no longer holds the loop open.
    EXPECT_FALSE(detector.unresolved());

    detector.mark_recovered(0, now + 20 * kProbe);
    EXPECT_FALSE(detector.is_dead(0));
    EXPECT_FALSE(detector.should_declare(0, now + 21 * kProbe));
}

// ---------------------------------------------------------------------
// Establishment + failover
// ---------------------------------------------------------------------

constexpr Bytes kPad = 128 * kKiB;

std::vector<std::uint8_t>
pattern(Bytes length)
{
    std::vector<std::uint8_t> bytes(length);
    for (Bytes i = 0; i < length; i++) {
        bytes[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    return bytes;
}

isa::Program
load_program()
{
    isa::ProgramBuilder b;
    b.load(8).move(isa::sp(0, 8), isa::dat(0, 8)).ret();
    b.scratch_bytes(8);
    return b.build();
}

TEST(ReplicationPlane, FailoverServesReadsFromSurvivor)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.check.invariants = true;
    config.replication.replication_factor = 2;
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    // Node 0 goes dark at 800us — well after establishment — and
    // stays dark past the mid-blackout read below.
    config.faults.timeline.push_back(faults::NodeFaultWindow{
        /*node=*/0, faults::NodeFaultKind::kBlackout, micros(800.0),
        micros(4000.0)});
    core::Cluster cluster(config);
    ASSERT_NE(cluster.replication_plane(), nullptr);
    const ReplicationPlane& plane = *cluster.replication_plane();

    const VirtAddr va = cluster.allocator().alloc_on(0, kPad, 256);
    ASSERT_NE(va, kNullAddr);
    const std::vector<std::uint8_t> data = pattern(kPad);
    cluster.memory().write(va, data.data(), data.size());

    // A read submitted mid-blackout (after detection has had time to
    // fire) must be answered by the surviving replica.
    auto program =
        std::make_shared<const isa::Program>(load_program());
    std::uint64_t loaded = 0;
    bool completed = false;
    cluster.queue().schedule_after(micros(1400.0), [&] {
        offload::Operation op;
        op.program = program;
        op.start_ptr = va + 4096;
        op.init_scratch.assign(8, 0);
        op.done = [&](offload::Completion&& completion) {
            completed = true;
            EXPECT_EQ(completion.status, isa::TraversalStatus::kDone);
            EXPECT_FALSE(completion.timed_out);
            std::memcpy(&loaded, completion.scratch.data(), 8);
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    });
    cluster.queue().run();

    // Replica established before the outage, death declared, and the
    // dead node's span re-routed without losing anything.
    EXPECT_GE(plane.stats().replicas_established.value(), 1u);
    EXPECT_EQ(plane.stats().nodes_declared_dead.value(), 1u);
    ASSERT_EQ(plane.failovers().size(), 1u);
    EXPECT_EQ(plane.failovers().front().node, 0u);
    EXPECT_GE(plane.failovers().front().spans, 1u);
    EXPECT_GT(plane.failovers().front().declared_at, micros(800.0));
    EXPECT_EQ(plane.stats().failover_spans_lost.value(), 0u);
    EXPECT_GE(plane.stats().failover_spans_rerouted.value(), 1u);

    // Routing moved to the survivor atomically.
    EXPECT_EQ(*cluster.memory().address_map().node_for(va), 1u);
    EXPECT_EQ(*cluster.network().switch_table().lookup(va), 1u);

    // The mid-blackout read saw the replica's (correct) bytes...
    ASSERT_TRUE(completed);
    std::uint64_t expected = 0;
    std::memcpy(&expected, data.data() + 4096, 8);
    EXPECT_EQ(loaded, expected);

    // ...and the whole extent survives byte-for-byte.
    std::vector<std::uint8_t> readback(kPad);
    cluster.memory().read(va, readback.data(), readback.size());
    EXPECT_EQ(readback, data);

    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

// ---------------------------------------------------------------------
// Chaos CAS soak: kill the responder at every protocol phase
// ---------------------------------------------------------------------

isa::Program
cas_increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

/**
 * One soak run: node 0 (which homes both counters and their padding
 * extent) blacks out at @p outage_start for 1.5ms while a closed loop
 * of CAS increments runs with bounded driver retry. Returns nothing —
 * every assertion is inside. The exactly-once contract is the sum
 * check: each of the @p total operations increments exactly one
 * counter exactly once, whether it was answered by the home, by a
 * replica after failover, or by the healed home after recovery.
 */
void
run_cas_soak_with_outage_at(Time outage_start, int total)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.check.invariants = true;
    config.replication.replication_factor = 2;
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    config.faults.timeline.push_back(faults::NodeFaultWindow{
        /*node=*/0, faults::NodeFaultKind::kBlackout, outage_start,
        outage_start + micros(1500.0)});
    core::Cluster cluster(config);
    ASSERT_NE(cluster.replication_plane(), nullptr);

    // Two counters plus padding so the extent's COPY phase spans many
    // chunks — early outage starts land mid-copy.
    const VirtAddr va0 = cluster.allocator().alloc_on(0, 8, 8);
    const VirtAddr va1 = cluster.allocator().alloc_on(0, 8, 8);
    ASSERT_NE(cluster.allocator().alloc_on(0, kPad, 256), kNullAddr);
    cluster.memory().write_as<std::uint64_t>(va0, 0);
    cluster.memory().write_as<std::uint64_t>(va1, 0);

    auto program = std::make_shared<const isa::Program>(
        cas_increment_program());
    workloads::DriverConfig driver;
    driver.warmup_ops = 0;
    driver.measure_ops = total;
    driver.concurrency = 8;
    driver.max_retries = 16;
    driver.retry_backoff = micros(200.0);
    const workloads::DriverResult result = workloads::run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t index) {
            offload::Operation op;
            op.program = program;
            op.start_ptr = (index % 2 == 0) ? va0 : va1;
            op.init_scratch.assign(16, 0);
            return op;
        },
        driver);

    // Every operation eventually completed, exactly once.
    EXPECT_EQ(result.completed, static_cast<std::uint64_t>(total));
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.retries_exhausted, 0u);
    const std::uint64_t sum =
        cluster.memory().read_as<std::uint64_t>(va0) +
        cluster.memory().read_as<std::uint64_t>(va1);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(total));

    // The outage is long enough that death is always declared and a
    // failover runs, wherever in the protocol it hit.
    const ReplicationPlane& plane = *cluster.replication_plane();
    EXPECT_EQ(plane.stats().nodes_declared_dead.value(), 1u);
    EXPECT_EQ(plane.stats().failovers_executed.value(), 1u);
    EXPECT_EQ(plane.stats().recoveries.value(), 1u);
    EXPECT_FALSE(plane.busy());

    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

TEST(ReplicationPlane, CasSoakSurvivesOutageAtEveryPhase)
{
    // Phase sweep: before the first scan (10us), mid-COPY (30/60us for
    // a 128KiB extent that starts copying at the 25us scan), right
    // around establishment (100/150us), then deep into write-
    // synchronous mirroring and CAS traffic.
    const Time phases[] = {micros(10.0),  micros(30.0),
                           micros(60.0),  micros(100.0),
                           micros(150.0), micros(400.0),
                           micros(900.0), micros(1600.0)};
    for (const Time start : phases) {
        SCOPED_TRACE("outage_start_us=" +
                     std::to_string(to_micros(start)));
        // Enough operations that the closed loop is still driving
        // traffic (and therefore probing) when the latest outage
        // starts.
        run_cas_soak_with_outage_at(start, /*total=*/3000);
    }
}

}  // namespace
}  // namespace pulse::replication
