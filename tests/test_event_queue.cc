/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.h"

namespace pulse::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule_at(30, [&] { order.push_back(3); });
    queue.schedule_at(10, [&] { order.push_back(1); });
    queue.schedule_at(20, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueue, FifoTiebreakAtEqualTimes)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 8; i++) {
        queue.schedule_at(100, [&order, i] { order.push_back(i); });
    }
    queue.run();
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    Time fired_at = -1;
    queue.schedule_at(50, [&] {
        queue.schedule_after(25, [&] { fired_at = queue.now(); });
    });
    queue.run();
    EXPECT_EQ(fired_at, 75);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue queue;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100) {
            queue.schedule_after(1, chain);
        }
    };
    queue.schedule_at(0, chain);
    const std::uint64_t executed = queue.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(executed, 100u);
    EXPECT_EQ(queue.now(), 99);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue queue;
    int fired = 0;
    for (Time t = 10; t <= 100; t += 10) {
        queue.schedule_at(t, [&] { fired++; });
    }
    queue.run_until(50);
    EXPECT_EQ(fired, 5);  // 10..50 inclusive
    EXPECT_EQ(queue.now(), 50);
    EXPECT_EQ(queue.pending(), 5u);
    queue.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue queue;
    queue.run_until(12345);
    EXPECT_EQ(queue.now(), 12345);
}

TEST(EventQueue, RunUntilAdvancesClockOnEarlyDrain)
{
    // Regression for the run_until clock contract: when the queue
    // drains before the deadline, the clock must still land exactly on
    // the deadline — a fixed measurement window always advances time
    // by its full span, and follow-up relative scheduling anchors at
    // the window end rather than at the last executed event.
    EventQueue queue;
    int fired = 0;
    queue.schedule_at(10, [&] { fired++; });
    queue.schedule_at(30, [&] { fired++; });
    EXPECT_EQ(queue.run_until(1000), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.now(), 1000);

    Time anchored_at = -1;
    queue.schedule_after(5, [&] { anchored_at = queue.now(); });
    queue.run();
    EXPECT_EQ(anchored_at, 1005);

    // Back-to-back windows each span their full width.
    queue.run_until(2000);
    queue.run_until(3000);
    EXPECT_EQ(queue.now(), 3000);
}

TEST(EventQueue, RunWhilePendingStopsOnPredicate)
{
    EventQueue queue;
    int count = 0;
    for (int i = 0; i < 10; i++) {
        queue.schedule_at(i, [&] { count++; });
    }
    const bool met =
        queue.run_while_pending([&] { return count >= 4; });
    EXPECT_TRUE(met);
    EXPECT_EQ(count, 4);
    // Predicate never met: drains and reports false.
    const bool never =
        queue.run_while_pending([&] { return count >= 100; });
    EXPECT_FALSE(never);
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue queue;
    EXPECT_FALSE(queue.step());
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TelemetryCountsScheduledAndExecuted)
{
    EventQueue queue;
    EXPECT_EQ(queue.events_scheduled(), 0u);
    EXPECT_EQ(queue.events_executed(), 0u);
    for (int i = 0; i < 5; i++) {
        queue.schedule_at(i, [] {});
    }
    EXPECT_EQ(queue.events_scheduled(), 5u);
    EXPECT_EQ(queue.peak_pending(), 5u);
    queue.run();
    EXPECT_EQ(queue.events_executed(), 5u);
    EXPECT_EQ(queue.peak_pending(), 5u);  // high-water, not current
}

TEST(EventQueue, PoolSlotsConvergeUnderSteadyState)
{
    // The slot pool grows to the peak number of simultaneously
    // pending events and then recycles: a long self-rescheduling
    // chain must not grow the pool beyond its initial burst.
    EventQueue queue;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 1000) {
            queue.schedule_after(1, chain);
        }
    };
    queue.schedule_at(0, chain);
    queue.run();
    EXPECT_EQ(depth, 1000);
    EXPECT_EQ(queue.peak_pending(), 1u);
    EXPECT_EQ(queue.pool_slots(), queue.peak_pending());
}

TEST(EventQueue, CallbackMayScheduleWhileItsSlotRecycles)
{
    // step() frees the slot before invoking the callback, so the
    // running callback's own slot may be handed to what it schedules.
    // The callback's captures must survive that reuse (they were
    // moved out of the pool first).
    EventQueue queue;
    std::vector<int> order;
    std::vector<std::uint64_t> payload(8, 42);
    queue.schedule_at(10, [&queue, &order, payload] {
        // Schedule two events from inside an executing event; one of
        // them likely lands in this event's just-freed slot.
        queue.schedule_after(5, [&order] { order.push_back(2); });
        queue.schedule_after(1, [&order] { order.push_back(1); });
        // Captures still intact after the schedule calls:
        order.push_back(static_cast<int>(payload[7]) - 42);
    });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, MoveOnlyCaptures)
{
    // EventFn is move-only, so events can own their payloads —
    // std::function would reject this capture outright.
    EventQueue queue;
    auto owned = std::make_unique<int>(9);
    int result = 0;
    queue.schedule_at(3, [owned = std::move(owned), &result] {
        result = *owned;
    });
    queue.run();
    EXPECT_EQ(result, 9);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue queue;
    queue.schedule_at(100, [] {});
    queue.run();
    EXPECT_DEATH(queue.schedule_at(50, [] {}), "past");
}

// ---- Same-timestamp coalescing (docs/PERF.md) -----------------------

TEST(EventQueueCoalescing, ChainsPreserveFifoOrder)
{
    EventQueue queue;
    queue.set_coalescing(true);
    std::vector<int> order;
    // Interleave two timestamps so chains grow out of arrival order.
    for (int i = 0; i < 16; i++) {
        const Time when = (i % 2 == 0) ? 100 : 200;
        queue.schedule_at(when, [&order, i] { order.push_back(i); });
    }
    queue.run();
    ASSERT_EQ(order.size(), 16u);
    // All evens (t=100) in arrival order, then all odds (t=200).
    for (int i = 0; i < 8; i++) {
        EXPECT_EQ(order[i], 2 * i);
        EXPECT_EQ(order[8 + i], 2 * i + 1);
    }
    EXPECT_GT(queue.events_coalesced(), 0u);
    EXPECT_GT(queue.batches_drained(), 0u);
}

TEST(EventQueueCoalescing, ManyTimestampsEvictTheCacheSafely)
{
    // More live timestamps than the direct-mapped chain cache has
    // slots: evicted timestamps fall back to plain heap entries, and
    // order is still globally correct.
    EventQueue queue;
    queue.set_coalescing(true);
    std::vector<Time> fired;
    for (int pass = 0; pass < 2; pass++) {
        for (Time t = 1; t <= 300; t++) {
            queue.schedule_at(t, [&fired, t] { fired.push_back(t); });
        }
    }
    queue.run();
    ASSERT_EQ(fired.size(), 600u);
    for (std::size_t i = 0; i + 1 < fired.size(); i++) {
        EXPECT_LE(fired[i], fired[i + 1]);
    }
}

TEST(EventQueueCoalescing, SchedulingDuringDrainJoinsTheChain)
{
    // An event scheduled *at the current timestamp while its chain is
    // draining* must still run within this drain, in FIFO position.
    EventQueue queue;
    queue.set_coalescing(true);
    std::vector<int> order;
    queue.schedule_at(10, [&] {
        order.push_back(0);
        queue.schedule_after(0, [&order] { order.push_back(2); });
    });
    queue.schedule_at(10, [&order] { order.push_back(1); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(queue.now(), 10);
}

TEST(EventQueueCoalescing, OffKnobExecutesIdentically)
{
    const auto run_once = [](bool coalesce) {
        EventQueue queue;
        queue.set_coalescing(coalesce);
        std::vector<int> order;
        for (int i = 0; i < 32; i++) {
            queue.schedule_at((i % 4) * 10,
                              [&order, i] { order.push_back(i); });
        }
        queue.run();
        return std::make_tuple(order, queue.now(),
                               queue.events_executed());
    };
    EXPECT_EQ(run_once(true), run_once(false));
}

TEST(EventQueueCoalescing, RunUntilRespectsChainedDeadline)
{
    EventQueue queue;
    queue.set_coalescing(true);
    int before = 0;
    int after = 0;
    for (int i = 0; i < 4; i++) {
        queue.schedule_at(50, [&before] { before++; });
        queue.schedule_at(150, [&after] { after++; });
    }
    queue.run_until(100);
    EXPECT_EQ(before, 4);
    EXPECT_EQ(after, 0);
    EXPECT_EQ(queue.now(), 100);
    queue.run();
    EXPECT_EQ(after, 4);
}

TEST(EventQueueCoalescing, CountersTrackChainedEvents)
{
    EventQueue queue;
    queue.set_coalescing(true);
    for (int i = 0; i < 10; i++) {
        queue.schedule_at(7, [] {});
    }
    queue.run();
    // One heap pop drained all ten: nine rode along a chain.
    EXPECT_EQ(queue.events_executed(), 10u);
    EXPECT_EQ(queue.events_coalesced(), 9u);
    EXPECT_EQ(queue.batches_drained(), 1u);
}

}  // namespace
}  // namespace pulse::sim
