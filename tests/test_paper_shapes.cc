/**
 * @file
 * Shape guards: miniature versions of the paper's headline claims,
 * with generous tolerance bands, so a calibration or model regression
 * breaks `ctest` rather than silently skewing the benches. The full
 * grids live in bench/; these run in seconds at reduced scale.
 */
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "workloads/driver.h"

namespace pulse {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

apps::AppScale
tiny_scale()
{
    apps::AppScale scale;
    scale.upc_keys = 30'000;
    scale.tc_keys = 20'000;
    scale.tsv_samples = 80'000;
    return scale;
}

ClusterConfig
base_config(std::uint32_t nodes, Bytes data_bytes)
{
    ClusterConfig config;
    config.num_mem_nodes = nodes;
    config.accel.workspaces_per_logic = 16;
    config.cache.cache_bytes = std::max<Bytes>(
        static_cast<Bytes>(data_bytes * 0.02), 256 * kKiB);
    return config;
}

workloads::DriverResult
run_upc(Cluster& cluster, SystemKind system, std::uint32_t concurrency,
        std::uint64_t ops)
{
    apps::UpcApp app(cluster, tiny_scale());
    workloads::DriverConfig driver;
    driver.warmup_ops = std::min<std::uint64_t>(concurrency, 64);
    driver.measure_ops = ops;
    driver.concurrency = concurrency;
    driver.on_measure_start = [&cluster] { cluster.reset_stats(); };
    return run_closed_loop(cluster.queue(), cluster.submitter(system),
                           app.factory(), driver);
}

TEST(PaperShapes, Fig4_PulseBeatsCacheByAtLeast10x)
{
    ClusterConfig config =
        base_config(1, apps::upc_data_bytes(tiny_scale()));
    Cluster cluster(config);
    const auto pulse_run =
        run_upc(cluster, SystemKind::kPulse, 1, 120);
    const auto cache_run =
        run_upc(cluster, SystemKind::kCache, 1, 40);
    const double ratio =
        static_cast<double>(cache_run.latency.mean()) /
        static_cast<double>(pulse_run.latency.mean());
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 70.0);  // the paper's band tops out at 64x
}

TEST(PaperShapes, Fig4_RpcSlightlyFasterThanPulseSingleNode)
{
    ClusterConfig config =
        base_config(1, apps::upc_data_bytes(tiny_scale()));
    Cluster cluster(config);
    const auto pulse_run =
        run_upc(cluster, SystemKind::kPulse, 1, 150);
    const auto rpc_run = run_upc(cluster, SystemKind::kRpc, 1, 150);
    const double ratio =
        static_cast<double>(pulse_run.latency.mean()) /
        static_cast<double>(rpc_run.latency.mean());
    EXPECT_GT(ratio, 1.0);   // RPC's higher clock wins unloaded...
    EXPECT_LT(ratio, 1.45);  // ...but only by the paper's ~1.25x
}

TEST(PaperShapes, Fig5_PulseMatchesRpcThroughputSingleNode)
{
    ClusterConfig config =
        base_config(1, apps::upc_data_bytes(tiny_scale()));
    Cluster cluster(config);
    const auto pulse_run =
        run_upc(cluster, SystemKind::kPulse, 256, 800);
    const auto rpc_run =
        run_upc(cluster, SystemKind::kRpc, 256, 800);
    const double ratio = pulse_run.throughput / rpc_run.throughput;
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.3);
}

TEST(PaperShapes, Fig6_PulseSaturatesMemoryBandwidth)
{
    ClusterConfig config =
        base_config(1, apps::upc_data_bytes(tiny_scale()));
    Cluster cluster(config);
    const auto result = run_upc(cluster, SystemKind::kPulse, 256, 800);
    const double utilization =
        cluster.memory_bandwidth(result.measure_time) /
        cluster.memory_bandwidth_capacity();
    EXPECT_GT(utilization, 0.85);
    // Network stays a small fraction of the 2x12.5 GB/s port pair.
    const double net =
        static_cast<double>(cluster.client_network_bytes()) /
        to_seconds(result.measure_time);
    EXPECT_LT(net / 25e9, 0.10);
}

TEST(PaperShapes, Fig4_InNetworkContinuationBeatsRpcMultiNode)
{
    // TSV-15 on 2 nodes with glibc-like placement.
    ClusterConfig config =
        base_config(2, apps::tsv_data_bytes(tiny_scale()));
    config.alloc_policy = mem::AllocPolicy::kUniform;
    Cluster cluster(config);
    apps::TsvApp app(cluster, tiny_scale(), 15.0,
                     /*uniform_alloc=*/true);
    const auto run = [&](SystemKind system) {
        workloads::DriverConfig driver;
        driver.warmup_ops = 20;
        driver.measure_ops = 120;
        driver.concurrency = 1;
        return run_closed_loop(cluster.queue(),
                               cluster.submitter(system),
                               app.factory(), driver);
    };
    const auto pulse_run = run(SystemKind::kPulse);
    const auto rpc_run = run(SystemKind::kRpc);
    // Paper: 42-55% lower; guard a generous 20-60% band.
    const double reduction =
        1.0 - static_cast<double>(pulse_run.latency.mean()) /
                  static_cast<double>(rpc_run.latency.mean());
    EXPECT_GT(reduction, 0.20);
    EXPECT_LT(reduction, 0.60);
}

TEST(PaperShapes, Table2_IterationCounts)
{
    ClusterConfig config =
        base_config(1, apps::tsv_data_bytes(tiny_scale()));
    Cluster cluster(config);
    apps::UpcApp upc(cluster, tiny_scale());
    workloads::DriverConfig driver;
    driver.warmup_ops = 10;
    driver.measure_ops = 80;
    driver.concurrency = 4;
    const auto upc_run = run_closed_loop(
        cluster.queue(), cluster.submitter(SystemKind::kPulse),
        upc.factory(), driver);
    const double upc_iters =
        static_cast<double>(upc_run.iterations) /
        static_cast<double>(upc_run.completed);
    EXPECT_NEAR(upc_iters, 100.0, 30.0);  // paper: ~100

    apps::TsvApp tsv(cluster, tiny_scale(), 30.0);
    const auto tsv_run = run_closed_loop(
        cluster.queue(), cluster.submitter(SystemKind::kPulse),
        tsv.factory(), driver);
    const double tsv_iters =
        static_cast<double>(tsv_run.iterations) /
        static_cast<double>(tsv_run.completed);
    EXPECT_NEAR(tsv_iters, 165.0, 25.0);  // paper: 165 at 30 s
}

}  // namespace
}  // namespace pulse
