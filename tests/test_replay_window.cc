/**
 * @file
 * Tests for the accelerator's exactly-once replay window: verdict
 * state machine, per-client FIFO eviction, wraparound behaviour of a
 * tiny window, and cluster-level exactly-once CAS execution under
 * fault-injected duplication with a window small enough to evict
 * mid-run.
 */
#include <gtest/gtest.h>

#include <memory>

#include "accel/replay_window.h"
#include "check/fuzzer.h"
#include "core/cluster.h"
#include "isa/program.h"

namespace pulse::accel {
namespace {

ReplayWindow::Key
key(ClientId client, std::uint64_t seq, std::uint64_t visit = 0)
{
    return {{client, seq}, visit};
}

net::TraversalPacket
response_for(const ReplayWindow::Key& k)
{
    net::TraversalPacket packet;
    packet.id = k.id;
    packet.is_response = true;
    packet.iterations_done = k.visit + 1;
    return packet;
}

TEST(ReplayWindow, VerdictStateMachine)
{
    ReplayWindow window(4);
    ASSERT_TRUE(window.enabled());
    const auto k = key(0, 1);

    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kNew);
    window.mark_in_progress(k);
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kInProgress);
    EXPECT_EQ(window.cached_response(k), nullptr);

    window.record_response(k, response_for(k));
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kCached);
    const net::TraversalPacket* cached = window.cached_response(k);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->id, k.id);
    EXPECT_TRUE(cached->is_response);
}

TEST(ReplayWindow, UnmarkAllowsReexecution)
{
    // Admission-queue overflow path: the packet never executed, so a
    // retransmit must be allowed to run later.
    ReplayWindow window(4);
    const auto k = key(1, 7);
    window.mark_in_progress(k);
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kInProgress);
    window.unmark(k);
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kNew);
    EXPECT_EQ(window.size(), 0u);
}

TEST(ReplayWindow, ForgetDropsCompletedEntries)
{
    // A cached zero-progress kNotLocal bounce must be droppable even
    // though it is done: if the node has become the owner since (slab
    // migrated here, or the entry arrived via a cutover handoff),
    // replaying the bounce would ping-pong the packet between switch
    // and accelerator forever — the accelerator forgets the entry and
    // re-executes the visit under current routes instead.
    ReplayWindow window(4);
    const auto k = key(2, 3);
    window.mark_in_progress(k);
    net::TraversalPacket bounce = response_for(k);
    bounce.status = isa::TraversalStatus::kNotLocal;
    bounce.iterations_done = k.visit;  // no iteration ran
    window.record_response(k, bounce);
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kCached);

    window.forget(k);
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kNew);
    EXPECT_EQ(window.size(), 0u);
    window.forget(k);  // idempotent on a missing key
    EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kNew);
}

TEST(ReplayWindow, DistinctVisitsAreDistinctKeys)
{
    // A multi-hop traversal legitimately revisits a node with a larger
    // iterations_done; only byte-identical duplicates may collide.
    ReplayWindow window(8);
    const auto v0 = key(0, 5, 0);
    const auto v3 = key(0, 5, 3);
    window.mark_in_progress(v0);
    window.record_response(v0, response_for(v0));
    EXPECT_EQ(window.classify(v0), ReplayWindow::Verdict::kCached);
    EXPECT_EQ(window.classify(v3), ReplayWindow::Verdict::kNew);
}

TEST(ReplayWindow, FifoEvictionWrapsPerClient)
{
    ReplayWindow window(/*per_client_entries=*/3);
    // Fill client 0's budget, then keep inserting: the oldest entry
    // must fall out each time (wraparound), newest three retained.
    for (std::uint64_t seq = 0; seq < 10; seq++) {
        const auto k = key(0, seq);
        EXPECT_EQ(window.classify(k), ReplayWindow::Verdict::kNew);
        window.mark_in_progress(k);
        window.record_response(k, response_for(k));
    }
    EXPECT_EQ(window.size(), 3u);
    // 7, 8, 9 survive; everything older reads as new again.
    for (std::uint64_t seq = 0; seq < 7; seq++) {
        EXPECT_EQ(window.classify(key(0, seq)),
                  ReplayWindow::Verdict::kNew);
    }
    for (std::uint64_t seq = 7; seq < 10; seq++) {
        EXPECT_EQ(window.classify(key(0, seq)),
                  ReplayWindow::Verdict::kCached);
    }

    // Budgets are per client: client 1 inserts never evict client 0.
    for (std::uint64_t seq = 0; seq < 3; seq++) {
        const auto k = key(1, seq);
        window.mark_in_progress(k);
        window.record_response(k, response_for(k));
    }
    EXPECT_EQ(window.size(), 6u);
    EXPECT_EQ(window.classify(key(0, 9)),
              ReplayWindow::Verdict::kCached);
}

isa::Program
cas_increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

TEST(ReplayWindowCluster, ExactlyOnceUnderDuplicationWithTinyWindow)
{
    // End to end: duplicate-heavy network, a replay window small
    // enough that eviction happens mid-run, and a CAS counter as the
    // witness — n increments must land exactly n times, and the
    // duplicate-execution invariant must stay quiet.
    core::ClusterConfig config;
    config.check.invariants = true;
    config.accel.replay_window_entries = 8;
    config.faults = check::fuzz_fault_config("dup", /*seed=*/21);
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program =
        std::make_shared<const isa::Program>(cas_increment_program());

    const int n = 100;
    int done = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, isa::TraversalStatus::kDone);
            done++;
        };
        submit(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    EXPECT_EQ(cluster.checker()->registry().count(
                  check::InvariantKind::kDuplicateExecution),
              0u);
}

}  // namespace
}  // namespace pulse::accel
