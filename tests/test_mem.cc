/**
 * @file
 * Unit tests for the memory substrate: physical memory, the global
 * address map, the range TCAM, the cluster allocator (all policies),
 * and the memory-channel bandwidth model.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "mem/allocator.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "mem/range_tcam.h"

namespace pulse::mem {
namespace {

// ------------------------------------------------- physical memory

TEST(PhysicalMemory, ReadWriteRoundTrip)
{
    PhysicalMemory memory(4 * kMiB);
    const char text[] = "pulse accelerates pointer traversals";
    memory.write(1234, text, sizeof(text));
    char out[sizeof(text)] = {};
    memory.read(1234, out, sizeof(text));
    EXPECT_STREQ(out, text);
}

TEST(PhysicalMemory, UntouchedMemoryReadsZero)
{
    PhysicalMemory memory(4 * kMiB);
    std::uint64_t word = 0xFFFF;
    memory.read(2 * kMiB, &word, 8);
    EXPECT_EQ(word, 0u);
    EXPECT_EQ(memory.committed(), 0u);  // reads commit nothing
}

TEST(PhysicalMemory, LazyCommitOnWrite)
{
    PhysicalMemory memory(64 * kMiB);
    EXPECT_EQ(memory.committed(), 0u);
    memory.write_as<std::uint64_t>(0, 1);
    memory.write_as<std::uint64_t>(32 * kMiB, 2);
    EXPECT_EQ(memory.committed(), 2 * kMiB);  // two 1 MiB chunks
}

TEST(PhysicalMemory, CrossChunkAccess)
{
    PhysicalMemory memory(4 * kMiB);
    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); i++) {
        data[i] = static_cast<std::uint8_t>(i * 7);
    }
    const PhysAddr addr = kMiB - 2048;  // straddles a chunk boundary
    memory.write(addr, data.data(), data.size());
    std::vector<std::uint8_t> out(4096);
    memory.read(addr, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(PhysicalMemoryDeath, OutOfRangePanics)
{
    PhysicalMemory memory(1 * kMiB);
    std::uint64_t word = 0;
    EXPECT_DEATH(memory.read(kMiB - 4, &word, 8), "past end");
}

// ------------------------------------------------------ address map

TEST(AddressMap, PartitionsAreContiguousAndDisjoint)
{
    AddressMap map(4, 256 * kMiB);
    for (NodeId node = 0; node < 4; node++) {
        const NodeRegion& region = map.region(node);
        EXPECT_EQ(region.node, node);
        EXPECT_EQ(*map.node_for(region.base), node);
        EXPECT_EQ(*map.node_for(region.base + region.size - 1), node);
        EXPECT_EQ(map.offset_in_region(region.base), 0u);
    }
    // Boundary between node 0 and node 1.
    const VirtAddr boundary = map.region(1).base;
    EXPECT_EQ(*map.node_for(boundary - 1), 0u);
    EXPECT_EQ(*map.node_for(boundary), 1u);
}

TEST(AddressMap, OutOfSpaceReturnsNullopt)
{
    AddressMap map(2, 64 * kMiB);
    EXPECT_FALSE(map.node_for(0).has_value());
    EXPECT_FALSE(map.node_for(kNullAddr).has_value());
    const VirtAddr past = map.region(1).base + map.region_size();
    EXPECT_FALSE(map.node_for(past).has_value());
}

// ------------------------------------------------------- range tcam

TEST(RangeTcam, InsertLookupRemove)
{
    RangeTcam tcam(8);
    EXPECT_TRUE(tcam.insert({0x1000, 0x1000, 0x0, Perm::kReadWrite}));
    EXPECT_TRUE(tcam.insert({0x3000, 0x1000, 0x8000, Perm::kRead}));
    EXPECT_EQ(tcam.size(), 2u);

    auto hit = tcam.translate(0x1800, Perm::kRead);
    EXPECT_EQ(hit.status, TranslateStatus::kOk);
    EXPECT_EQ(hit.phys, 0x800u);

    auto second = tcam.translate(0x3010, Perm::kRead);
    EXPECT_EQ(second.status, TranslateStatus::kOk);
    EXPECT_EQ(second.phys, 0x8010u);

    EXPECT_TRUE(tcam.remove(0x1000));
    EXPECT_FALSE(tcam.remove(0x1000));
    EXPECT_EQ(tcam.translate(0x1800, Perm::kRead).status,
              TranslateStatus::kMiss);
}

TEST(RangeTcam, MissOutsideRanges)
{
    RangeTcam tcam(4);
    tcam.insert({0x1000, 0x1000, 0, Perm::kReadWrite});
    EXPECT_EQ(tcam.translate(0xFFF, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate(0x2000, Perm::kRead).status,
              TranslateStatus::kMiss);
}

TEST(RangeTcam, ProtectionEnforced)
{
    RangeTcam tcam(4);
    tcam.insert({0x1000, 0x1000, 0, Perm::kRead});
    EXPECT_EQ(tcam.translate(0x1000, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate(0x1000, Perm::kWrite).status,
              TranslateStatus::kProtectionFault);
    EXPECT_EQ(tcam.translate(0x1000, Perm::kReadWrite).status,
              TranslateStatus::kProtectionFault);
}

TEST(RangeTcam, OverlapRejected)
{
    RangeTcam tcam(8);
    EXPECT_TRUE(tcam.insert({0x1000, 0x1000, 0, Perm::kRead}));
    EXPECT_FALSE(tcam.insert({0x1800, 0x1000, 0, Perm::kRead}));
    EXPECT_FALSE(tcam.insert({0x0800, 0x1000, 0, Perm::kRead}));
    EXPECT_FALSE(tcam.insert({0x1000, 0x10, 0, Perm::kRead}));
    EXPECT_TRUE(tcam.insert({0x2000, 0x10, 0, Perm::kRead}));
}

TEST(RangeTcam, CapacityEnforced)
{
    RangeTcam tcam(2);
    EXPECT_TRUE(tcam.insert({0x1000, 0x100, 0, Perm::kRead}));
    EXPECT_TRUE(tcam.insert({0x2000, 0x100, 0, Perm::kRead}));
    EXPECT_FALSE(tcam.insert({0x3000, 0x100, 0, Perm::kRead}));
}

TEST(RangeTcam, SpanMustFitOneEntry)
{
    RangeTcam tcam(4);
    tcam.insert({0x1000, 0x100, 0, Perm::kRead});
    EXPECT_EQ(tcam.translate_span(0x10F0, 0x10, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate_span(0x10F0, 0x11, Perm::kRead).status,
              TranslateStatus::kMiss);
}

// -------------------------------------------------- global memory

TEST(GlobalMemory, CrossNodeIsolation)
{
    GlobalMemory memory(2, 16 * kMiB);
    const VirtAddr a = memory.address_map().region(0).base + 64;
    const VirtAddr b = memory.address_map().region(1).base + 64;
    memory.write_as<std::uint64_t>(a, 111);
    memory.write_as<std::uint64_t>(b, 222);
    EXPECT_EQ(memory.read_as<std::uint64_t>(a), 111u);
    EXPECT_EQ(memory.read_as<std::uint64_t>(b), 222u);
    // Same node-local offset, different nodes: independent bytes.
    EXPECT_EQ(memory.node(0).read_as<std::uint64_t>(64), 111u);
    EXPECT_EQ(memory.node(1).read_as<std::uint64_t>(64), 222u);
}

// --------------------------------------------------------- allocator

TEST(Allocator, PartitionedPinsNodes)
{
    AddressMap map(4, 16 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kPartitioned);
    for (NodeId node = 0; node < 4; node++) {
        const VirtAddr addr = alloc.alloc_on(node, 256, 256);
        EXPECT_EQ(*map.node_for(addr), node);
        EXPECT_EQ(addr % 256, 0u);
    }
    EXPECT_EQ(alloc.total_allocated(), 4 * 256u);
}

TEST(Allocator, ExhaustionFailsCleanly)
{
    AddressMap map(1, 1 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kPartitioned);
    EXPECT_NE(alloc.alloc_on(0, 1 * kMiB, 8), kNullAddr);
    EXPECT_EQ(alloc.alloc_on(0, 1, 8), kNullAddr);
    EXPECT_EQ(alloc.free_on(0), 0u);
}

TEST(Allocator, UniformSpreadsAcrossNodes)
{
    AddressMap map(4, 64 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kUniform, /*seed=*/9,
                           /*chunk=*/0);
    std::vector<int> per_node(4, 0);
    for (int i = 0; i < 4000; i++) {
        const VirtAddr addr = alloc.alloc(64, 64);
        per_node[*map.node_for(addr)]++;
    }
    for (const int count : per_node) {
        EXPECT_NEAR(count, 1000, 150);
    }
}

TEST(Allocator, UniformChunkingKeepsRunsLocal)
{
    AddressMap map(4, 64 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kUniform, 9,
                           /*chunk=*/8 * kKiB);
    // Consecutive 256 B allocations inside one 8 KiB slab share a node
    // and are contiguous.
    NodeId previous_node = kInvalidNode;
    VirtAddr previous = kNullAddr;
    int node_switches = 0;
    for (int i = 0; i < 320; i++) {  // 10 slabs worth
        const VirtAddr addr = alloc.alloc(256, 256);
        const NodeId node = *map.node_for(addr);
        if (previous != kNullAddr && node == previous_node) {
            EXPECT_EQ(addr, previous + 256);
        }
        if (previous_node != kInvalidNode && node != previous_node) {
            node_switches++;
        }
        previous = addr;
        previous_node = node;
    }
    // Roughly one switch opportunity per slab (32 allocations).
    EXPECT_LE(node_switches, 10);
}

TEST(Allocator, RandomAllocationsNeverOverlap)
{
    AddressMap map(2, 8 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kUniform, 77, 4 * kKiB);
    Rng rng(123);
    std::vector<std::pair<VirtAddr, Bytes>> blocks;
    for (int i = 0; i < 2000; i++) {
        const Bytes size = 8 + rng.next_below(512);
        const VirtAddr addr = alloc.alloc(size, 8);
        ASSERT_NE(addr, kNullAddr);
        blocks.emplace_back(addr, size);
    }
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 1; i < blocks.size(); i++) {
        EXPECT_LE(blocks[i - 1].first + blocks[i - 1].second,
                  blocks[i].first)
            << "overlap at block " << i;
    }
}

TEST(Allocator, BackingFreeAndReallocReusesAddresses)
{
    // The migration path: free a vacated slab's backing, reallocate on
    // the same node, and the hole is reused instead of leaking.
    AddressMap map(2, 1 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kPartitioned);
    const Bytes slab = 64 * kKiB;
    const Bytes a = alloc.alloc_backing(0, slab, 256);
    const Bytes b = alloc.alloc_backing(0, slab, 256);
    ASSERT_NE(a, ClusterAllocator::kNoBacking);
    ASSERT_EQ(b, a + slab);  // bump frontier
    EXPECT_EQ(alloc.free_list_bytes(0), 0u);

    alloc.free_backing(0, a, slab);
    EXPECT_EQ(alloc.free_list_bytes(0), slab);

    // First fit reuses the hole; the frontier does not move.
    const Bytes frontier = alloc.allocated_on(0);
    const Bytes c = alloc.alloc_backing(0, 16 * kKiB, 256);
    EXPECT_EQ(c, a);
    EXPECT_EQ(alloc.free_list_bytes(0), slab - 16 * kKiB);
    EXPECT_EQ(alloc.allocated_on(0), frontier);

    // Freeing merges back into one hole, reusable at full size.
    alloc.free_backing(0, c, 16 * kKiB);
    EXPECT_EQ(alloc.free_list_bytes(0), slab);
    EXPECT_EQ(alloc.alloc_backing(0, slab, 256), a);
    EXPECT_EQ(alloc.free_list_bytes(0), 0u);

    // Per-node isolation: node 1's list is untouched throughout.
    EXPECT_EQ(alloc.free_list_bytes(1), 0u);

    // Too-large requests fall back to the frontier, not the holes.
    alloc.free_backing(0, a, slab);
    const Bytes d = alloc.alloc_backing(0, 2 * slab, 256);
    EXPECT_EQ(d, frontier);
    EXPECT_EQ(alloc.free_list_bytes(0), slab);
}

TEST(AllocatorDeath, BackingDoubleFreePanics)
{
    AddressMap map(1, 1 * kMiB);
    ClusterAllocator alloc(map, AllocPolicy::kPartitioned);
    const Bytes a = alloc.alloc_backing(0, 4 * kKiB, 256);
    alloc.free_backing(0, a, 4 * kKiB);
    EXPECT_DEATH(alloc.free_backing(0, a, 4 * kKiB), "free");
}

// ---------------------------------------------------------- channels

TEST(MemoryChannel, OccupancySerializes)
{
    MemoryChannel channel(gbps_bytes(12.5));
    // 256 B at 12.5 GB/s = 20.48 ns.
    const Time first = channel.access(0, 256);
    EXPECT_NEAR(static_cast<double>(first), 20.48e3, 50.0);
    const Time second = channel.access(0, 256);  // queues behind
    EXPECT_NEAR(static_cast<double>(second),
                2 * static_cast<double>(first), 100.0);
    EXPECT_EQ(channel.bytes_transferred(), 512u);
}

TEST(MemoryChannel, IdleGapsDontAccumulate)
{
    MemoryChannel channel(gbps_bytes(12.5));
    channel.access(0, 256);
    const Time later = channel.access(micros(1.0), 256);
    EXPECT_NEAR(static_cast<double>(later - micros(1.0)), 20.48e3,
                50.0);
}

TEST(ChannelSet, LeastBusySteering)
{
    ChannelSet channels(2, gbps_bytes(17.0), 12.5 / 17.0);
    // Two concurrent accesses land on different channels: both finish
    // at the single-access completion time.
    const Time a = channels.access(0, 256);
    const Time b = channels.access(0, 256);
    EXPECT_EQ(a, b);
    const Time c = channels.access(0, 256);  // now queues
    EXPECT_GT(c, a);
}

TEST(ChannelSet, InterconnectTogglesBandwidth)
{
    ChannelSet channels(2, gbps_bytes(17.0), 12.5 / 17.0);
    EXPECT_NEAR(channels.total_effective_bandwidth(), 25e9, 1e6);
    channels.set_interconnect_enabled(false);
    EXPECT_NEAR(channels.total_effective_bandwidth(), 34e9, 1e6);
    channels.set_interconnect_enabled(true);
    EXPECT_NEAR(channels.total_effective_bandwidth(), 25e9, 1e6);
}

TEST(ChannelSet, AchievedBandwidthAccounting)
{
    ChannelSet channels(2, gbps_bytes(17.0), 12.5 / 17.0);
    for (int i = 0; i < 1000; i++) {
        channels.access(0, 256);
    }
    EXPECT_EQ(channels.bytes_transferred(), 256'000u);
    // 256 KB over 10 us window = 25.6 GB/s.
    EXPECT_NEAR(channels.achieved_bandwidth(micros(10.0)), 25.6e9,
                1e8);
    channels.reset_stats();
    EXPECT_EQ(channels.bytes_transferred(), 0u);
}

}  // namespace
}  // namespace pulse::mem
