/**
 * @file
 * Unit tests for InlineFunction, the SBO event callback. The contract
 * under test: captures up to Capacity bytes live inline (no heap,
 * ever), the callable is move-only, moves transfer the capture, and
 * destruction runs capture destructors exactly once.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/event_queue.h"
#include "sim/inline_function.h"

namespace pulse::sim {
namespace {

using TestFn = InlineFunction<128>;

// ---------------------------------------------------------------
// Allocation instrumentation: the tests below assert that neither
// construction, move, invocation, nor destruction of an
// InlineFunction touches the heap. Counts global operator new calls
// made on this thread between mark() and delta().
// ---------------------------------------------------------------

std::uint64_t&
alloc_count()
{
    static thread_local std::uint64_t count = 0;
    return count;
}

struct AllocProbe
{
    std::uint64_t start = alloc_count();
    std::uint64_t delta() const { return alloc_count() - start; }
};

}  // namespace
}  // namespace pulse::sim

// Count allocations test-wide. gtest itself allocates, so the tests
// only probe tight windows around InlineFunction operations.
void*
operator new(std::size_t size)
{
    pulse::sim::alloc_count()++;
    void* ptr = std::malloc(size == 0 ? 1 : size);
    if (ptr == nullptr) {
        throw std::bad_alloc();
    }
    return ptr;
}

void
operator delete(void* ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void* ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace pulse::sim {
namespace {

TEST(InlineFunction, InvokesCapture)
{
    int calls = 0;
    TestFn fn([&calls] { calls++; });
    EXPECT_TRUE(static_cast<bool>(fn));
    fn();
    fn();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, DefaultConstructedIsEmpty)
{
    TestFn fn;
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, LargeCaptureStaysInline)
{
    // A capture close to the budget: stored inline, invoked intact.
    struct Payload
    {
        std::uint64_t words[14];
    };
    static_assert(sizeof(Payload) + sizeof(void*) <= TestFn::capacity);
    Payload payload{};
    for (int i = 0; i < 14; i++) {
        payload.words[i] = 0x1111111111111111ull * (i + 1);
    }
    std::uint64_t sum = 0;
    AllocProbe probe;
    {
        TestFn fn([payload, &sum] {
            for (const std::uint64_t word : payload.words) {
                sum += word;
            }
        });
        fn();
    }
    EXPECT_EQ(probe.delta(), 0u) << "capture must not heap-allocate";
    std::uint64_t expected = 0;
    for (const std::uint64_t word : payload.words) {
        expected += word;
    }
    EXPECT_EQ(sum, expected);
}

TEST(InlineFunction, MoveTransfersCapture)
{
    int calls = 0;
    TestFn a([&calls] { calls++; });
    AllocProbe probe;
    TestFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: post-move probe
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);

    TestFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT: post-move probe
    c();
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(probe.delta(), 0u) << "moves must not heap-allocate";
}

TEST(InlineFunction, MoveOnlyCapturesWork)
{
    // std::function would reject this capture (it requires
    // copy-constructible callables); InlineFunction must not.
    auto owned = std::make_unique<int>(41);
    int result = 0;
    TestFn fn([owned = std::move(owned), &result] {
        result = *owned + 1;
    });
    TestFn moved(std::move(fn));
    moved();
    EXPECT_EQ(result, 42);
}

TEST(InlineFunction, DestructionRunsCaptureDtorsExactlyOnce)
{
    struct Counter
    {
        int* live;
        explicit Counter(int* live) : live(live) { (*live)++; }
        Counter(const Counter& other) : live(other.live) { (*live)++; }
        Counter(Counter&& other) noexcept : live(other.live)
        {
            (*live)++;
        }
        ~Counter() { (*live)--; }
    };
    int live = 0;
    {
        Counter counter(&live);
        TestFn fn([counter] {});
        EXPECT_GE(live, 1);
        TestFn moved(std::move(fn));
        // Moving destroys the source capture; no object leaks.
        moved();
    }
    EXPECT_EQ(live, 0) << "capture destructors must balance";
}

TEST(InlineFunction, AssignReplacesAndDestroysOldCapture)
{
    int first_calls = 0;
    int second_calls = 0;
    TestFn fn([&first_calls] { first_calls++; });
    fn = TestFn([&second_calls] { second_calls++; });
    fn();
    EXPECT_EQ(first_calls, 0);
    EXPECT_EQ(second_calls, 1);
}

TEST(InlineFunction, CapacityMatchesEventBudget)
{
    // The event queue's alias must carry the documented budget — and
    // captures at exactly the budget must compile and stay inline.
    static_assert(EventFn::capacity == kEventInlineCapacity);
    struct Exact
    {
        unsigned char bytes[kEventInlineCapacity];
        void operator()() const {}
    };
    static_assert(sizeof(Exact) == kEventInlineCapacity);
    AllocProbe probe;
    {
        EventFn fn{Exact{}};
        fn();
    }
    EXPECT_EQ(probe.delta(), 0u);
    // Anything larger is rejected at compile time (static_assert in
    // the converting constructor, so it cannot be probed by SFINAE):
    //   struct TooBig { unsigned char b[kEventInlineCapacity + 1];
    //                   void operator()() const {} };
    //   EventFn fn{TooBig{}};   // "capture exceeds InlineFunction
    //                           //  storage" fires at compile time
}

TEST(InlineFunction, EventQueueRunsMoveOnlyCallbacks)
{
    // End-to-end through the queue: move-only capture, no allocation
    // from schedule to execution (slot reuse path).
    EventQueue queue;
    int result = 0;
    // Prime the pool so the probe below sees steady-state behavior.
    queue.schedule_at(1, [] {});
    queue.run();

    AllocProbe probe;
    auto owned = std::make_unique<int>(7);
    probe = AllocProbe{};  // exclude make_unique itself
    queue.schedule_at(10, [owned = std::move(owned), &result] {
        result = *owned;
    });
    queue.run();
    EXPECT_EQ(probe.delta(), 0u)
        << "steady-state schedule+run must not allocate";
    EXPECT_EQ(result, 7);
}

}  // namespace
}  // namespace pulse::sim
