/**
 * @file
 * Additional ISA coverage: STORE verification and semantics through
 * the traversal engine, assembler corner cases, jump-condition
 * semantics, and builder/analysis interactions.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "isa/analysis.h"
#include "isa/assembler.h"
#include "isa/program.h"
#include "isa/traversal.h"

namespace pulse::isa {
namespace {

TEST(StoreVerify, OperandShapesEnforced)
{
    // Non-immediate operands rejected.
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kStore, .dst = sp(0),
                        .src1 = imm(0), .src2 = imm(8)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_FALSE(Program(std::move(code), 64, 4).verify());
    }
    // Zero length rejected.
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kStore, .dst = imm(0),
                        .src1 = imm(0), .src2 = imm(0)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_FALSE(Program(std::move(code), 64, 4).verify());
    }
    // Data span past 256 rejected.
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kStore, .dst = imm(0),
                        .src1 = imm(200), .src2 = imm(100)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_FALSE(Program(std::move(code), 64, 4).verify());
    }
    // A well-formed store passes.
    {
        std::vector<Instruction> code;
        code.push_back({.op = Opcode::kStore, .dst = imm(8),
                        .src1 = imm(0), .src2 = imm(16)});
        code.push_back({.op = Opcode::kReturn});
        EXPECT_TRUE(Program(std::move(code), 64, 4).verify());
    }
}

TEST(StoreTraversal, WritesReachMemoryHook)
{
    ProgramBuilder b;
    b.load(16)
        .move(dat(0), imm(0x1234))
        .store(0, 0, 8)
        .store(8, 8, 8)
        .ret();
    Program program = b.build();
    ASSERT_TRUE(program.verify());

    std::vector<std::pair<VirtAddr, std::uint64_t>> writes;
    MemoryHooks hooks;
    hooks.load = [](VirtAddr, std::uint32_t len, std::uint8_t* out) {
        std::memset(out, 0xEE, len);
        return true;
    };
    hooks.store = [&](VirtAddr addr, std::uint32_t len,
                      const std::uint8_t* in) {
        std::uint64_t word = 0;
        std::memcpy(&word, in, std::min<std::uint32_t>(len, 8));
        writes.emplace_back(addr, word);
        return true;
    };
    const auto outcome = run_traversal(program, 0x4000, ScratchBuffer{}, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kDone);
    ASSERT_EQ(writes.size(), 2u);
    EXPECT_EQ(writes[0].first, 0x4000u);
    EXPECT_EQ(writes[0].second, 0x1234u);  // the modified word
    EXPECT_EQ(writes[1].first, 0x4008u);
    EXPECT_EQ(writes[1].second, 0xEEEEEEEEEEEEEEEEull);  // loaded bytes
}

TEST(StoreTraversal, StoreFailureFaults)
{
    ProgramBuilder b;
    b.load(16).store(0, 0, 8).ret();
    Program program = b.build();
    MemoryHooks hooks;
    hooks.load = [](VirtAddr, std::uint32_t, std::uint8_t*) {
        return true;
    };
    hooks.store = [](VirtAddr, std::uint32_t, const std::uint8_t*) {
        return false;  // protection failure
    };
    const auto outcome = run_traversal(program, 0x4000, ScratchBuffer{}, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kMemFault);
}

TEST(JumpConditions, AllSixEvaluateCorrectly)
{
    struct Case
    {
        Cond cond;
        std::uint64_t a;
        std::uint64_t b;
        bool taken;
    };
    const Case cases[] = {
        {Cond::kEq, 5, 5, true},    {Cond::kEq, 5, 6, false},
        {Cond::kNeq, 5, 6, true},   {Cond::kNeq, 5, 5, false},
        {Cond::kLt, 4, 5, true},    {Cond::kLt, 5, 5, false},
        {Cond::kGt, 6, 5, true},    {Cond::kGt, 5, 5, false},
        {Cond::kLe, 5, 5, true},    {Cond::kLe, 6, 5, false},
        {Cond::kGe, 5, 5, true},    {Cond::kGe, 4, 5, false},
    };
    for (const Case& test_case : cases) {
        ProgramBuilder b;
        b.compare(imm(test_case.a), imm(test_case.b))
            .jump(test_case.cond, "taken")
            .move(sp(0), imm(0))
            .ret()
            .label("taken")
            .move(sp(0), imm(1))
            .ret();
        Program program = b.build();
        ASSERT_TRUE(program.verify());
        Workspace ws;
        ws.configure(program);
        run_iteration(program, ws);
        EXPECT_EQ(ws.read(sp(0)), test_case.taken ? 1u : 0u)
            << cond_name(test_case.cond) << " " << test_case.a
            << " vs " << test_case.b;
    }
}

TEST(Assembler, StoreAndDirectives)
{
    const auto result = assemble(".scratch 128\n"
                                 "LOAD 64\n"
                                 "STORE 8 0 16\n"
                                 "RETURN\n");
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_TRUE(result.program->verify());
    const auto& store = result.program->code()[1];
    EXPECT_EQ(store.op, Opcode::kStore);
    EXPECT_EQ(store.dst.value, 8u);
    EXPECT_EQ(store.src2.value, 16u);
}

TEST(Assembler, VectorMoveWidths)
{
    const auto result =
        assemble("LOAD 256\nMOVE sp[0:240] data[16:240]\nRETURN\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(result.program->verify());
    EXPECT_EQ(result.program->code()[1].dst.width, 240);
}

TEST(Assembler, HexImmediatesAndComments)
{
    const auto result = assemble(
        "MOVE sp[0] 0xDEAD  ; trailing comment\n"
        "# full-line comment\n"
        "RETURN\n");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.program->code()[0].src1.value, 0xDEADu);
}

TEST(Assembler, RejectsMalformedOperands)
{
    EXPECT_FALSE(assemble("MOVE sp[x] 1\nRETURN\n").ok());
    EXPECT_FALSE(assemble("MOVE sp[0:8 1\nRETURN\n").ok());
    EXPECT_FALSE(assemble("LOAD\nRETURN\n").ok());
    EXPECT_FALSE(assemble("ADD sp[0] 1\nRETURN\n").ok());
    EXPECT_FALSE(assemble(".scratch abc\nRETURN\n").ok());
}

TEST(Analysis, UnconditionalJumpSkipsFallthrough)
{
    // JUMP (always) must not count the unreachable fallthrough arm.
    ProgramBuilder b;
    b.jump_always("end");
    for (int i = 0; i < 20; i++) {
        b.add(sp(0), sp(0), imm(1));
    }
    b.label("end").ret();
    Program program = b.build();
    const auto analysis = analyze(program);
    ASSERT_TRUE(analysis.valid);
    EXPECT_EQ(analysis.worst_path_instructions, 2u);  // JUMP + RETURN
}

TEST(Analysis, NestedBranchesTakeLongestChain)
{
    // if A { 5 ops } ; if B { 8 ops } — the chain can take both.
    ProgramBuilder b;
    b.compare(sp(0), imm(0)).jump_eq("skip_first");
    for (int i = 0; i < 5; i++) {
        b.add(sp(8), sp(8), imm(1));
    }
    b.label("skip_first").compare(sp(0), imm(1)).jump_eq("skip_second");
    for (int i = 0; i < 8; i++) {
        b.add(sp(16), sp(16), imm(1));
    }
    b.label("skip_second").ret();
    const auto analysis = analyze(b.build());
    ASSERT_TRUE(analysis.valid);
    // 2 + 5 + 2 + 8 + 1 = 18.
    EXPECT_EQ(analysis.worst_path_instructions, 18u);
}

TEST(Workspace, ConfigureResetsState)
{
    ProgramBuilder b;
    b.move(sp(0), imm(1)).ret();
    Program program = b.build();
    Workspace ws;
    ws.configure(program);
    ws.cur_ptr = 0x1234;
    ws.flags = -1;
    ws.scratch[0] = 0xFF;
    ws.configure(program);
    EXPECT_EQ(ws.cur_ptr, kNullAddr);
    EXPECT_EQ(ws.flags, 0);
    EXPECT_EQ(ws.scratch[0], 0);
    EXPECT_EQ(ws.data.size(), kMaxLoadBytes);
}

TEST(TraversalEngine, InitScratchLongerThanConfiguredIsTruncated)
{
    ProgramBuilder b;
    b.move(sp(0), sp(8)).ret();
    b.scratch_bytes(16);
    Program program = b.build();
    std::vector<std::uint8_t> huge(1024, 0xAB);
    MemoryHooks hooks;
    const auto outcome = run_traversal(program, 0, huge, hooks);
    EXPECT_EQ(outcome.status, TraversalStatus::kDone);
    EXPECT_EQ(outcome.scratch.size(), 16u);
    EXPECT_EQ(outcome.scratch[0], 0xAB);
}

}  // namespace
}  // namespace pulse::isa
