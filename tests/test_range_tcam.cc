/**
 * @file
 * Edge-case tests for the RangeTcam translation/protection table: the
 * non-overlap insert contract in every overlap geometry, full-table
 * behaviour at capacity, span translation past an entry's end, and —
 * at cluster level — rule updates (protection flips) around and during
 * in-flight routed operations.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "isa/program.h"
#include "mem/range_tcam.h"

namespace pulse::mem {
namespace {

RangeEntry
entry(VirtAddr base, Bytes length, PhysAddr phys,
      Perm perm = Perm::kReadWrite)
{
    return {base, length, phys, perm};
}

TEST(RangeTcam, RejectsEveryOverlapGeometry)
{
    RangeTcam tcam(8);
    ASSERT_TRUE(tcam.insert(entry(1000, 100, 0)));

    // Same base, partial front/back, containing, contained: all overlap.
    EXPECT_FALSE(tcam.insert(entry(1000, 100, 0)));
    EXPECT_FALSE(tcam.insert(entry(950, 100, 0)));
    EXPECT_FALSE(tcam.insert(entry(1050, 100, 0)));
    EXPECT_FALSE(tcam.insert(entry(900, 400, 0)));
    EXPECT_FALSE(tcam.insert(entry(1040, 10, 0)));
    EXPECT_EQ(tcam.size(), 1u);

    // Exactly adjacent ranges do not overlap.
    EXPECT_TRUE(tcam.insert(entry(900, 100, 0)));
    EXPECT_TRUE(tcam.insert(entry(1100, 100, 0)));
    EXPECT_EQ(tcam.size(), 3u);

    // Each address resolves through the entry that contains it.
    EXPECT_EQ(tcam.translate(999, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate(1000, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate(1199, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate(1200, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate(899, Perm::kRead).status,
              TranslateStatus::kMiss);
}

TEST(RangeTcam, FullTableRejectsUntilRemove)
{
    RangeTcam tcam(4);
    for (std::size_t i = 0; i < 4; i++) {
        ASSERT_TRUE(
            tcam.insert(entry(i * 1000, 500, i * 500)));
    }
    EXPECT_EQ(tcam.size(), tcam.capacity());
    // Full: even a disjoint range is rejected...
    EXPECT_FALSE(tcam.insert(entry(9000, 100, 0)));
    // ...until an entry is removed.
    EXPECT_TRUE(tcam.remove(2000));
    EXPECT_FALSE(tcam.remove(2000));  // already gone
    EXPECT_TRUE(tcam.insert(entry(9000, 100, 0)));
    EXPECT_EQ(tcam.translate(2100, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate(9050, Perm::kRead).status,
              TranslateStatus::kOk);
}

TEST(RangeTcam, SpanPastEntryEndMisses)
{
    RangeTcam tcam(2);
    ASSERT_TRUE(tcam.insert(entry(4096, 256, 0)));
    EXPECT_EQ(tcam.translate_span(4096, 256, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate_span(4344, 8, Perm::kRead).status,
              TranslateStatus::kOk);
    // Last byte would land outside the range: not a local pointer.
    EXPECT_EQ(tcam.translate_span(4345, 8, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate_span(4096, 257, Perm::kRead).status,
              TranslateStatus::kMiss);
}

TEST(RangeTcam, PunchEveryGeometry)
{
    // Whole-entry punch removes it outright.
    RangeTcam tcam(8);
    ASSERT_TRUE(tcam.insert(entry(0x1000, 0x400, 0x9000)));
    EXPECT_TRUE(tcam.can_punch(0x1000, 0x400));
    EXPECT_TRUE(tcam.punch(0x1000, 0x400));
    EXPECT_EQ(tcam.size(), 0u);

    // Front trim: the tail keeps its original phys mapping.
    ASSERT_TRUE(tcam.insert(entry(0x1000, 0x400, 0x9000)));
    EXPECT_TRUE(tcam.punch(0x1000, 0x100));
    EXPECT_EQ(tcam.size(), 1u);
    EXPECT_EQ(tcam.translate(0x10FF, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate(0x1100, Perm::kRead).phys, 0x9100u);

    // Back trim.
    EXPECT_TRUE(tcam.punch(0x1300, 0x100));
    EXPECT_EQ(tcam.size(), 1u);
    EXPECT_EQ(tcam.translate(0x12FF, Perm::kRead).phys, 0x92FFu);
    EXPECT_EQ(tcam.translate(0x1300, Perm::kRead).status,
              TranslateStatus::kMiss);

    // Middle split: one extra entry; both sides translate as before.
    EXPECT_TRUE(tcam.punch(0x1180, 0x80));
    EXPECT_EQ(tcam.size(), 2u);
    EXPECT_EQ(tcam.translate(0x1100, Perm::kRead).phys, 0x9100u);
    EXPECT_EQ(tcam.translate(0x11FF, Perm::kRead).status,
              TranslateStatus::kMiss);
    EXPECT_EQ(tcam.translate(0x1200, Perm::kRead).phys, 0x9200u);
}

TEST(RangeTcam, PunchRefusalsLeaveTableIntact)
{
    RangeTcam tcam(2);
    ASSERT_TRUE(tcam.insert(entry(0x1000, 0x400, 0x9000)));
    ASSERT_TRUE(tcam.insert(entry(0x2000, 0x400, 0xA000)));

    // A span not fully inside one entry is not punchable.
    EXPECT_FALSE(tcam.can_punch(0x0F00, 0x200));   // straddles front
    EXPECT_FALSE(tcam.can_punch(0x1300, 0x200));   // runs past end
    EXPECT_FALSE(tcam.can_punch(0x1800, 0x100));   // in a gap
    EXPECT_FALSE(tcam.punch(0x1300, 0x200));

    // A middle split needs a free slot; the table is full.
    EXPECT_FALSE(tcam.can_punch(0x1100, 0x100));
    EXPECT_FALSE(tcam.punch(0x1100, 0x100));
    // Edge punches still work at capacity (no growth).
    EXPECT_TRUE(tcam.can_punch(0x1000, 0x100));
    EXPECT_TRUE(tcam.punch(0x1000, 0x100));
    EXPECT_EQ(tcam.size(), 2u);
}

TEST(RangeTcam, InsertCoalesceMergesSeamlessNeighbours)
{
    // Punch a hole, then re-install the identical mapping: the entry
    // must coalesce back to one — the migrate-home path depends on it.
    RangeTcam tcam(4);
    ASSERT_TRUE(tcam.insert(entry(0x1000, 0x400, 0x9000)));
    ASSERT_TRUE(tcam.punch(0x1100, 0x100));
    EXPECT_EQ(tcam.size(), 2u);
    EXPECT_TRUE(
        tcam.insert_coalesce(entry(0x1100, 0x100, 0x9100)));
    EXPECT_EQ(tcam.size(), 1u);
    EXPECT_EQ(tcam.translate(0x13FF, Perm::kRead).phys, 0x93FFu);

    // Seamless on one side only: merges into that side.
    RangeTcam side(4);
    ASSERT_TRUE(side.insert(entry(0x1000, 0x100, 0x9000)));
    ASSERT_TRUE(
        side.insert_coalesce(entry(0x1100, 0x100, 0x9100)));
    EXPECT_EQ(side.size(), 1u);

    // VA-adjacent but phys-discontiguous: stays separate.
    ASSERT_TRUE(
        side.insert_coalesce(entry(0x1200, 0x100, 0xF000)));
    EXPECT_EQ(side.size(), 2u);
    // Different perm: stays separate too.
    ASSERT_TRUE(side.insert_coalesce(
        entry(0x1300, 0x100, 0xF100, Perm::kRead)));
    EXPECT_EQ(side.size(), 3u);
    // Overlap still rejected through the coalescing path.
    EXPECT_FALSE(
        side.insert_coalesce(entry(0x1080, 0x100, 0x9080)));
}

TEST(RangeTcam, PermissionChecksUsePermits)
{
    RangeTcam tcam(2);
    ASSERT_TRUE(tcam.insert(entry(0, 100, 0, Perm::kRead)));
    EXPECT_EQ(tcam.translate(50, Perm::kRead).status,
              TranslateStatus::kOk);
    EXPECT_EQ(tcam.translate(50, Perm::kWrite).status,
              TranslateStatus::kProtectionFault);
    EXPECT_EQ(tcam.translate(50, Perm::kReadWrite).status,
              TranslateStatus::kProtectionFault);
    EXPECT_TRUE(permits(Perm::kReadWrite, Perm::kWrite));
    EXPECT_TRUE(permits(Perm::kReadWrite, Perm::kNone));
    EXPECT_FALSE(permits(Perm::kRead, Perm::kWrite));
    EXPECT_FALSE(permits(Perm::kNone, Perm::kRead));
}

isa::Program
cas_increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

TEST(RangeTcamCluster, RuleUpdateBetweenOperationsFlipsOutcome)
{
    // Serial rule update: op succeeds, entry re-installed read-only,
    // identical op now protection-faults, entry restored, op succeeds
    // again. The TCAM rule is the only thing changing.
    core::Cluster cluster((core::ClusterConfig()));
    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program =
        std::make_shared<const isa::Program>(cas_increment_program());

    auto run_one = [&] {
        isa::TraversalStatus status = isa::TraversalStatus::kDone;
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            status = completion.status;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
        cluster.queue().run();
        return status;
    };

    EXPECT_EQ(run_one(), isa::TraversalStatus::kDone);

    auto& tcam = cluster.accelerator(0).tcam();
    const auto& region = cluster.memory().address_map().region(0);
    ASSERT_TRUE(tcam.remove(region.base));
    ASSERT_TRUE(
        tcam.insert({region.base, region.size, 0, Perm::kRead}));
    EXPECT_EQ(run_one(), isa::TraversalStatus::kMemFault);

    ASSERT_TRUE(tcam.remove(region.base));
    ASSERT_TRUE(tcam.insert(
        {region.base, region.size, 0, Perm::kReadWrite}));
    EXPECT_EQ(run_one(), isa::TraversalStatus::kDone);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter), 2u);
}

TEST(RangeTcamCluster, RuleUpdateDuringInFlightRouting)
{
    // The hard case: flip the rule while operations are in flight.
    // Every operation must still complete (kDone before the flip /
    // after the restore, kMemFault inside the window — never hang or
    // vanish), the CAS counter must equal the number of successes, and
    // the invariant audit must stay clean.
    core::ClusterConfig config;
    config.check.invariants = true;  // no oracle: rules change mid-run
    core::Cluster cluster(config);
    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program =
        std::make_shared<const isa::Program>(cas_increment_program());

    auto& tcam = cluster.accelerator(0).tcam();
    const auto& region = cluster.memory().address_map().region(0);
    cluster.queue().schedule_after(micros(2.0), [&] {
        tcam.remove(region.base);
        tcam.insert({region.base, region.size, 0, Perm::kRead});
    });
    cluster.queue().schedule_after(micros(30.0), [&] {
        tcam.remove(region.base);
        tcam.insert({region.base, region.size, 0, Perm::kReadWrite});
    });

    const int n = 48;
    int done = 0;
    int ok = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            done++;
            if (completion.status == isa::TraversalStatus::kDone) {
                ok++;
            } else {
                EXPECT_EQ(completion.status,
                          isa::TraversalStatus::kMemFault);
            }
        };
        submit(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(ok));
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

}  // namespace
}  // namespace pulse::mem
