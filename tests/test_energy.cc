/**
 * @file
 * Unit tests for the energy model: the static+activity integration,
 * the down-clocking (wimpy) semantics, and the derived metrics.
 */
#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace pulse::energy {
namespace {

TEST(AcceleratorEnergy, StaticPlusActivity)
{
    AcceleratorPower power;
    power.static_w = 10.0;
    power.net_stack_w = 2.0;
    power.mem_pipeline_w = 4.0;
    power.logic_pipeline_w = 3.0;

    AcceleratorActivity activity;
    activity.run_time = kSecond;  // 1 s
    activity.net_stack_busy_ps = 0.5 * kSecond;
    activity.mem_pipeline_busy_ps = 1.0 * kSecond;
    activity.logic_pipeline_busy_ps = 0.25 * kSecond;
    // 10 + 1 + 4 + 0.75 = 15.75 J.
    EXPECT_NEAR(accelerator_energy(power, activity), 15.75, 1e-9);
}

TEST(AcceleratorEnergy, IdleBurnsOnlyStatic)
{
    AcceleratorPower power;
    AcceleratorActivity activity;
    activity.run_time = kSecond;
    EXPECT_NEAR(accelerator_energy(power, activity), power.static_w,
                1e-9);
}

TEST(CpuEnergy, NominalClockUsesFullCorePower)
{
    CpuPower power;
    CpuActivity activity;
    activity.run_time = kSecond;
    activity.clock_ghz = power.nominal_clock_ghz;
    activity.worker_busy_ps = 4.0 * kSecond;  // 4 core-seconds
    const double expected =
        power.idle_w +
        4.0 * (power.core_static_w + power.core_dynamic_w);
    EXPECT_NEAR(cpu_energy(power, activity), expected, 1e-9);
}

TEST(CpuEnergy, DownClockingSavesLittle)
{
    // The paper's counter-intuitive RPC-W result: at 1.0 GHz (voltage
    // floor), per-core power barely drops, so slower execution means
    // more energy per unit of work.
    CpuPower power;
    CpuActivity nominal;
    nominal.run_time = kSecond;
    nominal.clock_ghz = 2.6;
    nominal.worker_busy_ps = 1.0 * kSecond;
    CpuActivity wimpy = nominal;
    wimpy.clock_ghz = 1.0;
    // Same busy time: wimpy draws less, but...
    const double nominal_joules = cpu_energy(power, nominal);
    const double wimpy_joules = cpu_energy(power, wimpy);
    EXPECT_LT(wimpy_joules, nominal_joules);
    // ...less than 15% less per busy-second, while doing 2.6x less
    // work in it: energy per unit work is decisively worse.
    EXPECT_GT(wimpy_joules, nominal_joules * 0.85);
    const double nominal_work = 2.6 * 1.0;  // clock x busy
    const double wimpy_work = 1.0 * 1.0;
    EXPECT_GT(wimpy_joules / wimpy_work,
              nominal_joules / nominal_work);
}

TEST(Derived, PerRequestAndPerfPerWatt)
{
    EXPECT_DOUBLE_EQ(per_request(10.0, 1000), 0.01);
    EXPECT_DOUBLE_EQ(per_request(10.0, 0), 0.0);

    // 1000 requests in 1 s at 20 J total = 20 W -> 50 req/s/W.
    EXPECT_NEAR(perf_per_watt(1000, kSecond, 20.0), 50.0, 1e-9);
    EXPECT_DOUBLE_EQ(perf_per_watt(1000, 0, 20.0), 0.0);
    EXPECT_DOUBLE_EQ(perf_per_watt(1000, kSecond, 0.0), 0.0);
}

TEST(Calibration, PulseBeatsRpcAtEqualThroughput)
{
    // Sanity-check the default coefficients reproduce the paper's
    // ordering at a bandwidth-saturated operating point.
    AcceleratorPower accel_power;
    AcceleratorActivity accel;
    accel.run_time = kSecond;
    accel.net_stack_busy_ps = 1.4 * kSecond;
    accel.mem_pipeline_busy_ps = 1.9 * kSecond;
    accel.logic_pipeline_busy_ps = 1.0 * kSecond;
    const double pulse_watts =
        accelerator_energy(accel_power, accel);

    CpuPower cpu_power;
    CpuActivity rpc;
    rpc.run_time = kSecond;
    rpc.clock_ghz = 2.6;
    rpc.worker_busy_ps = 11.0 * kSecond;  // ~11 busy cores
    const double rpc_watts = cpu_energy(cpu_power, rpc);

    const double ratio = rpc_watts / pulse_watts;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 9.0);
}

}  // namespace
}  // namespace pulse::energy
