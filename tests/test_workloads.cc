/**
 * @file
 * Unit tests for the workload generators (YCSB-C/E, the uPMU trace and
 * TSV queries) and the closed-loop driver.
 */
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "ds/linked_list.h"
#include "workloads/driver.h"
#include "workloads/workloads.h"

namespace pulse::workloads {
namespace {

TEST(Keys, KeyOfIsStrictlyIncreasingAndBounded)
{
    for (std::uint64_t i = 1; i < 1000; i++) {
        EXPECT_LT(key_of(i - 1), key_of(i));
    }
    EXPECT_LT(key_of(1'000'000'000), ds::kPadKey);
}

TEST(YcsbC, UniformCoversKeySpace)
{
    YcsbC workload(100);
    Rng rng(1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50'000; i++) {
        const std::uint64_t index = workload.next_index(rng);
        ASSERT_LT(index, 100u);
        counts[index]++;
    }
    for (const int count : counts) {
        EXPECT_NEAR(count, 500, 150);
    }
}

TEST(YcsbC, ZipfSkewsPopularity)
{
    YcsbC workload(1000, 0.99);
    Rng rng(2);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100'000; i++) {
        counts[workload.next_index(rng)]++;
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    // The most popular key dwarfs the median one.
    EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(YcsbE, ScanBounds)
{
    YcsbE workload(1000, 127);
    Rng rng(3);
    std::uint32_t max_seen = 0;
    std::uint32_t min_seen = 1000;
    double total = 0;
    const int n = 20'000;
    for (int i = 0; i < n; i++) {
        const auto scan = workload.next(rng);
        EXPECT_LT(scan.start_index, 1000u);
        EXPECT_GE(scan.length, 1u);
        EXPECT_LE(scan.length, 127u);
        max_seen = std::max(max_seen, scan.length);
        min_seen = std::min(min_seen, scan.length);
        total += scan.length;
    }
    EXPECT_EQ(min_seen, 1u);
    EXPECT_EQ(max_seen, 127u);
    EXPECT_NEAR(total / n, 64.0, 2.0);  // the paper's ~64 average
}

TEST(PmuTrace, MonotonicFixedRateTimestamps)
{
    PmuTrace trace(10'000);
    const auto& entries = trace.entries();
    ASSERT_EQ(entries.size(), 10'000u);
    for (std::size_t i = 1; i < entries.size(); i++) {
        EXPECT_GT(entries[i].key, entries[i - 1].key);
    }
    // 64 Hz default: ~15.6 ms period.
    const double span = static_cast<double>(trace.last_timestamp() -
                                            trace.first_timestamp());
    EXPECT_NEAR(span / 9999.0, 15.625, 0.1);
}

TEST(PmuTrace, ReadingsLookLikeVoltage)
{
    PmuTrace trace(50'000);
    for (const auto& entry : trace.entries()) {
        const auto mv = static_cast<std::int64_t>(entry.payload);
        EXPECT_GT(mv, 6'900'000);  // 6.9 kV
        EXPECT_LT(mv, 7'500'000);  // 7.5 kV
    }
}

TEST(TsvQueries, WindowsInsideTrace)
{
    PmuTrace trace(100'000);
    TsvQueries queries(trace, 30.0);
    Rng rng(4);
    bool saw_sum = false;
    bool saw_min = false;
    bool saw_max = false;
    for (int i = 0; i < 5000; i++) {
        const auto query = queries.next(rng);
        EXPECT_GE(query.lo, trace.first_timestamp());
        EXPECT_LE(query.hi, trace.last_timestamp());
        EXPECT_EQ(query.hi - query.lo, 30'000u);
        saw_sum |= query.kind == ds::AggKind::kSum;
        saw_min |= query.kind == ds::AggKind::kMin;
        saw_max |= query.kind == ds::AggKind::kMax;
    }
    EXPECT_TRUE(saw_sum && saw_min && saw_max);
}

// ------------------------------------------------------------ driver

struct DriverFixture : ::testing::Test
{
    DriverFixture() : cluster(core::ClusterConfig{})
    {
        list = std::make_unique<ds::LinkedList>(cluster.memory(),
                                                cluster.allocator());
        std::vector<std::uint64_t> values(32);
        for (std::size_t i = 0; i < values.size(); i++) {
            values[i] = i;
        }
        list->build(values, 0);
    }

    core::Cluster cluster;
    std::unique_ptr<ds::LinkedList> list;
};

TEST_F(DriverFixture, CountsAndThroughput)
{
    DriverConfig config;
    config.warmup_ops = 10;
    config.measure_ops = 50;
    config.concurrency = 4;
    bool measure_hook_fired = false;
    config.on_measure_start = [&] { measure_hook_fired = true; };
    const auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) { return list->make_find(31, {}); },
        config);
    EXPECT_TRUE(measure_hook_fired);
    EXPECT_EQ(result.completed, 50u);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.latency.count(), 50u);
    EXPECT_GT(result.throughput, 0.0);
    EXPECT_EQ(result.iterations, 50u * 32u);
}

TEST_F(DriverFixture, ZeroWarmupMeasuresEverything)
{
    DriverConfig config;
    config.warmup_ops = 0;
    config.measure_ops = 20;
    config.concurrency = 1;
    const auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) { return list->make_find(5, {}); }, config);
    EXPECT_EQ(result.completed, 20u);
}

TEST_F(DriverFixture, ErrorsAreCounted)
{
    // Point every op at an unmapped address.
    DriverConfig config;
    config.warmup_ops = 0;
    config.measure_ops = 10;
    config.concurrency = 2;
    const auto result = run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) {
            auto op = list->make_find(5, {});
            op.start_ptr = 0xDEAD0000;
            return op;
        },
        config);
    EXPECT_EQ(result.completed, 10u);
    EXPECT_EQ(result.errors, 10u);
}

TEST_F(DriverFixture, HigherConcurrencyNotSlower)
{
    const auto run = [&](std::uint32_t concurrency) {
        DriverConfig config;
        config.warmup_ops = 8;
        config.measure_ops = 64;
        config.concurrency = concurrency;
        return run_closed_loop(
                   cluster.queue(),
                   cluster.submitter(core::SystemKind::kPulse),
                   [&](std::uint64_t) {
                       return list->make_find(31, {});
                   },
                   config)
            .throughput;
    };
    const double serial = run(1);
    const double parallel = run(16);
    EXPECT_GT(parallel, serial * 2);
}

}  // namespace
}  // namespace pulse::workloads
