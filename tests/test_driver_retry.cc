/**
 * @file
 * Driver bounded-retry tests: a retried operation rides out a blackout
 * the engine's retransmit ladder gives up on, exhausted retries are
 * counted separately from engine give-ups, max_retries=0 keeps the
 * seed behaviour, and the jittered backoff stream is deterministic.
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/cluster.h"
#include "isa/program.h"
#include "workloads/driver.h"

namespace pulse::workloads {
namespace {

isa::Program
load_program()
{
    isa::ProgramBuilder b;
    b.load(8).move(isa::sp(0, 8), isa::dat(0, 8)).ret();
    b.scratch_bytes(8);
    return b.build();
}

/**
 * A 2-node cluster whose node 0 is dark for [1us, @p outage_end) with
 * an engine retransmit ladder short enough to give up mid-outage
 * (3 retransmits of 20us), so the driver's retry policy is what
 * decides whether operations targeting node 0 ever complete.
 */
core::ClusterConfig
blackout_config(Time outage_end)
{
    core::ClusterConfig config;
    config.num_mem_nodes = 2;
    config.offload.retransmit_timeout = micros(20.0);
    config.offload.max_retransmits = 3;
    config.faults.timeline.push_back(faults::NodeFaultWindow{
        /*node=*/0, faults::NodeFaultKind::kBlackout, micros(1.0),
        outage_end});
    return config;
}

DriverResult
run_reads(core::Cluster& cluster, const DriverConfig& driver,
          int total)
{
    auto program =
        std::make_shared<const isa::Program>(load_program());
    const VirtAddr va = cluster.allocator().alloc_on(0, 64, 8);
    EXPECT_NE(va, kNullAddr);
    cluster.memory().write_as<std::uint64_t>(va, 42);
    DriverConfig config = driver;
    config.warmup_ops = 0;
    config.measure_ops = total;
    return run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&, program](std::uint64_t) {
            offload::Operation op;
            op.program = program;
            op.start_ptr = va;
            op.init_scratch.assign(8, 0);
            return op;
        },
        config);
}

TEST(DriverRetry, RetriesThroughOutage)
{
    // The outage ends at 600us; the engine gives up long before that,
    // so only retried resubmissions can complete the operations.
    core::Cluster cluster(blackout_config(micros(600.0)));
    DriverConfig driver;
    driver.concurrency = 4;
    driver.max_retries = 12;
    driver.retry_backoff = micros(100.0);
    const DriverResult result = run_reads(cluster, driver, 32);

    EXPECT_EQ(result.completed, 32u);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_GT(result.retries, 0u);
    EXPECT_EQ(result.retries_exhausted, 0u);
    EXPECT_EQ(result.failed_ops, 0u);
}

TEST(DriverRetry, ExhaustionIsCountedSeparately)
{
    // The outage outlasts the whole retry budget: every operation
    // fails terminally, and the driver-level give-up is reported both
    // as a failed op and as an exhausted retry budget.
    core::Cluster cluster(blackout_config(micros(50000.0)));
    DriverConfig driver;
    driver.concurrency = 2;
    driver.max_retries = 2;
    driver.retry_backoff = micros(50.0);
    const DriverResult result = run_reads(cluster, driver, 8);

    EXPECT_EQ(result.completed, 8u);
    EXPECT_EQ(result.errors, 8u);
    EXPECT_EQ(result.failed_ops, 8u);
    EXPECT_EQ(result.retries_exhausted, 8u);
    EXPECT_EQ(result.retries, 16u);  // 2 resubmissions per op
}

TEST(DriverRetry, DisabledByDefaultKeepsSeedBehaviour)
{
    core::Cluster cluster(blackout_config(micros(50000.0)));
    DriverConfig driver;
    driver.concurrency = 2;
    const DriverResult result = run_reads(cluster, driver, 8);

    // No resubmissions: every op surfaces the engine give-up directly.
    EXPECT_EQ(result.completed, 8u);
    EXPECT_EQ(result.failed_ops, 8u);
    EXPECT_EQ(result.retries, 0u);
    EXPECT_EQ(result.retries_exhausted, 0u);
}

TEST(DriverRetry, BackoffIsDeterministic)
{
    auto run_once = [] {
        core::Cluster cluster(blackout_config(micros(600.0)));
        DriverConfig driver;
        driver.concurrency = 4;
        driver.max_retries = 12;
        driver.retry_backoff = micros(100.0);
        return run_reads(cluster, driver, 32);
    };
    const DriverResult a = run_once();
    const DriverResult b = run_once();
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.measure_time, b.measure_time);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
}

}  // namespace
}  // namespace pulse::workloads
