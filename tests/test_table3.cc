/**
 * @file
 * Supplementary Table 3 coverage: every one of the paper's 13 adapted
 * data structures executes an offloaded lookup through the full
 * simulated rack and matches its host-side reference — hits, misses,
 * and boundary probes — and every adapter's program passes the offload
 * engine's eta test.
 */
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "ds/table3.h"

namespace pulse::ds {
namespace {

class Table3Test : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(Table3Test, OffloadedLookupMatchesReference)
{
    const AdapterInfo& adapter = table3_adapters()[GetParam()];

    core::ClusterConfig config;
    core::Cluster cluster(config);

    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 1; i <= 300; i++) {
        keys.push_back(i * 3 + 1);  // 4, 7, ..., strictly increasing
    }

    // Hit (middle), hit (first), hit (last), miss (between), miss
    // (below range), miss (above range).
    const std::uint64_t probes[] = {
        keys[150], keys.front(), keys.back(), keys[150] + 1, 1,
        keys.back() + 100};

    for (const std::uint64_t probe : probes) {
        std::function<bool(const offload::Completion&)> checker;
        offload::Operation op = adapter.make_lookup(
            cluster.memory(), cluster.allocator(), keys, probe,
            &checker);
        ASSERT_TRUE(static_cast<bool>(checker)) << adapter.name;

        offload::Completion result;
        bool done = false;
        op.done = [&](offload::Completion&& completion) {
            result = std::move(completion);
            done = true;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
        cluster.queue().run();
        ASSERT_TRUE(done) << adapter.name << " probe " << probe;
        EXPECT_EQ(result.status, isa::TraversalStatus::kDone)
            << adapter.name << " probe " << probe;
        EXPECT_TRUE(result.offloaded)
            << adapter.name << ": the offload test must accept every "
            << "Table 3 program";
        EXPECT_TRUE(checker(result))
            << adapter.name << " probe " << probe;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllAdapters, Table3Test,
    ::testing::Range<std::size_t>(0, table3_adapters().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
        std::string name = table3_adapters()[info.param].name;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

TEST(Table3Registry, HasAllThirteenStructures)
{
    const auto& adapters = table3_adapters();
    EXPECT_EQ(adapters.size(), 13u);
    int lists = 0;
    int trees = 0;
    for (const AdapterInfo& adapter : adapters) {
        EXPECT_FALSE(adapter.name.empty());
        EXPECT_FALSE(adapter.internal_fn.empty());
        EXPECT_TRUE(static_cast<bool>(adapter.make_lookup));
        if (adapter.category == "List") {
            lists++;
        } else if (adapter.category == "Tree") {
            trees++;
        }
    }
    EXPECT_EQ(lists, 5);  // 2 STL lists + 3 Boost hash structures
    EXPECT_EQ(trees, 8);  // Google btree + 4 STL trees + 3 Boost trees
}

}  // namespace
}  // namespace pulse::ds
