/**
 * @file
 * Tests for the fault-injection plane and the hardened request path:
 * the RTO estimator against hand-computed sequences, seeded-chaos
 * determinism with exactly-once CAS semantics, duplicate suppression
 * under spurious retransmits, checksum-verified corruption drops,
 * scripted node blackout/stall/slow windows, the driver's failed-op
 * accounting, and RPC's opt-in at-most-once reliable mode.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "core/cluster.h"
#include "ds/linked_list.h"
#include "isa/assembler.h"
#include "offload/rto_estimator.h"
#include "workloads/driver.h"

namespace pulse::faults {
namespace {

using isa::TraversalStatus;

/** Lock-free fetch-and-add (same recipe as test_cas.cc). */
std::shared_ptr<const isa::Program>
increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(0), isa::sp(0), isa::imm(1))
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return std::make_shared<const isa::Program>(b.build());
}

offload::Completion
run_one(core::Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    bool done = false;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
        done = true;
    };
    cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    EXPECT_TRUE(done);
    return result;
}

TEST(RtoEstimator, MatchesHandComputedSequence)
{
    // min/max/multiplier neutralized so the raw formula is visible.
    offload::RtoEstimator est(/*initial=*/1000, /*min=*/0,
                              /*max=*/1'000'000'000,
                              /*srtt_multiplier=*/0.0);
    EXPECT_FALSE(est.has_sample());
    EXPECT_EQ(est.rto(), 1000);

    // First sample: srtt = R, rttvar = R/2, rto = srtt + 4*rttvar.
    est.sample(800);
    EXPECT_TRUE(est.has_sample());
    EXPECT_EQ(est.srtt(), 800);
    EXPECT_EQ(est.rttvar(), 400);
    EXPECT_EQ(est.rto(), 800 + 4 * 400);

    // err = 200: rttvar += (|err| - rttvar)/4 = -50 -> 350 (old srtt
    // is used for the error), then srtt += err/8 = +25 -> 825.
    est.sample(1000);
    EXPECT_EQ(est.srtt(), 825);
    EXPECT_EQ(est.rttvar(), 350);
    EXPECT_EQ(est.rto(), 825 + 4 * 350);

    // A dead-on sample shrinks variance only: (0 - 350)/4 = -87.
    est.sample(825);
    EXPECT_EQ(est.srtt(), 825);
    EXPECT_EQ(est.rttvar(), 263);

    est.reset();
    EXPECT_FALSE(est.has_sample());
    EXPECT_EQ(est.rto(), 1000);
}

TEST(RtoEstimator, ClampsAndMultiplierFloor)
{
    // Lower clamp: raw 100 + 4*50 = 300 < min 5000.
    offload::RtoEstimator low(1000, 5000, 1'000'000, 0.0);
    low.sample(100);
    EXPECT_EQ(low.rto(), 5000);

    // Upper clamp: raw 10000 + 4*5000 = 30000 > max 2000.
    offload::RtoEstimator high(1000, 0, 2000, 0.0);
    high.sample(10'000);
    EXPECT_EQ(high.rto(), 2000);

    // Multiplier floor: raw 800 + 4*400 = 2400 < srtt * 4 = 3200.
    offload::RtoEstimator floor(1000, 0, 1'000'000, 4.0);
    floor.sample(800);
    EXPECT_EQ(floor.rto(), 3200);

    // Negative samples clamp to zero instead of corrupting state.
    offload::RtoEstimator neg(1000, 0, 1'000'000, 0.0);
    neg.sample(-500);
    EXPECT_EQ(neg.srtt(), 0);
    EXPECT_EQ(neg.rttvar(), 0);
}

TEST(FaultPlaneWiring, DefaultConfigAttachesNoPlane)
{
    // The strict no-op contract: an all-quiet config constructs no
    // plane at all, so the fault path cannot perturb healthy runs.
    core::ClusterConfig config;
    EXPECT_FALSE(config.faults.enabled());
    core::Cluster cluster(config);
    EXPECT_EQ(cluster.fault_plane(), nullptr);

    core::ClusterConfig faulty;
    faulty.faults.timeline.push_back(
        {.node = 0, .kind = NodeFaultKind::kSlow, .start = 0,
         .end = micros(1.0), .slow_factor = 2.0});
    EXPECT_TRUE(faulty.faults.enabled());
    core::Cluster degraded(faulty);
    ASSERT_NE(degraded.fault_plane(), nullptr);
    EXPECT_TRUE(degraded.fault_plane()->enabled());
}

/** Everything observable about one chaos run, for digest comparison. */
using ChaosDigest =
    std::tuple<std::uint64_t,  // final counter value
               int,            // completions
               std::uint64_t,  // offload retransmits
               std::uint64_t,  // accel duplicates suppressed
               std::uint64_t,  // accel replays sent
               std::uint64_t,  // fault-plane link drops
               std::uint64_t,  // fault-plane corruptions
               std::uint64_t,  // NIC checksum drops
               std::uint64_t,  // network drops (all causes)
               Time>;          // final simulated time

ChaosDigest
run_chaos()
{
    core::ClusterConfig config;
    config.accel.workspaces_per_logic = 8;
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(500.0);
    config.faults.links.loss = 0.01;
    config.faults.links.duplicate = 0.02;
    config.faults.links.corrupt = 0.005;
    config.faults.links.reorder = 0.05;
    config.faults.links.reorder_jitter = micros(2.0);
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program = increment_program();

    const int n = 150;
    int done = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            EXPECT_FALSE(completion.timed_out);
            done++;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();

    const auto& accel = cluster.accelerator(0).stats();
    const auto& plane = cluster.fault_plane()->stats();
    return {cluster.memory().read_as<std::uint64_t>(counter),
            done,
            cluster.offload_engine().stats().retransmits.value(),
            accel.duplicates_suppressed.value(),
            accel.replays_sent.value(),
            plane.link_drops.value(),
            plane.corruptions.value(),
            cluster.network().checksum_drops(),
            cluster.network().packets_dropped(),
            cluster.queue().now()};
}

TEST(FaultChaos, SeededChaosIsDeterministicAndExactlyOnce)
{
    const ChaosDigest first = run_chaos();

    // Every operation completed, and — the exactly-once property —
    // despite loss, duplication, corruption, and retransmission, the
    // shared counter saw each increment exactly once.
    EXPECT_EQ(std::get<1>(first), 150);
    EXPECT_EQ(std::get<0>(first), 150u);

    // The chaos actually happened.
    EXPECT_GT(std::get<2>(first), 0u);  // retransmits
    EXPECT_GT(std::get<5>(first), 0u);  // link drops
    EXPECT_GT(std::get<6>(first), 0u);  // corruptions

    // Same config + seed => bit-identical run, down to the clock.
    const ChaosDigest second = run_chaos();
    EXPECT_EQ(first, second);
}

TEST(FaultChaos, BurstyLossIsSeededDeterministic)
{
    auto run = [] {
        core::ClusterConfig config;
        config.accel.workspaces_per_logic = 8;
        config.offload.retransmit_timeout = micros(300.0);
        config.faults.links.bursty = true;
        config.faults.links.burst_p_enter = 0.02;
        config.faults.links.burst_p_exit = 0.15;
        config.faults.links.burst_loss_bad = 0.7;
        core::Cluster cluster(config);

        ds::LinkedList list(cluster.memory(), cluster.allocator());
        std::vector<std::uint64_t> values(64);
        for (std::size_t i = 0; i < values.size(); i++) {
            values[i] = i;
        }
        list.build(values, 0);

        const int n = 100;
        int done = 0;
        for (int i = 0; i < n; i++) {
            offload::Operation op = list.make_find(63, {});
            op.done = [&](offload::Completion&& completion) {
                EXPECT_EQ(completion.status, TraversalStatus::kDone);
                done++;
            };
            cluster.submitter(core::SystemKind::kPulse)(std::move(op));
        }
        cluster.queue().run();
        EXPECT_EQ(done, n);
        return std::tuple{
            cluster.fault_plane()->stats().burst_drops.value(),
            cluster.offload_engine().stats().retransmits.value(),
            cluster.queue().now()};
    };
    const auto first = run();
    EXPECT_GT(std::get<0>(first), 0u);  // the chain entered bad state
    EXPECT_EQ(first, run());
}

TEST(FaultRetransmit, SpuriousRetransmitsStayExactlyOnce)
{
    // A deliberately absurd fixed timeout fires retransmissions while
    // the original request is still in flight or being served; the
    // accelerator's replay window must absorb every copy.
    core::ClusterConfig config;
    config.accel.workspaces_per_logic = 8;
    config.offload.adaptive_rto = false;
    config.offload.retransmit_timeout = micros(6.0);
    config.offload.max_retransmits = 20;
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program = increment_program();

    const int n = 60;
    int done = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            EXPECT_FALSE(completion.timed_out);
            done++;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(cluster.accelerator(0).stats().cas_ops.value(),
              static_cast<std::uint64_t>(n));
    // The timer did fire early, and the window did its job.
    EXPECT_GT(cluster.offload_engine().stats().retransmits.value(),
              0u);
    const auto& accel = cluster.accelerator(0).stats();
    EXPECT_GT(accel.duplicates_suppressed.value() +
                  accel.replays_sent.value(),
              0u);
}

TEST(FaultChecksum, CorruptedHeadersAreDroppedAtTheNic)
{
    core::ClusterConfig config;
    config.accel.workspaces_per_logic = 8;
    config.offload.retransmit_timeout = micros(100.0);
    config.faults.links.corrupt = 0.05;
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program = increment_program();

    const int n = 80;
    int done = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            done++;
        };
        cluster.submitter(core::SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    // Corrupted requests were detected, discarded, and never
    // executed: the counter is still exact.
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    EXPECT_GT(cluster.fault_plane()->stats().corruptions.value(), 0u);
    EXPECT_GT(cluster.network().checksum_drops(), 0u);
}

TEST(FaultNodes, ShortBlackoutIsRiddenOutByRetransmission)
{
    core::ClusterConfig config;
    config.offload.retransmit_timeout = micros(50.0);
    config.faults.timeline.push_back(
        {.node = 0, .kind = NodeFaultKind::kBlackout, .start = 0,
         .end = micros(150.0)});
    core::Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1, 2, 3, 4}, 0);

    const offload::Completion completion =
        run_one(cluster, list.make_find(4, {}));
    EXPECT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_FALSE(completion.timed_out);
    // Nothing could get through before the node came back.
    EXPECT_GT(completion.latency, micros(150.0));
    EXPECT_GT(completion.retransmits, 0u);
    EXPECT_GT(cluster.fault_plane()->stats().blackout_drops.value(),
              0u);
}

TEST(FaultNodes, StallHoldsPacketsUntilRelease)
{
    core::ClusterConfig config;
    config.faults.timeline.push_back(
        {.node = 0, .kind = NodeFaultKind::kStall, .start = 0,
         .end = micros(40.0)});
    core::Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1, 2, 3, 4}, 0);

    const offload::Completion completion =
        run_one(cluster, list.make_find(4, {}));
    EXPECT_EQ(completion.status, TraversalStatus::kDone);
    // No loss: the request was merely parked at the frozen NIC, so no
    // retransmission was needed — just a latency bubble.
    EXPECT_EQ(completion.retransmits, 0u);
    EXPECT_GT(completion.latency, micros(40.0));
    EXPECT_GT(cluster.fault_plane()->stats().stall_holds.value(), 0u);
}

TEST(FaultNodes, SlowWindowStretchesAcceleratorLatency)
{
    auto run = [](double slow_factor) {
        core::ClusterConfig config;
        if (slow_factor > 1.0) {
            config.faults.timeline.push_back(
                {.node = 0, .kind = NodeFaultKind::kSlow, .start = 0,
                 .end = micros(100'000.0), .slow_factor = slow_factor});
        }
        core::Cluster cluster(config);
        ds::LinkedList local(cluster.memory(), cluster.allocator());
        std::vector<std::uint64_t> values(32);
        for (std::size_t i = 0; i < values.size(); i++) {
            values[i] = i;
        }
        local.build(values, 0);
        return run_one(cluster, local.make_find(31, {})).latency;
    };
    const Time healthy = run(1.0);
    const Time degraded = run(8.0);
    EXPECT_GT(degraded, healthy);
}

TEST(FaultAdaptiveRto, ConvergesBelowInitialAndStaysQuiet)
{
    core::ClusterConfig config;
    config.offload.adaptive_rto = true;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1, 2, 3, 4, 5, 6, 7, 8}, 0);

    for (int i = 0; i < 40; i++) {
        run_one(cluster, list.make_find(8, {}));
    }
    const auto& engine = cluster.offload_engine();
    EXPECT_TRUE(engine.rto_estimator().has_sample());
    EXPECT_GT(engine.rto_estimator().srtt(), 0);
    // Converged well below the 20 ms initial timeout...
    EXPECT_LT(engine.rto_estimator().rto(),
              engine.config().retransmit_timeout);
    // ...without ever firing spuriously on a healthy network.
    EXPECT_EQ(engine.stats().retransmits.value(), 0u);
    EXPECT_EQ(engine.stats().stale_responses.value(), 0u);
}

TEST(FaultGiveUp, DriverExcludesFailedOpsFromLatency)
{
    core::ClusterConfig config;
    config.network.loss_probability = 1.0;  // nothing gets through
    config.offload.retransmit_timeout = micros(20.0);
    config.offload.max_retransmits = 2;
    core::Cluster cluster(config);
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    list.build({1}, 0);

    workloads::DriverConfig driver;
    driver.warmup_ops = 1;
    driver.measure_ops = 4;
    driver.concurrency = 1;
    const workloads::DriverResult result = workloads::run_closed_loop(
        cluster.queue(), cluster.submitter(core::SystemKind::kPulse),
        [&](std::uint64_t) { return list.make_find(1, {}); }, driver);

    EXPECT_EQ(result.completed, 4u);
    EXPECT_EQ(result.failed_ops, 4u);
    EXPECT_EQ(result.errors, 4u);
    // Give-up "latencies" are timeout-ladder artifacts, not service
    // times; they must not pollute the histogram.
    EXPECT_EQ(result.latency.count(), 0u);
}

TEST(FaultRpc, ReliableModeIsAtMostOnceUnderLoss)
{
    core::ClusterConfig config;
    config.network.loss_probability = 0.08;
    config.rpc.retransmit_timeout = micros(300.0);
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto program = increment_program();

    const int n = 60;
    int done = 0;
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&& completion) {
            EXPECT_EQ(completion.status, TraversalStatus::kDone);
            EXPECT_FALSE(completion.timed_out);
            done++;
        };
        cluster.submitter(core::SystemKind::kRpc)(std::move(op));
    }
    cluster.queue().run();

    // Loss happened and was recovered — yet no increment ran twice.
    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    EXPECT_GT(cluster.rpc().stats().retransmits.value(), 0u);
    EXPECT_EQ(cluster.rpc().stats().failures.value(), 0u);
}

}  // namespace
}  // namespace pulse::faults
