/**
 * @file
 * Replays the committed fuzz corpus (tests/fuzz_corpus/*.json) through
 * the checked simulator. Every file is a FuzzCase reproducer — cases
 * the generator covers by construction (all six data structures
 * crossed with fault profiles, plus program-differential seeds) and
 * any minimized reproducer a past failure left behind. A case that
 * fails here is a regression with its reproducer already in hand.
 *
 * The corpus directory is baked in at compile time
 * (PULSE_FUZZ_CORPUS_DIR) so the test runs from any cwd.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "check/fuzzer.h"

namespace pulse::check {
namespace {

std::vector<std::filesystem::path>
corpus_files()
{
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(
             PULSE_FUZZ_CORPUS_DIR)) {
        if (entry.path().extension() == ".json") {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, CoversAllStructuresAndFaults)
{
    // The acceptance bar: >= 20 seeds, every data structure, and at
    // least three distinct fault profiles represented.
    const auto files = corpus_files();
    EXPECT_GE(files.size(), 20u);

    std::set<std::string> structures;
    std::set<std::string> faults;
    for (const auto& path : files) {
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        FuzzCase c;
        std::string error;
        ASSERT_TRUE(FuzzCase::from_json(buffer.str(), &c, &error))
            << path << ": " << error;
        if (c.mode == "workload") {
            structures.insert(c.ds);
        }
        faults.insert(c.fault);
    }
    EXPECT_EQ(structures.size(), kNumFuzzDataStructures);
    EXPECT_GE(faults.size(), 3u);
}

TEST(FuzzCorpus, EveryReproducerPasses)
{
    for (const auto& path : corpus_files()) {
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        FuzzCase c;
        std::string error;
        ASSERT_TRUE(FuzzCase::from_json(buffer.str(), &c, &error))
            << path << ": " << error;
        const FuzzResult result = run_case(c);
        EXPECT_TRUE(result.ok)
            << path.filename() << ": " << result.message << " ("
            << result.violations << " violation(s))";
    }
}

TEST(FuzzCase, JsonRoundTrips)
{
    FuzzCase c;
    c.seed = 424242;
    c.mode = "program";
    c.ds = "bptree";
    c.fault = "chaos";
    c.ops = 17;
    c.concurrency = 3;
    c.nodes = 4;

    FuzzCase parsed;
    std::string error;
    ASSERT_TRUE(FuzzCase::from_json(c.to_json(), &parsed, &error))
        << error;
    EXPECT_EQ(parsed.seed, c.seed);
    EXPECT_EQ(parsed.mode, c.mode);
    EXPECT_EQ(parsed.ds, c.ds);
    EXPECT_EQ(parsed.fault, c.fault);
    EXPECT_EQ(parsed.ops, c.ops);
    EXPECT_EQ(parsed.concurrency, c.concurrency);
    EXPECT_EQ(parsed.nodes, c.nodes);

    // Whitespace / key order tolerated; junk rejected.
    FuzzCase tolerant;
    ASSERT_TRUE(FuzzCase::from_json(
        "{ \"mode\": \"workload\" , \"seed\": 9 }", &tolerant,
        &error));
    EXPECT_EQ(tolerant.seed, 9u);
    EXPECT_FALSE(FuzzCase::from_json("not json", &parsed, &error));
    EXPECT_FALSE(FuzzCase::from_json("{\"mode\": \"bogus\"}", &parsed,
                                     &error));
}

TEST(FuzzGenerator, RandomCasesAreDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 16; seed++) {
        const FuzzCase a = random_case(seed);
        const FuzzCase b = random_case(seed);
        EXPECT_EQ(a.to_json(), b.to_json());
    }
    // Programs likewise: same seed, same bytes — and always valid.
    for (std::uint64_t seed = 1; seed <= 16; seed++) {
        const isa::Program a = random_program(seed);
        const isa::Program b = random_program(seed);
        EXPECT_EQ(a, b);
        std::string error;
        EXPECT_TRUE(a.verify(&error)) << "seed " << seed << ": " << error;
    }
}

}  // namespace
}  // namespace pulse::check
