/**
 * @file
 * Tests for the simulation invariant checker (src/check/invariants +
 * the Checker quiesce audit): registry bookkeeping, clean quiesce under
 * healthy and faulty networks, exactly-once under duplication, and
 * negative tests proving the audit actually detects a non-drained
 * queue and a tampered route table.
 */
#include <gtest/gtest.h>

#include <memory>

#include "check/checker.h"
#include "check/fuzzer.h"
#include "check/invariants.h"
#include "core/cluster.h"
#include "ds/linked_list.h"

namespace pulse::check {
namespace {

core::ClusterConfig
checked_config(bool oracle = true)
{
    core::ClusterConfig config;
    config.check.oracle = oracle;
    config.check.invariants = true;
    config.check.fail_fast = false;
    return config;
}

/** Drive @p n list finds through the pulse path and drain the queue. */
void
drive_finds(core::Cluster& cluster, int n)
{
    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 1; v <= 32; v++) {
        values.push_back(v * 5);
    }
    list.build(values);

    int done = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (int i = 0; i < n; i++) {
        submit(list.make_find(values[i % values.size()],
                              [&](offload::Completion&&) { done++; }));
    }
    cluster.queue().run();
    EXPECT_EQ(done, n);
}

TEST(InvariantRegistry, CountsByKindAndTotal)
{
    InvariantRegistry registry(/*fail_fast=*/false);
    EXPECT_EQ(registry.total(), 0u);

    Violation v;
    v.kind = InvariantKind::kPacketConservation;
    v.component = "net";
    v.message = "lost accounting";
    registry.report(v);
    v.kind = InvariantKind::kOracleMismatch;
    registry.report(v);
    registry.report(v);

    EXPECT_EQ(registry.total(), 3u);
    EXPECT_EQ(registry.count(InvariantKind::kPacketConservation), 1u);
    EXPECT_EQ(registry.count(InvariantKind::kOracleMismatch), 2u);
    EXPECT_EQ(registry.count(InvariantKind::kClockMonotonicity), 0u);
    EXPECT_EQ(registry.diagnostics().size(), 3u);

    registry.clear();
    EXPECT_EQ(registry.total(), 0u);
    EXPECT_EQ(registry.count(InvariantKind::kOracleMismatch), 0u);
    EXPECT_TRUE(registry.diagnostics().empty());
}

TEST(InvariantRegistry, DiagnosticsAreFifoCapped)
{
    InvariantRegistry registry(/*fail_fast=*/false,
                               /*max_diagnostics=*/2);
    for (int i = 0; i < 5; i++) {
        Violation v;
        v.kind = InvariantKind::kWorkspaceLeak;
        v.component = "accel";
        v.message = "leak #" + std::to_string(i);
        registry.report(v);
    }
    // Counters keep the truth; diagnostics retain only the newest two.
    EXPECT_EQ(registry.total(), 5u);
    ASSERT_EQ(registry.diagnostics().size(), 2u);
    EXPECT_EQ(registry.diagnostics().front().message, "leak #3");
    EXPECT_EQ(registry.diagnostics().back().message, "leak #4");
}

TEST(InvariantRegistry, ViolationRendersKindComponentMessage)
{
    Violation v;
    v.kind = InvariantKind::kRouteDisagreement;
    v.when = 1234;
    v.component = "tcam[0]";
    v.message = "miss at base";
    const std::string text = v.to_string();
    EXPECT_NE(text.find(invariant_kind_name(
                  InvariantKind::kRouteDisagreement)),
              std::string::npos);
    EXPECT_NE(text.find("tcam[0]"), std::string::npos);
    EXPECT_NE(text.find("miss at base"), std::string::npos);
}

TEST(CheckerQuiesce, HealthyClusterIsClean)
{
    core::Cluster cluster(checked_config());
    drive_finds(cluster, 64);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    EXPECT_EQ(cluster.checker()->registry().total(), 0u);
}

TEST(CheckerQuiesce, LossyNetworkStillConservesPackets)
{
    // Packet conservation is the point: every injected or duplicated
    // copy must end up delivered or charged to an accounted loss
    // bucket, even when the fault plane is dropping packets and the
    // offload engine is retransmitting.
    core::ClusterConfig config = checked_config();
    config.faults = fuzz_fault_config("loss", /*seed=*/7);
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    core::Cluster cluster(config);
    drive_finds(cluster, 64);
    EXPECT_EQ(cluster.verify_quiesce(), 0u)
        << cluster.checker()->registry().diagnostics().size()
        << " violation(s)";
}

TEST(CheckerQuiesce, DuplicationNeverDoubleExecutes)
{
    // Under duplicate delivery the replay window must keep execution
    // exactly-once: a CAS counter incremented n times ends at exactly
    // n, and the accelerator's duplicate-execution invariant is quiet.
    core::ClusterConfig config = checked_config();
    config.faults = fuzz_fault_config("dup", /*seed=*/11);
    config.offload.adaptive_rto = true;
    config.offload.retransmit_timeout = micros(2000.0);
    core::Cluster cluster(config);

    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    auto program = std::make_shared<const isa::Program>(b.build());

    const int n = 64;
    int done = 0;
    auto submit = cluster.submitter(core::SystemKind::kPulse);
    for (int i = 0; i < n; i++) {
        offload::Operation op;
        op.program = program;
        op.start_ptr = counter;
        op.init_scratch.assign(16, 0);
        op.done = [&](offload::Completion&&) { done++; };
        submit(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, n);
    EXPECT_EQ(cluster.memory().read_as<std::uint64_t>(counter),
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
    EXPECT_EQ(cluster.checker()->registry().count(
                  InvariantKind::kDuplicateExecution),
              0u);
}

TEST(CheckerQuiesce, DetectsNonDrainedQueue)
{
    // Negative test: bypass Cluster::verify_quiesce (which drains
    // first) and audit with an event still pending.
    core::Cluster cluster(checked_config(/*oracle=*/false));
    drive_finds(cluster, 4);
    cluster.queue().schedule_after(1000, [] {});
    EXPECT_GT(cluster.checker()->verify_quiesce(), 0u);
    EXPECT_GT(cluster.checker()->registry().count(
                  InvariantKind::kQueueNotDrained),
              0u);
    cluster.queue().run();  // drain so destruction is clean
}

TEST(CheckerQuiesce, DetectsTamperedRouteTable)
{
    // Negative test: rip a node's TCAM entry out from under the audit;
    // AddressMap and switch still claim the region routes, so the
    // route-agreement sweep must flag the disagreement.
    core::Cluster cluster(checked_config(/*oracle=*/false));
    drive_finds(cluster, 4);
    const auto& region = cluster.memory().address_map().region(0);
    cluster.accelerator(0).tcam().remove(region.base);
    EXPECT_GT(cluster.verify_quiesce(), 0u);
    EXPECT_GT(cluster.checker()->registry().count(
                  InvariantKind::kRouteDisagreement),
              0u);
}

}  // namespace
}  // namespace pulse::check
