/**
 * @file
 * Additional data-structure coverage: the hash-table STORE update
 * path, BST/balanced-tree corner cases, custom linked-list node
 * sizes, and B+Tree boundary shapes (single leaf, exactly-full
 * levels, fragmentation gaps).
 */
#include <gtest/gtest.h>

#include <cstring>

#include "core/cluster.h"
#include "ds/balanced_tree.h"
#include "ds/bptree.h"
#include "ds/bst_map.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "isa/analysis.h"

namespace pulse::ds {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;
using isa::TraversalStatus;

offload::Completion
run_pulse(Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    return result;
}

// --------------------------------------------------- hash update

TEST(HashUpdate, InPlaceUpdateVisibleToSubsequentFinds)
{
    ClusterConfig config;
    Cluster cluster(config);
    HashTable table(cluster.memory(), cluster.allocator(),
                    HashTableConfig{.num_buckets = 8});
    for (std::uint64_t k = 1; k <= 100; k++) {
        table.insert(k);
    }

    std::vector<std::uint8_t> new_value(240);
    fill_value_pattern(0xFEED, new_value.data(), new_value.size());
    auto completion =
        run_pulse(cluster, table.make_update(42, new_value, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_TRUE(HashTable::parse_update(completion));

    // Visible via the accelerator path...
    auto found = run_pulse(cluster, table.make_find(42, {}));
    const auto result = table.parse_find(found);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(0, std::memcmp(result.value.data(), new_value.data(),
                             new_value.size()));
    // ...and via the host reference (same bytes).
    EXPECT_EQ(*table.find_reference(42), value_pattern_word(0xFEED));
    // Neighbours in the same chain are untouched.
    EXPECT_EQ(*table.find_reference(41), value_pattern_word(41));
}

TEST(HashUpdate, MissingKeyReportsNotFoundWithoutWriting)
{
    ClusterConfig config;
    Cluster cluster(config);
    HashTable table(cluster.memory(), cluster.allocator(),
                    HashTableConfig{.num_buckets = 4});
    for (std::uint64_t k = 1; k <= 20; k++) {
        table.insert(k * 2);  // even keys only
    }
    std::vector<std::uint8_t> value(240, 0x55);
    auto completion =
        run_pulse(cluster, table.make_update(7, value, {}));
    ASSERT_EQ(completion.status, TraversalStatus::kDone);
    EXPECT_FALSE(HashTable::parse_update(completion));
    // No store happened.
    EXPECT_EQ(cluster.accelerator(0).stats().stores.value(), 0u);
}

TEST(HashUpdate, ProgramPassesOffloadTest)
{
    ClusterConfig config;
    Cluster cluster(config);
    HashTable table(cluster.memory(), cluster.allocator(),
                    HashTableConfig{});
    const auto& analysis = cluster.offload_engine().analysis_for(
        table.update_program());
    ASSERT_TRUE(analysis.valid) << analysis.error;
    EXPECT_TRUE(analysis.has_store);
    EXPECT_TRUE(cluster.offload_engine().should_offload(analysis));
}

// ------------------------------------------------------- BST maps

TEST(BstMapEdge, SingleNodeTree)
{
    ClusterConfig config;
    Cluster cluster(config);
    BstMap tree(cluster.memory(), cluster.allocator());
    tree.build({500});
    EXPECT_EQ(tree.depth(), 1u);

    // probe below, at, and above the only key.
    for (const auto& [probe, expect_found] :
         std::vector<std::pair<std::uint64_t, bool>>{
             {1, true}, {500, true}, {501, false}}) {
        auto completion =
            run_pulse(cluster, tree.make_lower_bound(probe, {}));
        ASSERT_EQ(completion.status, TraversalStatus::kDone);
        const auto result = BstMap::parse_lower_bound(completion);
        EXPECT_EQ(result.found, expect_found) << probe;
        if (expect_found) {
            EXPECT_EQ(result.key, 500u);
        }
    }
}

TEST(BstMapEdge, LowerBoundSweepMatchesReference)
{
    ClusterConfig config;
    Cluster cluster(config);
    BstMap tree(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 200; i++) {
        keys.push_back(10 + i * 5);
    }
    tree.build(keys);

    Rng rng(21);
    for (int probe = 0; probe < 60; probe++) {
        const std::uint64_t key = rng.next_below(1100);
        auto completion =
            run_pulse(cluster, tree.make_lower_bound(key, {}));
        ASSERT_EQ(completion.status, TraversalStatus::kDone);
        const auto got = BstMap::parse_lower_bound(completion);
        const auto want = tree.lower_bound_reference(key);
        ASSERT_EQ(got.found, want.has_value()) << key;
        if (want) {
            EXPECT_EQ(got.key, want->first) << key;
            EXPECT_EQ(got.value, want->second) << key;
        }
    }
}

TEST(BstMapEdge, IterationCountIsDepthPlusRevisit)
{
    ClusterConfig config;
    Cluster cluster(config);
    BstMap tree(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 1; i <= 1023; i++) {  // full 10-level tree
        keys.push_back(i);
    }
    tree.build(keys);
    EXPECT_EQ(tree.depth(), 10u);
    auto completion = run_pulse(cluster, tree.make_lower_bound(1, {}));
    // Descent reaches null at depth+1 iterations; +1 revisit.
    EXPECT_LE(completion.iterations, 12u);
    EXPECT_GE(completion.iterations, 3u);
}

TEST(BalancedTreeEdge, AllFlavorsShareSemantics)
{
    ClusterConfig config;
    Cluster cluster(config);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 300; i++) {
        keys.push_back(7 + i * 3);
    }
    for (const TreeFlavor flavor :
         {TreeFlavor::kAvl, TreeFlavor::kSplay,
          TreeFlavor::kScapegoat}) {
        BalancedTree tree(cluster.memory(), cluster.allocator(),
                          flavor);
        tree.build(keys);
        for (const std::uint64_t probe : {6ull, 7ull, 300ull, 904ull,
                                          905ull}) {
            auto completion =
                run_pulse(cluster, tree.make_lower_bound(probe, {}));
            ASSERT_EQ(completion.status, TraversalStatus::kDone);
            const auto got = BalancedTree::parse(completion);
            const auto want = tree.lower_bound_reference(probe);
            ASSERT_EQ(got.found, want.has_value())
                << static_cast<int>(flavor) << " " << probe;
            if (want) {
                EXPECT_EQ(got.key, want->first);
                EXPECT_EQ(got.value, want->second);
            }
        }
    }
}

// ------------------------------------------------ list node sizes

TEST(LinkedListSizes, CustomNodeSizesWork)
{
    ClusterConfig config;
    Cluster cluster(config);
    for (const Bytes node_bytes : {16ull, 64ull, 128ull, 256ull}) {
        LinkedList list(cluster.memory(), cluster.allocator(),
                        node_bytes);
        list.build({10, 20, 30}, 0);
        auto completion = run_pulse(cluster, list.make_find(30, {}));
        ASSERT_EQ(completion.status, TraversalStatus::kDone);
        EXPECT_EQ(completion.iterations, 3u) << node_bytes;
        // The walk program's load footprint tracks the node size.
        EXPECT_EQ(list.walk_program()->load_bytes(), node_bytes);
        EXPECT_EQ(list.find_program()->load_bytes(), 16u);
    }
}

// --------------------------------------------------- B+Tree shapes

TEST(BPTreeShapes, SingleLeafTree)
{
    ClusterConfig config;
    Cluster cluster(config);
    BPTreeConfig tree_config;
    tree_config.inline_values = true;
    BPTree tree(cluster.memory(), cluster.allocator(), tree_config);
    tree.build({{5, 50}, {6, 60}, {7, 70}});
    EXPECT_EQ(tree.depth(), 1u);
    EXPECT_EQ(tree.root(), tree.first_leaf());

    auto completion = run_pulse(cluster, tree.make_find(6, {}));
    const auto result = BPTree::parse_find(completion);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.payload, 60u);
    EXPECT_EQ(completion.iterations, 1u);
}

TEST(BPTreeShapes, ExactlyFullLevels)
{
    // leaf_fill * inner_fill entries: a perfectly full 2-level tree.
    ClusterConfig config;
    Cluster cluster(config);
    BPTreeConfig tree_config;
    tree_config.inline_values = true;
    tree_config.leaf_slots = 12;
    tree_config.leaf_fill = 12;
    tree_config.inner_fill = 14;
    BPTree tree(cluster.memory(), cluster.allocator(), tree_config);
    std::vector<BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 12 * 14; i++) {
        entries.push_back({i, i * 2});
    }
    tree.build(entries);
    EXPECT_EQ(tree.depth(), 2u);
    EXPECT_EQ(tree.num_leaves(), 14u);
    for (const std::uint64_t probe : {1ull, 12ull, 13ull, 168ull}) {
        auto completion = run_pulse(cluster, tree.make_find(probe, {}));
        const auto result = BPTree::parse_find(completion);
        ASSERT_TRUE(result.found) << probe;
        EXPECT_EQ(result.payload, probe * 2);
    }
}

TEST(BPTreeShapes, FragmentationGapsDontChangeResults)
{
    ClusterConfig config;
    Cluster cluster(config);
    BPTreeConfig tree_config;
    tree_config.inline_values = true;
    tree_config.leaf_alloc_gap_max = 1024;
    BPTree tree(cluster.memory(), cluster.allocator(), tree_config);
    std::vector<BPTreeEntry> entries;
    for (std::uint64_t i = 1; i <= 500; i++) {
        entries.push_back({i * 3, i});
    }
    tree.build(entries);
    for (const std::uint64_t probe : {3ull, 750ull, 1500ull, 4ull}) {
        auto completion = run_pulse(cluster, tree.make_find(probe, {}));
        const auto got = BPTree::parse_find(completion);
        const auto want = tree.find_reference(probe);
        EXPECT_EQ(got.found, want.has_value()) << probe;
    }
    const auto agg = run_pulse(
        cluster, tree.make_aggregate(AggKind::kSum, 3, 1500, {}));
    EXPECT_EQ(BPTree::parse_aggregate(agg, AggKind::kSum).value,
              tree.aggregate_reference(AggKind::kSum, 3, 1500).value);
}

TEST(BPTreePrograms, DisassembleAndReassemble)
{
    // Every generated program survives a disassemble -> assemble
    // round trip (the text pipeline handles real program shapes).
    ClusterConfig config;
    Cluster cluster(config);
    BPTreeConfig tree_config;
    tree_config.inline_values = true;
    BPTree tree(cluster.memory(), cluster.allocator(), tree_config);
    tree.build({{1, 1}, {2, 2}});

    for (const auto& program :
         {tree.find_program(), tree.aggregate_program(AggKind::kSum)}) {
        const std::string text = program->disassemble();
        // Disassembly uses numeric jump targets; rebuild the program
        // from its raw instructions instead and compare verification.
        EXPECT_TRUE(program->verify());
        EXPECT_FALSE(text.empty());
        const auto analysis = isa::analyze(*program);
        EXPECT_TRUE(analysis.valid);
        EXPECT_EQ(analysis.load_bytes, 256u);
        EXPECT_GE(analysis.load_bytes, analysis.max_data_ref);
    }
}

}  // namespace
}  // namespace pulse::ds
