/**
 * @file
 * Serving-plane tests (src/serve): the client-fleet generator — seeded
 * reproducibility, diurnal/flash-crowd rate tracking, coalescing, the
 * outstanding window, mid-flash-crowd checkpoint round-trips — and the
 * QoS admission controller — token-bucket throttling with exact
 * counters, park-cap load shedding as typed kRejected completions,
 * per-class queue-depth caps, fresh-root-only charging, and the
 * off-by-default gating (no plane constructed, no metrics keys).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "common/serial.h"
#include "core/cluster.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "serve/fleet.h"
#include "serve/qos.h"
#include "sim/event_queue.h"
#include "trace/metrics_exporter.h"
#include "workloads/driver.h"

namespace pulse {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

constexpr Time
millis(double ms)
{
    return micros(ms * 1000.0);
}

// ------------------------------------------------- fleet (generator)

/**
 * Fleet harness with a fake backend: every submitted traversal
 * completes successfully after @p service time. Isolates the arrival
 * process, coalescing and windowing from the cluster.
 */
struct FakeBackend
{
    sim::EventQueue queue;
    Time service = micros(5.0);
    std::uint64_t submitted = 0;
    std::uint64_t max_inflight = 0;
    std::uint64_t inflight = 0;

    serve::Fleet::MakeOpFn
    make_op()
    {
        return [](serve::TenantId, std::uint64_t) {
            return offload::Operation{};
        };
    }

    serve::Fleet::SubmitFn
    submit()
    {
        return [this](serve::TenantId, offload::Operation&& op) {
            submitted++;
            inflight++;
            max_inflight = std::max(max_inflight, inflight);
            auto done = std::move(op.done);
            queue.schedule_after(service,
                                 [this, done = std::move(done)]() {
                                     inflight--;
                                     done(offload::Completion{});
                                 });
        };
    }
};

serve::TenantLoad
poisson_tenant(serve::TenantId id, double rate)
{
    serve::TenantLoad load;
    load.id = id;
    load.rate_ops_per_s = rate;
    return load;
}

TEST(Fleet, DeterministicArrivalsMatchTheConfiguredRate)
{
    FakeBackend backend;
    serve::FleetConfig config;
    serve::TenantLoad load = poisson_tenant(0, 1e6);
    load.arrivals = serve::ArrivalKind::kDeterministic;
    config.tenants.push_back(load);

    serve::Fleet fleet(backend.queue, config, backend.make_op(),
                       backend.submit());
    fleet.start(millis(1.0));
    backend.queue.run();

    // 1e6/s over 1 ms = one arrival per us, first at t = 1 us.
    const std::uint64_t arrivals = fleet.stats().at(0).arrivals;
    EXPECT_GE(arrivals, 990u);
    EXPECT_LE(arrivals, 1000u);
    EXPECT_EQ(fleet.stats().at(0).completed, arrivals);
    EXPECT_EQ(fleet.outstanding(), 0u);
}

TEST(Fleet, PoissonArrivalsTrackDiurnalAndFlashCurves)
{
    FakeBackend backend;
    serve::FleetConfig config;
    serve::TenantLoad load = poisson_tenant(7, 2e5);
    load.diurnal_amplitude = 0.5;
    load.diurnal_period = millis(10.0);
    load.flash_start = millis(5.0);
    load.flash_duration = millis(5.0);
    load.flash_multiplier = 4.0;
    config.tenants.push_back(load);

    serve::Fleet fleet(backend.queue, config, backend.make_op(),
                       backend.submit());

    // The offered-rate curve is exact by construction.
    EXPECT_DOUBLE_EQ(fleet.offered_rate(7, 0), 2e5);
    EXPECT_DOUBLE_EQ(fleet.offered_rate(7, millis(2.5)),
                     2e5 * 1.5);  // diurnal peak (sin = 1)
    EXPECT_DOUBLE_EQ(fleet.offered_rate(7, millis(7.5)),
                     2e5 * 0.5 * 4.0);  // diurnal trough, in-flash
    EXPECT_DOUBLE_EQ(fleet.offered_rate(7, millis(10.0)), 2e5);

    fleet.start(millis(20.0));
    backend.queue.run();

    // Expected count = integral of the offered-rate curve (the flash
    // multiplies the diurnal rate, so integrate numerically).
    double expected = 0.0;
    const Time step = micros(10.0);
    for (Time t = 0; t < millis(20.0); t += step) {
        expected += fleet.offered_rate(7, t) * to_seconds(step);
    }
    const auto arrivals =
        static_cast<double>(fleet.stats().at(7).arrivals);
    EXPECT_NEAR(arrivals, expected, expected * 0.05)
        << "Poisson count far outside 5% of the rate integral";
}

TEST(Fleet, CoalescingPiggybacksConcurrentSameKeyArrivals)
{
    const auto run = [](bool coalesce) {
        FakeBackend backend;
        backend.service = micros(50.0);
        serve::FleetConfig config;
        serve::TenantLoad load = poisson_tenant(0, 1e6);
        load.arrivals = serve::ArrivalKind::kDeterministic;
        load.keyspace = 1;  // every arrival hits the same key
        load.window = 1;
        load.coalesce = coalesce;
        config.tenants.push_back(load);
        serve::Fleet fleet(backend.queue, config, backend.make_op(),
                           backend.submit());
        fleet.start(millis(1.0));
        backend.queue.run();
        EXPECT_LE(backend.max_inflight, 1u);  // window respected
        return std::tuple(fleet.stats().at(0), backend.submitted);
    };

    const auto [with, submitted_with] = run(true);
    // One traversal in flight at a time; the ~50 us service time spans
    // ~50 arrivals, which all piggyback on it.
    EXPECT_GT(with.coalesced, 0u);
    EXPECT_EQ(with.issued, submitted_with);
    EXPECT_EQ(with.issued + with.coalesced, with.arrivals);
    EXPECT_EQ(with.completed, with.arrivals);  // every waiter answered

    const auto [without, submitted_without] = run(false);
    EXPECT_EQ(without.coalesced, 0u);
    EXPECT_EQ(without.issued, without.arrivals);
    EXPECT_EQ(without.issued, submitted_without);
    EXPECT_EQ(without.completed, without.arrivals);
}

TEST(Fleet, SeededRunsAreBitReproducible)
{
    const auto digest_of = [](std::uint64_t seed) {
        FakeBackend backend;
        serve::FleetConfig config;
        config.seed = seed;
        config.tenants.push_back(poisson_tenant(0, 1e5));
        config.tenants.push_back(poisson_tenant(1, 3e5));
        serve::Fleet fleet(backend.queue, config, backend.make_op(),
                           backend.submit());
        fleet.start(millis(5.0));
        backend.queue.run();
        return fleet.completion_digest();
    };

    EXPECT_EQ(digest_of(42), digest_of(42));
    EXPECT_NE(digest_of(42), digest_of(43));
}

// --------------------------------------- fleet on the real cluster

ClusterConfig
serving_test_config()
{
    ClusterConfig config;
    config.num_mem_nodes = 1;
    return config;
}

apps::AppScale
small_scale()
{
    apps::AppScale scale;
    scale.upc_keys = 5'000;
    return scale;
}

/** Fleet wiring against a cluster: tenant key -> table lookup, one
 *  offload engine per tenant (tenant id doubles as the client id). */
serve::Fleet::MakeOpFn
table_make_op(apps::UpcApp& app)
{
    return [&app](serve::TenantId, std::uint64_t key) {
        return app.table().make_find(
            workloads::key_of(key % app.num_keys()), nullptr);
    };
}

serve::Fleet::SubmitFn
cluster_submit(Cluster& cluster)
{
    return [&cluster](serve::TenantId tenant,
                      offload::Operation&& op) {
        const ClientId client =
            tenant % cluster.config().num_clients;
        cluster.submitter(SystemKind::kPulse, client)(std::move(op));
    };
}

/**
 * The mid-flash-crowd checkpoint: phase 1 runs into the middle of a
 * flash crowd and quiesces at the horizon; the snapshot (cluster
 * checkpoint + fleet state) forked onto a fresh cluster must continue
 * bit-identically — same arrivals, same completions, same
 * order-sensitive completion digest.
 */
TEST(Fleet, CheckpointMidFlashCrowdRoundTripsBitIdentically)
{
    const Time phase1 = millis(4.0);  // inside the flash window
    const Time phase2 = millis(8.0);

    serve::FleetConfig fleet_config;
    serve::TenantLoad load = poisson_tenant(0, 2e5);
    load.flash_start = millis(2.0);
    load.flash_duration = millis(4.0);
    load.flash_multiplier = 3.0;
    load.keyspace = 256;
    load.window = 16;
    fleet_config.tenants.push_back(load);

    // Original: run phase 1, snapshot at the quiesce point, continue.
    Cluster original(serving_test_config());
    apps::UpcApp app_a(original, small_scale());
    serve::Fleet fleet_a(original.queue(), fleet_config,
                         table_make_op(app_a),
                         cluster_submit(original));
    fleet_a.start(phase1);
    original.queue().run();
    ASSERT_EQ(fleet_a.outstanding(), 0u);
    StateWriter writer;
    fleet_a.save_state(writer);
    const std::vector<std::uint8_t> fleet_blob = writer.take();
    const std::vector<std::uint8_t> blob = original.save_checkpoint();
    fleet_a.extend(phase2);
    original.queue().run();

    // Fork: fresh cluster + fleet load the snapshots; same extension.
    Cluster forked(serving_test_config());
    apps::UpcApp app_b(forked, small_scale());
    serve::Fleet fleet_b(forked.queue(), fleet_config,
                         table_make_op(app_b),
                         cluster_submit(forked));
    forked.restore_checkpoint(blob);
    StateReader reader(fleet_blob);
    fleet_b.load_state(reader);
    fleet_b.extend(phase2);
    forked.queue().run();

    EXPECT_EQ(fleet_a.completion_digest(),
              fleet_b.completion_digest());
    EXPECT_EQ(fleet_a.stats().at(0).arrivals,
              fleet_b.stats().at(0).arrivals);
    EXPECT_EQ(fleet_a.stats().at(0).completed,
              fleet_b.stats().at(0).completed);
    EXPECT_GT(fleet_b.stats().at(0).completed, 0u);
}

// --------------------------------------------------- QoS admission

TEST(Serving, OffConstructsNothingAndRegistersNoKeys)
{
    Cluster cluster(serving_test_config());
    EXPECT_EQ(cluster.serve_plane(), nullptr);
    trace::MetricsExporter exporter;
    cluster.export_metrics(exporter);
    EXPECT_EQ(exporter.json().find("serve."), std::string::npos);
}

TEST(Serving, OnRegistersCountersAndChargesFreshRootsOnly)
{
    ClusterConfig config = serving_test_config();
    config.serve.on = true;
    Cluster cluster(config);
    ASSERT_NE(cluster.serve_plane(), nullptr);

    apps::UpcApp app(cluster, small_scale());
    workloads::DriverConfig driver;
    driver.warmup_ops = 0;
    driver.measure_ops = 100;
    driver.concurrency = 8;
    run_closed_loop(cluster.queue(),
                    cluster.submitter(SystemKind::kPulse),
                    app.factory(), driver);

    // No quota configured: every root admits, and the admitted count
    // is exactly the op count — continuations of a traversal are never
    // re-charged.
    const auto& counters =
        cluster.serve_plane()->tenant_counters().at(0);
    EXPECT_EQ(counters.admitted, 100u);
    EXPECT_EQ(counters.throttled, 0u);
    EXPECT_EQ(counters.shed, 0u);

    trace::MetricsExporter exporter;
    cluster.export_metrics(exporter);
    const std::string json = exporter.json();
    EXPECT_NE(json.find("\"serve.admitted\": 100"), std::string::npos)
        << json;
    EXPECT_NE(json.find("serve.tenant0.admitted"), std::string::npos);
}

TEST(Serving, QuotaThrottlesOverBurstAndReadmitsInOrder)
{
    ClusterConfig config = serving_test_config();
    config.serve.on = true;
    config.serve.tenants.push_back(
        {.id = 0,
         .slo = serve::SloClass::kBatch,
         .quota_ops_per_s = 1e5,
         .quota_burst = 2.0});
    Cluster cluster(config);

    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 16});
    for (std::uint64_t k = 1; k <= 64; k++) {
        table.insert(k);
    }

    int done = 0;
    int rejected = 0;
    std::vector<Time> latencies;
    for (int i = 0; i < 6; i++) {
        auto op = table.make_find(1 + i % 64, {});
        op.done = [&](offload::Completion&& completion) {
            done++;
            rejected += completion.rejected ? 1 : 0;
            latencies.push_back(completion.latency);
        };
        cluster.submitter(SystemKind::kPulse, 0)(std::move(op));
    }
    cluster.queue().run();

    EXPECT_EQ(done, 6);
    EXPECT_EQ(rejected, 0);  // throttled, not shed: all complete
    const auto& counters =
        cluster.serve_plane()->tenant_counters().at(0);
    EXPECT_EQ(counters.admitted, 6u);   // burst 2 + 4 released
    EXPECT_EQ(counters.throttled, 4u);
    EXPECT_EQ(counters.shed, 0u);
    EXPECT_EQ(cluster.serve_plane()->parked(), 0u);
    // Throttled requests waited for tokens: ~10 us apart at 1e5/s, so
    // the last completion is far beyond the unthrottled ones.
    ASSERT_EQ(latencies.size(), 6u);
    EXPECT_GT(latencies.back(), latencies.front() * 2);
}

TEST(Serving, ParkCapOverflowShedsWithTypedRejection)
{
    ClusterConfig config = serving_test_config();
    config.serve.on = true;
    config.serve.throttle_park_cap = 1;
    config.serve.tenants.push_back(
        {.id = 0,
         .slo = serve::SloClass::kBatch,
         .quota_ops_per_s = 10.0,
         .quota_burst = 1.0});
    Cluster cluster(config);

    ds::HashTable table(cluster.memory(), cluster.allocator(),
                        ds::HashTableConfig{.num_buckets = 16});
    for (std::uint64_t k = 1; k <= 64; k++) {
        table.insert(k);
    }

    int done = 0;
    int rejected = 0;
    for (int i = 0; i < 5; i++) {
        auto op = table.make_find(1 + i % 64, {});
        op.done = [&](offload::Completion&& completion) {
            done++;
            if (completion.rejected) {
                rejected++;
                // Shed rides the driver's retry path: marked like a
                // retransmit give-up, distinguishable by `rejected`.
                EXPECT_TRUE(completion.timed_out);
            }
        };
        cluster.submitter(SystemKind::kPulse, 0)(std::move(op));
    }
    cluster.queue().run();

    // Burst admits 1, the park cap holds 1, the other 3 are shed.
    EXPECT_EQ(done, 5);
    EXPECT_EQ(rejected, 3);
    EXPECT_EQ(cluster.offload_engine(0).rejections_seen(), 3u);
    const auto& counters =
        cluster.serve_plane()->tenant_counters().at(0);
    EXPECT_EQ(counters.admitted, 2u);
    EXPECT_EQ(counters.throttled, 1u);
    EXPECT_EQ(counters.shed, 3u);
}

TEST(Serving, LatencyClassQueueCapShedsUnderFlood)
{
    ClusterConfig config = serving_test_config();
    config.serve.on = true;
    config.serve.latency_queue_cap = 2;
    // Tiny accelerator so the admission queue actually fills.
    config.accel.num_cores = 1;
    config.accel.workspaces_per_logic = 1;
    Cluster cluster(config);

    ds::LinkedList list(cluster.memory(), cluster.allocator());
    std::vector<std::uint64_t> values(256);
    for (std::size_t i = 0; i < values.size(); i++) {
        values[i] = i;
    }
    list.build(values, 0);

    int done = 0;
    int rejected = 0;
    for (int i = 0; i < 16; i++) {
        auto op = list.make_walk(64, {});
        op.done = [&](offload::Completion&& completion) {
            done++;
            rejected += completion.rejected ? 1 : 0;
        };
        cluster.submitter(SystemKind::kPulse, 0)(std::move(op));
    }
    cluster.queue().run();

    const auto& counters =
        cluster.serve_plane()->tenant_counters().at(0);
    EXPECT_EQ(done, 16);
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(counters.shed, static_cast<std::uint64_t>(rejected));
    // Every root passed the (unlimited) quota; the caps shed at the
    // queue, after the admitted count.
    EXPECT_EQ(counters.admitted, 16u);
    EXPECT_EQ(counters.throttled, 0u);
}

/**
 * End to end: the fleet's retry path turns shed completions into
 * backed-off re-issues, so over-quota floods eventually drain without
 * the caller seeing failures (within the retry budget).
 */
TEST(Serving, FleetRetriesShedRequestsWithBackoff)
{
    ClusterConfig config = serving_test_config();
    config.serve.on = true;
    config.serve.throttle_park_cap = 2;
    config.serve.tenants.push_back(
        {.id = 0,
         .slo = serve::SloClass::kBatch,
         .quota_ops_per_s = 2e4,
         .quota_burst = 2.0});
    Cluster cluster(config);
    apps::UpcApp app(cluster, small_scale());

    serve::FleetConfig fleet_config;
    serve::TenantLoad load = poisson_tenant(0, 2e5);  // 10x the quota
    load.arrivals = serve::ArrivalKind::kDeterministic;
    load.coalesce = false;
    load.window = 64;
    load.max_retries = 12;
    load.retry_backoff = micros(200.0);
    load.total_ops = 40;
    fleet_config.tenants.push_back(load);
    serve::Fleet fleet(cluster.queue(), fleet_config,
                       table_make_op(app), cluster_submit(cluster));
    fleet.start(millis(50.0));
    cluster.queue().run();

    const serve::TenantFleetStats& stats = fleet.stats().at(0);
    EXPECT_EQ(stats.arrivals, 40u);
    EXPECT_GT(stats.shed_retries, 0u);  // the flood hit the shed path
    EXPECT_EQ(stats.failed, 0u);        // ...and backoff absorbed it
    EXPECT_EQ(stats.completed, 40u);
    EXPECT_EQ(cluster.serve_plane()->tenant_counters().at(0).shed,
              stats.shed_retries);
}

}  // namespace
}  // namespace pulse
