/**
 * @file
 * Unit tests for the pulse accelerator model: request execution,
 * protection faults, malformed-code rejection, per-visit iteration
 * budgets, queue-overflow behaviour, and component-time accounting.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "accel/accelerator.h"
#include "isa/program.h"

namespace pulse::accel {
namespace {

using isa::TraversalStatus;

/** Harness: one client endpoint + one accelerator node. */
struct AccelFixture : ::testing::Test
{
    AccelFixture()
        : memory(1, 64 * kMiB),
          channels(2, gbps_bytes(17.0), 12.5 / 17.0)
    {
        net::NetworkConfig net_config;
        net_config.num_clients = 1;
        net_config.num_mem_nodes = 1;
        network = std::make_unique<net::Network>(queue, net_config);
        const auto& region = memory.address_map().region(0);
        network->switch_table().add_rule(
            {region.base, region.size, 0});
        network->attach_traversal_sink(
            net::EndpointAddr::client(0),
            [this](net::TraversalPacket&& packet) {
                responses.push_back(std::move(packet));
            });
    }

    Accelerator&
    make_accel(const AccelConfig& config = {})
    {
        accel = std::make_unique<Accelerator>(queue, *network, memory,
                                              channels, 0, config);
        const auto& region = memory.address_map().region(0);
        // Default full-region read-write mapping (cluster-style).
        if (accel->tcam().size() == 0) {
            accel->tcam().insert(
                {region.base, region.size, 0, mem::Perm::kReadWrite});
        }
        return *accel;
    }

    /** Build a chain of @p n 64 B nodes; returns the head. */
    VirtAddr
    build_chain(std::uint64_t n)
    {
        const VirtAddr base = memory.address_map().region(0).base;
        for (std::uint64_t i = 0; i < n; i++) {
            const VirtAddr addr = base + i * 64;
            memory.write_as<std::uint64_t>(addr, i + 1);  // value
            memory.write_as<std::uint64_t>(
                addr + 8, i + 1 < n ? addr + 64 : kNullAddr);
        }
        return base;
    }

    /** Chain-walk program: count nodes into sp[0]. */
    std::shared_ptr<const isa::Program>
    count_program(std::uint32_t max_iters = 512)
    {
        isa::ProgramBuilder b;
        b.load(16)
            .add(isa::sp(0), isa::sp(0), isa::imm(1))
            .compare(isa::dat(8), isa::imm(0))
            .jump_eq("done")
            .move(isa::cur(), isa::dat(8))
            .next_iter()
            .label("done")
            .ret();
        b.max_iters(max_iters);
        return std::make_shared<const isa::Program>(b.build());
    }

    void
    submit(std::shared_ptr<const isa::Program> program, VirtAddr start,
           std::uint64_t seq = 1)
    {
        // Packets hold non-owning program references; pin the program
        // for the fixture's lifetime (the engine does this in prod).
        pinned_programs_.push_back(std::move(program));
        net::TraversalPacket packet;
        packet.id = RequestId{0, seq};
        packet.origin = 0;
        packet.cur_ptr = start;
        attach_program(packet, pinned_programs_.back());
        packet.scratch.assign(16, 0);
        network->send_traversal(net::EndpointAddr::client(0),
                                std::move(packet));
    }

    std::uint64_t
    scratch_word(const net::TraversalPacket& packet, std::uint32_t off)
    {
        std::uint64_t word = 0;
        std::memcpy(&word, packet.scratch.data() + off, 8);
        return word;
    }

    sim::EventQueue queue;
    mem::GlobalMemory memory;
    mem::ChannelSet channels;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<Accelerator> accel;
    std::vector<net::TraversalPacket> responses;
    std::vector<std::shared_ptr<const isa::Program>> pinned_programs_;
};

TEST_F(AccelFixture, ExecutesTraversalAndResponds)
{
    Accelerator& accelerator = make_accel();
    const VirtAddr head = build_chain(10);
    submit(count_program(), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kDone);
    EXPECT_EQ(scratch_word(responses[0], 0), 10u);
    EXPECT_EQ(responses[0].iterations_done, 10u);
    EXPECT_EQ(accelerator.stats().loads.value(), 10u);
    EXPECT_EQ(accelerator.stats().responses_sent.value(), 1u);
    EXPECT_EQ(accelerator.inflight(), 0u);
}

TEST_F(AccelFixture, LatencyMatchesComponentModel)
{
    make_accel();
    const VirtAddr head = build_chain(100);
    const Time start = queue.now();
    submit(count_program(), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    // End-to-end here = 2 network trips + 2x430ns stack + 4ns sched +
    // 100x(120ns + ~6ns logic). Bound it loosely.
    const Time elapsed = queue.now() - start;
    EXPECT_GT(elapsed, micros(12.0));
    EXPECT_LT(elapsed, micros(30.0));
    (void)start;
}

TEST_F(AccelFixture, PerVisitIterationBudget)
{
    make_accel();
    const VirtAddr head = build_chain(100);
    submit(count_program(/*max_iters=*/32), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kMaxIter);
    EXPECT_EQ(responses[0].iterations_done, 32u);
    // Continuation carries cur_ptr + scratch; a re-issued visit picks
    // up where it stopped.
    const VirtAddr resume = responses[0].cur_ptr;
    const auto resumed_program = count_program(32);
    net::TraversalPacket packet;
    packet.id = RequestId{0, 2};
    packet.cur_ptr = resume;
    packet.iterations_done = responses[0].iterations_done;
    attach_program(packet, resumed_program);
    packet.scratch = responses[0].scratch;
    network->send_traversal(net::EndpointAddr::client(0),
                            std::move(packet));
    queue.run();
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].iterations_done, 64u);
}

TEST_F(AccelFixture, ProtectionFaultReported)
{
    AccelConfig config;
    Accelerator& accelerator = make_accel(config);
    // Remove the RW mapping, install read-only over a sub-range and
    // leave the rest unmapped.
    const auto& region = memory.address_map().region(0);
    accelerator.tcam().remove(region.base);
    accelerator.tcam().insert(
        {region.base, 4096, 0, mem::Perm::kWrite});  // no read!
    const VirtAddr head = build_chain(3);
    submit(count_program(), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kMemFault);
    EXPECT_EQ(accelerator.stats().protection_faults.value(), 1u);
}

TEST_F(AccelFixture, MalformedProgramRejected)
{
    make_accel();
    // Backward jump: fails accelerator-side verification.
    std::vector<isa::Instruction> code;
    code.push_back({.op = isa::Opcode::kLoad, .src1 = isa::imm(16)});
    code.push_back({.op = isa::Opcode::kJump,
                    .cond = isa::Cond::kAlways, .target = 0});
    code.push_back({.op = isa::Opcode::kReturn});
    auto bad = std::make_shared<const isa::Program>(
        isa::Program(std::move(code), 64, 16));
    submit(bad, build_chain(2));
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kExecFault);
    EXPECT_EQ(responses[0].fault, isa::ExecFault::kIllegalInstruction);
}

TEST_F(AccelFixture, NotLocalPointerBouncesViaSwitchPolicy)
{
    make_accel();
    const VirtAddr head = build_chain(3);
    // Patch node 1's next pointer to an address outside this node's
    // TCAM (but also outside the switch table -> client memfault).
    memory.write_as<std::uint64_t>(head + 8, 0xDEAD000ull);
    submit(count_program(), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kMemFault);
}

TEST_F(AccelFixture, QueueOverflowDropsAndCounts)
{
    AccelConfig config;
    config.num_cores = 1;
    config.eta_pipelines = 1;
    config.workspaces_per_logic = 1;
    config.max_pending = 2;
    Accelerator& accelerator = make_accel(config);
    const VirtAddr head = build_chain(64);
    for (std::uint64_t i = 0; i < 8; i++) {
        submit(count_program(), head, i + 1);
    }
    queue.run();
    // 1 executing + 2 queued admitted at a time; the rest dropped.
    EXPECT_GT(accelerator.stats().queue_drops.value(), 0u);
    EXPECT_GE(responses.size(), 3u);
}

TEST_F(AccelFixture, ComponentTimesAccumulate)
{
    Accelerator& accelerator = make_accel();
    const VirtAddr head = build_chain(20);
    submit(count_program(), head);
    queue.run();
    const AccelStats& stats = accelerator.stats();
    // rx + tx network stack.
    EXPECT_DOUBLE_EQ(stats.net_stack_time.sum(),
                     2.0 * static_cast<double>(nanos(430.0)));
    EXPECT_DOUBLE_EQ(stats.scheduler_time.sum(),
                     static_cast<double>(nanos(4.0)));
    // 20 loads x >= 120 ns each.
    EXPECT_GE(stats.mem_pipeline_time.sum(),
              20.0 * static_cast<double>(nanos(120.0)));
    EXPECT_GT(stats.logic_pipeline_time.sum(), 0.0);
    EXPECT_GT(stats.logic_busy_time.sum(), 0.0);
    EXPECT_LE(stats.logic_busy_time.sum(),
              stats.logic_pipeline_time.sum());
    accelerator.reset_stats();
    EXPECT_EQ(accelerator.stats().loads.value(), 0u);
}

TEST_F(AccelFixture, StoresWriteThroughChannels)
{
    Accelerator& accelerator = make_accel();
    const VirtAddr head = build_chain(1);
    // Program: load, overwrite the node's value field with 0xAB, done.
    isa::ProgramBuilder b;
    b.load(16)
        .move(isa::dat(0), isa::imm(0xAB))
        .store(0, 0, 8)
        .ret();
    submit(std::make_shared<const isa::Program>(b.build()), head);
    queue.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, TraversalStatus::kDone);
    EXPECT_EQ(memory.read_as<std::uint64_t>(head), 0xABu);
    EXPECT_EQ(accelerator.stats().stores.value(), 1u);
}

}  // namespace
}  // namespace pulse::accel
