/**
 * @file
 * Tests for the proximity-graph greedy search — the graph-traversal
 * workload class of paper section 2.1, expressed in the iterator
 * model. Offloaded searches must match the host reference, converge
 * to the global nearest key (the 1-D small world has no false local
 * minima for these link sets), and stay within the offload test.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.h"
#include "ds/prox_graph.h"
#include "isa/analysis.h"

namespace pulse::ds {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

offload::Completion
run_pulse(Cluster& cluster, offload::Operation op)
{
    offload::Completion result;
    op.done = [&](offload::Completion&& completion) {
        result = std::move(completion);
    };
    cluster.submitter(SystemKind::kPulse)(std::move(op));
    cluster.queue().run();
    return result;
}

std::vector<std::uint64_t>
make_keys(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    std::uint64_t key = 100;
    for (std::uint64_t i = 0; i < n; i++) {
        key += 1 + rng.next_below(50);
        keys.push_back(key);
    }
    return keys;
}

/** Brute-force nearest key. */
std::uint64_t
nearest(const std::vector<std::uint64_t>& keys, std::uint64_t target)
{
    std::uint64_t best = keys.front();
    auto dist = [&](std::uint64_t k) {
        return k > target ? k - target : target - k;
    };
    for (const std::uint64_t key : keys) {
        if (dist(key) < dist(best)) {
            best = key;
        }
    }
    return best;
}

TEST(ProxGraph, ProgramIsOffloadable)
{
    ClusterConfig config;
    Cluster cluster(config);
    ProxGraph graph(cluster.memory(), cluster.allocator());
    graph.build(make_keys(64, 1), 0);
    const auto& analysis = cluster.offload_engine().analysis_for(
        graph.greedy_program());
    ASSERT_TRUE(analysis.valid) << analysis.error;
    EXPECT_TRUE(cluster.offload_engine().should_offload(analysis));
    EXPECT_EQ(analysis.load_bytes, ProxGraph::kNodeBytes);
}

TEST(ProxGraph, GreedySearchMatchesReferenceAndBruteForce)
{
    ClusterConfig config;
    Cluster cluster(config);
    ProxGraph graph(cluster.memory(), cluster.allocator());
    const auto keys = make_keys(500, 2);
    graph.build(keys, 0);

    Rng rng(3);
    for (int probe = 0; probe < 40; probe++) {
        const std::uint64_t target =
            rng.next_range(50, keys.back() + 100);
        const auto completion =
            run_pulse(cluster, graph.make_search(target, {}));
        ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
        EXPECT_TRUE(completion.offloaded);
        const auto got = ProxGraph::parse_search(completion);
        const auto want = graph.search_reference(target);
        ASSERT_TRUE(got.complete);
        EXPECT_EQ(got.key, want.key) << "target " << target;
        EXPECT_EQ(got.vertex, want.vertex);
        EXPECT_EQ(got.distance, want.distance);
        // The 1-D small world has no false local minima: greedy finds
        // the true nearest key.
        EXPECT_EQ(got.key, nearest(keys, target)) << target;
    }
}

TEST(ProxGraph, ConvergesInLogarithmicHops)
{
    ClusterConfig config;
    Cluster cluster(config);
    ProxGraph graph(cluster.memory(), cluster.allocator());
    const auto keys = make_keys(2048, 4);
    graph.build(keys, 0);

    // Search for the extreme key from the middle entry: the +-8
    // stride bounds hops to ~n/8 worst case but the doubling strides
    // make typical paths far shorter than linear.
    const auto completion =
        run_pulse(cluster, graph.make_search(keys.front(), {}));
    ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
    EXPECT_EQ(ProxGraph::parse_search(completion).key, keys.front());
    EXPECT_LT(completion.iterations, 2048u / 8 + 16);
    EXPECT_GT(completion.iterations, 8u);
}

TEST(ProxGraph, DistributedSearchCrossesNodes)
{
    ClusterConfig config;
    config.num_mem_nodes = 2;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    config.uniform_chunk_bytes = 4 * kKiB;
    Cluster cluster(config);
    ProxGraph graph(cluster.memory(), cluster.allocator());
    const auto keys = make_keys(600, 5);
    graph.build(keys);  // placement follows the uniform policy

    const auto completion =
        run_pulse(cluster, graph.make_search(keys.back() + 50, {}));
    ASSERT_EQ(completion.status, isa::TraversalStatus::kDone);
    EXPECT_EQ(ProxGraph::parse_search(completion).key, keys.back());
    // The walk crossed memory nodes via switch continuations.
    std::uint64_t forwards = 0;
    for (NodeId node = 0; node < 2; node++) {
        forwards +=
            cluster.accelerator(node).stats().forwards_sent.value();
    }
    EXPECT_GT(forwards, 0u);
    EXPECT_EQ(completion.client_bounces, 0u);
}

TEST(ProxGraph, ExactHitHasZeroDistance)
{
    ClusterConfig config;
    Cluster cluster(config);
    ProxGraph graph(cluster.memory(), cluster.allocator());
    const auto keys = make_keys(300, 6);
    graph.build(keys, 0);
    const std::uint64_t target = keys[77];
    const auto completion =
        run_pulse(cluster, graph.make_search(target, {}));
    const auto result = ProxGraph::parse_search(completion);
    EXPECT_EQ(result.key, target);
    EXPECT_EQ(result.distance, 0u);
}

}  // namespace
}  // namespace pulse::ds
