/**
 * @file
 * Fork/join under the fault plane: sub-traversal packets are routed
 * like any other traversal, so they ride the same loss / duplication /
 * reordering machinery and the same replication failover. These tests
 * assert the join still happens exactly once — the folded sum equals
 * the host reference bit-for-bit — with 1% link chaos on every link,
 * and with a memory node blacking out mid-join under k=2 replication.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.h"
#include "ds/bptree.h"
#include "ds/ds_common.h"
#include "ds/prox_graph.h"
#include "faults/fault_config.h"

namespace pulse::offload {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::SystemKind;

std::vector<std::uint64_t>
make_keys(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    std::uint64_t key = 100;
    for (std::uint64_t i = 0; i < n; i++) {
        key += 1 + rng.next_below(30);
        keys.push_back(key);
    }
    return keys;
}

/** 1% loss, 1% duplication, 1% reordering on every link. */
void
arm_link_chaos(ClusterConfig* config, std::uint64_t seed)
{
    config->faults.seed = seed;
    config->faults.links.loss = 0.01;
    config->faults.links.duplicate = 0.01;
    config->faults.links.reorder = 0.01;
    config->faults.links.reorder_jitter = micros(5.0);
    config->offload.adaptive_rto = true;
    config->offload.retransmit_timeout = micros(2000.0);
}

TEST(ForkJoinChaos, LossyLinksStillJoinExactlyOnce)
{
    ClusterConfig config;
    config.num_mem_nodes = 4;
    config.check.oracle = true;
    config.check.invariants = true;
    config.check.fail_fast = false;
    arm_link_chaos(&config, 0xF04C);
    Cluster cluster(config);

    ds::BPTreeConfig bt;
    bt.inline_values = true;
    bt.partitions = config.num_mem_nodes;
    ds::BPTree tree(cluster.memory(), cluster.allocator(), bt);
    const auto keys = make_keys(2000, 21);
    std::vector<ds::BPTreeEntry> entries;
    entries.reserve(keys.size());
    for (const std::uint64_t k : keys) {
        entries.push_back({k, ds::value_pattern_word(k)});
    }
    tree.build(entries);

    Rng rng(22);
    std::uint32_t completed = 0;
    const int kOps = 24;
    for (int i = 0; i < kOps; i++) {
        const std::uint64_t lo =
            keys.front() + rng.next_below(keys.back() - keys.front());
        const std::uint64_t hi = lo + 1 + rng.next_below(15000);
        const auto want =
            tree.aggregate_reference(ds::AggKind::kSum, lo, hi);
        offload::Operation op = tree.make_aggregate_forked(lo, hi, {});
        op.done = [&completed, want, lo,
                   hi](offload::Completion&& completion) {
            completed++;
            ASSERT_EQ(completion.status, isa::TraversalStatus::kDone)
                << "[" << lo << ", " << hi << "]";
            const auto got =
                ds::BPTree::parse_aggregate_forked(completion);
            ASSERT_TRUE(got.complete);
            // Exactly-once join: a lost branch would under-count, a
            // duplicated one would over-count.
            EXPECT_EQ(got.count, want.count)
                << "[" << lo << ", " << hi << "]";
            EXPECT_EQ(got.value, want.value);
        };
        cluster.submitter(SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(completed, static_cast<std::uint32_t>(kOps));
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

TEST(ForkJoinChaos, NestedForksSurviveLinkChaos)
{
    ClusterConfig config;
    config.num_mem_nodes = 3;
    config.alloc_policy = mem::AllocPolicy::kUniform;
    config.uniform_chunk_bytes = 4 * kKiB;
    config.check.oracle = true;
    config.check.invariants = true;
    config.check.fail_fast = false;
    arm_link_chaos(&config, 0xF04D);
    Cluster cluster(config);

    ds::ProxGraph graph(cluster.memory(), cluster.allocator());
    graph.build(make_keys(128, 23));

    std::uint32_t completed = 0;
    for (int i = 0; i < 12; i++) {
        const std::uint32_t hops = 1 + (i % 3);
        const auto want = graph.nhood_reference(kNullAddr, hops);
        offload::Operation op = graph.make_nhood(kNullAddr, hops, {});
        op.done = [&completed, want,
                   hops](offload::Completion&& completion) {
            completed++;
            ASSERT_EQ(completion.status, isa::TraversalStatus::kDone)
                << "hops " << hops;
            const auto got = ds::ProxGraph::parse_nhood(completion);
            ASSERT_TRUE(got.complete);
            EXPECT_EQ(got.vertices, want.vertices) << "hops " << hops;
            EXPECT_EQ(got.key_sum, want.key_sum);
        };
        cluster.submitter(SystemKind::kPulse)(std::move(op));
    }
    cluster.queue().run();
    EXPECT_EQ(completed, 12u);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

TEST(ForkJoinChaos, MidJoinBlackoutWithReplicationJoinsExactlyOnce)
{
    ClusterConfig config;
    config.num_mem_nodes = 3;
    config.check.invariants = true;
    config.replication.replication_factor = 2;
    arm_link_chaos(&config, 0xF04E);
    // Node 1 blacks out after replicas are established, while forked
    // aggregates are mid-join, and stays dark long enough for the
    // failure detector to declare it and fail spans over.
    config.faults.timeline.push_back(faults::NodeFaultWindow{
        /*node=*/1, faults::NodeFaultKind::kBlackout, micros(900.0),
        micros(5000.0)});
    Cluster cluster(config);

    ds::BPTreeConfig bt;
    bt.inline_values = true;
    bt.partitions = config.num_mem_nodes;
    ds::BPTree tree(cluster.memory(), cluster.allocator(), bt);
    const auto keys = make_keys(1500, 24);
    std::vector<ds::BPTreeEntry> entries;
    entries.reserve(keys.size());
    for (const std::uint64_t k : keys) {
        entries.push_back({k, ds::value_pattern_word(k)});
    }
    tree.build(entries);

    // A steady stream of forked sums straddling the blackout window:
    // some join before it, some mid-outage (answered after failover),
    // some after recovery.
    Rng rng(25);
    std::uint32_t completed = 0;
    const int kOps = 30;
    for (int i = 0; i < kOps; i++) {
        const std::uint64_t lo =
            keys.front() + rng.next_below(keys.back() - keys.front());
        const std::uint64_t hi = lo + 1 + rng.next_below(12000);
        const auto want =
            tree.aggregate_reference(ds::AggKind::kSum, lo, hi);
        const Time at = micros(200.0 * i);
        cluster.queue().schedule_after(at, [&cluster, &tree, &completed,
                                            want, lo, hi] {
            offload::Operation op =
                tree.make_aggregate_forked(lo, hi, {});
            op.done = [&completed, want, lo,
                       hi](offload::Completion&& completion) {
                completed++;
                ASSERT_EQ(completion.status,
                          isa::TraversalStatus::kDone)
                    << "[" << lo << ", " << hi << "]";
                const auto got =
                    ds::BPTree::parse_aggregate_forked(completion);
                ASSERT_TRUE(got.complete);
                EXPECT_EQ(got.count, want.count)
                    << "[" << lo << ", " << hi << "]";
                EXPECT_EQ(got.value, want.value);
            };
            cluster.submitter(SystemKind::kPulse)(std::move(op));
        });
    }
    cluster.queue().run();
    EXPECT_EQ(completed, static_cast<std::uint32_t>(kOps));

    // The blackout was actually exercised: the node was declared dead
    // and spans failed over to the surviving replica.
    ASSERT_NE(cluster.replication_plane(), nullptr);
    EXPECT_GE(
        cluster.replication_plane()->stats().nodes_declared_dead.value(),
        1u);
    EXPECT_EQ(cluster.verify_quiesce(), 0u);
}

}  // namespace
}  // namespace pulse::offload
