/**
 * @file
 * Adaptive retransmission-timeout estimator (Jacobson/Karels, the
 * RFC 6298 algorithm) in integer picoseconds.
 *
 * The offload engine feeds one RTT sample per successfully matched
 * response leg (Karn's rule: legs that were retransmitted contribute no
 * sample, since the response cannot be attributed to a specific copy)
 * and arms its retransmit timer from rto(). Until the first sample
 * arrives the configured initial timeout is used, so a run that never
 * measures an RTT behaves exactly like the fixed-timeout engine.
 *
 * All arithmetic is integer shifts/divides on Time, so the estimator is
 * bit-deterministic and cheap enough to run per response.
 */
#ifndef PULSE_OFFLOAD_RTO_ESTIMATOR_H
#define PULSE_OFFLOAD_RTO_ESTIMATOR_H

#include "common/units.h"

namespace pulse::offload {

/** Smoothed RTT tracker producing a clamped retransmission timeout. */
class RtoEstimator
{
  public:
    /**
     * @param initial_rto     timeout before any RTT sample exists
     * @param min_rto         lower clamp for the computed timeout
     * @param max_rto         upper clamp for the computed timeout
     * @param srtt_multiplier floor rto at srtt * this (guards against a
     *                        variance collapse under uniform simulated
     *                        RTTs, where srtt + 4*rttvar can shrink to
     *                        barely above srtt and fire spuriously)
     */
    RtoEstimator(Time initial_rto, Time min_rto, Time max_rto,
                 double srtt_multiplier)
        : initial_rto_(initial_rto), min_rto_(min_rto),
          max_rto_(max_rto), srtt_multiplier_(srtt_multiplier)
    {
    }

    /** Fold one RTT measurement into srtt/rttvar. */
    void
    sample(Time rtt)
    {
        if (rtt < 0) {
            rtt = 0;
        }
        if (!has_sample_) {
            // First measurement: srtt = R, rttvar = R/2 (RFC 6298 §2.2).
            srtt_ = rtt;
            rttvar_ = rtt / 2;
            has_sample_ = true;
            return;
        }
        // rttvar update uses the *old* srtt (RFC 6298 §2.3).
        const Time err = rtt - srtt_;
        const Time abs_err = err < 0 ? -err : err;
        rttvar_ += (abs_err - rttvar_) / 4;
        srtt_ += err / 8;
    }

    /** Current retransmission timeout. */
    Time
    rto() const
    {
        if (!has_sample_) {
            return initial_rto_;
        }
        Time rto = srtt_ + 4 * rttvar_;
        const Time floor =
            static_cast<Time>(static_cast<double>(srtt_) *
                              srtt_multiplier_);
        if (rto < floor) {
            rto = floor;
        }
        if (rto < min_rto_) {
            rto = min_rto_;
        }
        if (rto > max_rto_) {
            rto = max_rto_;
        }
        return rto;
    }

    bool has_sample() const { return has_sample_; }
    Time srtt() const { return srtt_; }
    Time rttvar() const { return rttvar_; }

    /** Forget all samples (back to the initial timeout). */
    void
    reset()
    {
        has_sample_ = false;
        srtt_ = 0;
        rttvar_ = 0;
    }

    /** Checkpoint support: reinstate a saved estimator state. */
    void
    restore(bool has_sample, Time srtt, Time rttvar)
    {
        has_sample_ = has_sample;
        srtt_ = srtt;
        rttvar_ = rttvar;
    }

  private:
    Time initial_rto_;
    Time min_rto_;
    Time max_rto_;
    double srtt_multiplier_;
    bool has_sample_ = false;
    Time srtt_ = 0;
    Time rttvar_ = 0;
};

}  // namespace pulse::offload

#endif  // PULSE_OFFLOAD_RTO_ESTIMATOR_H
