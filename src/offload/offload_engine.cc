#include "offload/offload_engine.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "isa/codec.h"
#include "isa/traversal.h"

namespace pulse::offload {

using isa::TraversalStatus;

namespace {

/** Wire size of a one-sided read request (headers + addr + len). */
constexpr Bytes kRemoteReadRequestBytes = net::kNetHeaderBytes + 16;

/** SplitMix64 finalizer for the deterministic backoff jitter. */
std::uint64_t
jitter_hash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Content digest of a program (FNV-1a over its encoding): the stable
 * identity that lets checkpointed installation counts survive the
 * Program* interning boundary.
 */
std::uint64_t
program_digest(const isa::Program& program)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t byte : isa::encode_program(program)) {
        h = (h ^ byte) * 0x100000001b3ull;
    }
    return h;
}

}  // namespace

OffloadEngine::OffloadEngine(sim::EventQueue& queue,
                             net::Network& network,
                             mem::GlobalMemory& memory, ClientId client,
                             const OffloadConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      client_(client), config_(config),
      rto_(config.retransmit_timeout, config.rto_min,
           config.retransmit_timeout, config.rto_srtt_multiplier)
{
    network_.attach_traversal_sink(
        net::EndpointAddr::client(client_),
        [this](net::TraversalPacket&& packet) {
            on_response(std::move(packet));
        });
}

bool
OffloadEngine::should_offload(const isa::ProgramAnalysis& analysis) const
{
    if (!analysis.valid) {
        return false;
    }
    // Atomic (CAS) programs must run near the memory: the client's
    // one-sided fallback path has no remote-atomic primitive.
    if (analysis.has_cas) {
        return true;
    }
    // Forking programs always offload: the client fallback executes a
    // single chain and cannot coordinate a distributed join.
    if (analysis.has_spawn) {
        return true;
    }
    const Time t_c = isa::compute_time(analysis, config_.t_i);
    return static_cast<double>(t_c) <=
           config_.eta_threshold * static_cast<double>(config_.t_d);
}

const isa::ProgramAnalysis&
OffloadEngine::analysis_for(
    const std::shared_ptr<const isa::Program>& program)
{
    const auto it = analysis_cache_.find(program.get());
    if (it != analysis_cache_.end()) {
        return it->second;
    }
    program_pins_.emplace(program.get(), program);
    if (!restored_code_sends_.empty()) {
        // A checkpointed run already shipped install copies of this
        // program; resume its count so continuation traffic (and wire
        // accounting) matches the uninterrupted run byte for byte.
        const auto sends =
            restored_code_sends_.find(program_digest(*program));
        if (sends != restored_code_sends_.end()) {
            code_sends_[program.get()] = sends->second;
            restored_code_sends_.erase(sends);
        }
    }
    return analysis_cache_
        .emplace(program.get(), isa::analyze(*program))
        .first->second;
}

void
OffloadEngine::save_state(StateWriter& writer) const
{
    PULSE_ASSERT(inflight_.empty(),
                 "checkpoint requires a quiesced offload engine "
                 "(%zu in flight)",
                 inflight_.size());
    writer.put_tag("OFFL");
    writer.put_u64(next_seq_);
    writer.put_bool(rto_.has_sample());
    writer.put_i64(rto_.srtt());
    writer.put_i64(rto_.rttvar());
    writer.put_u64(stats_.submitted.value());
    writer.put_u64(stats_.offloaded.value());
    writer.put_u64(stats_.fallback.value());
    writer.put_u64(stats_.retransmits.value());
    writer.put_u64(stats_.client_bounces.value());
    writer.put_u64(stats_.continuations.value());
    writer.put_u64(stats_.failures.value());
    writer.put_u64(stats_.stale_responses.value());
    // Fork/join join-state record: the quiesce precondition means no
    // join is open, so the lifetime counters are the whole state.
    writer.put_u64(forks_spawned_);
    writer.put_u64(joins_completed_);
    // Installation counts, keyed by content digest in sorted order so
    // the blob is independent of hash-map iteration.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> sends;
    sends.reserve(code_sends_.size() + restored_code_sends_.size());
    for (const auto& [program, count] : code_sends_) {
        sends.emplace_back(program_digest(*program), count);
    }
    for (const auto& [digest, count] : restored_code_sends_) {
        sends.emplace_back(digest, count);
    }
    std::sort(sends.begin(), sends.end());
    writer.put_u64(sends.size());
    for (const auto& [digest, count] : sends) {
        writer.put_u64(digest);
        writer.put_u32(count);
    }
}

void
OffloadEngine::load_state(StateReader& reader)
{
    PULSE_ASSERT(inflight_.empty(),
                 "restore requires a quiesced offload engine");
    reader.expect_tag("OFFL");
    next_seq_ = reader.get_u64();
    const bool has_sample = reader.get_bool();
    const Time srtt = reader.get_i64();
    const Time rttvar = reader.get_i64();
    rto_.restore(has_sample, srtt, rttvar);
    stats_.submitted.set(reader.get_u64());
    stats_.offloaded.set(reader.get_u64());
    stats_.fallback.set(reader.get_u64());
    stats_.retransmits.set(reader.get_u64());
    stats_.client_bounces.set(reader.get_u64());
    stats_.continuations.set(reader.get_u64());
    stats_.failures.set(reader.get_u64());
    stats_.stale_responses.set(reader.get_u64());
    forks_spawned_ = reader.get_u64();
    joins_completed_ = reader.get_u64();
    restored_code_sends_.clear();
    const std::uint64_t count = reader.get_u64();
    for (std::uint64_t i = 0; i < count; i++) {
        const std::uint64_t digest = reader.get_u64();
        restored_code_sends_[digest] = reader.get_u32();
    }
    // Counts for programs this engine already pinned re-attach now;
    // the rest wait for their program's first submit.
    for (const auto& entry : program_pins_) {
        const auto sends =
            restored_code_sends_.find(program_digest(*entry.first));
        if (sends != restored_code_sends_.end()) {
            code_sends_[entry.first] = sends->second;
            restored_code_sends_.erase(sends);
        }
    }
}

void
OffloadEngine::submit(Operation&& op)
{
    stats_.submitted.increment();
    PULSE_ASSERT(static_cast<bool>(op.program), "operation without code");
    const isa::ProgramAnalysis& analysis = analysis_for(op.program);
    if (!analysis.valid) {
        Completion completion;
        completion.status = TraversalStatus::kExecFault;
        completion.fault = isa::ExecFault::kIllegalInstruction;
        stats_.failures.increment();
        op.done(std::move(completion));
        return;
    }
    if (!should_offload(analysis)) {
        stats_.fallback.increment();
        run_fallback(std::move(op));
        return;
    }

    stats_.offloaded.increment();
    const std::uint64_t key = next_seq_++;
    InFlight inflight;
    inflight.op = std::move(op);
    inflight.submit_time = queue_.now();
    inflight.root_key = key;  // a root is its own DAG root
    const VirtAddr start = inflight.op.start_ptr;
    // Trim the shipped scratch_pad to the program's static footprint.
    ScratchBuffer scratch = inflight.op.init_scratch;
    scratch.resize(std::max<std::size_t>(analysis.scratch_footprint,
                                         scratch.size()),
                   0);
    const Time cpu_time = inflight.op.init_cpu_time +
                          config_.request_software_overhead;
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->record({RequestId{client_, key},
                         trace::SpanKind::kClientSubmit,
                         trace::Location::kClient, client_,
                         queue_.now(), cpu_time, 0});
    }
    inflight_.emplace(key, std::move(inflight));
    queue_.schedule_after(cpu_time, [this, key, start, scratch] {
        issue(key, start, scratch, 0);
    });
}

void
OffloadEngine::issue(std::uint64_t key, VirtAddr cur_ptr,
                     const ScratchBuffer& scratch,
                     std::uint64_t iterations_done)
{
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;  // completed (e.g. timed out) before the issue fired
    }
    InFlight& inflight = it->second;

    net::TraversalPacket packet;
    packet.id = RequestId{client_, key};
    packet.origin = client_;
    packet.tenant = inflight.op.tenant;
    packet.is_response = false;
    packet.cur_ptr = cur_ptr;
    packet.iterations_done = iterations_done;
    // Every packet descending from this leg (responses, forwarded
    // continuations, replayed duplicates) echoes this value; responses
    // carrying an older echo are stale and get dropped.
    packet.visit_echo = iterations_done;
    packet.trace.sampled = tracer_ != nullptr && tracer_->enabled();
    packet.allow_switch_continuation = config_.switch_continuation;
    // Fork lineage: sub-traversal packets carry their depth, the
    // parent's request id and their branch index, so the join
    // rendezvous survives any routing the packet takes.
    packet.spawn_depth = inflight.depth;
    if (inflight.parent_key != 0) {
        packet.parent_id = RequestId{client_, inflight.parent_key};
        packet.branch_index = inflight.branch_index;
    }
    attach_program(packet, inflight.op.program);
    // After the program is installed at the accelerators, requests
    // carry a 16-byte program id instead of the code.
    std::uint32_t& sends = code_sends_[inflight.op.program.get()];
    if (sends >= config_.code_install_sends) {
        packet.code_size = net::kCodeIdBytes;
    } else {
        sends++;
    }
    packet.scratch = scratch;

    inflight.last_request = packet;
    inflight.leg_issue_time = queue_.now();
    inflight.leg_retransmitted = false;
    inflight.expected_echo = iterations_done;
    arm_timer(key);
    network_.send_traversal(net::EndpointAddr::client(client_),
                            std::move(packet));
}

void
OffloadEngine::arm_timer(std::uint64_t key)
{
    auto it = inflight_.find(key);
    PULSE_ASSERT(it != inflight_.end(), "arming timer for unknown op");
    const std::uint64_t generation = ++it->second.timer_generation;
    // Exponential backoff keeps loaded (queued) traversals from being
    // duplicated by premature retransmissions.
    const Time base = config_.adaptive_rto ? rto_.rto()
                                           : config_.retransmit_timeout;
    Time delay =
        base << std::min<std::uint32_t>(it->second.retransmits, 6);
    if (config_.rto_jitter_fraction > 0.0) {
        // Deterministic jitter from a per-(op, attempt) hash: spreads
        // simultaneous timeouts without consuming any RNG stream.
        const std::uint64_t h = jitter_hash(
            (static_cast<std::uint64_t>(client_) << 40) ^ (key << 8) ^
            generation);
        const double unit =
            static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
        delay += static_cast<Time>(static_cast<double>(delay) *
                                   config_.rto_jitter_fraction * unit);
    }
    queue_.schedule_after(delay, [this, key, generation] {
        auto pos = inflight_.find(key);
        if (pos == inflight_.end() ||
            pos->second.timer_generation != generation) {
            return;  // response arrived or a newer request superseded us
        }
        InFlight& inflight = pos->second;
        if (inflight.retransmits >= config_.max_retransmits) {
            Completion completion;
            completion.status = TraversalStatus::kMemFault;
            completion.timed_out = true;
            completion.offloaded = true;
            completion.retransmits = inflight.retransmits;
            completion.latency = queue_.now() - inflight.submit_time;
            stats_.failures.increment();
            complete(key, std::move(completion));
            return;
        }
        inflight.retransmits++;
        stats_.retransmits.increment();
        if (tracer_ != nullptr && tracer_->enabled() &&
            inflight.last_request.trace.sampled) {
            tracer_->record({RequestId{client_, key},
                             trace::SpanKind::kClientRetransmit,
                             trace::Location::kClient, client_,
                             queue_.now(), 0, inflight.retransmits});
        }
        // Karn's rule: once a leg is retransmitted, its response can
        // no longer be attributed to one copy — take no RTT sample.
        inflight.leg_retransmitted = true;
        net::TraversalPacket copy = inflight.last_request;
        arm_timer(key);
        network_.send_traversal(net::EndpointAddr::client(client_),
                                std::move(copy));
    });
}

void
OffloadEngine::on_response(net::TraversalPacket&& packet)
{
    if (packet.id.client != client_) {
        return;  // not ours (misrouted); drop
    }
    const std::uint64_t key = packet.id.seq;
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;  // duplicate of an already-completed request
    }
    if (packet.visit_echo != it->second.expected_echo) {
        // Stale duplicate from a leg this op already resumed past
        // (e.g. a replayed kMaxIter response racing the continuation).
        // Dropped *without* quenching the timer: the live leg is still
        // awaiting its own response.
        stats_.stale_responses.increment();
        return;
    }
    if (!packet.spawns.empty()) {
        // Fork/join: fork the spawned sub-traversals, exactly once.
        // Advancing the echo first makes any replayed duplicate of
        // this response stale before the children exist, so a
        // retransmit-induced replay can never re-fork them (spawns
        // imply the visit ran >= 1 iteration, so iterations_done is
        // strictly ahead of the old echo).
        it->second.expected_echo = packet.iterations_done;
        process_spawns(key, packet);
        it = inflight_.find(key);  // re-find: the map may have rehashed
        PULSE_ASSERT(it != inflight_.end(), "parent vanished mid-fork");
    }
    InFlight& inflight = it->second;
    if (config_.adaptive_rto && !inflight.leg_retransmitted) {
        rto_.sample(queue_.now() - inflight.leg_issue_time);
    }
    inflight.timer_generation++;  // quench the timer
    inflight.iterations = packet.iterations_done;
    if (tracer_ != nullptr && tracer_->enabled() &&
        packet.trace.sampled) {
        tracer_->record({packet.id, trace::SpanKind::kClientResponse,
                         trace::Location::kClient, client_,
                         queue_.now(),
                         config_.response_software_overhead, 0});
    }

    const bool resume_here =
        packet.status == TraversalStatus::kMaxIter ||
        (packet.status == TraversalStatus::kNotLocal &&
         !config_.switch_continuation);
    if (resume_here &&
        packet.iterations_done < kGlobalIterationGuard) {
        if (packet.status == TraversalStatus::kMaxIter) {
            inflight.continuations++;
            stats_.continuations.increment();
        } else {
            inflight.client_bounces++;
            stats_.client_bounces.increment();
        }
        const VirtAddr cur_ptr = packet.cur_ptr;
        const std::uint64_t iterations = packet.iterations_done;
        if (tracer_ != nullptr && tracer_->enabled() &&
            packet.trace.sampled) {
            // Request-build half of the client resume (the response
            // half was recorded above).
            tracer_->record({packet.id, trace::SpanKind::kClientSubmit,
                             trace::Location::kClient, client_,
                             queue_.now() +
                                 config_.response_software_overhead,
                             config_.request_software_overhead,
                             iterations});
        }
        queue_.schedule_after(
            config_.response_software_overhead +
                config_.request_software_overhead,
            [this, key, cur_ptr, iterations,
             scratch = packet.scratch] {
                issue(key, cur_ptr, scratch, iterations);
            });
        return;
    }

    Completion completion;
    completion.status = packet.status;
    completion.fault = packet.fault;
    if (packet.status == TraversalStatus::kRejected) {
        // QoS load shed (serving plane): the visit never executed. Mark
        // the completion retryable exactly like a retransmit give-up so
        // the driver's backoff path re-submits it, and keep `rejected`
        // so clients can distinguish shed from loss.
        completion.timed_out = true;
        completion.rejected = true;
        rejections_seen_++;
        stats_.failures.increment();
    }
    completion.final_ptr = packet.cur_ptr;
    completion.scratch.assign(packet.scratch.begin(),
                              packet.scratch.end());
    completion.iterations = packet.iterations_done;
    completion.offloaded = true;
    completion.retransmits = inflight.retransmits;
    completion.client_bounces = inflight.client_bounces;
    completion.continuations = inflight.continuations;
    const Time done_at =
        queue_.now() + config_.response_software_overhead;
    completion.latency = done_at - inflight.submit_time;
    queue_.schedule_after(
        config_.response_software_overhead,
        [this, key, completion = std::move(completion)]() mutable {
            complete(key, std::move(completion));
        });
}

void
OffloadEngine::complete(std::uint64_t key, Completion&& completion)
{
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;
    }
    // Fork/join: an operation whose own chain ended while spawned
    // subtrees are still in flight parks its completion at the join
    // record; the last branch to join finalizes it.
    if (it->second.fork != nullptr &&
        !it->second.fork->acc.all_joined()) {
        it->second.fork->parent_done = true;
        it->second.fork->parent_completion = std::move(completion);
        return;
    }
    finalize(key, std::move(completion));
}

OffloadEngine::ForkState&
OffloadEngine::ensure_fork(std::uint64_t key)
{
    auto it = inflight_.find(key);
    PULSE_ASSERT(it != inflight_.end(),
                 "fork state for unknown operation");
    InFlight& inflight = it->second;
    if (inflight.fork == nullptr) {
        inflight.fork = std::make_unique<ForkState>();
        const isa::ProgramAnalysis& analysis =
            analysis_for(inflight.op.program);
        inflight.fork->acc.configure(analysis.reduce_op,
                                     analysis.reduce_lanes);
        inflight.fork->reduce_offset = analysis.reduce_offset;
    }
    return *inflight.fork;
}

void
OffloadEngine::process_spawns(std::uint64_t key,
                              const net::TraversalPacket& packet)
{
    // Capture child-creation inputs up front: emplacing children may
    // rehash the in-flight table and invalidate references.
    const auto parent_it = inflight_.find(key);
    PULSE_ASSERT(parent_it != inflight_.end(),
                 "spawns for unknown parent");
    const std::shared_ptr<const isa::Program> program =
        parent_it->second.op.program;
    const std::uint32_t child_depth = parent_it->second.depth + 1;
    const std::uint64_t root_key = parent_it->second.root_key;
    const std::uint32_t tenant = parent_it->second.op.tenant;
    ensure_fork(key);
    ensure_fork(root_key);
    const isa::ProgramAnalysis& analysis = analysis_for(program);

    std::uint32_t issued = 0;
    for (const isa::SpawnRecord& record : packet.spawns) {
        // DAG termination guard: the total sub-traversals under one
        // root are capped, the dynamic analogue of the global
        // iteration guard on chains.
        ForkState& root_fork = *inflight_.find(root_key)->second.fork;
        if (root_fork.total_spawned >= isa::kForkNodeGuard) {
            ForkState& fork = *inflight_.find(key)->second.fork;
            if (!fork.failed) {
                fork.failed = true;
                fork.fail_status = TraversalStatus::kExecFault;
                fork.fail_fault = isa::ExecFault::kSpawnOverflow;
            }
            break;
        }
        root_fork.total_spawned++;

        ForkState& fork = *inflight_.find(key)->second.fork;
        const bool registered = fork.acc.register_branch();
        PULSE_ASSERT(registered,
                     "join-count overflow past the fork-node guard");

        const std::uint64_t child_key = next_seq_++;
        InFlight child;
        child.op.program = program;
        child.op.start_ptr = record.start_ptr;
        // Children bill to the spawning tenant.
        child.op.tenant = tenant;
        child.submit_time = queue_.now();
        child.parent_key = key;
        child.branch_index =
            static_cast<std::uint32_t>(fork.acc.registered() - 1);
        child.depth = child_depth;
        child.root_key = root_key;
        inflight_.emplace(child_key, std::move(child));
        forks_spawned_++;

        // The child starts from a zeroed scratch_pad with the
        // spawn-time argument bytes placed at the same offsets they
        // occupied in the parent.
        ScratchBuffer scratch;
        scratch.resize(
            std::max<std::size_t>(
                analysis.scratch_footprint,
                static_cast<std::size_t>(record.arg_offset) +
                    record.arg_length),
            0);
        std::memcpy(scratch.data() + record.arg_offset, record.args,
                    record.arg_length);

        // Client software builds one request per child, back to back.
        issued++;
        const VirtAddr start = record.start_ptr;
        queue_.schedule_after(
            config_.response_software_overhead +
                config_.request_software_overhead * issued,
            [this, child_key, start, scratch] {
                issue(child_key, start, scratch, 0);
            });
    }
}

void
OffloadEngine::finalize(std::uint64_t key, Completion&& completion)
{
    auto it = inflight_.find(key);
    PULSE_ASSERT(it != inflight_.end(), "finalize of unknown operation");
    InFlight& inflight = it->second;
    if (inflight.fork != nullptr) {
        ForkState& fork = *inflight.fork;
        if (completion.status == TraversalStatus::kDone) {
            if (fork.failed) {
                // A branch failed; the join reports the first failure.
                completion.status = fork.fail_status;
                completion.fault = fork.fail_fault;
            } else {
                // Fold the joined subtree lanes into the own-chain
                // lanes: the commutative reduce makes this independent
                // of the order the branches completed in.
                fork.acc.fold_into(
                    completion.scratch.data(),
                    completion.scratch.size(), fork.reduce_offset);
            }
        }
        completion.iterations += fork.child_iterations;
        joins_completed_++;
    }
    const std::uint64_t parent_key = inflight.parent_key;
    if (parent_key == 0) {
        if (tracer_ != nullptr && tracer_->enabled()) {
            tracer_->record({RequestId{client_, key},
                             trace::SpanKind::kComplete,
                             trace::Location::kClient, client_,
                             inflight.submit_time, completion.latency,
                             completion.iterations});
        }
        CompletionFn done = std::move(inflight.op.done);
        inflight_.erase(it);
        if (done) {
            done(std::move(completion));
        }
        return;
    }
    inflight_.erase(it);
    child_joined(parent_key, std::move(completion));
}

void
OffloadEngine::child_joined(std::uint64_t parent_key,
                            Completion&& child_completion)
{
    auto it = inflight_.find(parent_key);
    PULSE_ASSERT(it != inflight_.end(),
                 "branch joined at an unknown parent");
    InFlight& parent = it->second;
    PULSE_ASSERT(parent.fork != nullptr,
                 "branch joined at a parent without a join record");
    ForkState& fork = *parent.fork;
    fork.child_iterations += child_completion.iterations;
    if (child_completion.status != TraversalStatus::kDone &&
        !fork.failed) {
        fork.failed = true;
        fork.fail_status = child_completion.status;
        fork.fail_fault = child_completion.fault;
    }
    const bool joined = fork.acc.complete_branch(
        child_completion.scratch.data(),
        child_completion.scratch.size(), fork.reduce_offset);
    PULSE_ASSERT(joined,
                 "join-count underflow: a branch joined with none "
                 "registered");
    if (fork.acc.all_joined() && fork.parent_done) {
        Completion parked = std::move(fork.parent_completion);
        finalize(parent_key, std::move(parked));
    }
}

void
OffloadEngine::run_fallback(Operation&& op)
{
    // Client-side execution with one-sided remote reads: one network
    // round trip per aggregated load, interpreter on the client CPU.
    struct FallbackState
    {
        Operation op;
        isa::Workspace workspace;
        Time submit_time = 0;
        std::uint64_t iterations = 0;
    };
    auto state = std::make_shared<FallbackState>();
    state->op = std::move(op);
    state->submit_time = queue_.now();
    state->workspace.configure(*state->op.program);
    state->workspace.cur_ptr = state->op.start_ptr;
    std::copy_n(state->op.init_scratch.begin(),
                std::min(state->op.init_scratch.size(),
                         state->workspace.scratch.size()),
                state->workspace.scratch.begin());

    auto finish = [this, state](TraversalStatus status,
                                isa::ExecFault fault) {
        Completion completion;
        completion.status = status;
        completion.fault = fault;
        completion.final_ptr = state->workspace.cur_ptr;
        completion.scratch = state->workspace.scratch;
        completion.iterations = state->iterations;
        completion.offloaded = false;
        completion.latency = queue_.now() - state->submit_time;
        if (state->op.done) {
            state->op.done(std::move(completion));
        }
    };

    // One iteration step; re-schedules itself until termination. The
    // lambda holds itself only weakly — strong references live in the
    // scheduled continuations — so the chain frees once it terminates.
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, state, finish,
             weak_step = std::weak_ptr<std::function<void()>>(step)] {
        auto step = weak_step.lock();
        PULSE_ASSERT(step != nullptr, "fallback step outlived itself");
        const std::uint32_t load_bytes = state->op.program->load_bytes();
        const VirtAddr ptr = state->workspace.cur_ptr;
        if (ptr == kNullAddr && load_bytes > 0) {
            // Null-page semantics: zeros, no network access.
            std::fill_n(state->workspace.data.begin(), load_bytes, 0);
            isa::IterationResult iter = run_iteration(
                *state->op.program, state->workspace);
            state->iterations++;
            if (iter.end == isa::IterEnd::kReturn) {
                finish(TraversalStatus::kDone, isa::ExecFault::kNone);
            } else if (iter.end == isa::IterEnd::kFault) {
                finish(TraversalStatus::kExecFault, iter.fault);
            } else {
                queue_.schedule_after(
                    config_.fallback_software_overhead,
                    [step] { (*step)(); });
            }
            return;
        }
        const auto node = memory_.address_map().node_for(ptr);
        if (!node.has_value()) {
            finish(TraversalStatus::kMemFault, isa::ExecFault::kNone);
            return;
        }
        // One-sided read: request to the node, data-sized response.
        network_.send_message(
            net::EndpointAddr::client(client_),
            net::EndpointAddr::mem_node(*node), kRemoteReadRequestBytes,
            [this, state, finish, step, ptr, load_bytes,
             node = *node] {
                network_.send_message(
                    net::EndpointAddr::mem_node(node),
                    net::EndpointAddr::client(client_),
                    net::kNetHeaderBytes + load_bytes,
                    [this, state, finish, step, ptr, load_bytes] {
                        if (load_bytes > 0) {
                            memory_.read(ptr,
                                         state->workspace.data.data(),
                                         load_bytes);
                        }
                        isa::IterationResult iter = run_iteration(
                            *state->op.program, state->workspace);
                        state->iterations++;
                        // Fallback path is read-only: STOREs would need
                        // a write round trip; none of the adapted
                        // operations store on this path.
                        if (iter.end == isa::IterEnd::kFault) {
                            finish(TraversalStatus::kExecFault,
                                   iter.fault);
                            return;
                        }
                        if (iter.end == isa::IterEnd::kReturn) {
                            finish(TraversalStatus::kDone,
                                   isa::ExecFault::kNone);
                            return;
                        }
                        if (state->iterations >=
                            kGlobalIterationGuard) {
                            finish(TraversalStatus::kMaxIter,
                                   isa::ExecFault::kNone);
                            return;
                        }
                        queue_.schedule_after(
                            config_.fallback_software_overhead,
                            [step] { (*step)(); });
                    });
            });
    };
    queue_.schedule_after(state->op.init_cpu_time +
                              config_.fallback_software_overhead,
                          [step] { (*step)(); });
}

}  // namespace pulse::offload
