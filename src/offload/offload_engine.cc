#include "offload/offload_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "isa/traversal.h"

namespace pulse::offload {

using isa::TraversalStatus;

namespace {

/** Wire size of a one-sided read request (headers + addr + len). */
constexpr Bytes kRemoteReadRequestBytes = net::kNetHeaderBytes + 16;

/** SplitMix64 finalizer for the deterministic backoff jitter. */
std::uint64_t
jitter_hash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

OffloadEngine::OffloadEngine(sim::EventQueue& queue,
                             net::Network& network,
                             mem::GlobalMemory& memory, ClientId client,
                             const OffloadConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      client_(client), config_(config),
      rto_(config.retransmit_timeout, config.rto_min,
           config.retransmit_timeout, config.rto_srtt_multiplier)
{
    network_.attach_traversal_sink(
        net::EndpointAddr::client(client_),
        [this](net::TraversalPacket&& packet) {
            on_response(std::move(packet));
        });
}

bool
OffloadEngine::should_offload(const isa::ProgramAnalysis& analysis) const
{
    if (!analysis.valid) {
        return false;
    }
    // Atomic (CAS) programs must run near the memory: the client's
    // one-sided fallback path has no remote-atomic primitive.
    if (analysis.has_cas) {
        return true;
    }
    const Time t_c = isa::compute_time(analysis, config_.t_i);
    return static_cast<double>(t_c) <=
           config_.eta_threshold * static_cast<double>(config_.t_d);
}

const isa::ProgramAnalysis&
OffloadEngine::analysis_for(
    const std::shared_ptr<const isa::Program>& program)
{
    const auto it = analysis_cache_.find(program.get());
    if (it != analysis_cache_.end()) {
        return it->second;
    }
    program_pins_.emplace(program.get(), program);
    return analysis_cache_
        .emplace(program.get(), isa::analyze(*program))
        .first->second;
}

void
OffloadEngine::submit(Operation&& op)
{
    stats_.submitted.increment();
    PULSE_ASSERT(static_cast<bool>(op.program), "operation without code");
    const isa::ProgramAnalysis& analysis = analysis_for(op.program);
    if (!analysis.valid) {
        Completion completion;
        completion.status = TraversalStatus::kExecFault;
        completion.fault = isa::ExecFault::kIllegalInstruction;
        stats_.failures.increment();
        op.done(std::move(completion));
        return;
    }
    if (!should_offload(analysis)) {
        stats_.fallback.increment();
        run_fallback(std::move(op));
        return;
    }

    stats_.offloaded.increment();
    const std::uint64_t key = next_seq_++;
    InFlight inflight;
    inflight.op = std::move(op);
    inflight.submit_time = queue_.now();
    const VirtAddr start = inflight.op.start_ptr;
    // Trim the shipped scratch_pad to the program's static footprint.
    std::vector<std::uint8_t> scratch = inflight.op.init_scratch;
    scratch.resize(std::max<std::size_t>(analysis.scratch_footprint,
                                         scratch.size()),
                   0);
    const Time cpu_time = inflight.op.init_cpu_time +
                          config_.request_software_overhead;
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->record({RequestId{client_, key},
                         trace::SpanKind::kClientSubmit,
                         trace::Location::kClient, client_,
                         queue_.now(), cpu_time, 0});
    }
    inflight_.emplace(key, std::move(inflight));
    queue_.schedule_after(cpu_time,
                          [this, key, start,
                           scratch = std::move(scratch)]() mutable {
                              issue(key, start, std::move(scratch), 0);
                          });
}

void
OffloadEngine::issue(std::uint64_t key, VirtAddr cur_ptr,
                     std::vector<std::uint8_t> scratch,
                     std::uint64_t iterations_done)
{
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;  // completed (e.g. timed out) before the issue fired
    }
    InFlight& inflight = it->second;

    net::TraversalPacket packet;
    packet.id = RequestId{client_, key};
    packet.origin = client_;
    packet.is_response = false;
    packet.cur_ptr = cur_ptr;
    packet.iterations_done = iterations_done;
    // Every packet descending from this leg (responses, forwarded
    // continuations, replayed duplicates) echoes this value; responses
    // carrying an older echo are stale and get dropped.
    packet.visit_echo = iterations_done;
    packet.trace.sampled = tracer_ != nullptr && tracer_->enabled();
    packet.allow_switch_continuation = config_.switch_continuation;
    attach_program(packet, inflight.op.program);
    // After the program is installed at the accelerators, requests
    // carry a 16-byte program id instead of the code.
    std::uint32_t& sends = code_sends_[inflight.op.program.get()];
    if (sends >= config_.code_install_sends) {
        packet.code_size = net::kCodeIdBytes;
    } else {
        sends++;
    }
    packet.scratch = std::move(scratch);

    inflight.last_request = packet;
    inflight.leg_issue_time = queue_.now();
    inflight.leg_retransmitted = false;
    inflight.expected_echo = iterations_done;
    arm_timer(key);
    network_.send_traversal(net::EndpointAddr::client(client_),
                            std::move(packet));
}

void
OffloadEngine::arm_timer(std::uint64_t key)
{
    auto it = inflight_.find(key);
    PULSE_ASSERT(it != inflight_.end(), "arming timer for unknown op");
    const std::uint64_t generation = ++it->second.timer_generation;
    // Exponential backoff keeps loaded (queued) traversals from being
    // duplicated by premature retransmissions.
    const Time base = config_.adaptive_rto ? rto_.rto()
                                           : config_.retransmit_timeout;
    Time delay =
        base << std::min<std::uint32_t>(it->second.retransmits, 6);
    if (config_.rto_jitter_fraction > 0.0) {
        // Deterministic jitter from a per-(op, attempt) hash: spreads
        // simultaneous timeouts without consuming any RNG stream.
        const std::uint64_t h = jitter_hash(
            (static_cast<std::uint64_t>(client_) << 40) ^ (key << 8) ^
            generation);
        const double unit =
            static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
        delay += static_cast<Time>(static_cast<double>(delay) *
                                   config_.rto_jitter_fraction * unit);
    }
    queue_.schedule_after(delay, [this, key, generation] {
        auto pos = inflight_.find(key);
        if (pos == inflight_.end() ||
            pos->second.timer_generation != generation) {
            return;  // response arrived or a newer request superseded us
        }
        InFlight& inflight = pos->second;
        if (inflight.retransmits >= config_.max_retransmits) {
            Completion completion;
            completion.status = TraversalStatus::kMemFault;
            completion.timed_out = true;
            completion.offloaded = true;
            completion.retransmits = inflight.retransmits;
            completion.latency = queue_.now() - inflight.submit_time;
            stats_.failures.increment();
            complete(key, std::move(completion));
            return;
        }
        inflight.retransmits++;
        stats_.retransmits.increment();
        if (tracer_ != nullptr && tracer_->enabled() &&
            inflight.last_request.trace.sampled) {
            tracer_->record({RequestId{client_, key},
                             trace::SpanKind::kClientRetransmit,
                             trace::Location::kClient, client_,
                             queue_.now(), 0, inflight.retransmits});
        }
        // Karn's rule: once a leg is retransmitted, its response can
        // no longer be attributed to one copy — take no RTT sample.
        inflight.leg_retransmitted = true;
        net::TraversalPacket copy = inflight.last_request;
        arm_timer(key);
        network_.send_traversal(net::EndpointAddr::client(client_),
                                std::move(copy));
    });
}

void
OffloadEngine::on_response(net::TraversalPacket&& packet)
{
    if (packet.id.client != client_) {
        return;  // not ours (misrouted); drop
    }
    const std::uint64_t key = packet.id.seq;
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;  // duplicate of an already-completed request
    }
    InFlight& inflight = it->second;
    if (packet.visit_echo != inflight.expected_echo) {
        // Stale duplicate from a leg this op already resumed past
        // (e.g. a replayed kMaxIter response racing the continuation).
        // Dropped *without* quenching the timer: the live leg is still
        // awaiting its own response.
        stats_.stale_responses.increment();
        return;
    }
    if (config_.adaptive_rto && !inflight.leg_retransmitted) {
        rto_.sample(queue_.now() - inflight.leg_issue_time);
    }
    inflight.timer_generation++;  // quench the timer
    inflight.iterations = packet.iterations_done;
    if (tracer_ != nullptr && tracer_->enabled() &&
        packet.trace.sampled) {
        tracer_->record({packet.id, trace::SpanKind::kClientResponse,
                         trace::Location::kClient, client_,
                         queue_.now(),
                         config_.response_software_overhead, 0});
    }

    const bool resume_here =
        packet.status == TraversalStatus::kMaxIter ||
        (packet.status == TraversalStatus::kNotLocal &&
         !config_.switch_continuation);
    if (resume_here &&
        packet.iterations_done < kGlobalIterationGuard) {
        if (packet.status == TraversalStatus::kMaxIter) {
            inflight.continuations++;
            stats_.continuations.increment();
        } else {
            inflight.client_bounces++;
            stats_.client_bounces.increment();
        }
        const VirtAddr cur_ptr = packet.cur_ptr;
        const std::uint64_t iterations = packet.iterations_done;
        if (tracer_ != nullptr && tracer_->enabled() &&
            packet.trace.sampled) {
            // Request-build half of the client resume (the response
            // half was recorded above).
            tracer_->record({packet.id, trace::SpanKind::kClientSubmit,
                             trace::Location::kClient, client_,
                             queue_.now() +
                                 config_.response_software_overhead,
                             config_.request_software_overhead,
                             iterations});
        }
        queue_.schedule_after(
            config_.response_software_overhead +
                config_.request_software_overhead,
            [this, key, cur_ptr, iterations,
             scratch = std::move(packet.scratch)]() mutable {
                issue(key, cur_ptr, std::move(scratch), iterations);
            });
        return;
    }

    Completion completion;
    completion.status = packet.status;
    completion.fault = packet.fault;
    completion.final_ptr = packet.cur_ptr;
    completion.scratch = std::move(packet.scratch);
    completion.iterations = packet.iterations_done;
    completion.offloaded = true;
    completion.retransmits = inflight.retransmits;
    completion.client_bounces = inflight.client_bounces;
    completion.continuations = inflight.continuations;
    const Time done_at =
        queue_.now() + config_.response_software_overhead;
    completion.latency = done_at - inflight.submit_time;
    queue_.schedule_after(
        config_.response_software_overhead,
        [this, key, completion = std::move(completion)]() mutable {
            complete(key, std::move(completion));
        });
}

void
OffloadEngine::complete(std::uint64_t key, Completion&& completion)
{
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
        return;
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->record({RequestId{client_, key},
                         trace::SpanKind::kComplete,
                         trace::Location::kClient, client_,
                         it->second.submit_time, completion.latency,
                         completion.iterations});
    }
    CompletionFn done = std::move(it->second.op.done);
    inflight_.erase(it);
    if (done) {
        done(std::move(completion));
    }
}

void
OffloadEngine::run_fallback(Operation&& op)
{
    // Client-side execution with one-sided remote reads: one network
    // round trip per aggregated load, interpreter on the client CPU.
    struct FallbackState
    {
        Operation op;
        isa::Workspace workspace;
        Time submit_time = 0;
        std::uint64_t iterations = 0;
    };
    auto state = std::make_shared<FallbackState>();
    state->op = std::move(op);
    state->submit_time = queue_.now();
    state->workspace.configure(*state->op.program);
    state->workspace.cur_ptr = state->op.start_ptr;
    std::copy_n(state->op.init_scratch.begin(),
                std::min(state->op.init_scratch.size(),
                         state->workspace.scratch.size()),
                state->workspace.scratch.begin());

    auto finish = [this, state](TraversalStatus status,
                                isa::ExecFault fault) {
        Completion completion;
        completion.status = status;
        completion.fault = fault;
        completion.final_ptr = state->workspace.cur_ptr;
        completion.scratch = state->workspace.scratch;
        completion.iterations = state->iterations;
        completion.offloaded = false;
        completion.latency = queue_.now() - state->submit_time;
        if (state->op.done) {
            state->op.done(std::move(completion));
        }
    };

    // One iteration step; re-schedules itself until termination. The
    // lambda holds itself only weakly — strong references live in the
    // scheduled continuations — so the chain frees once it terminates.
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, state, finish,
             weak_step = std::weak_ptr<std::function<void()>>(step)] {
        auto step = weak_step.lock();
        PULSE_ASSERT(step != nullptr, "fallback step outlived itself");
        const std::uint32_t load_bytes = state->op.program->load_bytes();
        const VirtAddr ptr = state->workspace.cur_ptr;
        if (ptr == kNullAddr && load_bytes > 0) {
            // Null-page semantics: zeros, no network access.
            std::fill_n(state->workspace.data.begin(), load_bytes, 0);
            isa::IterationResult iter = run_iteration(
                *state->op.program, state->workspace);
            state->iterations++;
            if (iter.end == isa::IterEnd::kReturn) {
                finish(TraversalStatus::kDone, isa::ExecFault::kNone);
            } else if (iter.end == isa::IterEnd::kFault) {
                finish(TraversalStatus::kExecFault, iter.fault);
            } else {
                queue_.schedule_after(
                    config_.fallback_software_overhead,
                    [step] { (*step)(); });
            }
            return;
        }
        const auto node = memory_.address_map().node_for(ptr);
        if (!node.has_value()) {
            finish(TraversalStatus::kMemFault, isa::ExecFault::kNone);
            return;
        }
        // One-sided read: request to the node, data-sized response.
        network_.send_message(
            net::EndpointAddr::client(client_),
            net::EndpointAddr::mem_node(*node), kRemoteReadRequestBytes,
            [this, state, finish, step, ptr, load_bytes,
             node = *node] {
                network_.send_message(
                    net::EndpointAddr::mem_node(node),
                    net::EndpointAddr::client(client_),
                    net::kNetHeaderBytes + load_bytes,
                    [this, state, finish, step, ptr, load_bytes] {
                        if (load_bytes > 0) {
                            memory_.read(ptr,
                                         state->workspace.data.data(),
                                         load_bytes);
                        }
                        isa::IterationResult iter = run_iteration(
                            *state->op.program, state->workspace);
                        state->iterations++;
                        // Fallback path is read-only: STOREs would need
                        // a write round trip; none of the adapted
                        // operations store on this path.
                        if (iter.end == isa::IterEnd::kFault) {
                            finish(TraversalStatus::kExecFault,
                                   iter.fault);
                            return;
                        }
                        if (iter.end == isa::IterEnd::kReturn) {
                            finish(TraversalStatus::kDone,
                                   isa::ExecFault::kNone);
                            return;
                        }
                        if (state->iterations >=
                            kGlobalIterationGuard) {
                            finish(TraversalStatus::kMaxIter,
                                   isa::ExecFault::kNone);
                            return;
                        }
                        queue_.schedule_after(
                            config_.fallback_software_overhead,
                            [step] { (*step)(); });
                    });
            });
    };
    queue_.schedule_after(state->op.init_cpu_time +
                              config_.fallback_software_overhead,
                          [step] { (*step)(); });
}

}  // namespace pulse::offload
