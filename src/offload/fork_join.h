/**
 * @file
 * Join-state bookkeeping for fork/join traversals (DAG extension of
 * the paper's chain model).
 *
 * A forking traversal's sub-traversals execute concurrently across
 * accelerator cores and across memory nodes; they rendezvous at the
 * parent's join record held by the issuing offload engine. The
 * JoinAccumulator is that record's arithmetic core: identity-seeded
 * reduce lanes folded with each completing branch's lanes under the
 * program's commutative REDUCE operator, so the final result is
 * independent of branch completion order — the property the golden
 * oracle's order-insensitive comparison relies on (docs/TESTING.md).
 *
 * Branch counting is explicit and checked: register_branch() before a
 * branch is forked, complete_branch() when it joins. Underflow (a join
 * with no registered branch) and overflow (registrations beyond the
 * fork-node guard) are rejected rather than silently absorbed, so a
 * broken coordinator — or a mutated interpreter emitting duplicate
 * spawn records — surfaces as a hard error or an oracle mismatch, not
 * a wrong answer.
 */
#ifndef PULSE_OFFLOAD_FORK_JOIN_H
#define PULSE_OFFLOAD_FORK_JOIN_H

#include <cstdint>
#include <cstring>

#include "isa/instruction.h"

namespace pulse::offload {

/** Join record arithmetic: identity-seeded commutative reduce lanes. */
class JoinAccumulator
{
  public:
    /** Seed @p lanes accumulator lanes with @p op's identity. */
    void
    configure(isa::ReduceOp op, std::uint32_t lanes)
    {
        op_ = op;
        lanes_ = lanes > isa::kMaxReduceLanes ? isa::kMaxReduceLanes
                                              : lanes;
        pending_ = 0;
        registered_ = 0;
        for (std::uint32_t i = 0; i < lanes_; i++) {
            lanes_acc_[i] = isa::reduce_identity(op_);
        }
    }

    /**
     * Account a newly forked branch. Returns false (and registers
     * nothing) once registrations exceed @p cap — the caller's
     * fork-node guard.
     */
    bool
    register_branch(std::uint64_t cap = isa::kForkNodeGuard)
    {
        if (registered_ >= cap) {
            return false;
        }
        registered_++;
        pending_++;
        return true;
    }

    /**
     * Fold a completed branch's lanes (read from @p scratch at
     * @p offset) into the accumulator. Returns false on join-count
     * underflow: a completion with no outstanding registered branch.
     */
    bool
    complete_branch(const std::uint8_t* scratch,
                    std::size_t scratch_size, std::uint32_t offset)
    {
        if (pending_ == 0) {
            return false;
        }
        pending_--;
        for (std::uint32_t i = 0; i < lanes_; i++) {
            const std::size_t at = offset + 8ull * i;
            std::uint64_t value = 0;
            if (at + 8 <= scratch_size) {
                std::memcpy(&value, scratch + at, 8);
            }
            lanes_acc_[i] = isa::reduce_apply(op_, lanes_acc_[i], value);
        }
        return true;
    }

    /**
     * Fold the accumulated lanes into the parent's own lanes in
     * @p scratch (the parent's chain result), writing the final join
     * value in place.
     */
    void
    fold_into(std::uint8_t* scratch, std::size_t scratch_size,
              std::uint32_t offset) const
    {
        for (std::uint32_t i = 0; i < lanes_; i++) {
            const std::size_t at = offset + 8ull * i;
            if (at + 8 > scratch_size) {
                break;
            }
            std::uint64_t own = 0;
            std::memcpy(&own, scratch + at, 8);
            const std::uint64_t folded =
                isa::reduce_apply(op_, lanes_acc_[i], own);
            std::memcpy(scratch + at, &folded, 8);
        }
    }

    bool all_joined() const { return pending_ == 0; }
    std::uint32_t pending() const { return pending_; }
    std::uint64_t registered() const { return registered_; }
    std::uint32_t lanes() const { return lanes_; }
    std::uint64_t lane(std::uint32_t i) const { return lanes_acc_[i]; }
    isa::ReduceOp op() const { return op_; }

  private:
    isa::ReduceOp op_ = isa::ReduceOp::kAdd;
    std::uint32_t lanes_ = 0;
    std::uint32_t pending_ = 0;
    std::uint64_t registered_ = 0;
    std::uint64_t lanes_acc_[isa::kMaxReduceLanes] = {};
};

}  // namespace pulse::offload

#endif  // PULSE_OFFLOAD_FORK_JOIN_H
