/**
 * @file
 * The pulse offload engine at the CPU node (paper section 4.1).
 *
 * For each traversal the engine:
 *   1. statically analyzes the iterator's ISA program (instruction
 *      count N, load footprint, scratch footprint) and applies the
 *      offload test t_c = N*t_i <= eta_threshold * t_d — only
 *      memory-centric traversals go to the accelerator;
 *   2. encapsulates code + cur_ptr + scratch_pad into a traversal
 *      request carrying a (client id, sequence) request id, and lets
 *      the network (switch) pick the memory node;
 *   3. runs a retransmission timer per request to recover from drops;
 *   4. transparently continues traversals that return kMaxIter (issues
 *      a new request from final_ptr with the returned scratch_pad) and,
 *      in pulse-ACC mode, traversals that return kNotLocal (the client
 *      bounce the section 7.2 ablation measures);
 *   5. executes traversals that fail the offload test at the CPU node
 *      with one-sided remote reads (one round trip per load).
 */
#ifndef PULSE_OFFLOAD_OFFLOAD_ENGINE_H
#define PULSE_OFFLOAD_OFFLOAD_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/pool_allocator.h"
#include "common/scratch_buffer.h"
#include "common/serial.h"
#include "common/stats.h"
#include "isa/analysis.h"
#include "mem/global_memory.h"
#include "net/network.h"
#include "offload/fork_join.h"
#include "offload/rto_estimator.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace pulse::offload {

/**
 * Engine-level guard against runaway traversals (cycles in data):
 * total iterations across all continuation legs of one operation.
 * Exposed so the golden oracle replays the same resume discipline.
 */
inline constexpr std::uint64_t kGlobalIterationGuard = 1u << 20;

/** Offload-engine tunables. */
struct OffloadConfig
{
    /** eta threshold for the offload test (paper sets eta = 1). */
    double eta_threshold = 1.0;

    /** Accelerator per-instruction logic time t_i (for the test). */
    Time t_i = nanos(7.0 / 6.0);

    /** Accelerator memory-pipeline time t_d (for the test). */
    Time t_d = nanos(120.0);

    /** Client software time to build/issue one request (DPDK path). */
    Time request_software_overhead = nanos(300.0);

    /** Client software time to absorb one response. */
    Time response_software_overhead = nanos(250.0);

    /**
     * Retransmission timeout before the first RTT sample, and the
     * upper clamp for the adaptive estimator (exponential backoff on
     * retries applies on top). Must comfortably exceed the longest
     * legitimate *loaded* traversal — a multi-node continuation chain
     * under closed-loop saturation can queue for milliseconds — or
     * retransmits duplicate execution and collapse throughput. With
     * adaptive_rto the engine converges to srtt + 4*rttvar well below
     * this, so recovery under loss is orders of magnitude faster.
     */
    Time retransmit_timeout = micros(20000.0);

    /** Give up after this many retransmissions of one request. */
    std::uint32_t max_retransmits = 8;

    /**
     * Derive the retransmission timeout from a Jacobson/Karels RTT
     * estimator (srtt/rttvar, Karn's rule) instead of the fixed
     * constant. The fixed retransmit_timeout remains the initial value
     * and the ceiling. Off by default: under closed-loop saturation
     * the RTT a request sees is dominated by queueing that ramps
     * faster than the estimator tracks, so a converged (small) RTO
     * fires spuriously and the duplicate traffic perturbs healthy-
     * network throughput; fault-injection runs (tests/test_faults,
     * bench/ablation_faults) turn it on for fast loss recovery.
     */
    bool adaptive_rto = false;

    /** Lower clamp for the adaptive timeout. */
    Time rto_min = micros(100.0);

    /**
     * Adaptive-timeout floor as a multiple of srtt: guards against
     * variance collapse when simulated RTTs are near-constant (then
     * srtt + 4*rttvar barely exceeds srtt and any queueing excursion
     * would fire a spurious retransmit).
     */
    double rto_srtt_multiplier = 2.0;

    /**
     * Deterministic jitter added to each armed timeout, as a fraction
     * of the delay: de-synchronizes retransmit storms across clients
     * after a blackout. Drawn from a hash of (client, op, attempt) —
     * no shared RNG stream, so enabling it cannot perturb any other
     * random decision in the run.
     */
    double rto_jitter_fraction = 0.1;

    /** pulse vs pulse-ACC: may the switch re-route continuations? */
    bool switch_continuation = true;

    /**
     * How many requests per program ship the full encoded code before
     * switching to 16-byte program ids (program installation; sized so
     * every accelerator in the rack receives a copy).
     */
    std::uint32_t code_install_sends = 8;

    /**
     * Per-load round-trip software cost for the non-offloaded fallback
     * path (client-side remote reads): added to the network RTT.
     */
    Time fallback_software_overhead = nanos(600.0);
};

/** Final result of one traversal operation. */
struct Completion
{
    isa::TraversalStatus status = isa::TraversalStatus::kDone;
    isa::ExecFault fault = isa::ExecFault::kNone;
    VirtAddr final_ptr = kNullAddr;
    std::vector<std::uint8_t> scratch;
    std::uint64_t iterations = 0;
    Time latency = 0;              ///< submit -> completion
    bool offloaded = false;        ///< accelerator (true) or fallback
    bool timed_out = false;        ///< gave up after max retransmits
    /**
     * QoS admission control shed the request (kRejected response).
     * Always paired with timed_out = true so the driver's existing
     * retry/backoff path re-submits without a special case; rejected
     * distinguishes "load-shed, retry later" from "gave up after max
     * retransmits" for callers that care (fleet sessions, tests).
     */
    bool rejected = false;
    std::uint32_t retransmits = 0;
    std::uint32_t client_bounces = 0;  ///< ACC-mode re-issues
    std::uint32_t continuations = 0;   ///< kMaxIter resumes
};

/** Completion callback. */
using CompletionFn = std::function<void(Completion&&)>;

/** One traversal operation to run. */
struct Operation
{
    std::shared_ptr<const isa::Program> program;
    VirtAddr start_ptr = kNullAddr;
    ScratchBuffer init_scratch;  ///< produced by init()
    /** Extra client-side time spent in init() (e.g. hashing). */
    Time init_cpu_time = 0;

    /**
     * Object identity for object-granularity caches (the Cache+RPC
     * baseline): id of the object this operation reads and its size.
     * object_bytes == 0 means "not cacheable". Ignored by pulse.
     */
    std::uint64_t object_id = 0;
    Bytes object_bytes = 0;

    /**
     * Tenant identity (serving plane, src/serve). Travels in every
     * packet descending from this operation so per-tenant QoS applies
     * at the accelerator admission point. 0 — the default — is the
     * anonymous tenant; with the serving plane off the value is
     * carried but never read.
     */
    std::uint32_t tenant = 0;

    CompletionFn done;
};

/** Offload-engine statistics. */
struct OffloadStats
{
    Counter submitted;
    Counter offloaded;
    Counter fallback;
    Counter retransmits;
    Counter client_bounces;
    Counter continuations;
    Counter failures;
    Counter stale_responses;  ///< dropped: echo of a superseded visit
};

/** The per-client offload engine. */
class OffloadEngine
{
  public:
    OffloadEngine(sim::EventQueue& queue, net::Network& network,
                  mem::GlobalMemory& memory, ClientId client,
                  const OffloadConfig& config);

    /** Submit a traversal; @p op.done fires on completion. */
    void submit(Operation&& op);

    /**
     * The offload decision for @p program (exposed for Table 2 and the
     * ablation benches): true when t_c <= eta_threshold * t_d.
     */
    bool should_offload(const isa::ProgramAnalysis& analysis) const;

    /**
     * Cached analysis for @p program. Also *pins* the program: the
     * engine keeps one shared_ptr per distinct program until the
     * cluster is torn down, so the non-owning `TraversalPacket::code`
     * references that fan out from here (forwarded continuations,
     * retransmit buffers, accelerator replay caches) stay valid
     * without per-hop refcount traffic.
     */
    const isa::ProgramAnalysis& analysis_for(
        const std::shared_ptr<const isa::Program>& program);

    /** Operations still in flight. */
    std::size_t inflight() const { return inflight_.size(); }

    /** In-flight-map pool telemetry (bench_wallclock attribution). */
    std::uint64_t
    pool_fresh() const
    {
        return inflight_.get_allocator().state()->fresh();
    }

    std::uint64_t
    pool_reused() const
    {
        return inflight_.get_allocator().state()->reused();
    }

    const OffloadStats& stats() const { return stats_; }
    void reset_stats() { stats_ = OffloadStats{}; }
    const OffloadConfig& config() const { return config_; }

    /** The adaptive RTT estimator (exposed for tests/benches). */
    const RtoEstimator& rto_estimator() const { return rto_; }

    /**
     * Fork/join telemetry (not registered stats: the metrics schema —
     * and therefore every golden metrics JSON — is unchanged when the
     * feature is unused). forks_spawned counts sub-traversals this
     * engine forked; joins_completed counts join records that folded
     * to completion.
     */
    std::uint64_t forks_spawned() const { return forks_spawned_; }
    std::uint64_t joins_completed() const { return joins_completed_; }

    /**
     * Serving-plane telemetry (same non-registered pattern): responses
     * carrying kRejected — QoS load sheds — this engine absorbed. The
     * cluster-level serve.* counters are the registered view when the
     * plane is on; this accessor exists so tests can assert the
     * client-side path without touching the metrics schema.
     */
    std::uint64_t rejections_seen() const { return rejections_seen_; }

    /**
     * Checkpoint support (core/checkpoint.h): requires a quiesced
     * engine (no in-flight operations). Program installation state
     * (code_sends_) is keyed by interned Program pointers, which do
     * not survive a process or cluster boundary — it is serialized as
     * encoded-program digests and re-attached when the restored run
     * re-pins each program via analysis_for().
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

    /**
     * Attach the cluster's span tracer (nullptr detaches). While the
     * tracer is enabled, every offloaded request is stamped sampled
     * (its TraceContext travels in the packet) and the client-side
     * software phases record spans.
     */
    void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  private:
    /**
     * Join record of a forking in-flight operation (fork/join
     * extension). Created lazily the first time the operation spawns —
     * or reaches JOIN — so non-forking operations pay nothing.
     */
    struct ForkState
    {
        JoinAccumulator acc;
        /** Scratch offset of the REDUCE accumulator lanes. */
        std::uint32_t reduce_offset = 0;
        /** Own chain reached its terminal while branches were open. */
        bool parent_done = false;
        /** First branch failure wins; reported at finalize. */
        bool failed = false;
        isa::TraversalStatus fail_status = isa::TraversalStatus::kDone;
        isa::ExecFault fail_fault = isa::ExecFault::kNone;
        /** The parked own-chain completion (valid iff parent_done). */
        Completion parent_completion;
        /** Root only: total sub-traversals in this operation's DAG
         *  (the kForkNodeGuard counter). */
        std::uint64_t total_spawned = 0;
        /** Iterations executed by completed child subtrees. */
        std::uint64_t child_iterations = 0;
    };

    struct InFlight
    {
        Operation op;
        Time submit_time = 0;
        std::uint64_t iterations = 0;
        std::uint32_t retransmits = 0;
        std::uint32_t client_bounces = 0;
        std::uint32_t continuations = 0;
        std::uint64_t timer_generation = 0;
        net::TraversalPacket last_request;  ///< for retransmission
        /** When the current leg's request hit the wire (RTT anchor). */
        Time leg_issue_time = 0;
        /** Karn's rule: a retransmitted leg yields no RTT sample. */
        bool leg_retransmitted = false;
        /** visit_echo the current leg's response must carry. */
        std::uint64_t expected_echo = 0;
        /** Fork lineage: the spawning operation's key (0 = a root). */
        std::uint64_t parent_key = 0;
        /** This subtree's index under the parent's join record. */
        std::uint32_t branch_index = 0;
        /** Fork depth (0 = root; children run at parent depth + 1). */
        std::uint32_t depth = 0;
        /** The DAG's root key (== own key for roots). */
        std::uint64_t root_key = 0;
        /** Join record; null until this operation forks/joins. */
        std::unique_ptr<ForkState> fork;
    };

    void issue(std::uint64_t key, VirtAddr cur_ptr,
               const ScratchBuffer& scratch,
               std::uint64_t iterations_done);
    void arm_timer(std::uint64_t key);
    void on_response(net::TraversalPacket&& packet);
    void complete(std::uint64_t key, Completion&& completion);
    void run_fallback(Operation&& op);

    /** Fork/join coordination (see offload_engine.cc for the flow). */
    ForkState& ensure_fork(std::uint64_t key);
    void process_spawns(std::uint64_t key,
                        const net::TraversalPacket& packet);
    void finalize(std::uint64_t key, Completion&& completion);
    void child_joined(std::uint64_t parent_key,
                      Completion&& child_completion);

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    ClientId client_;
    OffloadConfig config_;
    std::uint64_t next_seq_ = 1;
    /**
     * In-flight table churns once per operation; the pool allocator
     * recycles its nodes so the steady state allocates nothing.
     */
    std::unordered_map<
        std::uint64_t, InFlight, std::hash<std::uint64_t>,
        std::equal_to<std::uint64_t>,
        PoolAllocator<std::pair<const std::uint64_t, InFlight>>>
        inflight_;
    std::unordered_map<const isa::Program*, isa::ProgramAnalysis>
        analysis_cache_;
    /** Lifetime pins backing TraversalPacket's non-owning code refs. */
    std::unordered_map<const isa::Program*,
                       std::shared_ptr<const isa::Program>>
        program_pins_;
    std::unordered_map<const isa::Program*, std::uint32_t>
        code_sends_;
    /**
     * Installation counts restored from a checkpoint, keyed by encoded-
     * program digest until the owning program is re-pinned (see
     * save_state).
     */
    std::unordered_map<std::uint64_t, std::uint32_t>
        restored_code_sends_;
    RtoEstimator rto_;
    trace::Tracer* tracer_ = nullptr;
    OffloadStats stats_;
    std::uint64_t forks_spawned_ = 0;
    std::uint64_t joins_completed_ = 0;
    std::uint64_t rejections_seen_ = 0;
};

}  // namespace pulse::offload

#endif  // PULSE_OFFLOAD_OFFLOAD_ENGINE_H
