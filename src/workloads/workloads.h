/**
 * @file
 * Workload generators for the paper's three applications (section 7,
 * Table 2):
 *
 *   - UPC (user-profile cache): YCSB Workload C — uniform key lookups
 *     on a hash table with 8 B keys / 240 B values;
 *   - TC (threaded conversations): YCSB Workload E — uniform-start
 *     scans on a B+Tree with out-of-line 240 B records;
 *   - TSV (time-series visualization): windowed aggregations (random
 *     SUM/AVG/MIN/MAX per request) over a uPMU-style voltage trace
 *     stored in a time-indexed B+Tree.
 *
 * The uPMU trace is synthetic (the paper's Open uPMU data set is not
 * redistributable here): fixed-rate samples of a sinusoidally drifting
 * voltage with noise, which preserves what the experiments exercise —
 * chronologically ordered keys and window-sized pointer traversals.
 */
#ifndef PULSE_WORKLOADS_WORKLOADS_H
#define PULSE_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "ds/bptree.h"

namespace pulse::workloads {

/** Key of record index @p i (shared by builders and generators). */
constexpr std::uint64_t
key_of(std::uint64_t index)
{
    return (index + 1) << 3;
}

/** YCSB Workload C: point lookups. */
class YcsbC
{
  public:
    /**
     * @param num_keys records in the table
     * @param zipf_theta 0 = uniform (the paper's UPC setting)
     * @param zipf_scatter true scatters Zipf ranks across the key
     *        space (popularity uncorrelated with index, as after
     *        hashing); false returns raw ranks, so the hottest keys
     *        are the lowest indices — skew then lands on whichever
     *        partition holds them (the placement ablations)
     */
    YcsbC(std::uint64_t num_keys, double zipf_theta = 0.0,
          bool zipf_scatter = true);

    /** Next record index to look up. */
    std::uint64_t next_index(Rng& rng);

    std::uint64_t num_keys() const { return num_keys_; }

  private:
    std::uint64_t num_keys_;
    double theta_;
    bool scatter_;
    std::unique_ptr<ZipfGenerator> zipf_;
};

/** YCSB Workload E: short range scans. */
class YcsbE
{
  public:
    struct Scan
    {
        std::uint64_t start_index = 0;
        std::uint32_t length = 1;
    };

    /**
     * @param num_keys records in the index
     * @param max_scan_length uniform scan length in [1, max]; the
     *        paper-matching default (127) averages 64 entries
     */
    YcsbE(std::uint64_t num_keys, std::uint32_t max_scan_length = 127);

    Scan next(Rng& rng);

    std::uint64_t num_keys() const { return num_keys_; }

  private:
    std::uint64_t num_keys_;
    std::uint32_t max_scan_length_;
};

/** Synthetic uPMU-style time-series trace. */
class PmuTrace
{
  public:
    /**
     * @param num_samples trace length
     * @param sample_period_ms sampling period (default 15.625 ms =
     *        64 Hz, which lands the paper's iteration counts with
     *        12-entry leaves)
     */
    PmuTrace(std::uint64_t num_samples, double sample_period_ms = 15.625,
             std::uint64_t seed = 99);

    /** Entries (timestamp-ms key, signed milli-volt payload). */
    const std::vector<ds::BPTreeEntry>& entries() const
    {
        return entries_;
    }

    std::uint64_t first_timestamp() const;
    std::uint64_t last_timestamp() const;
    double sample_period_ms() const { return sample_period_ms_; }

  private:
    double sample_period_ms_;
    std::vector<ds::BPTreeEntry> entries_;
};

/** TSV query generator: windowed aggregations of one resolution. */
class TsvQueries
{
  public:
    struct Query
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        ds::AggKind kind = ds::AggKind::kSum;
    };

    /**
     * @param trace the built trace
     * @param window_seconds aggregation window (7.5 / 15 / 30 / 60 in
     *        the paper)
     */
    TsvQueries(const PmuTrace& trace, double window_seconds);

    /** Random window with a random aggregation kind (paper: the
     *  client picks sum/average/min/max per request; average is
     *  sum+count finished client-side, so it draws kSum here). */
    Query next(Rng& rng);

    std::uint64_t window_ms() const { return window_ms_; }

  private:
    std::uint64_t first_ts_;
    std::uint64_t span_ms_;
    std::uint64_t window_ms_;
};

}  // namespace pulse::workloads

#endif  // PULSE_WORKLOADS_WORKLOADS_H
