#include "workloads/driver.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/random.h"

namespace pulse::workloads {
namespace {

struct DriverState
{
    DriverConfig config;
    DriverResult result;
    Rng retry_rng;
    std::uint64_t issued = 0;
    std::uint64_t done = 0;
    Time measure_start = 0;
    bool measuring = false;
    bool finished = false;

    explicit DriverState(const DriverConfig& c)
        : config(c), retry_rng(c.retry_seed)
    {
    }
};

}  // namespace

DriverResult
run_closed_loop(sim::EventQueue& queue, const SubmitFn& submit,
                const OpFactory& factory, const DriverConfig& config)
{
    PULSE_ASSERT(config.concurrency >= 1, "need concurrency >= 1");
    PULSE_ASSERT(config.measure_ops >= 1, "nothing to measure");

    auto state = std::make_shared<DriverState>(config);
    const std::uint64_t total_ops =
        config.warmup_ops + config.measure_ops;

    // Issues the next fresh operation; completions re-enter here.
    auto issue_next = std::make_shared<std::function<void()>>();
    // Submits one attempt of one operation; timed-out attempts with
    // retry budget left loop back here after a backoff.
    auto run_attempt = std::make_shared<
        std::function<void(offload::Operation&&, std::uint32_t)>>();

    *run_attempt = [&queue, &submit, state, issue_next, run_attempt,
                    total_ops](offload::Operation&& op,
                               std::uint32_t attempt) {
        // Keep a resubmittable copy only when the retry policy is on
        // (the copy is taken before `done` is set, so it is cheap:
        // program pointer + start state, no callback chain).
        auto retry_copy = std::shared_ptr<offload::Operation>();
        if (state->config.max_retries > 0) {
            retry_copy = std::make_shared<offload::Operation>(op);
        }
        op.done = [&queue, state, issue_next, run_attempt, total_ops,
                   retry_copy,
                   attempt](offload::Completion&& completion) {
            if (completion.timed_out && retry_copy &&
                attempt < state->config.max_retries) {
                // Engine gave up (e.g. the responder is dark): back
                // off exponentially with seeded jitter and resubmit.
                // Not a terminal completion — nothing is counted yet
                // and the concurrency slot stays occupied.
                if (state->measuring) {
                    state->result.retries++;
                }
                const std::uint32_t shift = std::min<std::uint32_t>(
                    attempt, 20);
                const double jitter =
                    1.0 + state->config.retry_jitter *
                              state->retry_rng.next_double();
                const Time delay = static_cast<Time>(
                    static_cast<double>(state->config.retry_backoff
                                        << shift) *
                    jitter);
                const std::uint32_t next_attempt = attempt + 1;
                queue.schedule_after(
                    delay, [run_attempt, retry_copy, next_attempt] {
                        (*run_attempt)(
                            offload::Operation(*retry_copy),
                            next_attempt);
                    });
                return;
            }
            state->done++;
            if (state->measuring) {
                state->result.completed++;
                if (completion.timed_out) {
                    state->result.failed_ops++;
                    if (state->config.max_retries > 0) {
                        state->result.retries_exhausted++;
                    }
                } else {
                    state->result.latency.add(completion.latency);
                }
                state->result.iterations += completion.iterations;
                if (completion.status != isa::TraversalStatus::kDone ||
                    completion.timed_out) {
                    state->result.errors++;
                }
            }
            if (state->done == state->config.warmup_ops &&
                !state->measuring) {
                state->measuring = true;
                state->measure_start = queue.now();
                if (state->config.on_measure_start) {
                    state->config.on_measure_start();
                }
            }
            if (state->done == total_ops) {
                state->finished = true;
                state->result.measure_time =
                    queue.now() - state->measure_start;
                return;
            }
            (*issue_next)();
        };
        submit(std::move(op));
    };

    *issue_next = [&factory, state, run_attempt, total_ops] {
        if (state->issued >= total_ops) {
            return;
        }
        const std::uint64_t index = state->issued++;
        (*run_attempt)(factory(index), /*attempt=*/0);
    };

    // Degenerate warmup: open the measurement window immediately.
    if (config.warmup_ops == 0) {
        state->measuring = true;
        state->measure_start = queue.now();
        if (config.on_measure_start) {
            config.on_measure_start();
        }
    }

    for (std::uint32_t c = 0;
         c < config.concurrency && state->issued < total_ops; c++) {
        (*issue_next)();
    }
    queue.run();
    PULSE_ASSERT(state->finished, "driver drained before completion "
                                  "(%llu of %llu ops done)",
                 static_cast<unsigned long long>(state->done),
                 static_cast<unsigned long long>(total_ops));

    // The two dispatch lambdas capture their own shared handles (so
    // completions can re-enter them); clear the functions to break the
    // cycles, or the state never frees.
    *issue_next = nullptr;
    *run_attempt = nullptr;

    DriverResult result = std::move(state->result);
    if (result.measure_time > 0) {
        result.throughput = static_cast<double>(result.completed) /
                            to_seconds(result.measure_time);
    }
    return result;
}

}  // namespace pulse::workloads
