#include "workloads/driver.h"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace pulse::workloads {
namespace {

/**
 * The closed-loop state machine. Lives on run_closed_loop's stack for
 * the whole drain, so completion callbacks capture only {this, slot} —
 * 16 bytes, inside std::function's inline buffer. The previous
 * shared_ptr-recursion formulation captured five shared handles
 * (~88 bytes), heap-allocating one closure per submitted attempt.
 */
class DriverLoop
{
  public:
    DriverLoop(sim::EventQueue& queue, const SubmitFn& submit,
               const OpFactory& factory, const DriverConfig& config)
        : queue_(queue), submit_(submit), factory_(factory),
          config_(config), retry_rng_(config.retry_seed),
          total_ops_(config.warmup_ops + config.measure_ops),
          slots_(config.concurrency)
    {
    }

    DriverResult
    run()
    {
        // Degenerate warmup: open the measurement window immediately.
        if (config_.warmup_ops == 0) {
            open_measurement();
        }
        for (std::uint32_t c = 0;
             c < config_.concurrency && issued_ < total_ops_; c++) {
            issue_next(c);
        }
        queue_.run();
        PULSE_ASSERT(finished_, "driver drained before completion "
                                "(%llu of %llu ops done)",
                     static_cast<unsigned long long>(done_),
                     static_cast<unsigned long long>(total_ops_));
        DriverResult result = std::move(result_);
        if (result.measure_time > 0) {
            result.throughput =
                static_cast<double>(result.completed) /
                to_seconds(result.measure_time);
        }
        return result;
    }

  private:
    /** Per-concurrency-slot retry state. A slot's completion either
     *  resubmits into the same slot (retry) or issues the next fresh
     *  operation into it, so slots never need a free list. */
    struct Slot
    {
        offload::Operation retry_copy;
        std::uint32_t attempt = 0;
    };

    void
    open_measurement()
    {
        measuring_ = true;
        measure_start_ = queue_.now();
        if (config_.on_measure_start) {
            config_.on_measure_start();
        }
    }

    void
    issue_next(std::uint32_t slot)
    {
        if (issued_ >= total_ops_) {
            return;
        }
        const std::uint64_t index = issued_++;
        slots_[slot].attempt = 0;
        run_attempt(factory_(index), slot);
    }

    void
    run_attempt(offload::Operation&& op, std::uint32_t slot)
    {
        // Keep a resubmittable copy only when the retry policy is on
        // (taken before `done` is set, so it is cheap: program pointer
        // + inline start state, no callback chain).
        if (config_.max_retries > 0) {
            slots_[slot].retry_copy = op;
        }
        auto done = [this, slot](offload::Completion&& completion) {
            on_done(slot, std::move(completion));
        };
        // The whole point of the slot scheme: the completion closure
        // must stay inside std::function's inline buffer (16 bytes,
        // trivially-copyable captures) so the steady-state submit path
        // never heap-allocates.
        static_assert(sizeof(done) <= 16 &&
                          std::is_trivially_copyable_v<decltype(done)>,
                      "completion capture must fit the SBO buffer");
        op.done = done;
        submit_(std::move(op));
    }

    void
    on_done(std::uint32_t slot, offload::Completion&& completion)
    {
        if (completion.timed_out && config_.max_retries > 0 &&
            slots_[slot].attempt < config_.max_retries) {
            // Engine gave up (e.g. the responder is dark): back off
            // exponentially with seeded jitter and resubmit. Not a
            // terminal completion — nothing is counted yet and the
            // concurrency slot stays occupied.
            if (measuring_) {
                result_.retries++;
            }
            const std::uint32_t attempt = slots_[slot].attempt;
            const std::uint32_t shift =
                std::min<std::uint32_t>(attempt, 20);
            const double jitter =
                1.0 +
                config_.retry_jitter * retry_rng_.next_double();
            const Time delay = static_cast<Time>(
                static_cast<double>(config_.retry_backoff << shift) *
                jitter);
            slots_[slot].attempt = attempt + 1;
            queue_.schedule_after(delay, [this, slot] {
                run_attempt(
                    offload::Operation(slots_[slot].retry_copy), slot);
            });
            return;
        }
        done_++;
        if (measuring_) {
            result_.completed++;
            if (completion.timed_out) {
                result_.failed_ops++;
                if (config_.max_retries > 0) {
                    result_.retries_exhausted++;
                }
            } else {
                result_.latency.add(completion.latency);
            }
            result_.iterations += completion.iterations;
            if (completion.status != isa::TraversalStatus::kDone ||
                completion.timed_out) {
                result_.errors++;
            }
        }
        if (done_ == config_.warmup_ops && !measuring_) {
            open_measurement();
        }
        if (done_ == total_ops_) {
            finished_ = true;
            result_.measure_time = queue_.now() - measure_start_;
            return;
        }
        issue_next(slot);
    }

    sim::EventQueue& queue_;
    const SubmitFn& submit_;
    const OpFactory& factory_;
    DriverConfig config_;
    DriverResult result_;
    Rng retry_rng_;
    std::uint64_t total_ops_;
    std::uint64_t issued_ = 0;
    std::uint64_t done_ = 0;
    Time measure_start_ = 0;
    bool measuring_ = false;
    bool finished_ = false;
    std::vector<Slot> slots_;
};

}  // namespace

DriverResult
run_closed_loop(sim::EventQueue& queue, const SubmitFn& submit,
                const OpFactory& factory, const DriverConfig& config)
{
    PULSE_ASSERT(config.concurrency >= 1, "need concurrency >= 1");
    PULSE_ASSERT(config.measure_ops >= 1, "nothing to measure");
    DriverLoop loop(queue, submit, factory, config);
    return loop.run();
}

}  // namespace pulse::workloads
