#include "workloads/driver.h"

#include <memory>

#include "common/logging.h"

namespace pulse::workloads {
namespace {

struct DriverState
{
    DriverConfig config;
    DriverResult result;
    std::uint64_t issued = 0;
    std::uint64_t done = 0;
    Time measure_start = 0;
    bool measuring = false;
    bool finished = false;
};

}  // namespace

DriverResult
run_closed_loop(sim::EventQueue& queue, const SubmitFn& submit,
                const OpFactory& factory, const DriverConfig& config)
{
    PULSE_ASSERT(config.concurrency >= 1, "need concurrency >= 1");
    PULSE_ASSERT(config.measure_ops >= 1, "nothing to measure");

    auto state = std::make_shared<DriverState>();
    state->config = config;
    const std::uint64_t total_ops =
        config.warmup_ops + config.measure_ops;

    // Issues the next operation; completions re-enter here.
    auto issue_next = std::make_shared<std::function<void()>>();
    *issue_next = [&queue, &submit, &factory, state, issue_next,
                   total_ops] {
        if (state->issued >= total_ops) {
            return;
        }
        const std::uint64_t index = state->issued++;
        offload::Operation op = factory(index);
        op.done = [&queue, state, issue_next, total_ops](
                      offload::Completion&& completion) {
            state->done++;
            if (state->measuring) {
                state->result.completed++;
                if (completion.timed_out) {
                    state->result.failed_ops++;
                } else {
                    state->result.latency.add(completion.latency);
                }
                state->result.iterations += completion.iterations;
                if (completion.status != isa::TraversalStatus::kDone ||
                    completion.timed_out) {
                    state->result.errors++;
                }
            }
            if (state->done == state->config.warmup_ops &&
                !state->measuring) {
                state->measuring = true;
                state->measure_start = queue.now();
                if (state->config.on_measure_start) {
                    state->config.on_measure_start();
                }
            }
            if (state->done == total_ops) {
                state->finished = true;
                state->result.measure_time =
                    queue.now() - state->measure_start;
                return;
            }
            (*issue_next)();
        };
        submit(std::move(op));
    };

    // Degenerate warmup: open the measurement window immediately.
    if (config.warmup_ops == 0) {
        state->measuring = true;
        state->measure_start = queue.now();
        if (config.on_measure_start) {
            config.on_measure_start();
        }
    }

    for (std::uint32_t c = 0;
         c < config.concurrency && state->issued < total_ops; c++) {
        (*issue_next)();
    }
    queue.run();
    PULSE_ASSERT(state->finished, "driver drained before completion "
                                  "(%llu of %llu ops done)",
                 static_cast<unsigned long long>(state->done),
                 static_cast<unsigned long long>(total_ops));

    // issue_next's lambda captures issue_next itself (so completions
    // can re-enter it); clear the function to break the cycle, or the
    // state never frees.
    *issue_next = nullptr;

    DriverResult result = std::move(state->result);
    if (result.measure_time > 0) {
        result.throughput = static_cast<double>(result.completed) /
                            to_seconds(result.measure_time);
    }
    return result;
}

}  // namespace pulse::workloads
