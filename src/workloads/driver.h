/**
 * @file
 * Closed-loop workload driver.
 *
 * Runs a fixed number of operations against any system's submit
 * function at a fixed concurrency, measuring per-operation latency and
 * steady-state throughput after a warmup phase — the methodology behind
 * Figs. 4-8. An optional measurement-start hook lets benches reset
 * bandwidth/energy counters so utilization numbers cover only the
 * measured window.
 */
#ifndef PULSE_WORKLOADS_DRIVER_H
#define PULSE_WORKLOADS_DRIVER_H

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::workloads {

/** Any system's operation entry point. */
using SubmitFn = std::function<void(offload::Operation&&)>;

/** Produces the @p index-th operation (without a done callback). */
using OpFactory = std::function<offload::Operation(std::uint64_t)>;

/** Driver parameters. */
struct DriverConfig
{
    std::uint64_t warmup_ops = 200;
    std::uint64_t measure_ops = 2000;

    /** Outstanding operations (1 for latency, high for throughput). */
    std::uint32_t concurrency = 1;

    /** Invoked when the measurement window opens. */
    std::function<void()> on_measure_start;
};

/** Measured results. */
struct DriverResult
{
    Histogram latency;          ///< measured-phase latencies
    Time measure_time = 0;      ///< measurement window length
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;   ///< mem faults / timeouts / exec faults
    /**
     * Operations the engine gave up on (max retransmits exhausted).
     * Subset of errors; their give-up "latency" is an artifact of the
     * timeout ladder, so they are excluded from the latency histogram
     * instead of polluting the tail percentiles.
     */
    std::uint64_t failed_ops = 0;
    std::uint64_t iterations = 0;
    double throughput = 0.0;    ///< ops per second over the window
};

/** Run the workload to completion (drains the event queue). */
DriverResult run_closed_loop(sim::EventQueue& queue,
                             const SubmitFn& submit,
                             const OpFactory& factory,
                             const DriverConfig& config);

}  // namespace pulse::workloads

#endif  // PULSE_WORKLOADS_DRIVER_H
