/**
 * @file
 * Closed-loop workload driver.
 *
 * Runs a fixed number of operations against any system's submit
 * function at a fixed concurrency, measuring per-operation latency and
 * steady-state throughput after a warmup phase — the methodology behind
 * Figs. 4-8. An optional measurement-start hook lets benches reset
 * bandwidth/energy counters so utilization numbers cover only the
 * measured window.
 */
#ifndef PULSE_WORKLOADS_DRIVER_H
#define PULSE_WORKLOADS_DRIVER_H

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "common/units.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::workloads {

/** Any system's operation entry point. */
using SubmitFn = std::function<void(offload::Operation&&)>;

/** Produces the @p index-th operation (without a done callback). */
using OpFactory = std::function<offload::Operation(std::uint64_t)>;

/** Driver parameters. */
struct DriverConfig
{
    std::uint64_t warmup_ops = 200;
    std::uint64_t measure_ops = 2000;

    /** Outstanding operations (1 for latency, high for throughput). */
    std::uint32_t concurrency = 1;

    /**
     * Bounded retry on engine give-up (timed_out completions): the
     * driver resubmits the same operation up to this many times with
     * exponential backoff before accepting the failure. 0 (default)
     * disables retry, keeping every existing run bit-identical. The
     * retried attempts are what keep a workload progressing across a
     * memory-node outage while the replication plane fails over.
     */
    std::uint32_t max_retries = 0;

    /** First-retry backoff; doubles per subsequent attempt. */
    Time retry_backoff = micros(500.0);

    /** Uniform backoff jitter fraction (delay *= 1 + jitter * U[0,1)),
     *  drawn from a private seeded stream so runs stay deterministic. */
    double retry_jitter = 0.1;

    /** Seed for the backoff-jitter stream. */
    std::uint64_t retry_seed = 0x7e7247;

    /** Invoked when the measurement window opens. */
    std::function<void()> on_measure_start;
};

/** Measured results. */
struct DriverResult
{
    Histogram latency;          ///< measured-phase latencies
    Time measure_time = 0;      ///< measurement window length
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;   ///< mem faults / timeouts / exec faults
    /**
     * Operations the engine gave up on (max retransmits exhausted).
     * Subset of errors; their give-up "latency" is an artifact of the
     * timeout ladder, so they are excluded from the latency histogram
     * instead of polluting the tail percentiles.
     */
    std::uint64_t failed_ops = 0;
    /** Timed-out attempts resubmitted by the retry policy. */
    std::uint64_t retries = 0;
    /**
     * Operations that failed even after max_retries resubmissions —
     * the driver-level give-up, distinct from failed_ops (which counts
     * every terminal engine give-up whether or not retry was on).
     */
    std::uint64_t retries_exhausted = 0;
    std::uint64_t iterations = 0;
    double throughput = 0.0;    ///< ops per second over the window
};

/** Run the workload to completion (drains the event queue). */
DriverResult run_closed_loop(sim::EventQueue& queue,
                             const SubmitFn& submit,
                             const OpFactory& factory,
                             const DriverConfig& config);

}  // namespace pulse::workloads

#endif  // PULSE_WORKLOADS_DRIVER_H
