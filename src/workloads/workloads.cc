#include "workloads/workloads.h"

#include <cmath>
#include <memory>

#include "common/logging.h"

namespace pulse::workloads {

YcsbC::YcsbC(std::uint64_t num_keys, double zipf_theta,
             bool zipf_scatter)
    : num_keys_(num_keys), theta_(zipf_theta), scatter_(zipf_scatter)
{
    PULSE_ASSERT(num_keys > 0, "empty key space");
    if (theta_ > 0.0) {
        zipf_ = std::make_unique<ZipfGenerator>(num_keys, theta_);
    }
}

std::uint64_t
YcsbC::next_index(Rng& rng)
{
    if (zipf_) {
        if (!scatter_) {
            // Raw ranks: the hottest keys are the lowest indices.
            return zipf_->next(rng);
        }
        // Scatter ranks so popular keys are not physically adjacent.
        return ds::mix64(zipf_->next(rng)) % num_keys_;
    }
    return rng.next_below(num_keys_);
}

YcsbE::YcsbE(std::uint64_t num_keys, std::uint32_t max_scan_length)
    : num_keys_(num_keys), max_scan_length_(max_scan_length)
{
    PULSE_ASSERT(num_keys > 0, "empty key space");
    PULSE_ASSERT(max_scan_length >= 1, "bad scan length");
}

YcsbE::Scan
YcsbE::next(Rng& rng)
{
    Scan scan;
    scan.start_index = rng.next_below(num_keys_);
    scan.length = static_cast<std::uint32_t>(
        rng.next_range(1, max_scan_length_));
    return scan;
}

PmuTrace::PmuTrace(std::uint64_t num_samples, double sample_period_ms,
                   std::uint64_t seed)
    : sample_period_ms_(sample_period_ms)
{
    PULSE_ASSERT(num_samples > 0, "empty trace");
    Rng rng(seed);
    entries_.reserve(num_samples);
    const std::uint64_t t0 = 1'600'000'000'000ull;  // ms epoch
    for (std::uint64_t i = 0; i < num_samples; i++) {
        const auto ts = t0 + static_cast<std::uint64_t>(
                                 i * sample_period_ms);
        // Nominal 7.2 kV distribution voltage (in mV), diurnal drift +
        // 60 Hz-beat wobble + measurement noise; keep it signed to
        // exercise the ISA's signed MIN/MAX.
        const double drift =
            120000.0 * std::sin(static_cast<double>(i) / 40000.0);
        const double wobble =
            15000.0 * std::sin(static_cast<double>(i) / 17.0);
        const double noise =
            static_cast<double>(rng.next_below(8000)) - 4000.0;
        const auto mv = static_cast<std::int64_t>(
            7'200'000.0 + drift + wobble + noise);
        entries_.push_back(ds::BPTreeEntry{
            ts, static_cast<std::uint64_t>(mv)});
    }
}

std::uint64_t
PmuTrace::first_timestamp() const
{
    return entries_.front().key;
}

std::uint64_t
PmuTrace::last_timestamp() const
{
    return entries_.back().key;
}

TsvQueries::TsvQueries(const PmuTrace& trace, double window_seconds)
    : first_ts_(trace.first_timestamp()),
      span_ms_(trace.last_timestamp() - trace.first_timestamp()),
      window_ms_(static_cast<std::uint64_t>(window_seconds * 1000.0))
{
    PULSE_ASSERT(window_ms_ > 0 && window_ms_ < span_ms_,
                 "window longer than the trace");
}

TsvQueries::Query
TsvQueries::next(Rng& rng)
{
    Query query;
    const std::uint64_t start =
        rng.next_below(span_ms_ - window_ms_);
    query.lo = first_ts_ + start;
    query.hi = query.lo + window_ms_;
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        query.kind = ds::AggKind::kSum;  // sum, and average's sum part
        break;
      case 2:
        query.kind = ds::AggKind::kMin;
        break;
      default:
        query.kind = ds::AggKind::kMax;
        break;
    }
    return query;
}

}  // namespace pulse::workloads
