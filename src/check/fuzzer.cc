#include "check/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "check/reference_interpreter.h"
#include "check/shadow_memory.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/cluster.h"
#include "faults/nemesis.h"
#include "ds/balanced_tree.h"
#include "ds/bptree.h"
#include "ds/bst_map.h"
#include "ds/ds_common.h"
#include "ds/hash_table.h"
#include "ds/linked_list.h"
#include "ds/prox_graph.h"
#include "isa/traversal.h"

namespace pulse::check {
namespace {

std::string
u64_json(const char* key, std::uint64_t value, bool last = false)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                  static_cast<unsigned long long>(value),
                  last ? "" : ", ");
    return buf;
}

/** Scan for `"key"` then `:` and return the raw value start, or npos. */
std::size_t
json_value_pos(const std::string& text, const std::string& key)
{
    const std::string quoted = "\"" + key + "\"";
    std::size_t pos = text.find(quoted);
    if (pos == std::string::npos) {
        return std::string::npos;
    }
    pos = text.find(':', pos + quoted.size());
    if (pos == std::string::npos) {
        return std::string::npos;
    }
    pos++;
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
        pos++;
    }
    return pos;
}

bool
json_u64(const std::string& text, const std::string& key,
         std::uint64_t* out)
{
    const std::size_t pos = json_value_pos(text, key);
    if (pos == std::string::npos || pos >= text.size()) {
        return false;
    }
    std::uint64_t value = 0;
    std::size_t digits = 0;
    for (std::size_t i = pos;
         i < text.size() && text[i] >= '0' && text[i] <= '9'; i++) {
        value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
        digits++;
    }
    if (digits == 0) {
        return false;
    }
    *out = value;
    return true;
}

bool
json_string(const std::string& text, const std::string& key,
            std::string* out)
{
    const std::size_t pos = json_value_pos(text, key);
    if (pos == std::string::npos || pos >= text.size() ||
        text[pos] != '"') {
        return false;
    }
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) {
        return false;
    }
    *out = text.substr(pos + 1, end - pos - 1);
    return true;
}

bool
known_name(const char* const* names, std::size_t count,
           const std::string& value)
{
    for (std::size_t i = 0; i < count; i++) {
        if (value == names[i]) {
            return true;
        }
    }
    return false;
}

/** The lock-free fetch-and-add retry loop (supp. section B). */
isa::Program
cas_increment_program()
{
    isa::ProgramBuilder b;
    b.load(8)
        .add(isa::sp(0), isa::sp(0), isa::imm(1))
        .add(isa::sp(8), isa::dat(0), isa::imm(1))
        .cas(0, isa::dat(0), isa::sp(8))
        .jump_eq("done")
        .next_iter()
        .label("done")
        .ret();
    return b.build();
}

/** First few registry diagnostics, joined for the failure message. */
std::string
diagnostics_message(const InvariantRegistry& registry)
{
    std::string message;
    std::size_t shown = 0;
    for (const Violation& violation : registry.diagnostics()) {
        if (shown == 3) {
            message += " ...";
            break;
        }
        if (shown > 0) {
            message += " | ";
        }
        message += violation.to_string();
        shown++;
    }
    return message;
}

FuzzResult
run_workload_case(const FuzzCase& c)
{
    FuzzResult result;
    bool fault_known = false;

    core::ClusterConfig config;
    config.num_mem_nodes = c.nodes == 0 ? 1 : c.nodes;
    config.node_capacity = 32 * kMiB;
    config.seed = c.seed;
    config.check.oracle = true;
    config.check.invariants = true;
    config.check.fail_fast = false;
    config.check.max_diagnostics = 16;
    config.faults = fuzz_fault_config(c.fault, c.seed, &fault_known);
    if (!fault_known) {
        result.ok = false;
        result.message = "unknown fault profile: " + c.fault;
        return result;
    }
    if (config.faults.enabled()) {
        // Fast loss recovery so even lossy cases drain quickly.
        config.offload.adaptive_rto = true;
        config.offload.retransmit_timeout = micros(2000.0);
    }
    // Opt-in (PULSE_PLACEMENT=elastic in the CI migration-soak job):
    // run every fuzz case with the placement plane live, so cutovers
    // race the fuzzed traversals under the oracle and invariants. A
    // short epoch makes migrations plausible within a case's runtime.
    config.placement = placement::PlacementConfig::from_env();
    if (config.placement.enabled()) {
        config.placement.epoch = micros(5.0);
        config.placement.trigger_imbalance = 1.1;
    }
    // Opt-in (PULSE_REPLICATION=k2 in the CI chaos-soak job): run
    // every fuzz case with the replication plane live, so crash
    // detection and failover race the fuzzed traversals under the
    // oracle and invariants.
    config.replication = replication::ReplicationConfig::from_env();
    // Per-case opt-in: tenants >= 2 runs the whole mix through the
    // serving plane — WDRR admission keyed by tenant, quota-capped
    // batch tenants (throttle + typed shed paths live), tight queue
    // caps — so QoS decisions race the fuzzed traversals under the
    // oracle and invariants.
    const std::uint32_t tenants = c.tenants >= 2 ? c.tenants : 0;
    if (tenants != 0) {
        config.serve.on = true;
        config.accel.sched_policy = accel::SchedPolicy::kWeightedDrr;
        config.serve.latency_queue_cap = 64;
        config.serve.throttle_park_cap = 8;
        config.serve.tenants.push_back(
            {.id = 0,
             .slo = serve::SloClass::kLatencySensitive,
             .weight = 4});
        for (std::uint32_t t = 1; t < tenants; t++) {
            config.serve.tenants.push_back(
                {.id = t,
                 .slo = serve::SloClass::kBatch,
                 .weight = 1,
                 .quota_ops_per_s = 2e5,
                 .quota_burst = 8.0});
        }
    }

    core::Cluster cluster(config);
    Rng rng(c.seed * 0x9E3779B97F4A7C15ull + 0xD5);

    // Shared key universe (strictly increasing, as the trees require).
    const std::uint64_t num_keys = 64 + rng.next_below(128);
    std::vector<std::uint64_t> keys;
    keys.reserve(num_keys);
    std::uint64_t key = 10;
    for (std::uint64_t i = 0; i < num_keys; i++) {
        keys.push_back(key);
        key += 1 + rng.next_below(7);
    }
    const std::uint64_t key_lo = keys.front();
    const std::uint64_t key_hi = keys.back();

    // Build the requested structure.
    std::unique_ptr<ds::HashTable> hash;
    std::unique_ptr<ds::LinkedList> list;
    std::unique_ptr<ds::BPTree> bptree;
    std::unique_ptr<ds::BstMap> bst;
    std::unique_ptr<ds::BalancedTree> balanced;
    std::unique_ptr<ds::ProxGraph> prox;
    bool bptree_inline = true;
    if (c.ds == "hash") {
        ds::HashTableConfig ht;
        ht.num_buckets = 32;  // long chains => long traversals
        ht.partitions = config.num_mem_nodes;
        hash = std::make_unique<ds::HashTable>(cluster.memory(),
                                               cluster.allocator(), ht);
        hash->insert_many(keys);
    } else if (c.ds == "list") {
        list = std::make_unique<ds::LinkedList>(cluster.memory(),
                                                cluster.allocator());
        list->build(keys);
    } else if (c.ds == "bptree") {
        ds::BPTreeConfig bt;
        bptree_inline = (c.seed & 1) != 0;
        bt.inline_values = bptree_inline;
        bt.partitions = config.num_mem_nodes;
        bptree = std::make_unique<ds::BPTree>(cluster.memory(),
                                              cluster.allocator(), bt);
        std::vector<ds::BPTreeEntry> entries;
        entries.reserve(keys.size());
        for (const std::uint64_t k : keys) {
            entries.push_back({k, ds::value_pattern_word(k)});
        }
        bptree->build(entries);
    } else if (c.ds == "bst") {
        bst = std::make_unique<ds::BstMap>(cluster.memory(),
                                           cluster.allocator());
        bst->build(keys);
    } else if (c.ds == "balanced") {
        const auto flavor = static_cast<ds::TreeFlavor>(c.seed % 3);
        balanced = std::make_unique<ds::BalancedTree>(
            cluster.memory(), cluster.allocator(), flavor);
        balanced->build(keys);
    } else if (c.ds == "prox") {
        prox = std::make_unique<ds::ProxGraph>(cluster.memory(),
                                               cluster.allocator());
        prox->build(keys);
    } else {
        result.ok = false;
        result.message = "unknown data structure: " + c.ds;
        return result;
    }

    // Shared CAS counter so every workload mixes in atomic writes.
    const VirtAddr counter = cluster.allocator().alloc_on(0, 8, 256);
    cluster.memory().write_as<std::uint64_t>(counter, 0);
    auto cas_program =
        std::make_shared<const isa::Program>(cas_increment_program());
    std::uint64_t cas_submitted = 0;

    std::uint32_t submitted = 0;
    std::uint32_t completed = 0;
    const std::uint32_t window = c.concurrency == 0 ? 1 : c.concurrency;
    auto submit = cluster.submitter(core::SystemKind::kPulse);

    std::function<void()> pump;
    offload::CompletionFn on_done = [&](offload::Completion&&) {
        completed++;
        pump();
    };
    auto make_op = [&]() -> offload::Operation {
        const std::uint64_t pick = keys[rng.next_below(keys.size())];
        const std::uint64_t roll = rng.next_below(100);
        const bool cas_op = roll >= 85;
        if (cas_op) {
            cas_submitted++;
            offload::Operation op;
            op.program = cas_program;
            op.start_ptr = counter;
            op.init_scratch.assign(16, 0);
            op.done = on_done;
            return op;
        }
        if (hash) {
            if (roll < 45) {
                return hash->make_find(pick, on_done);
            }
            if (roll < 55) {
                return hash->make_find(key_hi + 1 + roll, on_done);
            }
            std::vector<std::uint8_t> value(
                hash->config().value_bytes);
            ds::fill_value_pattern(pick ^ 0xF00DF00Dull, value.data(),
                                   value.size());
            return hash->make_update(pick, value, on_done);
        }
        if (list) {
            if (roll < 40) {
                return list->make_find(pick, on_done);
            }
            if (roll < 50) {
                return list->make_find(key_hi + 1 + roll, on_done);
            }
            return list->make_walk(1 + rng.next_below(list->size()),
                                   on_done);
        }
        if (bptree) {
            if (roll < 40) {
                return bptree->make_find(pick, on_done);
            }
            if (roll < 50) {
                return bptree->make_find(key_hi + 1 + roll, on_done);
            }
            if (bptree_inline) {
                const std::uint64_t lo =
                    key_lo + rng.next_below(key_hi - key_lo);
                return bptree->make_aggregate(
                    static_cast<ds::AggKind>(rng.next_below(4)), lo,
                    lo + 1 + rng.next_below(64), on_done);
            }
            return bptree->make_scan(pick, 1 + rng.next_below(12),
                                     on_done);
        }
        if (bst) {
            return bst->make_lower_bound(
                key_lo + rng.next_below(key_hi + 8 - key_lo), on_done);
        }
        if (balanced) {
            return balanced->make_lower_bound(
                key_lo + rng.next_below(key_hi + 8 - key_lo), on_done);
        }
        return prox->make_search(
            key_lo + rng.next_below(key_hi + 8 - key_lo), on_done);
    };
    pump = [&] {
        while (submitted < c.ops && submitted - completed < window) {
            offload::Operation op = make_op();
            if (tenants != 0) {
                op.tenant = submitted % tenants;
            }
            submitted++;
            submit(std::move(op));
        }
    };

    pump();
    cluster.queue().run();

    result.violations = cluster.verify_quiesce();
    const OracleStats& oracle = cluster.checker()->oracle()->stats();
    result.oracle_exact = oracle.exact;
    result.oracle_weak = oracle.weak;
    result.ok = result.violations == 0 && completed == c.ops;
    if (result.violations != 0) {
        result.message =
            diagnostics_message(cluster.checker()->registry());
    } else if (completed != c.ops) {
        result.message = "only " + std::to_string(completed) + "/" +
                         std::to_string(c.ops) +
                         " operations completed";
    }
    (void)cas_submitted;
    return result;
}

/** Bounds helper shared by the production hooks (mirrors valid_span). */
bool
span_valid(const mem::GlobalMemory& memory, VirtAddr va, Bytes len)
{
    const auto node = memory.address_map().node_for(va);
    if (!node.has_value()) {
        return false;
    }
    const mem::NodeRegion& region = memory.address_map().region(*node);
    return va - region.base + len <= region.size;
}

FuzzResult
run_program_case(const FuzzCase& c)
{
    FuzzResult result;
    Rng rng(c.seed * 0x2545F4914F6CDD1Dull + 0x9D);

    // Two identically-built single-node memories: the production
    // interpreter mutates A, the reference's shadow overlays B.
    mem::GlobalMemory mem_a(1, 1 * kMiB);
    mem::GlobalMemory mem_b(1, 1 * kMiB);
    const mem::NodeRegion& region = mem_a.address_map().region(0);
    const VirtAddr base = region.base;
    auto write_both = [&](VirtAddr va, std::uint64_t value) {
        mem_a.write_as<std::uint64_t>(va, value);
        mem_b.write_as<std::uint64_t>(va, value);
    };

    // A small pointer chain: 64 B nodes, next pointer in word 0. The
    // tail's next is drawn from {null, invalid, cycle-to-head} so the
    // termination paths (kDone via null, kMemFault, kMaxIter) all get
    // exercised across seeds.
    const std::uint64_t chain = 4 + rng.next_below(28);
    for (std::uint64_t i = 0; i < chain; i++) {
        const VirtAddr node = base + i * 64;
        VirtAddr next = base + (i + 1) * 64;
        if (i + 1 == chain) {
            switch (rng.next_below(3)) {
              case 0: next = kNullAddr; break;
              case 1: next = base + region.size + 64; break;  // invalid
              default: next = base; break;                    // cycle
            }
        }
        write_both(node, next);
        for (std::uint32_t w = 1; w < 8; w++) {
            write_both(node + w * 8, rng.next_u64());
        }
    }

    const isa::Program program = random_program(c.seed);
    std::string verify_error;
    if (!program.verify(&verify_error)) {
        result.ok = false;
        result.message =
            "generated program failed verify: " + verify_error;
        return result;
    }

    std::vector<std::uint8_t> init_scratch(32);
    for (std::size_t i = 0; i < init_scratch.size(); i++) {
        init_scratch[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const VirtAddr start = rng.next_bool(0.9)
                               ? base
                               : base + region.size + 128;  // invalid

    // Production run: isa::run_traversal over memory A.
    isa::MemoryHooks hooks;
    hooks.load = [&](VirtAddr va, std::uint32_t len, std::uint8_t* out) {
        if (!span_valid(mem_a, va, len)) {
            return false;
        }
        mem_a.read(va, out, len);
        return true;
    };
    hooks.store = [&](VirtAddr va, std::uint32_t len,
                      const std::uint8_t* in) {
        if (!span_valid(mem_a, va, len)) {
            return false;
        }
        mem_a.write(va, in, len);
        return true;
    };
    hooks.cas = [&](VirtAddr va, std::uint64_t expected,
                    std::uint64_t desired) {
        if (!span_valid(mem_a, va, 8)) {
            return false;
        }
        if (mem_a.read_as<std::uint64_t>(va) != expected) {
            return false;
        }
        mem_a.write_as<std::uint64_t>(va, desired);
        return true;
    };
    const isa::TraversalOutcome actual =
        isa::run_traversal(program, start, init_scratch, hooks);

    // Reference run over the shadow of memory B. A CAS at an invalid
    // address behaves as a failed swap on the hooks path above, so
    // cas_fault_is_memfault is off here.
    ShadowMemory shadow(mem_b);
    ReferenceOptions options;
    options.cas_fault_is_memfault = false;
    const ReferenceOutcome expected = reference_traversal(
        program, start, init_scratch, shadow, 0, options);

    auto fail = [&](const std::string& what) {
        result.ok = false;
        result.violations++;
        if (!result.message.empty()) {
            result.message += " | ";
        }
        result.message += what;
    };
    if (actual.status != expected.status) {
        fail("status " + std::to_string(static_cast<int>(actual.status)) +
             " != reference " +
             std::to_string(static_cast<int>(expected.status)));
    }
    if (actual.fault != expected.fault) {
        fail("fault " + std::to_string(static_cast<int>(actual.fault)) +
             " != reference " +
             std::to_string(static_cast<int>(expected.fault)));
    }
    if (actual.iterations != expected.iterations) {
        fail("iterations " + std::to_string(actual.iterations) +
             " != reference " + std::to_string(expected.iterations));
    }
    if (actual.instructions != expected.instructions) {
        fail("instructions " + std::to_string(actual.instructions) +
             " != reference " + std::to_string(expected.instructions));
    }
    if (actual.final_ptr != expected.final_ptr) {
        fail("final_ptr mismatch");
    }
    if (actual.scratch != expected.scratch) {
        fail("scratch bytes mismatch");
    }

    // Byte-level memory diff: materialize the shadow into B, then
    // compare the window the program could have touched (chain plus
    // one node's 256 B store vicinity).
    shadow.flush(mem_b);
    const Bytes extent =
        std::min<Bytes>(chain * 64 + 320, region.size);
    for (Bytes off = 0; off < extent; off += 8) {
        const auto a = mem_a.read_as<std::uint64_t>(base + off);
        const auto b = mem_b.read_as<std::uint64_t>(base + off);
        if (a != b) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "memory diff at +%llu: %llx != ref %llx",
                          static_cast<unsigned long long>(off),
                          static_cast<unsigned long long>(a),
                          static_cast<unsigned long long>(b));
            fail(buf);
            break;
        }
    }
    result.oracle_exact = result.ok ? 1 : 0;
    return result;
}

FuzzResult
run_fork_case(const FuzzCase& c)
{
    FuzzResult result;
    bool fault_known = false;

    core::ClusterConfig config;
    config.num_mem_nodes = c.nodes == 0 ? 1 : c.nodes;
    config.node_capacity = 32 * kMiB;
    config.seed = c.seed;
    config.check.oracle = true;
    config.check.invariants = true;
    config.check.fail_fast = false;
    config.check.max_diagnostics = 16;
    config.faults = fuzz_fault_config(c.fault, c.seed, &fault_known);
    if (!fault_known) {
        result.ok = false;
        result.message = "unknown fault profile: " + c.fault;
        return result;
    }
    if (config.faults.enabled()) {
        config.offload.adaptive_rto = true;
        config.offload.retransmit_timeout = micros(2000.0);
    }
    config.placement = placement::PlacementConfig::from_env();
    if (config.placement.enabled()) {
        config.placement.epoch = micros(5.0);
        config.placement.trigger_imbalance = 1.1;
    }
    config.replication = replication::ReplicationConfig::from_env();

    core::Cluster cluster(config);
    Rng rng(c.seed * 0x9E3779B97F4A7C15ull + 0xF0);

    const std::uint32_t fanout =
        std::clamp<std::uint32_t>(c.forks, 1, 4);
    const std::uint32_t depth =
        std::clamp<std::uint32_t>(c.fork_depth, 1, 3);

    // Random pointer tree: 64 B nodes, child pointers in words
    // 0..fanout-1 (some branches pruned to null, exercising the
    // conditional-fork idiom), value in word 7.
    std::function<VirtAddr(std::uint32_t)> grow =
        [&](std::uint32_t level) -> VirtAddr {
        const VirtAddr node = cluster.allocator().alloc(64, 64);
        PULSE_ASSERT(node != kNullAddr, "out of memory for fork tree");
        std::uint8_t buffer[64] = {};
        const std::uint64_t value = rng.next_below(1ull << 20);
        std::memcpy(buffer + 56, &value, 8);
        if (level < depth) {
            for (std::uint32_t f = 0; f < fanout; f++) {
                if (!rng.next_bool(0.85)) {
                    continue;  // pruned branch: null pointer
                }
                const VirtAddr child = grow(level + 1);
                std::memcpy(buffer + f * 8, &child, 8);
            }
        }
        cluster.memory().write(node, buffer, 64);
        return node;
    };
    const VirtAddr root = grow(0);

    auto program = std::make_shared<const isa::Program>(
        random_fork_program(c.seed, fanout, depth));
    std::string verify_error;
    if (!program->verify(&verify_error)) {
        result.ok = false;
        result.message =
            "generated fork program failed verify: " + verify_error;
        return result;
    }

    std::uint32_t submitted = 0;
    std::uint32_t completed = 0;
    const std::uint32_t window = c.concurrency == 0 ? 1 : c.concurrency;
    auto submit = cluster.submitter(core::SystemKind::kPulse);

    std::function<void()> pump;
    offload::CompletionFn on_done = [&](offload::Completion&&) {
        completed++;
        pump();
    };
    pump = [&] {
        while (submitted < c.ops && submitted - completed < window) {
            submitted++;
            offload::Operation op;
            op.program = program;
            op.start_ptr = root;
            op.init_scratch.assign(32, 0);
            const std::uint64_t hops = depth;
            std::memcpy(op.init_scratch.data(), &hops, 8);
            op.done = on_done;
            submit(std::move(op));
        }
    };

    pump();
    cluster.queue().run();

    result.violations = cluster.verify_quiesce();
    const OracleStats& oracle = cluster.checker()->oracle()->stats();
    result.oracle_exact = oracle.exact;
    result.oracle_weak = oracle.weak;
    result.ok = result.violations == 0 && completed == c.ops;
    if (result.violations != 0) {
        result.message =
            diagnostics_message(cluster.checker()->registry());
    } else if (completed != c.ops) {
        result.message = "only " + std::to_string(completed) + "/" +
                         std::to_string(c.ops) +
                         " operations completed";
    }
    return result;
}

}  // namespace

std::string
FuzzCase::to_json() const
{
    std::string out = "{";
    out += u64_json("seed", seed);
    out += "\"mode\": \"" + mode + "\", ";
    out += "\"ds\": \"" + ds + "\", ";
    out += "\"fault\": \"" + fault + "\", ";
    out += u64_json("ops", ops);
    out += u64_json("concurrency", concurrency);
    out += u64_json("nodes", nodes);
    out += u64_json("forks", forks);
    out += u64_json("fork_depth", fork_depth);
    out += u64_json("tenants", tenants, /*last=*/true);
    out += "}";
    return out;
}

bool
FuzzCase::from_json(const std::string& text, FuzzCase* out,
                    std::string* error)
{
    FuzzCase c;
    std::uint64_t value = 0;
    if (!json_u64(text, "seed", &c.seed)) {
        if (error != nullptr) {
            *error = "missing \"seed\"";
        }
        return false;
    }
    if (!json_string(text, "mode", &c.mode)) {
        if (error != nullptr) {
            *error = "missing \"mode\"";
        }
        return false;
    }
    if (c.mode != "workload" && c.mode != "program" &&
        c.mode != "fork") {
        if (error != nullptr) {
            *error = "unknown mode: " + c.mode;
        }
        return false;
    }
    json_string(text, "ds", &c.ds);
    json_string(text, "fault", &c.fault);
    if (!known_name(kFuzzDataStructures, kNumFuzzDataStructures, c.ds)) {
        if (error != nullptr) {
            *error = "unknown ds: " + c.ds;
        }
        return false;
    }
    if (!known_name(kFuzzFaultConfigs, kNumFuzzFaultConfigs, c.fault)) {
        if (error != nullptr) {
            *error = "unknown fault: " + c.fault;
        }
        return false;
    }
    if (json_u64(text, "ops", &value)) {
        c.ops = static_cast<std::uint32_t>(value);
    }
    if (json_u64(text, "concurrency", &value)) {
        c.concurrency = static_cast<std::uint32_t>(value);
    }
    if (json_u64(text, "nodes", &value)) {
        c.nodes = static_cast<std::uint32_t>(value);
    }
    if (json_u64(text, "forks", &value)) {
        c.forks = static_cast<std::uint32_t>(value);
    }
    if (json_u64(text, "fork_depth", &value)) {
        c.fork_depth = static_cast<std::uint32_t>(value);
    }
    if (json_u64(text, "tenants", &value)) {
        c.tenants = static_cast<std::uint32_t>(value);
    }
    *out = c;
    return true;
}

faults::FaultConfig
fuzz_fault_config(const std::string& name, std::uint64_t seed,
                  bool* known)
{
    faults::FaultConfig config;
    config.seed = seed ^ 0xFA17C0DEull;
    bool recognized = true;
    if (name == "healthy") {
        // inactive
    } else if (name == "loss") {
        config.links.loss = 0.02;
    } else if (name == "dup") {
        config.links.duplicate = 0.05;
    } else if (name == "burst") {
        config.links.bursty = true;
        config.links.burst_p_enter = 0.02;
        config.links.burst_p_exit = 0.25;
        config.links.burst_loss_bad = 0.5;
    } else if (name == "chaos") {
        config.links.loss = 0.01;
        config.links.duplicate = 0.02;
        config.links.corrupt = 0.005;
        config.links.reorder = 0.2;
        config.links.reorder_jitter = micros(5.0);
    } else if (name == "nemesis") {
        // Scripted node crash/recover windows: stalls the detector
        // must ride out and blackouts it must declare. Targets up to
        // four nodes; windows for nodes a smaller case lacks are
        // harmless no-ops.
        faults::NemesisConfig nemesis;
        nemesis.seed = seed ^ 0xFA11C0DEull;
        nemesis.num_nodes = 4;
        nemesis.crashes = 2;
        config.timeline = faults::nemesis_timeline(nemesis);
    } else {
        recognized = false;
    }
    if (known != nullptr) {
        *known = recognized;
    }
    return config;
}

FuzzCase
random_case(std::uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x51);
    FuzzCase c;
    c.seed = seed;
    c.mode = rng.next_bool(0.25) ? "program" : "workload";
    c.ds = kFuzzDataStructures[rng.next_below(kNumFuzzDataStructures)];
    c.fault = kFuzzFaultConfigs[rng.next_below(kNumFuzzFaultConfigs)];
    c.ops = static_cast<std::uint32_t>(16 + rng.next_below(112));
    c.concurrency = static_cast<std::uint32_t>(1 + rng.next_below(8));
    c.nodes = static_cast<std::uint32_t>(1 + rng.next_below(4));
    // Fork-mode draws come last so pre-fork seeds keep their exact
    // shape: a seed only becomes a fork case via this trailing roll.
    if (rng.next_bool(0.15)) {
        c.mode = "fork";
        c.forks = static_cast<std::uint32_t>(1 + rng.next_below(4));
        c.fork_depth = static_cast<std::uint32_t>(1 + rng.next_below(3));
        c.ops = static_cast<std::uint32_t>(8 + rng.next_below(24));
    }
    // Serving-plane draw comes after the fork roll (same trailing-roll
    // discipline): pre-serving seeds keep their exact shape, and a
    // workload seed only gains tenants via this extra draw.
    if (c.mode == "workload" && rng.next_bool(0.2)) {
        c.tenants = static_cast<std::uint32_t>(2 + rng.next_below(3));
    }
    return c;
}

isa::Program
random_program(std::uint64_t seed)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 0x1CE);
    const std::uint32_t load_words =
        1 + static_cast<std::uint32_t>(rng.next_below(8));
    const std::uint32_t load_bytes = load_words * 8;
    constexpr std::uint32_t kScratch = 64;

    auto rand_src = [&]() -> isa::Operand {
        switch (rng.next_below(4)) {
          case 0:
            return isa::sp(
                8 * static_cast<std::uint32_t>(rng.next_below(8)));
          case 1:
            return isa::dat(8 * static_cast<std::uint32_t>(
                                    rng.next_below(load_words)));
          case 2: return isa::imm(rng.next_below(1 << 12));
          default: return isa::cur();
        }
    };
    auto rand_dst = [&]() -> isa::Operand {
        if (rng.next_bool(0.7)) {
            return isa::sp(
                8 * static_cast<std::uint32_t>(rng.next_below(8)));
        }
        return isa::dat(
            8 * static_cast<std::uint32_t>(rng.next_below(load_words)));
    };

    isa::ProgramBuilder b;
    b.scratch_bytes(kScratch)
        .max_iters(1 + static_cast<std::uint32_t>(rng.next_below(6)))
        .load(load_bytes);

    const std::uint64_t body = 2 + rng.next_below(6);
    for (std::uint64_t i = 0; i < body; i++) {
        switch (rng.next_below(8)) {
          case 0: b.add(rand_dst(), rand_src(), rand_src()); break;
          case 1: b.sub(rand_dst(), rand_src(), rand_src()); break;
          case 2: b.mul(rand_dst(), rand_src(), rand_src()); break;
          case 3:
            // Mostly non-zero divisors; sometimes a register, so the
            // kDivideByZero path gets fuzzed too.
            b.div(rand_dst(), rand_src(),
                  rng.next_bool(0.8)
                      ? isa::imm(1 + rng.next_below(9))
                      : rand_src());
            break;
          case 4: b.band(rand_dst(), rand_src(), rand_src()); break;
          case 5: b.bor(rand_dst(), rand_src(), rand_src()); break;
          case 6: b.bnot(rand_dst(), rand_src()); break;
          default:
            if (rng.next_bool(0.25) && load_bytes >= 16) {
                // Register-vector move between the two vectors.
                const std::uint16_t width = 16;
                b.move(isa::sp(8 * static_cast<std::uint32_t>(
                                       rng.next_below(
                                           (kScratch - width) / 8 + 1)),
                               width),
                       isa::dat(0, width));
            } else {
                b.move(rand_dst(), rand_src());
            }
            break;
        }
    }

    if (rng.next_bool(0.4)) {
        b.store(8 * static_cast<std::uint32_t>(rng.next_below(16)),
                8 * static_cast<std::uint32_t>(
                        rng.next_below(load_words)),
                8);
    }
    if (rng.next_bool(0.3)) {
        b.cas(8 * static_cast<std::uint32_t>(rng.next_below(8)),
              rand_src(), rand_src());
    }

    const bool jumped = rng.next_bool(0.6);
    if (jumped) {
        static constexpr isa::Cond kConds[] = {
            isa::Cond::kEq, isa::Cond::kNeq, isa::Cond::kLt,
            isa::Cond::kGt, isa::Cond::kLe,  isa::Cond::kGe,
        };
        b.compare(rand_src(), rand_src());
        b.jump(kConds[rng.next_below(6)], "done");
    }

    switch (rng.next_below(3)) {
      case 0: b.move(isa::cur(), isa::dat(0)); break;  // chase next
      case 1: b.add(isa::cur(), isa::cur(), isa::imm(64)); break;
      default: break;  // fixed point: spins until MAX_ITER
    }
    b.next_iter();
    b.label("done");
    if (jumped && rng.next_bool(0.5)) {
        b.add(rand_dst(), rand_src(), rand_src());
    }
    b.ret();
    return b.build();
}

isa::Program
random_fork_program(std::uint64_t seed, std::uint32_t fanout,
                    std::uint32_t depth)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 0xF02C);
    const auto op = static_cast<isa::ReduceOp>(rng.next_below(6));

    // Scratch: hops-remaining arg word @0 (the spawn-argument window),
    // reduce lane @8, noise cells @16/@24. The lane starts zeroed on
    // every path — the root's init scratch and each child's fresh
    // scratch — so "lane += value" leaves exactly this node's value
    // for the fold, whatever the reduce operator.
    isa::ProgramBuilder b;
    b.load(64)
        .reduce(op, 8, 1)
        .add(isa::sp(8), isa::sp(8), isa::dat(56));
    // ALU noise on cells outside the arg and lane windows keeps the
    // generated bodies diverse without perturbing the fold.
    const std::uint64_t noise = rng.next_below(4);
    for (std::uint64_t i = 0; i < noise; i++) {
        const isa::Operand dst = isa::sp(
            16 + 8 * static_cast<std::uint32_t>(rng.next_below(2)));
        const isa::Operand src =
            rng.next_bool(0.5)
                ? isa::dat(8 * static_cast<std::uint32_t>(
                                   rng.next_below(8)))
                : isa::imm(rng.next_below(1 << 12));
        switch (rng.next_below(3)) {
          case 0: b.add(dst, dst, src); break;
          case 1: b.sub(dst, dst, src); break;
          default: b.band(dst, dst, src); break;
        }
    }
    b.compare(isa::sp(0), isa::imm(0))
        .jump_eq("leaf")
        .sub(isa::sp(0), isa::sp(0), isa::imm(1));
    for (std::uint32_t f = 0; f < fanout; f++) {
        // Pruned branches leave a null pointer here: the SPAWN skips.
        b.spawn(isa::dat(f * 8), 0, 8);
    }
    b.label("leaf").join();
    b.scratch_bytes(32);
    b.max_spawn_depth(depth);
    return b.build();
}

FuzzResult
run_case(const FuzzCase& c)
{
    if (c.mode == "program") {
        return run_program_case(c);
    }
    if (c.mode == "workload") {
        return run_workload_case(c);
    }
    if (c.mode == "fork") {
        return run_fork_case(c);
    }
    FuzzResult result;
    result.ok = false;
    result.message = "unknown mode: " + c.mode;
    return result;
}

FuzzCase
minimize_case(const FuzzCase& c)
{
    FuzzCase best = c;
    auto still_fails = [](const FuzzCase& candidate) {
        return !run_case(candidate).ok;
    };
    FuzzCase trial = best;
    while (trial.ops > 1) {
        trial.ops /= 2;
        if (!still_fails(trial)) {
            break;
        }
        best = trial;
    }
    trial = best;
    if (trial.concurrency > 1) {
        trial.concurrency = 1;
        if (still_fails(trial)) {
            best = trial;
        }
    }
    trial = best;
    if (trial.nodes > 1) {
        trial.nodes = 1;
        if (still_fails(trial)) {
            best = trial;
        }
    }
    trial = best;
    if (trial.fault != "healthy") {
        trial.fault = "healthy";
        if (still_fails(trial)) {
            best = trial;
        }
    }
    return best;
}

}  // namespace pulse::check
