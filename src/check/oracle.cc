#include "check/oracle.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "common/logging.h"

namespace pulse::check {

using isa::TraversalStatus;

namespace {

const char*
status_name(TraversalStatus status)
{
    switch (status) {
      case TraversalStatus::kDone: return "done";
      case TraversalStatus::kNotLocal: return "not-local";
      case TraversalStatus::kMaxIter: return "max-iter";
      case TraversalStatus::kMemFault: return "mem-fault";
      case TraversalStatus::kExecFault: return "exec-fault";
      case TraversalStatus::kRejected: return "rejected";
    }
    return "?";
}

}  // namespace

void
GoldenOracle::arm(offload::Operation& op, bool program_valid,
                  bool will_offload)
{
    const std::uint64_t index = stats_.armed++;
    Pending pending;
    pending.program = op.program;
    pending.mem_version_at_submit = memory_.mutation_count();

    if (!program_valid) {
        // The engine completes invalid programs synchronously with
        // kExecFault; there is nothing to execute.
        pending.invalid_program = true;
    } else {
        ShadowMemory shadow(memory_);
        ReferenceOptions options;
        for (const isa::Instruction& insn : op.program->code()) {
            if (insn.op == isa::Opcode::kSpawn) {
                pending.forked = true;
                break;
            }
        }
        if (will_offload) {
            // reference_execute_dag recurses fork/join programs and
            // takes the plain reference_execute path otherwise.
            pending.expected = reference_execute_dag(
                *op.program, op.start_ptr, op.init_scratch.to_vector(), shadow,
                per_visit_cap_, total_guard_, options);
        } else {
            // Client fallback: read-only, no atomic path, one global
            // iteration budget (no per-visit legs).
            options.apply_stores = false;
            options.enable_cas = false;
            pending.expected = reference_traversal(
                *op.program, op.start_ptr, op.init_scratch.to_vector(), shadow,
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    total_guard_, 0xffffffffull)),
                options);
            // The fallback validates cur_ptr per round trip even for
            // programs that never LOAD; the reference has no
            // equivalent notion, so only weak-check that shape.
            pending.weak_only = op.program->load_bytes() == 0;
        }
        pending.predicted_writes = shadow.write_ops();
    }

    // Solo-flight tracking (see header): any arm while others fly
    // invalidates exactness for every overlapped writer.
    if (inflight_ > 0) {
        generation_++;
    }
    pending.arm_generation = generation_;
    inflight_++;

    offload::CompletionFn inner = std::move(op.done);
    op.done = [this, index, inner = std::move(inner)](
                  offload::Completion&& completion) mutable {
        check(index, completion);
        if (inner) {
            inner(std::move(completion));
        }
    };
    pending_.emplace(index, std::move(pending));
}

void
GoldenOracle::mismatch(std::uint64_t index, const Pending& pending,
                       const std::string& detail)
{
    stats_.mismatches++;
    registry_.report(Violation{
        .kind = InvariantKind::kOracleMismatch,
        .when = queue_.now(),
        .component = "check.oracle",
        .message = "op #" + std::to_string(index) + ": " + detail +
                   " (expected status=" +
                   status_name(pending.expected.status) + " iters=" +
                   std::to_string(pending.expected.iterations) + ")"});
}

void
GoldenOracle::check(std::uint64_t index,
                    const offload::Completion& completion)
{
    const auto it = pending_.find(index);
    PULSE_ASSERT(it != pending_.end(),
                 "oracle completion for unknown op");
    const Pending pending = std::move(it->second);
    pending_.erase(it);
    stats_.completed++;
    inflight_--;
    if (inflight_ > 0) {
        generation_++;
    }

    if (completion.timed_out) {
        // The engine gave up; no result was produced to compare.
        stats_.skipped_timeout++;
        return;
    }

    if (pending.invalid_program) {
        if (completion.status != TraversalStatus::kExecFault ||
            completion.fault != isa::ExecFault::kIllegalInstruction) {
            mismatch(index, pending,
                     "invalid program completed with status=" +
                         std::string(status_name(completion.status)));
        } else {
            stats_.exact++;
        }
        return;
    }

    const std::uint64_t delta =
        memory_.mutation_count() - pending.mem_version_at_submit;
    bool exact = !pending.weak_only &&
                 completion.status != TraversalStatus::kMaxIter;
    if (pending.forked) {
        // A completed join is order-insensitive (commutative REDUCE);
        // a failed one reports whichever branch failure arrived
        // first, an ordering the reference does not model.
        exact = exact && completion.status == TraversalStatus::kDone;
    }
    if (pending.predicted_writes == 0) {
        exact = exact && delta == 0;
    } else {
        exact = exact && delta == pending.predicted_writes &&
                pending.arm_generation == generation_;
    }

    if (!exact) {
        // Weak structural checks: enough to catch gross corruption
        // without assuming the reference's memory snapshot held.
        stats_.weak++;
        const bool terminal =
            completion.status == TraversalStatus::kDone ||
            completion.status == TraversalStatus::kMemFault ||
            completion.status == TraversalStatus::kExecFault ||
            completion.status == TraversalStatus::kMaxIter;
        if (!terminal) {
            mismatch(index, pending,
                     "non-terminal completion status=" +
                         std::string(status_name(completion.status)));
        }
        if ((completion.status == TraversalStatus::kDone ||
             completion.status == TraversalStatus::kExecFault) &&
            completion.iterations < 1) {
            mismatch(index, pending,
                     "terminal completion with zero iterations");
        }
        // The iteration guard applies per DAG node; a forked root
        // aggregates its sub-traversals' iterations.
        const std::uint64_t per_node_bound =
            total_guard_ + per_visit_cap_;
        const std::uint64_t guard_bound =
            pending.forked
                ? per_node_bound * (isa::kForkNodeGuard + 1ull)
                : per_node_bound;
        if (completion.iterations > guard_bound) {
            mismatch(index, pending,
                     "iterations " +
                         std::to_string(completion.iterations) +
                         " exceed the global guard");
        }
        if (completion.scratch.size() >
            pending.program->scratch_bytes()) {
            mismatch(index, pending,
                     "scratch result larger than the program's "
                     "scratch space");
        }
        return;
    }

    stats_.exact++;
    if (completion.status != pending.expected.status) {
        mismatch(index, pending,
                 "status=" +
                     std::string(status_name(completion.status)) +
                     " differs");
        return;
    }
    if (completion.fault != pending.expected.fault) {
        mismatch(index, pending, "exec fault kind differs");
        return;
    }
    if (completion.final_ptr != pending.expected.final_ptr) {
        mismatch(index, pending,
                 "final_ptr=0x" + [&] {
                     char buf[32];
                     std::snprintf(
                         buf, sizeof(buf), "%llx",
                         static_cast<unsigned long long>(
                             completion.final_ptr));
                     return std::string(buf);
                 }() + " differs");
        return;
    }
    if (completion.iterations != pending.expected.iterations) {
        mismatch(index, pending,
                 "iterations=" +
                     std::to_string(completion.iterations) +
                     " differ");
        return;
    }
    const std::size_t compare_len = std::min(
        completion.scratch.size(), pending.expected.scratch.size());
    for (std::size_t i = 0; i < compare_len; i++) {
        if (completion.scratch[i] != pending.expected.scratch[i]) {
            mismatch(index, pending,
                     "scratch byte " + std::to_string(i) +
                         " differs (" +
                         std::to_string(completion.scratch[i]) +
                         " != " +
                         std::to_string(pending.expected.scratch[i]) +
                         ")");
            return;
        }
    }
}

}  // namespace pulse::check
