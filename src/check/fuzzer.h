/**
 * @file
 * Seeded ISA/workload fuzzer (docs/TESTING.md).
 *
 * A FuzzCase is a tiny, fully-deterministic description of one checked
 * run — every byte of behaviour derives from (mode, seed, ds, fault,
 * ops, concurrency, nodes), so a failing case *is* its reproducer. Two
 * modes:
 *
 *   - **workload**: build one of the six data-structure adapters in a
 *     real cluster, drive a seeded mix of reads / writes / CAS
 *     increments through the pulse path with the golden oracle and the
 *     invariant registry enabled, crossed with a named fault-plane
 *     profile, then run the quiesce audit;
 *   - **program**: generate a random *type-valid* ISA program (it must
 *     pass Program::verify), run it through the production interpreter
 *     (isa::run_traversal with GlobalMemory hooks) and through the
 *     independent reference interpreter over an identically-built
 *     second memory, and diff outcome + memory bytes;
 *   - **fork**: build a random pointer tree (bounded fan-out and
 *     depth, with pruned null branches exercising the conditional-
 *     fork idiom) in a real cluster and drive a type-valid SPAWN /
 *     REDUCE / JOIN program over it through the full engine DAG path
 *     with the golden oracle armed — forking programs cannot run on
 *     the bare run_traversal path, which has no fork coordinator.
 *
 * On failure the harness (tools/fuzz_harness) minimizes the case —
 * fewer ops, one client, one node, healthy network — and emits the
 * smallest still-failing JSON, which tests/test_fuzz_repros.cc replays
 * from the committed corpus.
 */
#ifndef PULSE_CHECK_FUZZER_H
#define PULSE_CHECK_FUZZER_H

#include <cstdint>
#include <string>

#include "faults/fault_config.h"
#include "isa/program.h"

namespace pulse::check {

/** The six fuzzed data structures (workload mode). */
inline constexpr const char* kFuzzDataStructures[] = {
    "hash", "list", "bptree", "bst", "balanced", "prox",
};
inline constexpr std::size_t kNumFuzzDataStructures = 6;

/** Named fault-plane profiles a case can cross with. "nemesis" is the
 *  scripted crash/recover schedule (src/faults/nemesis.h): memory
 *  nodes black out or stall mid-case, exercising engine give-ups and —
 *  when PULSE_REPLICATION opts the plane in — detection and failover
 *  under the oracle. */
inline constexpr const char* kFuzzFaultConfigs[] = {
    "healthy", "loss", "dup", "burst", "chaos", "nemesis",
};
inline constexpr std::size_t kNumFuzzFaultConfigs = 6;

/** One deterministic fuzz case (== its own reproducer). */
struct FuzzCase
{
    std::uint64_t seed = 1;
    std::string mode = "workload";  ///< "workload" | "program" | "fork"
    std::string ds = "hash";        ///< workload mode only
    std::string fault = "healthy";  ///< named fault profile
    std::uint32_t ops = 64;         ///< operations to drive
    std::uint32_t concurrency = 4;  ///< closed-loop window
    std::uint32_t nodes = 2;        ///< memory nodes
    std::uint32_t forks = 0;        ///< fork mode: SPAWN fan-out (1-4)
    std::uint32_t fork_depth = 2;   ///< fork mode: DAG depth (1-3)

    /**
     * Workload mode: >= 2 runs the case through the serving plane
     * (src/serve) — ops round-robin across this many tenants under
     * WDRR admission, with quota-capped batch tenants and tight queue
     * caps, so QoS throttling, quota-release readmission and typed
     * load shedding race the fuzzed traversals under the oracle and
     * invariants. 0 (the default) leaves the plane off.
     */
    std::uint32_t tenants = 0;

    /** Flat single-line JSON encoding. */
    std::string to_json() const;

    /**
     * Parse the flat JSON produced by to_json (tolerates whitespace
     * and reordered keys; unknown keys are ignored). Returns false
     * with @p error set on malformed input or unknown enum values.
     */
    static bool from_json(const std::string& text, FuzzCase* out,
                          std::string* error = nullptr);
};

/** Outcome of one executed case. */
struct FuzzResult
{
    bool ok = true;
    std::uint64_t violations = 0;         ///< invariant + oracle
    std::uint64_t oracle_exact = 0;       ///< exact comparisons run
    std::uint64_t oracle_weak = 0;        ///< weak comparisons run
    std::string message;                  ///< first diagnostics
};

/**
 * The named fault profile for @p name, seeded from @p seed. @p known
 * (if non-null) reports whether the name was recognized; unknown names
 * yield the healthy (inactive) config.
 */
faults::FaultConfig fuzz_fault_config(const std::string& name,
                                      std::uint64_t seed,
                                      bool* known = nullptr);

/**
 * Derive a random case from @p seed: mode, structure, fault profile
 * and shape all drawn from the seeded generator.
 */
FuzzCase random_case(std::uint64_t seed);

/**
 * Generate a random type-valid ISA program from @p seed. The result
 * always passes Program::verify (run_program_case re-checks and fails
 * the case on a generator regression).
 */
isa::Program random_program(std::uint64_t seed);

/**
 * Generate a type-valid fork/join program from @p seed: one visit
 * accumulates the node's value into the reduce lane, then — while the
 * hops-remaining argument word is positive — SPAWNs up to @p fanout
 * children from the node's pointer slots (null slots skip) at hops-1.
 * The REDUCE operator is drawn from the full commutative set. Always
 * passes Program::verify with max_spawn_depth @p depth.
 */
isa::Program random_fork_program(std::uint64_t seed,
                                 std::uint32_t fanout,
                                 std::uint32_t depth);

/** Execute one case (dispatches on mode). */
FuzzResult run_case(const FuzzCase& c);

/**
 * Greedy minimizer: starting from a failing @p c, try fewer ops, one
 * in-flight op, one node, then a healthy network, keeping each
 * simplification that still fails. Returns the smallest failing case
 * (or @p c itself if nothing simpler fails).
 */
FuzzCase minimize_case(const FuzzCase& c);

}  // namespace pulse::check

#endif  // PULSE_CHECK_FUZZER_H
