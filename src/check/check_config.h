/**
 * @file
 * Configuration for the correctness-tooling subsystem (src/check).
 *
 * Three independently-enableable layers (docs/TESTING.md):
 *   - the golden oracle: every offloaded traversal is re-executed
 *     against GlobalMemory through an *independent* reference
 *     interpreter with all latency/fault/scheduling models bypassed,
 *     and the per-op results are diffed;
 *   - the invariant registry: cheap always-on assertions wired into
 *     EventQueue / Network / Accelerator / ReplayWindow, with
 *     structured violation diagnostics;
 *   - quiesce checks: leak/conservation/route-agreement verification
 *     once a run has drained.
 *
 * A default CheckConfig is fully off and costs nothing: the cluster
 * constructs no checker, wraps no submitter, and draws no randomness,
 * so checker-off runs stay bit-identical to a build without src/check.
 */
#ifndef PULSE_CHECK_CHECK_CONFIG_H
#define PULSE_CHECK_CHECK_CONFIG_H

#include <cstdlib>
#include <cstring>
#include <string>

namespace pulse::check {

/** Which correctness layers a cluster should run. */
struct CheckConfig
{
    /** Re-execute every submitted pulse op through the oracle. */
    bool oracle = false;

    /** Wire structural invariants into sim/net/accel components. */
    bool invariants = false;

    /**
     * Panic on the first mismatch/violation instead of collecting
     * diagnostics. A sweep that completes under fail_fast therefore
     * *proves* zero mismatches and zero violations.
     */
    bool fail_fast = false;

    /** Keep at most this many structured diagnostics (FIFO). */
    std::size_t max_diagnostics = 64;

    bool enabled() const { return oracle || invariants; }

    /**
     * Parse the PULSE_CHECK environment variable:
     *   "" / unset      -> all off (the default)
     *   "1", "all", "on"-> oracle + invariants + fail_fast
     *   comma list      -> any of "oracle", "invariants",
     *                      "fail-fast" / "failfast"
     * Unknown tokens are ignored so future knobs stay forward-
     * compatible.
     */
    static CheckConfig
    from_env()
    {
        CheckConfig config;
        const char* env = std::getenv("PULSE_CHECK");
        if (env == nullptr || *env == '\0') {
            return config;
        }
        const std::string value(env);
        if (value == "1" || value == "all" || value == "on") {
            config.oracle = true;
            config.invariants = true;
            config.fail_fast = true;
            return config;
        }
        std::size_t pos = 0;
        while (pos <= value.size()) {
            std::size_t comma = value.find(',', pos);
            if (comma == std::string::npos) {
                comma = value.size();
            }
            const std::string token = value.substr(pos, comma - pos);
            if (token == "oracle") {
                config.oracle = true;
            } else if (token == "invariants") {
                config.invariants = true;
            } else if (token == "fail-fast" || token == "failfast") {
                config.fail_fast = true;
            }
            pos = comma + 1;
        }
        return config;
    }
};

}  // namespace pulse::check

#endif  // PULSE_CHECK_CHECK_CONFIG_H
