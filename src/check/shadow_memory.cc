#include "check/shadow_memory.h"

#include <cstring>

namespace pulse::check {

bool
ShadowMemory::valid_span(VirtAddr va, Bytes len) const
{
    if (len == 0) {
        return true;
    }
    const auto node = base_.address_map().node_for(va);
    if (!node.has_value()) {
        return false;
    }
    const Bytes offset = base_.address_map().offset_in_region(va);
    return offset + len <= base_.address_map().region_size();
}

bool
ShadowMemory::load(VirtAddr va, std::uint32_t len,
                   std::uint8_t* out) const
{
    if (!valid_span(va, len)) {
        return false;
    }
    base_.read(va, out, len);
    if (overlay_.empty()) {
        return true;
    }
    for (std::uint32_t i = 0; i < len; i++) {
        const auto it = overlay_.find(va + i);
        if (it != overlay_.end()) {
            out[i] = it->second;
        }
    }
    return true;
}

bool
ShadowMemory::store(VirtAddr va, std::uint32_t len,
                    const std::uint8_t* in)
{
    if (!valid_span(va, len)) {
        return false;
    }
    write_ops_++;
    for (std::uint32_t i = 0; i < len; i++) {
        overlay_[va + i] = in[i];
    }
    return true;
}

bool
ShadowMemory::cas(VirtAddr va, std::uint64_t expected,
                  std::uint64_t desired, bool* swapped)
{
    *swapped = false;
    std::uint8_t current[8];
    if (!load(va, 8, current)) {
        return false;
    }
    std::uint64_t word = 0;
    std::memcpy(&word, current, 8);
    if (word == expected) {
        std::uint8_t bytes[8];
        std::memcpy(bytes, &desired, 8);
        store(va, 8, bytes);  // bumps write_ops_, matching the timed
                              // path's one write() per swap
        *swapped = true;
    }
    return true;
}

void
ShadowMemory::flush(mem::GlobalMemory& target) const
{
    for (const auto& [va, byte] : overlay_) {
        target.write(va, &byte, 1);
    }
}

}  // namespace pulse::check
