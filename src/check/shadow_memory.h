/**
 * @file
 * Copy-on-write byte overlay over a const GlobalMemory.
 *
 * The golden oracle re-executes traversals that may STORE or CAS; it
 * must never double-apply those effects to the real simulated memory
 * (the simulated path already did). ShadowMemory gives the reference
 * interpreter a private view: reads come from the overlay where
 * written, from the underlying GlobalMemory otherwise, and writes only
 * ever touch the overlay. The program-differential fuzzer additionally
 * uses flush() to materialize the overlay into a scratch GlobalMemory
 * for byte-level comparison against the production interpreter's run.
 */
#ifndef PULSE_CHECK_SHADOW_MEMORY_H
#define PULSE_CHECK_SHADOW_MEMORY_H

#include <cstdint>
#include <unordered_map>

#include "mem/global_memory.h"

namespace pulse::check {

/** Private overlay view of the cluster memory. */
class ShadowMemory
{
  public:
    explicit ShadowMemory(const mem::GlobalMemory& base) : base_(base)
    {
    }

    /** True when [va, va+len) lies inside one node region. */
    bool valid_span(VirtAddr va, Bytes len) const;

    /** Overlay-aware read; false when the span is invalid. */
    bool load(VirtAddr va, std::uint32_t len, std::uint8_t* out) const;

    /** Overlay-only write; false when the span is invalid. */
    bool store(VirtAddr va, std::uint32_t len, const std::uint8_t* in);

    /**
     * Atomic CAS of the u64 at @p va against the overlay view.
     * Returns false when the address is invalid; otherwise *swapped
     * reports whether the swap happened.
     */
    bool cas(VirtAddr va, std::uint64_t expected, std::uint64_t desired,
             bool* swapped);

    /** Bytes written through the overlay so far. */
    std::size_t dirty_bytes() const { return overlay_.size(); }

    /**
     * Successful store() calls plus successful CAS swaps. Mirrors how
     * the timed path counts PhysicalMemory::write() calls (one per
     * applied store, one per swap), so the oracle can predict the
     * exact mutation-count delta its operation should produce.
     */
    std::uint64_t write_ops() const { return write_ops_; }

    /** Discard every overlay byte (fresh view of the base). */
    void
    clear()
    {
        overlay_.clear();
        write_ops_ = 0;
    }

    /** Apply the overlay to @p target (program-differential fuzz). */
    void flush(mem::GlobalMemory& target) const;

    const mem::GlobalMemory& base() const { return base_; }

  private:
    const mem::GlobalMemory& base_;
    std::unordered_map<VirtAddr, std::uint8_t> overlay_;
    std::uint64_t write_ops_ = 0;
};

}  // namespace pulse::check

#endif  // PULSE_CHECK_SHADOW_MEMORY_H
