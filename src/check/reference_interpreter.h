/**
 * @file
 * Independent reference execution of pulse ISA traversals.
 *
 * This is a from-scratch second implementation of the ISA semantics —
 * it deliberately shares *no* code with src/isa/interpreter.cc (only
 * the instruction/program data definitions). That independence is the
 * point: a bug introduced into the production interpreter (or injected
 * by the mutation-testing hook, see isa::set_interpreter_mutation)
 * changes the simulated result but not the reference result, so the
 * golden oracle catches it. Latency, faults and scheduling do not
 * exist here; execution is purely functional against a ShadowMemory.
 *
 * Two call shapes mirror the two production execution disciplines:
 *   - reference_traversal(): one leg with an explicit iteration cap
 *     (the shape of isa::run_traversal) — used by the program-
 *     differential fuzzer;
 *   - reference_execute(): the offload engine's view — legs of
 *     min(program cap, accelerator cap) iterations, transparently
 *     resumed on kMaxIter up to a global guard — used by the oracle.
 */
#ifndef PULSE_CHECK_REFERENCE_INTERPRETER_H
#define PULSE_CHECK_REFERENCE_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "check/shadow_memory.h"
#include "isa/traversal.h"

namespace pulse::check {

/** Site-semantics knobs distinguishing the production paths. */
struct ReferenceOptions
{
    /**
     * Apply STOREs to the shadow (accelerator semantics). The client
     * fallback path is read-only and silently discards stores.
     */
    bool apply_stores = true;

    /**
     * Provide the atomic path. Sites without one (the client
     * fallback) fault kCas with kIllegalInstruction.
     */
    bool enable_cas = true;

    /**
     * A CAS whose address does not translate: the accelerator raises
     * kMemFault at iteration end (true); the functional
     * run_traversal-with-hooks path reports it as a failed swap and
     * continues (false).
     */
    bool cas_fault_is_memfault = true;

    /**
     * Surface SPAWN records to the caller (accelerator semantics).
     * Single-chain sites — the client fallback and bare
     * run_traversal — have no fork coordinator and fault
     * kIllegalInstruction when an iteration emits spawn records
     * (src/isa/traversal.cc's convention), which is the default here.
     */
    bool enable_spawns = false;

    /**
     * Fork depth this execution runs at (0 = root). A SPAWN executed
     * at the program's max_spawn_depth faults kSpawnDepth.
     */
    std::uint32_t spawn_depth = 0;
};

/** One sub-traversal forked by a reference run. */
struct ReferenceSpawn
{
    VirtAddr start_ptr = kNullAddr;
    std::uint32_t arg_offset = 0;
    std::vector<std::uint8_t> args;
};

/** Final state of a reference run (mirrors TraversalOutcome). */
struct ReferenceOutcome
{
    isa::TraversalStatus status = isa::TraversalStatus::kDone;
    isa::ExecFault fault = isa::ExecFault::kNone;
    std::uint64_t iterations = 0;
    std::uint64_t instructions = 0;
    VirtAddr final_ptr = kNullAddr;
    std::vector<std::uint8_t> scratch;

    /**
     * Sub-traversals forked by this run, in program order (only with
     * options.enable_spawns; reference_execute_dag consumes them
     * internally and returns none).
     */
    std::vector<ReferenceSpawn> spawns;
};

/**
 * Run one leg of @p program from @p start_ptr over @p memory.
 * @p max_iters of 0 uses the program's own cap. The program must have
 * passed verify().
 */
ReferenceOutcome reference_traversal(
    const isa::Program& program, VirtAddr start_ptr,
    const std::vector<std::uint8_t>& init_scratch, ShadowMemory& memory,
    std::uint32_t max_iters = 0,
    const ReferenceOptions& options = ReferenceOptions{});

/**
 * Offload-engine-equivalent execution: legs capped at
 * @p per_visit_cap iterations, resumed transparently on kMaxIter while
 * the running total stays below @p total_guard (the engine's
 * kGlobalIterationGuard discipline). Totals — iterations, final
 * pointer, scratch — therefore match what the client observes from a
 * completed traversal regardless of how many node visits the simulated
 * path needed.
 */
ReferenceOutcome reference_execute(
    const isa::Program& program, VirtAddr start_ptr,
    const std::vector<std::uint8_t>& init_scratch, ShadowMemory& memory,
    std::uint32_t per_visit_cap, std::uint64_t total_guard,
    const ReferenceOptions& options = ReferenceOptions{});

/**
 * Reference execution of a fork/join traversal DAG. The root chain
 * runs under reference_execute() discipline; every SPAWN record it
 * emits becomes a child execution (zeroed scratch with the captured
 * argument window at the same offsets, one fork level deeper) that is
 * recursed depth-first, and each completed child's accumulator lanes
 * are folded into an identity-seeded accumulator with the program's
 * REDUCE operator, which is finally folded into the root's own lanes —
 * exactly the offload engine's join-record arithmetic. Because the
 * REDUCE operator is commutative and associative, this depth-first
 * order reproduces the engine's completion-order-dependent folds
 * bit-identically; that equivalence is what makes the golden oracle's
 * comparison order-insensitive (docs/TESTING.md).
 *
 * Iterations/instructions aggregate over the whole DAG (matching the
 * engine's child-iteration roll-up). The per-root fork-node guard
 * (isa::kForkNodeGuard) and spawn-depth limit are enforced as in
 * production: exceeding them yields kExecFault/kSpawnOverflow or
 * kSpawnDepth. A child (or the root chain) failing makes the first
 * failure in depth-first order the DAG's outcome, and the final fold
 * is skipped. Non-forking programs take the plain reference_execute()
 * path unchanged.
 */
ReferenceOutcome reference_execute_dag(
    const isa::Program& program, VirtAddr start_ptr,
    const std::vector<std::uint8_t>& init_scratch, ShadowMemory& memory,
    std::uint32_t per_visit_cap, std::uint64_t total_guard,
    const ReferenceOptions& options = ReferenceOptions{});

}  // namespace pulse::check

#endif  // PULSE_CHECK_REFERENCE_INTERPRETER_H
