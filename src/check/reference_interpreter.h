/**
 * @file
 * Independent reference execution of pulse ISA traversals.
 *
 * This is a from-scratch second implementation of the ISA semantics —
 * it deliberately shares *no* code with src/isa/interpreter.cc (only
 * the instruction/program data definitions). That independence is the
 * point: a bug introduced into the production interpreter (or injected
 * by the mutation-testing hook, see isa::set_interpreter_mutation)
 * changes the simulated result but not the reference result, so the
 * golden oracle catches it. Latency, faults and scheduling do not
 * exist here; execution is purely functional against a ShadowMemory.
 *
 * Two call shapes mirror the two production execution disciplines:
 *   - reference_traversal(): one leg with an explicit iteration cap
 *     (the shape of isa::run_traversal) — used by the program-
 *     differential fuzzer;
 *   - reference_execute(): the offload engine's view — legs of
 *     min(program cap, accelerator cap) iterations, transparently
 *     resumed on kMaxIter up to a global guard — used by the oracle.
 */
#ifndef PULSE_CHECK_REFERENCE_INTERPRETER_H
#define PULSE_CHECK_REFERENCE_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "check/shadow_memory.h"
#include "isa/traversal.h"

namespace pulse::check {

/** Site-semantics knobs distinguishing the production paths. */
struct ReferenceOptions
{
    /**
     * Apply STOREs to the shadow (accelerator semantics). The client
     * fallback path is read-only and silently discards stores.
     */
    bool apply_stores = true;

    /**
     * Provide the atomic path. Sites without one (the client
     * fallback) fault kCas with kIllegalInstruction.
     */
    bool enable_cas = true;

    /**
     * A CAS whose address does not translate: the accelerator raises
     * kMemFault at iteration end (true); the functional
     * run_traversal-with-hooks path reports it as a failed swap and
     * continues (false).
     */
    bool cas_fault_is_memfault = true;
};

/** Final state of a reference run (mirrors TraversalOutcome). */
struct ReferenceOutcome
{
    isa::TraversalStatus status = isa::TraversalStatus::kDone;
    isa::ExecFault fault = isa::ExecFault::kNone;
    std::uint64_t iterations = 0;
    std::uint64_t instructions = 0;
    VirtAddr final_ptr = kNullAddr;
    std::vector<std::uint8_t> scratch;
};

/**
 * Run one leg of @p program from @p start_ptr over @p memory.
 * @p max_iters of 0 uses the program's own cap. The program must have
 * passed verify().
 */
ReferenceOutcome reference_traversal(
    const isa::Program& program, VirtAddr start_ptr,
    const std::vector<std::uint8_t>& init_scratch, ShadowMemory& memory,
    std::uint32_t max_iters = 0,
    const ReferenceOptions& options = ReferenceOptions{});

/**
 * Offload-engine-equivalent execution: legs capped at
 * @p per_visit_cap iterations, resumed transparently on kMaxIter while
 * the running total stays below @p total_guard (the engine's
 * kGlobalIterationGuard discipline). Totals — iterations, final
 * pointer, scratch — therefore match what the client observes from a
 * completed traversal regardless of how many node visits the simulated
 * path needed.
 */
ReferenceOutcome reference_execute(
    const isa::Program& program, VirtAddr start_ptr,
    const std::vector<std::uint8_t>& init_scratch, ShadowMemory& memory,
    std::uint32_t per_visit_cap, std::uint64_t total_guard,
    const ReferenceOptions& options = ReferenceOptions{});

}  // namespace pulse::check

#endif  // PULSE_CHECK_REFERENCE_INTERPRETER_H
