#include "check/reference_interpreter.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "isa/instruction.h"

namespace pulse::check {
namespace {

// Register state of the reference machine. Kept distinct from
// isa::Workspace on purpose: the reference path must not share even
// the operand access helpers with the production interpreter.
struct RefState
{
    VirtAddr cur_ptr = kNullAddr;
    int flags = 0;
    std::vector<std::uint8_t> scratch;
    std::vector<std::uint8_t> data;
};

std::uint64_t
ref_fetch(const RefState& state, const isa::Operand& operand)
{
    switch (operand.kind) {
      case isa::OperandKind::kImm: return operand.value;
      case isa::OperandKind::kCurPtr: return state.cur_ptr;
      case isa::OperandKind::kScratch:
      case isa::OperandKind::kData: {
        const auto& vec = operand.kind == isa::OperandKind::kScratch
                              ? state.scratch
                              : state.data;
        PULSE_ASSERT(operand.value + operand.width <= vec.size(),
                     "reference operand read out of range");
        std::uint64_t value = 0;
        for (std::uint8_t i = 0; i < operand.width; i++) {
            value |= static_cast<std::uint64_t>(vec[operand.value + i])
                     << (8 * i);
        }
        return value;
      }
      case isa::OperandKind::kNone: break;
    }
    panic("reference fetch of kNone operand");
}

void
ref_put(RefState& state, const isa::Operand& operand,
        std::uint64_t value)
{
    switch (operand.kind) {
      case isa::OperandKind::kCurPtr:
        state.cur_ptr = value;
        return;
      case isa::OperandKind::kScratch:
      case isa::OperandKind::kData: {
        auto& vec = operand.kind == isa::OperandKind::kScratch
                        ? state.scratch
                        : state.data;
        PULSE_ASSERT(operand.value + operand.width <= vec.size(),
                     "reference operand write out of range");
        for (std::uint8_t i = 0; i < operand.width; i++) {
            vec[operand.value + i] =
                static_cast<std::uint8_t>(value >> (8 * i));
        }
        return;
      }
      default: panic("reference write to non-writable operand");
    }
}

bool
ref_taken(isa::Cond cond, int flags)
{
    switch (cond) {
      case isa::Cond::kAlways: return true;
      case isa::Cond::kEq: return flags == 0;
      case isa::Cond::kNeq: return flags != 0;
      case isa::Cond::kLt: return flags < 0;
      case isa::Cond::kGt: return flags > 0;
      case isa::Cond::kLe: return flags <= 0;
      case isa::Cond::kGe: return flags >= 0;
    }
    return false;
}

struct RefStore
{
    std::uint64_t mem_offset = 0;
    std::uint32_t data_offset = 0;
    std::uint32_t length = 0;
};

enum class LegEnd : std::uint8_t { kNextIter, kReturn, kFault, kJoin };

struct LegResult
{
    LegEnd end = LegEnd::kReturn;
    isa::ExecFault fault = isa::ExecFault::kNone;
    std::uint64_t instructions = 0;
    std::vector<RefStore> stores;
    std::vector<ReferenceSpawn> spawns;
    bool cas_fault = false;
};

// Logic portion of one iteration; data registers already hold the
// LOADed bytes, @p iter_ptr is the iteration-start cur_ptr (CAS
// offsets rebase against it, never against a mid-iteration update).
LegResult
ref_logic(const isa::Program& program, RefState& state,
          ShadowMemory& memory, VirtAddr iter_ptr,
          const ReferenceOptions& options)
{
    LegResult result;
    const auto& code = program.code();
    std::uint32_t pc =
        (!code.empty() && code.front().op == isa::Opcode::kLoad) ? 1
                                                                 : 0;
    while (pc < code.size()) {
        const isa::Instruction& insn = code[pc];
        result.instructions++;
        switch (insn.op) {
          case isa::Opcode::kLoad:
            result.end = LegEnd::kFault;
            result.fault = isa::ExecFault::kIllegalInstruction;
            return result;
          case isa::Opcode::kStore:
            result.stores.push_back(RefStore{
                insn.dst.value,
                static_cast<std::uint32_t>(insn.src1.value),
                static_cast<std::uint32_t>(insn.src2.value)});
            break;
          case isa::Opcode::kAdd:
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) +
                        ref_fetch(state, insn.src2));
            break;
          case isa::Opcode::kSub:
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) -
                        ref_fetch(state, insn.src2));
            break;
          case isa::Opcode::kMul:
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) *
                        ref_fetch(state, insn.src2));
            break;
          case isa::Opcode::kDiv: {
            const std::uint64_t divisor = ref_fetch(state, insn.src2);
            if (divisor == 0) {
                result.end = LegEnd::kFault;
                result.fault = isa::ExecFault::kDivideByZero;
                return result;
            }
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) / divisor);
            break;
          }
          case isa::Opcode::kAnd:
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) &
                        ref_fetch(state, insn.src2));
            break;
          case isa::Opcode::kOr:
            ref_put(state, insn.dst,
                    ref_fetch(state, insn.src1) |
                        ref_fetch(state, insn.src2));
            break;
          case isa::Opcode::kNot:
            ref_put(state, insn.dst, ~ref_fetch(state, insn.src1));
            break;
          case isa::Opcode::kMove:
            if (insn.dst.width > 8) {
                auto& dst_vec =
                    insn.dst.kind == isa::OperandKind::kScratch
                        ? state.scratch
                        : state.data;
                const auto& src_vec =
                    insn.src1.kind == isa::OperandKind::kScratch
                        ? state.scratch
                        : state.data;
                PULSE_ASSERT(
                    insn.dst.value + insn.dst.width <= dst_vec.size() &&
                        insn.src1.value + insn.src1.width <=
                            src_vec.size(),
                    "reference vector move out of range");
                std::memmove(dst_vec.data() + insn.dst.value,
                             src_vec.data() + insn.src1.value,
                             insn.dst.width);
            } else {
                ref_put(state, insn.dst, ref_fetch(state, insn.src1));
            }
            break;
          case isa::Opcode::kCompare: {
            const auto a = static_cast<std::int64_t>(
                ref_fetch(state, insn.src1));
            const auto b = static_cast<std::int64_t>(
                ref_fetch(state, insn.src2));
            state.flags = a < b ? -1 : a > b ? 1 : 0;
            break;
          }
          case isa::Opcode::kJump:
            if (ref_taken(insn.cond, state.flags)) {
                pc = insn.target;
                continue;
            }
            break;
          case isa::Opcode::kReturn:
            result.end = LegEnd::kReturn;
            return result;
          case isa::Opcode::kNextIter:
            result.end = LegEnd::kNextIter;
            return result;
          case isa::Opcode::kSpawn: {
            if (options.spawn_depth >= program.max_spawn_depth()) {
                result.end = LegEnd::kFault;
                result.fault = isa::ExecFault::kSpawnDepth;
                return result;
            }
            const VirtAddr child = ref_fetch(state, insn.src1);
            if (child == kNullAddr) {
                // Conditional-fork idiom: a null pointer spawns
                // nothing (padded child-pointer slots).
                break;
            }
            PULSE_ASSERT(insn.dst.value + insn.dst.width <=
                             state.scratch.size(),
                         "reference spawn args out of range");
            ReferenceSpawn spawn;
            spawn.start_ptr = child;
            spawn.arg_offset = static_cast<std::uint32_t>(insn.dst.value);
            spawn.args.assign(
                state.scratch.data() + insn.dst.value,
                state.scratch.data() + insn.dst.value + insn.dst.width);
            result.spawns.push_back(std::move(spawn));
            break;
          }
          case isa::Opcode::kReduce:
            // Static declaration; a runtime no-op.
            break;
          case isa::Opcode::kJoin:
            result.end = LegEnd::kJoin;
            return result;
          case isa::Opcode::kCas: {
            if (!options.enable_cas) {
                result.end = LegEnd::kFault;
                result.fault = isa::ExecFault::kIllegalInstruction;
                return result;
            }
            bool swapped = false;
            if (!memory.cas(iter_ptr + insn.dst.value,
                            ref_fetch(state, insn.src1),
                            ref_fetch(state, insn.src2), &swapped)) {
                result.cas_fault = true;
            }
            state.flags = swapped ? 0 : 1;
            break;
          }
        }
        pc++;
    }
    panic("reference iteration fell off the end of the program");
}

}  // namespace

ReferenceOutcome
reference_traversal(const isa::Program& program, VirtAddr start_ptr,
                    const std::vector<std::uint8_t>& init_scratch,
                    ShadowMemory& memory, std::uint32_t max_iters,
                    const ReferenceOptions& options)
{
    if (max_iters == 0) {
        max_iters = program.max_iters();
    }
    RefState state;
    state.scratch.assign(program.scratch_bytes(), 0);
    state.data.assign(isa::kMaxLoadBytes, 0);
    state.cur_ptr = start_ptr;
    std::copy_n(init_scratch.begin(),
                std::min(init_scratch.size(), state.scratch.size()),
                state.scratch.begin());

    ReferenceOutcome outcome;
    const std::uint32_t load_bytes = program.load_bytes();

    while (outcome.iterations < max_iters) {
        const VirtAddr iter_ptr = state.cur_ptr;
        if (load_bytes > 0) {
            if (iter_ptr == kNullAddr) {
                std::fill_n(state.data.begin(), load_bytes, 0);
            } else if (!memory.load(iter_ptr, load_bytes,
                                    state.data.data())) {
                outcome.status = isa::TraversalStatus::kMemFault;
                break;
            }
        }
        LegResult leg =
            ref_logic(program, state, memory, iter_ptr, options);
        outcome.iterations++;
        outcome.instructions += leg.instructions;

        bool store_fault = false;
        if (options.apply_stores) {
            for (const RefStore& st : leg.stores) {
                if (!memory.store(iter_ptr + st.mem_offset, st.length,
                                  state.data.data() +
                                      st.data_offset)) {
                    store_fault = true;
                    break;
                }
            }
        }
        if (leg.cas_fault && options.cas_fault_is_memfault) {
            store_fault = true;
        }
        if (store_fault) {
            outcome.status = isa::TraversalStatus::kMemFault;
            break;
        }
        if (!leg.spawns.empty()) {
            if (!options.enable_spawns) {
                // Single-chain execution site with no fork coordinator
                // (run_traversal's convention, src/isa/traversal.cc).
                outcome.status = isa::TraversalStatus::kExecFault;
                outcome.fault = isa::ExecFault::kIllegalInstruction;
                break;
            }
            for (ReferenceSpawn& spawn : leg.spawns) {
                outcome.spawns.push_back(std::move(spawn));
            }
        }
        if (leg.end == LegEnd::kFault) {
            outcome.status = isa::TraversalStatus::kExecFault;
            outcome.fault = leg.fault;
            break;
        }
        if (leg.end == LegEnd::kReturn || leg.end == LegEnd::kJoin) {
            // A JOIN ends the chain; outstanding branches rendezvous
            // at the caller's join record.
            outcome.status = isa::TraversalStatus::kDone;
            break;
        }
        if (!outcome.spawns.empty()) {
            // Spawn flush: the visit ends with the iteration that
            // forked (accelerator semantics), resumable via kMaxIter.
            outcome.status = isa::TraversalStatus::kMaxIter;
            break;
        }
        if (outcome.iterations == max_iters) {
            outcome.status = isa::TraversalStatus::kMaxIter;
            break;
        }
    }
    outcome.final_ptr = state.cur_ptr;
    outcome.scratch = std::move(state.scratch);
    return outcome;
}

ReferenceOutcome
reference_execute(const isa::Program& program, VirtAddr start_ptr,
                  const std::vector<std::uint8_t>& init_scratch,
                  ShadowMemory& memory, std::uint32_t per_visit_cap,
                  std::uint64_t total_guard,
                  const ReferenceOptions& options)
{
    std::uint32_t leg_cap = program.max_iters();
    if (per_visit_cap > 0) {
        leg_cap = std::min(leg_cap, per_visit_cap);
    }

    ReferenceOutcome total;
    VirtAddr ptr = start_ptr;
    std::vector<std::uint8_t> scratch = init_scratch;
    for (;;) {
        ReferenceOutcome leg = reference_traversal(
            program, ptr, scratch, memory, leg_cap, options);
        total.iterations += leg.iterations;
        total.instructions += leg.instructions;
        total.status = leg.status;
        total.fault = leg.fault;
        total.final_ptr = leg.final_ptr;
        total.scratch = std::move(leg.scratch);
        if (total.status != isa::TraversalStatus::kMaxIter ||
            total.iterations >= total_guard) {
            break;
        }
        ptr = total.final_ptr;
        scratch = total.scratch;
    }
    return total;
}

namespace {

// One DAG node: the node's own chain under reference_execute()
// discipline, with every spawn flush recursed depth-first and the
// children's accumulator lanes folded commutatively — the functional
// mirror of the offload engine's join record (offload/fork_join.h).
// @p forked counts sub-traversals across the whole DAG (the per-root
// fork-node guard).
ReferenceOutcome
ref_dag_node(const isa::Program& program, VirtAddr start_ptr,
             const std::vector<std::uint8_t>& init_scratch,
             ShadowMemory& memory, std::uint32_t per_visit_cap,
             std::uint64_t total_guard, const ReferenceOptions& options,
             isa::ReduceOp op, std::uint32_t reduce_offset,
             std::uint32_t reduce_lanes, std::uint32_t depth,
             std::uint64_t* forked)
{
    std::uint32_t leg_cap = program.max_iters();
    if (per_visit_cap > 0) {
        leg_cap = std::min(leg_cap, per_visit_cap);
    }
    ReferenceOptions node_options = options;
    node_options.enable_spawns = true;
    node_options.spawn_depth = depth;

    // Identity-seeded accumulator lanes (JoinAccumulator::configure).
    const std::uint32_t lanes =
        std::min(reduce_lanes, isa::kMaxReduceLanes);
    std::uint64_t acc[isa::kMaxReduceLanes] = {};
    for (std::uint32_t i = 0; i < lanes; i++) {
        acc[i] = isa::reduce_identity(op);
    }

    bool branch_failed = false;
    isa::TraversalStatus branch_status = isa::TraversalStatus::kDone;
    isa::ExecFault branch_fault = isa::ExecFault::kNone;
    std::uint64_t child_iterations = 0;
    std::uint64_t child_instructions = 0;

    ReferenceOutcome total;
    VirtAddr ptr = start_ptr;
    std::vector<std::uint8_t> scratch = init_scratch;
    for (;;) {
        ReferenceOutcome leg = reference_traversal(
            program, ptr, scratch, memory, leg_cap, node_options);
        total.iterations += leg.iterations;
        total.instructions += leg.instructions;
        total.status = leg.status;
        total.fault = leg.fault;
        total.final_ptr = leg.final_ptr;
        total.scratch = std::move(leg.scratch);

        for (const ReferenceSpawn& spawn : leg.spawns) {
            if (*forked >= isa::kForkNodeGuard) {
                // DAG termination guard: stop forking and fail the
                // join (the engine's kSpawnOverflow discipline).
                if (!branch_failed) {
                    branch_failed = true;
                    branch_status = isa::TraversalStatus::kExecFault;
                    branch_fault = isa::ExecFault::kSpawnOverflow;
                }
                break;
            }
            (*forked)++;
            // The child starts from a zeroed scratch_pad with the
            // spawn-time argument bytes at their parent offsets.
            std::vector<std::uint8_t> child_scratch(
                program.scratch_bytes(), 0);
            std::copy_n(spawn.args.begin(),
                        std::min<std::size_t>(
                            spawn.args.size(),
                            child_scratch.size() - spawn.arg_offset),
                        child_scratch.begin() + spawn.arg_offset);
            ReferenceOutcome child = ref_dag_node(
                program, spawn.start_ptr, child_scratch, memory,
                per_visit_cap, total_guard, options, op, reduce_offset,
                reduce_lanes, depth + 1, forked);
            child_iterations += child.iterations;
            child_instructions += child.instructions;
            if (child.status != isa::TraversalStatus::kDone &&
                !branch_failed) {
                branch_failed = true;
                branch_status = child.status;
                branch_fault = child.fault;
            }
            // Branches fold whether or not they failed; a failed join
            // discards the fold below (OffloadEngine::child_joined /
            // finalize).
            for (std::uint32_t i = 0; i < lanes; i++) {
                const std::size_t at = reduce_offset + 8ull * i;
                std::uint64_t value = 0;
                if (at + 8 <= child.scratch.size()) {
                    std::memcpy(&value, child.scratch.data() + at, 8);
                }
                acc[i] = isa::reduce_apply(op, acc[i], value);
            }
        }

        if (total.status != isa::TraversalStatus::kMaxIter ||
            total.iterations >= total_guard) {
            break;
        }
        ptr = total.final_ptr;
        scratch = total.scratch;
    }

    if (total.status == isa::TraversalStatus::kDone) {
        if (branch_failed) {
            // The join reports the first branch failure.
            total.status = branch_status;
            total.fault = branch_fault;
        } else {
            // Fold the joined subtree lanes into the own-chain lanes
            // (JoinAccumulator::fold_into).
            for (std::uint32_t i = 0; i < lanes; i++) {
                const std::size_t at = reduce_offset + 8ull * i;
                if (at + 8 > total.scratch.size()) {
                    break;
                }
                std::uint64_t own = 0;
                std::memcpy(&own, total.scratch.data() + at, 8);
                const std::uint64_t folded =
                    isa::reduce_apply(op, acc[i], own);
                std::memcpy(total.scratch.data() + at, &folded, 8);
            }
        }
    }
    total.iterations += child_iterations;
    total.instructions += child_instructions;
    total.spawns.clear();
    return total;
}

}  // namespace

ReferenceOutcome
reference_execute_dag(const isa::Program& program, VirtAddr start_ptr,
                      const std::vector<std::uint8_t>& init_scratch,
                      ShadowMemory& memory,
                      std::uint32_t per_visit_cap,
                      std::uint64_t total_guard,
                      const ReferenceOptions& options)
{
    // Read the fork declaration straight off the code — the reference
    // path stays independent of isa::analyze().
    bool has_spawn = false;
    isa::ReduceOp op = isa::ReduceOp::kAdd;
    std::uint32_t reduce_offset = 0;
    std::uint32_t reduce_lanes = 0;
    for (const isa::Instruction& insn : program.code()) {
        if (insn.op == isa::Opcode::kSpawn) {
            has_spawn = true;
        } else if (insn.op == isa::Opcode::kReduce) {
            reduce_offset = static_cast<std::uint32_t>(insn.dst.value);
            reduce_lanes = static_cast<std::uint32_t>(insn.src1.value);
            op = static_cast<isa::ReduceOp>(insn.src2.value);
        }
    }
    if (!has_spawn) {
        return reference_execute(program, start_ptr, init_scratch,
                                 memory, per_visit_cap, total_guard,
                                 options);
    }
    std::uint64_t forked = 0;
    return ref_dag_node(program, start_ptr, init_scratch, memory,
                        per_visit_cap, total_guard, options, op,
                        reduce_offset, reduce_lanes, 0, &forked);
}

}  // namespace pulse::check
