/**
 * @file
 * Structured invariant diagnostics for the simulator.
 *
 * Components that can cheaply assert structural properties (clock
 * monotonicity in EventQueue, exactly-once execution in ReplayWindow,
 * conservation/leak/route checks at quiesce) report violations here
 * instead of panicking ad hoc. Each violation carries the simulated
 * timestamp, the offending packet id (when one exists), the component
 * name, and a human-readable message — enough to reproduce and file.
 *
 * Dependency note: this header depends only on common/, so sim/, net/
 * and accel/ may include it without cycles.
 */
#ifndef PULSE_CHECK_INVARIANTS_H
#define PULSE_CHECK_INVARIANTS_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::check {

/** Classification of a violated invariant. */
enum class InvariantKind : std::uint8_t {
    kClockMonotonicity,   ///< an event fired in its past
    kPacketConservation,  ///< injected != delivered + accounted drops
    kDuplicateExecution,  ///< a visit executed more than once
    kWorkspaceLeak,       ///< accelerator workspace occupied at quiesce
    kInflightLeak,        ///< offload engine op still armed at quiesce
    kQueueNotDrained,     ///< events still pending at quiesce
    kRouteDisagreement,   ///< switch/TCAM/AddressMap disagree on a VA
    kOracleMismatch,      ///< simulated result != reference result
};

/** Human-readable name of @p kind. */
const char* invariant_kind_name(InvariantKind kind);

/** One structured diagnostic. */
struct Violation
{
    InvariantKind kind = InvariantKind::kClockMonotonicity;
    Time when = 0;        ///< simulated time of detection
    RequestId packet;     ///< offending packet ({0,0} when n/a)
    std::string component;
    std::string message;

    /** One-line rendering: "[kind] t=<ps> pkt=c/s component: msg". */
    std::string to_string() const;
};

/**
 * Collector for invariant violations. Components hold a raw pointer
 * (nullptr = checking disabled, strict no-op); the cluster owns the
 * registry. With fail_fast the first report panics with the rendered
 * diagnostic, so a run that completes is violation-free.
 */
class InvariantRegistry
{
  public:
    explicit InvariantRegistry(bool fail_fast = false,
                               std::size_t max_diagnostics = 64)
        : fail_fast_(fail_fast), max_diagnostics_(max_diagnostics)
    {
    }

    /** Record one violation (panics under fail_fast). */
    void report(Violation violation);

    /** Total violations reported (including evicted diagnostics). */
    std::uint64_t total() const { return total_; }

    /** Violations of @p kind reported so far. */
    std::uint64_t count(InvariantKind kind) const;

    /** Retained diagnostics, oldest first (FIFO-capped). */
    const std::deque<Violation>& diagnostics() const
    {
        return diagnostics_;
    }

    /** Drop retained diagnostics and zero all counters. */
    void clear();

    bool fail_fast() const { return fail_fast_; }

  private:
    bool fail_fast_;
    std::size_t max_diagnostics_;
    std::uint64_t total_ = 0;
    std::uint64_t by_kind_[16] = {};
    std::deque<Violation> diagnostics_;
};

}  // namespace pulse::check

#endif  // PULSE_CHECK_INVARIANTS_H
