/**
 * @file
 * Golden differential oracle for offloaded traversals.
 *
 * Every operation submitted through a checked pulse submitter is armed
 * here before it enters the offload engine: the oracle runs the same
 * traversal a second time through the independent reference
 * interpreter (src/check/reference_interpreter) against a ShadowMemory
 * snapshot — latency, faults and scheduling bypassed — and diffs the
 * simulated Completion against the reference outcome when it fires.
 *
 * Exactness gating. The reference executes against memory as of
 * submit; the simulated path executes later and may interleave with
 * other writers. The oracle therefore samples GlobalMemory's mutation
 * counter at arm and at completion:
 *   - a read-only operation compares exactly iff the counter did not
 *     move during its flight;
 *   - a writing operation compares exactly iff the counter moved by
 *     precisely the number of writes the reference predicted AND no
 *     other checked operation overlapped its flight;
 *   - otherwise (concurrent writers, kMaxIter guard truncation, the
 *     fallback path's no-load edge case) only weak structural checks
 *     run: a valid terminal status, iteration-count bounds, and a
 *     scratch result no larger than the program's scratch space.
 * Operations that timed out (gave up after max retransmits) never
 * produced a result and are skipped.
 *
 * Mismatches are reported as kOracleMismatch violations into the
 * shared InvariantRegistry (panicking under fail-fast), so a sweep
 * that completes with checking on is mismatch-free by construction.
 */
#ifndef PULSE_CHECK_ORACLE_H
#define PULSE_CHECK_ORACLE_H

#include <cstdint>
#include <unordered_map>

#include "check/invariants.h"
#include "check/reference_interpreter.h"
#include "mem/global_memory.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::check {

/** Oracle outcome counters. */
struct OracleStats
{
    std::uint64_t armed = 0;      ///< operations wrapped
    std::uint64_t completed = 0;  ///< completions observed
    std::uint64_t exact = 0;      ///< full result comparisons
    std::uint64_t weak = 0;       ///< structural checks only
    std::uint64_t skipped_timeout = 0;  ///< timed out: nothing to diff
    std::uint64_t mismatches = 0;       ///< violations reported
};

/** Differential checker for one cluster's pulse path. */
class GoldenOracle
{
  public:
    /**
     * @param memory        the cluster memory the reference reads
     * @param queue         clock source for diagnostics
     * @param registry      mismatch sink (shared invariant registry)
     * @param per_visit_cap accelerator max_iters_cap (leg budget)
     * @param total_guard   the offload engine's global iteration guard
     */
    GoldenOracle(const mem::GlobalMemory& memory,
                 const sim::EventQueue& queue,
                 InvariantRegistry& registry,
                 std::uint32_t per_visit_cap, std::uint64_t total_guard)
        : memory_(memory), queue_(queue), registry_(registry),
          per_visit_cap_(per_visit_cap), total_guard_(total_guard)
    {
    }

    /**
     * Run the reference prediction for @p op and wrap op.done so the
     * simulated completion is diffed before the caller sees it. Call
     * immediately before OffloadEngine::submit. @p program_valid and
     * @p will_offload come from the engine's own analysis, so oracle
     * and engine agree on which execution path is being modeled.
     */
    void arm(offload::Operation& op, bool program_valid,
             bool will_offload);

    const OracleStats& stats() const { return stats_; }

    /** Operations armed but not yet completed. */
    std::size_t pending() const { return pending_.size(); }

  private:
    struct Pending
    {
        std::shared_ptr<const isa::Program> program;
        ReferenceOutcome expected;
        std::uint64_t mem_version_at_submit = 0;
        std::uint64_t predicted_writes = 0;
        std::uint64_t arm_generation = 0;
        bool invalid_program = false;
        bool weak_only = false;  ///< path the reference cannot model

        /**
         * Fork/join DAG: exact comparison is gated to kDone
         * completions. The commutative REDUCE makes a completed join
         * order-insensitive, so the depth-first reference reproduces
         * it exactly; a *failed* join reports whichever branch
         * failure completed first, which the reference cannot order.
         */
        bool forked = false;
    };

    void check(std::uint64_t index,
               const offload::Completion& completion);
    void mismatch(std::uint64_t index, const Pending& pending,
                  const std::string& detail);

    const mem::GlobalMemory& memory_;
    const sim::EventQueue& queue_;
    InvariantRegistry& registry_;
    std::uint32_t per_visit_cap_;
    std::uint64_t total_guard_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    /**
     * Solo-flight tracking: bumped whenever concurrency changes while
     * operations are in flight, so an op whose arm-time generation
     * still matches at completion provably flew alone.
     */
    std::uint64_t generation_ = 0;
    std::uint64_t inflight_ = 0;
    OracleStats stats_;
};

}  // namespace pulse::check

#endif  // PULSE_CHECK_ORACLE_H
