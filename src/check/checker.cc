#include "check/checker.h"

#include <cstdio>
#include <string>

namespace pulse::check {
namespace {

std::string
hex(VirtAddr va)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(va));
    return buf;
}

}  // namespace

Checker::Checker(const CheckConfig& config, sim::EventQueue& queue,
                 net::Network& network,
                 const mem::GlobalMemory& memory,
                 std::uint32_t per_visit_cap, std::uint64_t total_guard)
    : config_(config), queue_(queue), network_(network),
      memory_(memory),
      registry_(config.fail_fast, config.max_diagnostics)
{
    if (config.oracle) {
        oracle_ = std::make_unique<GoldenOracle>(
            memory_, queue_, registry_, per_visit_cap, total_guard);
    }
}

void
Checker::attach_accelerator(accel::Accelerator* accelerator)
{
    accelerators_.push_back(accelerator);
}

void
Checker::attach_engine(offload::OffloadEngine* engine)
{
    engines_.push_back(engine);
}

void
Checker::report(InvariantKind kind, const std::string& component,
                std::string message)
{
    registry_.report(Violation{.kind = kind,
                               .when = queue_.now(),
                               .component = component,
                               .message = std::move(message)});
}

void
Checker::check_route_agreement()
{
    const mem::AddressMap& map = memory_.address_map();
    const net::SwitchTable& table = network_.switch_table();

    // Sample addresses per region plus one just past every region and
    // one below the address space: map, switch and every TCAM must
    // tell one coherent story about each.
    std::vector<VirtAddr> samples;
    for (NodeId node = 0; node < map.num_nodes(); node++) {
        const mem::NodeRegion& region = map.region(node);
        samples.push_back(region.base);
        samples.push_back(region.base + region.size / 2);
        samples.push_back(region.base + region.size - 1);
        samples.push_back(region.base + region.size);
    }
    if (map.num_nodes() > 0 && map.region(0).base > 0) {
        samples.push_back(map.region(0).base - 1);
    }
    // Migration remap overlays: sample each remapped range's edges and
    // interior too — the AddressMap overlay, the switch overlay rule
    // and the two reconfigured TCAMs must agree after every cutover.
    for (const mem::Remap& remap : map.remaps()) {
        samples.push_back(remap.va_base);
        samples.push_back(remap.va_base + remap.length / 2);
        samples.push_back(remap.va_base + remap.length - 1);
        samples.push_back(remap.va_base + remap.length);
        if (remap.va_base > 0) {
            samples.push_back(remap.va_base - 1);
        }
    }

    for (const VirtAddr va : samples) {
        const std::optional<NodeId> owner = map.node_for(va);
        const std::optional<NodeId> routed = table.lookup(va);
        if (owner != routed) {
            report(InvariantKind::kRouteDisagreement, "check.route",
                   "va " + hex(va) + ": AddressMap owner " +
                       (owner ? std::to_string(*owner) : "none") +
                       " != switch rule " +
                       (routed ? std::to_string(*routed) : "none"));
        }
        for (NodeId node = 0; node < accelerators_.size(); node++) {
            const auto result =
                accelerators_[node]->tcam().translate(va,
                                                      mem::Perm::kRead);
            const bool local = owner.has_value() && *owner == node;
            const bool hit =
                result.status == mem::TranslateStatus::kOk;
            if (local != hit) {
                report(InvariantKind::kRouteDisagreement,
                       "check.route",
                       "va " + hex(va) + ": node " +
                           std::to_string(node) + " TCAM " +
                           (hit ? "hits" : "misses") +
                           " but AddressMap says " +
                           (local ? "local" : "remote"));
            }
        }
    }
}

std::uint64_t
Checker::verify_quiesce()
{
    if (!config_.invariants) {
        return registry_.total();
    }
    if (!queue_.empty()) {
        report(InvariantKind::kQueueNotDrained, "sim.event_queue",
               std::to_string(queue_.pending()) +
                   " events still pending at quiesce");
    }
    const net::TraversalFlow& flow = network_.traversal_flow();
    if (!flow.balanced()) {
        report(InvariantKind::kPacketConservation, "net.network",
               "injected=" + std::to_string(flow.injected) +
                   " + duplicated=" + std::to_string(flow.duplicated) +
                   " != delivered=" + std::to_string(flow.delivered) +
                   " + source_dark=" +
                   std::to_string(flow.source_dark) +
                   " + plan_dropped=" +
                   std::to_string(flow.plan_dropped) +
                   " + delivery_blackout=" +
                   std::to_string(flow.delivery_blackout) +
                   " + checksum_dropped=" +
                   std::to_string(flow.checksum_dropped));
    }
    for (NodeId node = 0; node < accelerators_.size(); node++) {
        const std::size_t inflight = accelerators_[node]->inflight();
        if (inflight != 0) {
            report(InvariantKind::kWorkspaceLeak,
                   "accel.node" + std::to_string(node),
                   std::to_string(inflight) +
                       " requests still occupying workspaces or the "
                       "admission queue at quiesce");
        }
    }
    for (std::size_t client = 0; client < engines_.size(); client++) {
        const std::size_t inflight = engines_[client]->inflight();
        if (inflight != 0) {
            report(InvariantKind::kInflightLeak,
                   "offload.client" + std::to_string(client),
                   std::to_string(inflight) +
                       " operations still armed at quiesce");
        }
    }
    check_route_agreement();
    return registry_.total();
}

}  // namespace pulse::check
