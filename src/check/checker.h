/**
 * @file
 * Façade assembling the correctness-checking subsystem for a cluster.
 *
 * One Checker owns the InvariantRegistry (shared by EventQueue,
 * Accelerator and the oracle), optionally the GoldenOracle, and the
 * quiesce-time structural audit:
 *   - the event queue drained (nothing timed is still pending);
 *   - traversal-packet conservation across the fabric — every injected
 *     or fault-duplicated copy delivered or charged to exactly one
 *     accounted loss bucket;
 *   - no leaked accelerator workspaces / admission-queue entries and
 *     no operation still armed in any offload engine;
 *   - route agreement: AddressMap, switch match-action table, and
 *     every node TCAM give consistent answers for sampled addresses
 *     of each region (base, middle, last byte) and for addresses
 *     outside all regions.
 *
 * The cluster constructs a Checker only when CheckConfig enables
 * something, so checker-off runs carry zero overhead and stay
 * bit-identical.
 */
#ifndef PULSE_CHECK_CHECKER_H
#define PULSE_CHECK_CHECKER_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "check/check_config.h"
#include "check/invariants.h"
#include "check/oracle.h"
#include "mem/global_memory.h"
#include "net/network.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::check {

/** The per-cluster checking subsystem. */
class Checker
{
  public:
    /**
     * @param config         which layers are on
     * @param queue          the cluster event queue (clock + drain)
     * @param network        the rack fabric (conservation + switch)
     * @param memory         cluster memory (oracle + address map)
     * @param per_visit_cap  accelerator max_iters_cap for the oracle
     * @param total_guard    offload engine's global iteration guard
     */
    Checker(const CheckConfig& config, sim::EventQueue& queue,
            net::Network& network, const mem::GlobalMemory& memory,
            std::uint32_t per_visit_cap, std::uint64_t total_guard);

    InvariantRegistry& registry() { return registry_; }
    const InvariantRegistry& registry() const { return registry_; }

    /** The differential oracle; nullptr when config.oracle is off. */
    GoldenOracle* oracle() { return oracle_.get(); }

    /** Register a node accelerator for leak/route auditing. */
    void attach_accelerator(accel::Accelerator* accelerator);

    /** Register a client offload engine for leak auditing. */
    void attach_engine(offload::OffloadEngine* engine);

    /**
     * Run the structural audit. The event queue must already be
     * drained (Cluster::verify_quiesce does that). Returns the
     * registry's total violation count afterwards.
     */
    std::uint64_t verify_quiesce();

    const CheckConfig& config() const { return config_; }

  private:
    void check_route_agreement();
    void report(InvariantKind kind, const std::string& component,
                std::string message);

    CheckConfig config_;
    sim::EventQueue& queue_;
    net::Network& network_;
    const mem::GlobalMemory& memory_;
    InvariantRegistry registry_;
    std::unique_ptr<GoldenOracle> oracle_;
    std::vector<accel::Accelerator*> accelerators_;
    std::vector<offload::OffloadEngine*> engines_;
};

}  // namespace pulse::check

#endif  // PULSE_CHECK_CHECKER_H
