#include "check/invariants.h"

#include <cstdio>

#include "common/logging.h"

namespace pulse::check {

const char*
invariant_kind_name(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::kClockMonotonicity:
        return "clock-monotonicity";
      case InvariantKind::kPacketConservation:
        return "packet-conservation";
      case InvariantKind::kDuplicateExecution:
        return "duplicate-execution";
      case InvariantKind::kWorkspaceLeak: return "workspace-leak";
      case InvariantKind::kInflightLeak: return "inflight-leak";
      case InvariantKind::kQueueNotDrained: return "queue-not-drained";
      case InvariantKind::kRouteDisagreement:
        return "route-disagreement";
      case InvariantKind::kOracleMismatch: return "oracle-mismatch";
    }
    return "?";
}

std::string
Violation::to_string() const
{
    char head[128];
    std::snprintf(head, sizeof(head),
                  "[%s] t=%lld ps pkt=%u/%llu ",
                  invariant_kind_name(kind),
                  static_cast<long long>(when),
                  static_cast<unsigned>(packet.client),
                  static_cast<unsigned long long>(packet.seq));
    return head + component + ": " + message;
}

void
InvariantRegistry::report(Violation violation)
{
    total_++;
    const auto index = static_cast<std::size_t>(violation.kind);
    if (index < sizeof(by_kind_) / sizeof(by_kind_[0])) {
        by_kind_[index]++;
    }
    if (fail_fast_) {
        panic("invariant violated: %s", violation.to_string().c_str());
    }
    diagnostics_.push_back(std::move(violation));
    while (diagnostics_.size() > max_diagnostics_) {
        diagnostics_.pop_front();
    }
}

std::uint64_t
InvariantRegistry::count(InvariantKind kind) const
{
    const auto index = static_cast<std::size_t>(kind);
    if (index >= sizeof(by_kind_) / sizeof(by_kind_[0])) {
        return 0;
    }
    return by_kind_[index];
}

void
InvariantRegistry::clear()
{
    total_ = 0;
    for (auto& count : by_kind_) {
        count = 0;
    }
    diagnostics_.clear();
}

}  // namespace pulse::check
