/**
 * @file
 * Range-based translation and protection table (the accelerator's half of
 * hierarchical address translation; paper sections 4.2.1 and 5).
 *
 * The paper follows MIND/range-translation designs: instead of fixed-size
 * page-table entries, the accelerator's TCAM holds a small number of
 * variable-length range entries {va_base, length -> phys_base, perms}.
 * This models the TCAM functionally (parallel match == longest containing
 * range) and enforces its limited capacity, which is what makes
 * replicating the whole cluster's translations at every node infeasible
 * (the motivation for switch-level routing in section 5).
 */
#ifndef PULSE_MEM_RANGE_TCAM_H
#define PULSE_MEM_RANGE_TCAM_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::mem {

/** Access permissions carried by each translation entry. */
enum class Perm : std::uint8_t {
    kNone = 0,
    kRead = 1,
    kWrite = 2,
    kReadWrite = 3,
};

/** True if @p have grants everything @p need requires. */
constexpr bool
permits(Perm have, Perm need)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(need)) ==
           static_cast<std::uint8_t>(need);
}

/** One TCAM range entry. */
struct RangeEntry
{
    VirtAddr va_base = 0;
    Bytes length = 0;
    PhysAddr phys_base = 0;
    Perm perm = Perm::kNone;

    bool
    contains(VirtAddr va) const
    {
        return va >= va_base && va - va_base < length;
    }
};

/** Outcome classification for a translation attempt. */
enum class TranslateStatus {
    kOk,               ///< hit with sufficient permissions
    kMiss,             ///< address not covered: pointer is not local
    kProtectionFault,  ///< covered, but permissions insufficient
};

/** Result of RangeTcam::translate(). */
struct TranslateResult
{
    TranslateStatus status = TranslateStatus::kMiss;
    PhysAddr phys = 0;
};

/**
 * Capacity-limited range TCAM. Entries must be non-overlapping; inserts
 * that would overlap or exceed capacity are rejected, mirroring the real
 * resource constraint.
 */
class RangeTcam
{
  public:
    /** Create a TCAM with room for @p capacity range entries. */
    explicit RangeTcam(std::size_t capacity);

    /** Install a range entry. Returns false on overlap/full table. */
    bool insert(const RangeEntry& entry);

    /**
     * Install a range entry, merging with a VA-adjacent neighbour when
     * the physical mapping continues seamlessly (same perm, phys_base
     * contiguous with the neighbour's). Live migration installs one
     * sub-range per migrated slab; adjacent slabs moving to the same
     * node would otherwise fragment the table past its capacity.
     * Returns false on overlap, or on a full table when no merge is
     * possible.
     */
    bool insert_coalesce(const RangeEntry& entry);

    /** Remove the entry whose va_base equals @p va_base, if present. */
    bool remove(VirtAddr va_base);

    /**
     * True if punch(@p va_base, @p length) would succeed: the span is
     * fully covered by one entry and splitting it would not exceed
     * capacity. Migration checks this before committing a cutover.
     */
    bool can_punch(VirtAddr va_base, Bytes length) const;

    /**
     * Carve a hole out of the entry covering [@p va_base, @p va_base +
     * @p length): translations inside the hole then miss (the pointer
     * is no longer local) while the surrounding pieces keep their
     * original mapping. Splitting an entry in the middle adds one
     * entry; punching at an edge (or the whole entry) does not grow
     * the table. Returns false when the span is not fully covered by a
     * single entry or the split would exceed capacity.
     */
    bool punch(VirtAddr va_base, Bytes length);

    /** Translate @p va for an access needing @p need permissions. */
    TranslateResult translate(VirtAddr va, Perm need) const;

    /**
     * Translate a @p length-byte access: additionally faults (kMiss) if
     * the access would run past the end of its range entry.
     */
    TranslateResult translate_span(VirtAddr va, Bytes length,
                                   Perm need) const;

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const std::vector<RangeEntry>& entries() const { return entries_; }

    /**
     * Checkpoint support: replace the whole table with a saved
     * entries() snapshot (already sorted, non-overlapping). Asserts
     * capacity and ordering rather than re-validating overlap pairwise.
     */
    void restore_entries(std::vector<RangeEntry> entries);

  private:
    const RangeEntry* find(VirtAddr va) const;

    std::size_t capacity_;
    std::vector<RangeEntry> entries_;  // sorted by va_base
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_RANGE_TCAM_H
