#include "mem/global_memory.h"

#include "common/logging.h"

namespace pulse::mem {

GlobalMemory::GlobalMemory(std::uint32_t num_nodes, Bytes node_capacity)
    : map_(num_nodes, node_capacity)
{
    nodes_.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; i++) {
        nodes_.push_back(std::make_unique<PhysicalMemory>(node_capacity));
    }
}

PhysicalMemory&
GlobalMemory::node(NodeId id)
{
    PULSE_ASSERT(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

const PhysicalMemory&
GlobalMemory::node(NodeId id) const
{
    PULSE_ASSERT(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

void
GlobalMemory::read(VirtAddr va, void* out, Bytes len) const
{
    const auto node_id = map_.node_for(va);
    PULSE_ASSERT(node_id.has_value(), "read from unmapped va 0x%llx",
                 static_cast<unsigned long long>(va));
    const Bytes offset = map_.offset_in_region(va);
    PULSE_ASSERT(offset + len <= map_.region_size(),
                 "read straddles node regions");
    nodes_[*node_id]->read(offset, out, len);
}

void
GlobalMemory::write(VirtAddr va, const void* in, Bytes len)
{
    const auto node_id = map_.node_for(va);
    PULSE_ASSERT(node_id.has_value(), "write to unmapped va 0x%llx",
                 static_cast<unsigned long long>(va));
    const Bytes offset = map_.offset_in_region(va);
    PULSE_ASSERT(offset + len <= map_.region_size(),
                 "write straddles node regions");
    nodes_[*node_id]->write(offset, in, len);
}

}  // namespace pulse::mem
