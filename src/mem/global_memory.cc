#include "mem/global_memory.h"

#include "common/logging.h"

namespace pulse::mem {

GlobalMemory::GlobalMemory(std::uint32_t num_nodes, Bytes node_capacity)
    : map_(num_nodes, node_capacity)
{
    nodes_.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; i++) {
        nodes_.push_back(std::make_unique<PhysicalMemory>(node_capacity));
    }
}

PhysicalMemory&
GlobalMemory::node(NodeId id)
{
    PULSE_ASSERT(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

const PhysicalMemory&
GlobalMemory::node(NodeId id) const
{
    PULSE_ASSERT(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

void
GlobalMemory::read(VirtAddr va, void* out, Bytes len) const
{
    PULSE_ASSERT(map_.node_for(va).has_value(),
                 "read from unmapped va 0x%llx",
                 static_cast<unsigned long long>(va));
    PULSE_ASSERT(map_.offset_in_region(va) + len <= map_.region_size(),
                 "read straddles node regions");
    auto* dst = static_cast<std::uint8_t*>(out);
    // Migration may have split the span across placements; each
    // segment is contiguous on one node.
    while (len > 0) {
        const Placement p = map_.placement_for(va);
        const Bytes chunk = len < p.contiguous ? len : p.contiguous;
        nodes_[p.node]->read(p.phys, dst, chunk);
        va += chunk;
        dst += chunk;
        len -= chunk;
    }
}

void
GlobalMemory::write(VirtAddr va, const void* in, Bytes len)
{
    PULSE_ASSERT(map_.node_for(va).has_value(),
                 "write to unmapped va 0x%llx",
                 static_cast<unsigned long long>(va));
    PULSE_ASSERT(map_.offset_in_region(va) + len <= map_.region_size(),
                 "write straddles node regions");
    const auto* src = static_cast<const std::uint8_t*>(in);
    while (len > 0) {
        const Placement p = map_.placement_for(va);
        const Bytes chunk = len < p.contiguous ? len : p.contiguous;
        nodes_[p.node]->write(p.phys, src, chunk);
        va += chunk;
        src += chunk;
        len -= chunk;
    }
}

}  // namespace pulse::mem
