#include "mem/range_tcam.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::mem {

RangeTcam::RangeTcam(std::size_t capacity) : capacity_(capacity)
{
    PULSE_ASSERT(capacity > 0, "zero-capacity TCAM");
}

bool
RangeTcam::insert(const RangeEntry& entry)
{
    if (entries_.size() >= capacity_ || entry.length == 0) {
        return false;
    }
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), entry.va_base,
        [](const RangeEntry& e, VirtAddr va) { return e.va_base < va; });
    // Overlap checks against the neighbours in va_base order.
    if (pos != entries_.begin()) {
        const auto& prev = *(pos - 1);
        if (prev.va_base + prev.length > entry.va_base) {
            return false;
        }
    }
    if (pos != entries_.end()) {
        if (entry.va_base + entry.length > pos->va_base) {
            return false;
        }
    }
    entries_.insert(pos, entry);
    return true;
}

bool
RangeTcam::insert_coalesce(const RangeEntry& entry)
{
    if (entry.length == 0) {
        return false;
    }
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), entry.va_base,
        [](const RangeEntry& e, VirtAddr va) { return e.va_base < va; });
    if (pos != entries_.begin()) {
        RangeEntry& prev = *(pos - 1);
        if (prev.va_base + prev.length > entry.va_base) {
            return false;  // overlap
        }
        if (prev.va_base + prev.length == entry.va_base &&
            prev.phys_base + prev.length == entry.phys_base &&
            prev.perm == entry.perm) {
            prev.length += entry.length;
            // The grown entry may now also abut its successor.
            if (pos != entries_.end() &&
                prev.va_base + prev.length == pos->va_base &&
                prev.phys_base + prev.length == pos->phys_base &&
                prev.perm == pos->perm) {
                prev.length += pos->length;
                entries_.erase(pos);
            }
            return true;
        }
    }
    if (pos != entries_.end()) {
        RangeEntry& next = *pos;
        if (entry.va_base + entry.length > next.va_base) {
            return false;  // overlap
        }
        if (entry.va_base + entry.length == next.va_base &&
            entry.phys_base + entry.length == next.phys_base &&
            entry.perm == next.perm) {
            next.va_base = entry.va_base;
            next.phys_base = entry.phys_base;
            next.length += entry.length;
            return true;
        }
    }
    return insert(entry);
}

bool
RangeTcam::can_punch(VirtAddr va_base, Bytes length) const
{
    if (length == 0) {
        return false;
    }
    const RangeEntry* entry = find(va_base);
    if (entry == nullptr || !entry->contains(va_base + length - 1)) {
        return false;
    }
    const bool middle_split = entry->va_base < va_base &&
                              va_base + length <
                                  entry->va_base + entry->length;
    return !middle_split || entries_.size() < capacity_;
}

bool
RangeTcam::punch(VirtAddr va_base, Bytes length)
{
    if (!can_punch(va_base, length)) {
        return false;
    }
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), va_base,
        [](VirtAddr v, const RangeEntry& e) { return v < e.va_base; });
    RangeEntry& entry = *(pos - 1);
    const VirtAddr hole_end = va_base + length;
    const VirtAddr entry_end = entry.va_base + entry.length;
    if (entry.va_base == va_base && entry_end == hole_end) {
        entries_.erase(pos - 1);
    } else if (entry.va_base == va_base) {
        // Trim the front; the mapping of the tail shifts with it.
        entry.phys_base += length;
        entry.va_base = hole_end;
        entry.length -= length;
    } else if (entry_end == hole_end) {
        entry.length -= length;  // trim the back
    } else {
        // Middle hole: keep the head in place, insert the tail after.
        RangeEntry tail = entry;
        tail.va_base = hole_end;
        tail.phys_base = entry.phys_base + (hole_end - entry.va_base);
        tail.length = entry_end - hole_end;
        entry.length = va_base - entry.va_base;
        entries_.insert(pos, tail);
    }
    return true;
}

bool
RangeTcam::remove(VirtAddr va_base)
{
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), va_base,
        [](const RangeEntry& e, VirtAddr va) { return e.va_base < va; });
    if (pos == entries_.end() || pos->va_base != va_base) {
        return false;
    }
    entries_.erase(pos);
    return true;
}

const RangeEntry*
RangeTcam::find(VirtAddr va) const
{
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), va,
        [](VirtAddr v, const RangeEntry& e) { return v < e.va_base; });
    if (pos == entries_.begin()) {
        return nullptr;
    }
    const RangeEntry& candidate = *(pos - 1);
    return candidate.contains(va) ? &candidate : nullptr;
}

TranslateResult
RangeTcam::translate(VirtAddr va, Perm need) const
{
    const RangeEntry* entry = find(va);
    if (entry == nullptr) {
        return {TranslateStatus::kMiss, 0};
    }
    if (!permits(entry->perm, need)) {
        return {TranslateStatus::kProtectionFault, 0};
    }
    return {TranslateStatus::kOk, entry->phys_base + (va - entry->va_base)};
}

TranslateResult
RangeTcam::translate_span(VirtAddr va, Bytes length, Perm need) const
{
    const RangeEntry* entry = find(va);
    if (entry == nullptr ||
        (length > 0 && !entry->contains(va + length - 1))) {
        return {TranslateStatus::kMiss, 0};
    }
    if (!permits(entry->perm, need)) {
        return {TranslateStatus::kProtectionFault, 0};
    }
    return {TranslateStatus::kOk, entry->phys_base + (va - entry->va_base)};
}

void
RangeTcam::restore_entries(std::vector<RangeEntry> entries)
{
    PULSE_ASSERT(entries.size() <= capacity_,
                 "restored TCAM snapshot exceeds capacity");
    for (std::size_t i = 1; i < entries.size(); i++) {
        PULSE_ASSERT(entries[i - 1].va_base + entries[i - 1].length <=
                         entries[i].va_base,
                     "restored TCAM snapshot not sorted/disjoint");
    }
    entries_ = std::move(entries);
}

}  // namespace pulse::mem
