#include "mem/range_tcam.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::mem {

RangeTcam::RangeTcam(std::size_t capacity) : capacity_(capacity)
{
    PULSE_ASSERT(capacity > 0, "zero-capacity TCAM");
}

bool
RangeTcam::insert(const RangeEntry& entry)
{
    if (entries_.size() >= capacity_ || entry.length == 0) {
        return false;
    }
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), entry.va_base,
        [](const RangeEntry& e, VirtAddr va) { return e.va_base < va; });
    // Overlap checks against the neighbours in va_base order.
    if (pos != entries_.begin()) {
        const auto& prev = *(pos - 1);
        if (prev.va_base + prev.length > entry.va_base) {
            return false;
        }
    }
    if (pos != entries_.end()) {
        if (entry.va_base + entry.length > pos->va_base) {
            return false;
        }
    }
    entries_.insert(pos, entry);
    return true;
}

bool
RangeTcam::remove(VirtAddr va_base)
{
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), va_base,
        [](const RangeEntry& e, VirtAddr va) { return e.va_base < va; });
    if (pos == entries_.end() || pos->va_base != va_base) {
        return false;
    }
    entries_.erase(pos);
    return true;
}

const RangeEntry*
RangeTcam::find(VirtAddr va) const
{
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), va,
        [](VirtAddr v, const RangeEntry& e) { return v < e.va_base; });
    if (pos == entries_.begin()) {
        return nullptr;
    }
    const RangeEntry& candidate = *(pos - 1);
    return candidate.contains(va) ? &candidate : nullptr;
}

TranslateResult
RangeTcam::translate(VirtAddr va, Perm need) const
{
    const RangeEntry* entry = find(va);
    if (entry == nullptr) {
        return {TranslateStatus::kMiss, 0};
    }
    if (!permits(entry->perm, need)) {
        return {TranslateStatus::kProtectionFault, 0};
    }
    return {TranslateStatus::kOk, entry->phys_base + (va - entry->va_base)};
}

TranslateResult
RangeTcam::translate_span(VirtAddr va, Bytes length, Perm need) const
{
    const RangeEntry* entry = find(va);
    if (entry == nullptr ||
        (length > 0 && !entry->contains(va + length - 1))) {
        return {TranslateStatus::kMiss, 0};
    }
    if (!permits(entry->perm, need)) {
        return {TranslateStatus::kProtectionFault, 0};
    }
    return {TranslateStatus::kOk, entry->phys_base + (va - entry->va_base)};
}

}  // namespace pulse::mem
