/**
 * @file
 * Cluster-wide virtual address layout (the switch's half of the paper's
 * hierarchical address translation, section 5).
 *
 * The disaggregated virtual address space is range-partitioned across
 * memory nodes: node i owns one contiguous region. The programmable
 * switch stores exactly one base-address -> node rule per memory node
 * (paper, section 6), and each node's accelerator holds the fine-grained
 * local translations in its range TCAM.
 */
#ifndef PULSE_MEM_ADDRESS_MAP_H
#define PULSE_MEM_ADDRESS_MAP_H

#include <optional>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::mem {

/** One node's slice of the global virtual address space. */
struct NodeRegion
{
    NodeId node = kInvalidNode;
    VirtAddr base = 0;
    Bytes size = 0;

    bool
    contains(VirtAddr va) const
    {
        return va >= base && va - base < size;
    }
};

/**
 * The global VA partition. Construction assigns each of @p num_nodes a
 * contiguous @p region_size slice starting at @p base; lookups map a VA
 * to the owning node in O(1).
 */
class AddressMap
{
  public:
    /** Default start of the disaggregated VA space (keeps 0 == null). */
    static constexpr VirtAddr kDefaultBase = 0x0000'0100'0000'0000ull;

    AddressMap(std::uint32_t num_nodes, Bytes region_size,
               VirtAddr base = kDefaultBase);

    /** Number of memory nodes in the partition. */
    std::uint32_t num_nodes() const
    {
        return static_cast<std::uint32_t>(regions_.size());
    }

    /** Per-node region size. */
    Bytes region_size() const { return region_size_; }

    /** Region descriptor for @p node. */
    const NodeRegion& region(NodeId node) const;

    /** Owning node for @p va, or nullopt if va is outside the space. */
    std::optional<NodeId> node_for(VirtAddr va) const;

    /** Node-local offset of @p va within its owning region. */
    Bytes offset_in_region(VirtAddr va) const;

    /** All regions, ordered by node id (== ascending base). */
    const std::vector<NodeRegion>& regions() const { return regions_; }

  private:
    VirtAddr base_;
    Bytes region_size_;
    std::vector<NodeRegion> regions_;
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_ADDRESS_MAP_H
