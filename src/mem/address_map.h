/**
 * @file
 * Cluster-wide virtual address layout (the switch's half of the paper's
 * hierarchical address translation, section 5).
 *
 * The disaggregated virtual address space is range-partitioned across
 * memory nodes: node i owns one contiguous region. The programmable
 * switch stores exactly one base-address -> node rule per memory node
 * (paper, section 6), and each node's accelerator holds the fine-grained
 * local translations in its range TCAM.
 */
#ifndef PULSE_MEM_ADDRESS_MAP_H
#define PULSE_MEM_ADDRESS_MAP_H

#include <optional>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::mem {

/** One node's slice of the global virtual address space. */
struct NodeRegion
{
    NodeId node = kInvalidNode;
    VirtAddr base = 0;
    Bytes size = 0;

    bool
    contains(VirtAddr va) const
    {
        return va >= base && va - base < size;
    }
};

/**
 * A migrated sub-range: VA [va_base, va_base + length) now lives on
 * @p node at node-local physical offset @p phys_base, overriding the
 * home (arithmetic) partition. Installed by the placement plane at
 * migration cutover.
 */
struct Remap
{
    VirtAddr va_base = 0;
    Bytes length = 0;
    NodeId node = kInvalidNode;
    PhysAddr phys_base = 0;

    bool
    contains(VirtAddr va) const
    {
        return va >= va_base && va - va_base < length;
    }
};

/** Resolved placement of one VA: owning node + node-local address. */
struct Placement
{
    NodeId node = kInvalidNode;
    PhysAddr phys = 0;
    /** Bytes mapped contiguously (same node, linear phys) from here. */
    Bytes contiguous = 0;
};

/**
 * The global VA partition. Construction assigns each of @p num_nodes a
 * contiguous @p region_size slice starting at @p base; lookups map a VA
 * to the owning node in O(1). Live migration overlays a small sorted
 * set of Remap entries on top of the arithmetic partition; lookups on a
 * remapped VA resolve to the new owner.
 */
class AddressMap
{
  public:
    /** Default start of the disaggregated VA space (keeps 0 == null). */
    static constexpr VirtAddr kDefaultBase = 0x0000'0100'0000'0000ull;

    AddressMap(std::uint32_t num_nodes, Bytes region_size,
               VirtAddr base = kDefaultBase);

    /** Number of memory nodes in the partition. */
    std::uint32_t num_nodes() const
    {
        return static_cast<std::uint32_t>(regions_.size());
    }

    /** Per-node region size. */
    Bytes region_size() const { return region_size_; }

    /** Region descriptor for @p node. */
    const NodeRegion& region(NodeId node) const;

    /**
     * Owning node for @p va, or nullopt if va is outside the space.
     * Honours remap overlays: a migrated VA resolves to its current
     * owner, not its home node.
     */
    std::optional<NodeId> node_for(VirtAddr va) const;

    /** Home (arithmetic-partition) node for @p va, ignoring remaps. */
    std::optional<NodeId> home_node_for(VirtAddr va) const;

    /**
     * Node-local offset of @p va within its *home* region. Used as a
     * bounds check against the home partition (allocations never
     * straddle home regions even after migration).
     */
    Bytes offset_in_region(VirtAddr va) const;

    /**
     * Resolve @p va to its current owner and node-local physical
     * address, honouring remap overlays. Asserts that va is mapped.
     */
    Placement placement_for(VirtAddr va) const;

    /**
     * Overlay a migrated sub-range. Any previously-installed remaps
     * overlapping the span are superseded (carved away first); adjacent
     * remaps to the same node with contiguous phys are coalesced.
     * Returns false only for a degenerate (empty / out-of-space) remap.
     */
    bool install_remap(const Remap& remap);

    /**
     * Restore the home mapping for [@p va_base, @p va_base + @p length):
     * carves the span out of any overlapping remap overlays.
     */
    void clear_remap(VirtAddr va_base, Bytes length);

    /** Current remap overlays, sorted by va_base. */
    const std::vector<Remap>& remaps() const { return remaps_; }

    /** All regions, ordered by node id (== ascending base). */
    const std::vector<NodeRegion>& regions() const { return regions_; }

  private:
    /** Remove the portion of every remap overlapping the span. */
    void punch_remaps(VirtAddr va_base, Bytes length);

    VirtAddr base_;
    Bytes region_size_;
    std::vector<NodeRegion> regions_;
    std::vector<Remap> remaps_;  // sorted by va_base, non-overlapping
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_ADDRESS_MAP_H
