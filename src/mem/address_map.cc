#include "mem/address_map.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::mem {

AddressMap::AddressMap(std::uint32_t num_nodes, Bytes region_size,
                       VirtAddr base)
    : base_(base), region_size_(region_size)
{
    PULSE_ASSERT(num_nodes > 0, "address map needs at least one node");
    PULSE_ASSERT(region_size > 0, "zero region size");
    PULSE_ASSERT(base > 0, "VA base must leave 0 as null");
    regions_.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; i++) {
        regions_.push_back(NodeRegion{
            .node = i,
            .base = base + static_cast<VirtAddr>(i) * region_size,
            .size = region_size,
        });
    }
}

const NodeRegion&
AddressMap::region(NodeId node) const
{
    PULSE_ASSERT(node < regions_.size(), "bad node id %u", node);
    return regions_[node];
}

std::optional<NodeId>
AddressMap::node_for(VirtAddr va) const
{
    if (!remaps_.empty()) {
        auto pos = std::upper_bound(
            remaps_.begin(), remaps_.end(), va,
            [](VirtAddr v, const Remap& r) { return v < r.va_base; });
        if (pos != remaps_.begin() && (pos - 1)->contains(va)) {
            return (pos - 1)->node;
        }
    }
    return home_node_for(va);
}

std::optional<NodeId>
AddressMap::home_node_for(VirtAddr va) const
{
    if (va < base_) {
        return std::nullopt;
    }
    const auto index = (va - base_) / region_size_;
    if (index >= regions_.size()) {
        return std::nullopt;
    }
    return static_cast<NodeId>(index);
}

Bytes
AddressMap::offset_in_region(VirtAddr va) const
{
    const auto node = home_node_for(va);
    PULSE_ASSERT(node.has_value(), "va 0x%llx outside the VA space",
                 static_cast<unsigned long long>(va));
    return va - regions_[*node].base;
}

Placement
AddressMap::placement_for(VirtAddr va) const
{
    if (!remaps_.empty()) {
        auto pos = std::upper_bound(
            remaps_.begin(), remaps_.end(), va,
            [](VirtAddr v, const Remap& r) { return v < r.va_base; });
        if (pos != remaps_.begin() && (pos - 1)->contains(va)) {
            const Remap& r = *(pos - 1);
            return Placement{
                .node = r.node,
                .phys = r.phys_base + (va - r.va_base),
                .contiguous = r.length - (va - r.va_base),
            };
        }
        const auto home = home_node_for(va);
        PULSE_ASSERT(home.has_value(), "va 0x%llx outside the VA space",
                     static_cast<unsigned long long>(va));
        const NodeRegion& region = regions_[*home];
        Bytes contiguous = region.base + region.size - va;
        if (pos != remaps_.end() && pos->va_base < va + contiguous) {
            contiguous = pos->va_base - va;
        }
        return Placement{
            .node = region.node,
            .phys = va - region.base,
            .contiguous = contiguous,
        };
    }
    const auto home = home_node_for(va);
    PULSE_ASSERT(home.has_value(), "va 0x%llx outside the VA space",
                 static_cast<unsigned long long>(va));
    const NodeRegion& region = regions_[*home];
    return Placement{
        .node = region.node,
        .phys = va - region.base,
        .contiguous = region.base + region.size - va,
    };
}

void
AddressMap::punch_remaps(VirtAddr va_base, Bytes length)
{
    if (length == 0 || remaps_.empty()) {
        return;
    }
    const VirtAddr span_end = va_base + length;
    // First remap whose end could reach past va_base.
    auto it = std::upper_bound(
        remaps_.begin(), remaps_.end(), va_base,
        [](VirtAddr v, const Remap& r) { return v < r.va_base; });
    if (it != remaps_.begin() &&
        (it - 1)->va_base + (it - 1)->length > va_base) {
        --it;
    }
    while (it != remaps_.end() && it->va_base < span_end) {
        const VirtAddr r_end = it->va_base + it->length;
        if (it->va_base < va_base && r_end > span_end) {
            // Middle hole: split into head (in place) + tail (inserted).
            Remap tail = *it;
            tail.va_base = span_end;
            tail.phys_base = it->phys_base + (span_end - it->va_base);
            tail.length = r_end - span_end;
            it->length = va_base - it->va_base;
            remaps_.insert(it + 1, tail);
            return;
        }
        if (it->va_base < va_base) {
            it->length = va_base - it->va_base;  // trim the back
            ++it;
        } else if (r_end > span_end) {
            it->phys_base += span_end - it->va_base;
            it->length = r_end - span_end;
            it->va_base = span_end;  // trim the front
            return;
        } else {
            it = remaps_.erase(it);  // fully covered
        }
    }
}

bool
AddressMap::install_remap(const Remap& remap)
{
    if (remap.length == 0 || remap.node >= regions_.size() ||
        !home_node_for(remap.va_base).has_value() ||
        !home_node_for(remap.va_base + remap.length - 1).has_value()) {
        return false;
    }
    punch_remaps(remap.va_base, remap.length);
    auto pos = std::lower_bound(
        remaps_.begin(), remaps_.end(), remap.va_base,
        [](const Remap& r, VirtAddr va) { return r.va_base < va; });
    // Coalesce with neighbours when node matches and phys continues.
    if (pos != remaps_.begin()) {
        Remap& prev = *(pos - 1);
        if (prev.node == remap.node &&
            prev.va_base + prev.length == remap.va_base &&
            prev.phys_base + prev.length == remap.phys_base) {
            prev.length += remap.length;
            if (pos != remaps_.end() && pos->node == prev.node &&
                prev.va_base + prev.length == pos->va_base &&
                prev.phys_base + prev.length == pos->phys_base) {
                prev.length += pos->length;
                remaps_.erase(pos);
            }
            return true;
        }
    }
    if (pos != remaps_.end() && pos->node == remap.node &&
        remap.va_base + remap.length == pos->va_base &&
        remap.phys_base + remap.length == pos->phys_base) {
        pos->va_base = remap.va_base;
        pos->phys_base = remap.phys_base;
        pos->length += remap.length;
        return true;
    }
    remaps_.insert(pos, remap);
    return true;
}

void
AddressMap::clear_remap(VirtAddr va_base, Bytes length)
{
    punch_remaps(va_base, length);
}

}  // namespace pulse::mem
