#include "mem/address_map.h"

#include "common/logging.h"

namespace pulse::mem {

AddressMap::AddressMap(std::uint32_t num_nodes, Bytes region_size,
                       VirtAddr base)
    : base_(base), region_size_(region_size)
{
    PULSE_ASSERT(num_nodes > 0, "address map needs at least one node");
    PULSE_ASSERT(region_size > 0, "zero region size");
    PULSE_ASSERT(base > 0, "VA base must leave 0 as null");
    regions_.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; i++) {
        regions_.push_back(NodeRegion{
            .node = i,
            .base = base + static_cast<VirtAddr>(i) * region_size,
            .size = region_size,
        });
    }
}

const NodeRegion&
AddressMap::region(NodeId node) const
{
    PULSE_ASSERT(node < regions_.size(), "bad node id %u", node);
    return regions_[node];
}

std::optional<NodeId>
AddressMap::node_for(VirtAddr va) const
{
    if (va < base_) {
        return std::nullopt;
    }
    const auto index = (va - base_) / region_size_;
    if (index >= regions_.size()) {
        return std::nullopt;
    }
    return static_cast<NodeId>(index);
}

Bytes
AddressMap::offset_in_region(VirtAddr va) const
{
    const auto node = node_for(va);
    PULSE_ASSERT(node.has_value(), "va 0x%llx outside the VA space",
                 static_cast<unsigned long long>(va));
    return va - regions_[*node].base;
}

}  // namespace pulse::mem
