/**
 * @file
 * Disaggregated-memory allocator with the two placement policies the
 * paper evaluates (supplementary Fig. 2).
 *
 * The paper does not innovate on allocation (section 2.2): it uses
 * glibc-style load-balanced allocation across nodes, and additionally
 * evaluates an application-directed *partitioned* policy that keeps
 * logically-adjacent data (e.g. half a B+Tree) on one node. We provide
 * both:
 *   - kUniform: each allocation picks a node uniformly at random.
 *   - kPartitioned: the caller pins each allocation to an explicit node
 *     (data-structure builders derive the node from keys/subtrees).
 *
 * Within a node this is a bump allocator with alignment; the evaluation
 * never frees mid-run (builders populate once, then the workload is
 * read-mostly), matching the paper's setup. The one exception is live
 * migration: the placement plane reserves backing store for a slab's
 * new home with alloc_backing and returns the vacated range with
 * free_backing, so repeated rebalancing reuses addresses instead of
 * leaking the old ranges.
 */
#ifndef PULSE_MEM_ALLOCATOR_H
#define PULSE_MEM_ALLOCATOR_H

#include <vector>

#include "common/random.h"
#include "common/serial.h"
#include "mem/address_map.h"

namespace pulse::mem {

/** Placement policy across memory nodes. */
enum class AllocPolicy {
    kUniform,      ///< glibc-like: uniform-random node per allocation
    kPartitioned,  ///< application-directed: caller chooses the node
};

/** Bump allocator over the cluster VA space. */
class ClusterAllocator
{
  public:
    /**
     * Create an allocator over @p map using @p policy. @p seed controls
     * the uniform policy's node choice.
     *
     * @param uniform_chunk_bytes arena granularity of the uniform
     *        policy: allocations fill a slab on one random node before
     *        a new random node is drawn (glibc-arena-like locality).
     *        0 draws a fresh random node per allocation — the fully
     *        "random" policy of the paper's supplementary Fig. 2.
     */
    ClusterAllocator(const AddressMap& map, AllocPolicy policy,
                     std::uint64_t seed = 1,
                     Bytes uniform_chunk_bytes = 0);

    /** Active policy. */
    AllocPolicy policy() const { return policy_; }

    /**
     * Allocate @p size bytes, aligned to @p align. Under kPartitioned
     * this round-robins nodes (callers who care use alloc_on); under
     * kUniform it picks a random node. Returns kNullAddr when every
     * node is exhausted.
     */
    VirtAddr alloc(Bytes size, Bytes align = 8);

    /** Allocate @p size bytes on a specific node. */
    VirtAddr alloc_on(NodeId node, Bytes size, Bytes align = 8);

    /** Bytes allocated so far on @p node (application data plus any
     *  backing store taken from the bump frontier). */
    Bytes allocated_on(NodeId node) const;

    /**
     * Frontier of *application* allocation on @p node: the highest
     * offset reached by alloc/alloc_on, excluding backing-store
     * reservations (alloc_backing). Planes that treat a node's
     * allocation prefix as traversable application data (replication)
     * must use this, not allocated_on — backing store holds byte
     * copies of data homed elsewhere and must never be re-replicated.
     */
    Bytes app_allocated_on(NodeId node) const;

    /** Total bytes allocated. */
    Bytes total_allocated() const;

    /** Remaining capacity on @p node. */
    Bytes free_on(NodeId node) const;

    /**
     * Reserve @p size bytes of node-local backing store on @p node for
     * a migrated slab. Prefers ranges recycled by free_backing (first
     * fit) and falls back to the bump frontier. Returns the node-local
     * physical offset, or kNullAddr-equivalent failure as
     * @c Bytes(-1) when the node is exhausted.
     */
    static constexpr Bytes kNoBacking = static_cast<Bytes>(-1);
    Bytes alloc_backing(NodeId node, Bytes size, Bytes align = 8);

    /**
     * Return a backing range reserved by alloc_backing (or vacated by
     * migrating a slab off @p node) to the node's free list, merging
     * with adjacent free ranges so the space is reusable at full size.
     */
    void free_backing(NodeId node, Bytes offset, Bytes size);

    /** Total bytes currently sitting in @p node's free list. */
    Bytes free_list_bytes(NodeId node) const;

    /** Checkpoint support (core/checkpoint.h). */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

  private:
    /** One reusable hole in a node's backing store. */
    struct FreeRange
    {
        Bytes offset = 0;
        Bytes size = 0;
    };

    const AddressMap& map_;
    AllocPolicy policy_;
    Rng rng_;
    Bytes chunk_bytes_;
    std::vector<Bytes> bump_;  // next free offset per node
    std::vector<Bytes> app_high_;  // frontier sans backing store
    std::vector<std::vector<FreeRange>> free_lists_;  // sorted by offset
    NodeId round_robin_ = 0;
    VirtAddr chunk_next_ = kNullAddr;  // uniform-policy slab cursor
    VirtAddr chunk_end_ = kNullAddr;
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_ALLOCATOR_H
