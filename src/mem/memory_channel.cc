#include "mem/memory_channel.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::mem {

MemoryChannel::MemoryChannel(Rate raw_bw) : raw_bw_(raw_bw)
{
    PULSE_ASSERT(raw_bw > 0, "non-positive channel bandwidth");
}

void
MemoryChannel::set_efficiency(double efficiency)
{
    PULSE_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
                 "efficiency out of range");
    efficiency_ = efficiency;
}

Time
MemoryChannel::access(Time now, Bytes bytes)
{
    const Time start = std::max(now, busy_until_);
    const Time occupancy = transfer_time(bytes, effective_bandwidth());
    busy_until_ = start + occupancy;
    bytes_ += bytes;
    busy_time_ += occupancy;
    return busy_until_;
}

void
MemoryChannel::reset_stats()
{
    bytes_ = 0;
    busy_time_ = 0;
}

ChannelSet::ChannelSet(std::uint32_t num_channels,
                       Rate raw_bw_per_channel,
                       double interconnect_efficiency)
    : efficiency_(interconnect_efficiency)
{
    PULSE_ASSERT(num_channels > 0, "need at least one channel");
    channels_.reserve(num_channels);
    for (std::uint32_t i = 0; i < num_channels; i++) {
        channels_.emplace_back(raw_bw_per_channel);
        channels_.back().set_efficiency(efficiency_);
    }
}

void
ChannelSet::set_interconnect_enabled(bool enabled)
{
    interconnect_ = enabled;
    for (auto& channel : channels_) {
        channel.set_efficiency(enabled ? efficiency_ : 1.0);
    }
}

Time
ChannelSet::access(Time now, Bytes bytes)
{
    auto* best = &channels_.front();
    std::uint32_t best_index = 0;
    for (std::uint32_t i = 0; i < channels_.size(); i++) {
        if (channels_[i].busy_until() < best->busy_until()) {
            best = &channels_[i];
            best_index = i;
        }
    }
    const Time start = std::max(now, best->busy_until());
    const Time done = best->access(now, bytes);
    record_span(best_index, start, done, bytes);
    return done;
}

Time
ChannelSet::access_on(std::uint32_t channel, Time now, Bytes bytes)
{
    PULSE_ASSERT(channel < channels_.size(), "bad channel %u", channel);
    const Time start = std::max(now, channels_[channel].busy_until());
    const Time done = channels_[channel].access(now, bytes);
    record_span(channel, start, done, bytes);
    return done;
}

void
ChannelSet::record_span(std::uint32_t channel, Time start, Time done,
                        Bytes bytes)
{
    if (tracer_ == nullptr || !tracer_->enabled()) {
        return;
    }
    // The channel arbiter has no request identity; spans carry the
    // channel index in the request's seq slot for per-channel views.
    tracer_->record({RequestId{0, channel},
                     trace::SpanKind::kMemChannel,
                     trace::Location::kMemNode, node_, start,
                     done - start, static_cast<std::uint64_t>(bytes)});
}

Rate
ChannelSet::total_effective_bandwidth() const
{
    Rate total = 0;
    for (const auto& channel : channels_) {
        total += channel.effective_bandwidth();
    }
    return total;
}

Bytes
ChannelSet::bytes_transferred() const
{
    Bytes total = 0;
    for (const auto& channel : channels_) {
        total += channel.bytes_transferred();
    }
    return total;
}

Rate
ChannelSet::achieved_bandwidth(Time window) const
{
    if (window <= 0) {
        return 0;
    }
    return static_cast<Rate>(bytes_transferred()) / to_seconds(window);
}

void
ChannelSet::reset_stats()
{
    for (auto& channel : channels_) {
        channel.reset_stats();
    }
}

void
ChannelSet::save_state(StateWriter& writer) const
{
    writer.put_tag("CHAN");
    writer.put_u64(channels_.size());
    for (const MemoryChannel& channel : channels_) {
        writer.put_i64(channel.busy_until());
        writer.put_u64(channel.bytes_transferred());
        writer.put_i64(channel.busy_time());
    }
}

void
ChannelSet::load_state(StateReader& reader)
{
    reader.expect_tag("CHAN");
    const std::uint64_t count = reader.get_u64();
    PULSE_ASSERT(count == channels_.size(),
                 "checkpoint channel count mismatch");
    for (MemoryChannel& channel : channels_) {
        const Time busy_until = reader.get_i64();
        const Bytes bytes = reader.get_u64();
        const Time busy_time = reader.get_i64();
        channel.restore(busy_until, bytes, busy_time);
    }
}

}  // namespace pulse::mem
