#include "mem/physical_memory.h"

#include <cstring>

#include "common/logging.h"

namespace pulse::mem {

PhysicalMemory::PhysicalMemory(Bytes capacity) : capacity_(capacity)
{
    PULSE_ASSERT(capacity > 0, "zero-capacity memory node");
    chunks_.resize((capacity + kChunkSize - 1) / kChunkSize);
}

Bytes
PhysicalMemory::committed() const
{
    Bytes total = 0;
    for (const auto& chunk : chunks_) {
        if (chunk) {
            total += kChunkSize;
        }
    }
    return total;
}

std::uint8_t*
PhysicalMemory::chunk_for(PhysAddr addr, bool commit) const
{
    const auto index = addr / kChunkSize;
    PULSE_ASSERT(index < chunks_.size(),
                 "physical address 0x%llx out of range",
                 static_cast<unsigned long long>(addr));
    if (!chunks_[index]) {
        if (!commit) {
            return nullptr;
        }
        chunks_[index] = std::make_unique<std::uint8_t[]>(kChunkSize);
        std::memset(chunks_[index].get(), 0, kChunkSize);
    }
    return chunks_[index].get();
}

void
PhysicalMemory::read(PhysAddr addr, void* out, Bytes len) const
{
    PULSE_ASSERT(addr + len <= capacity_, "read past end of memory");
    auto* dst = static_cast<std::uint8_t*>(out);
    while (len > 0) {
        const Bytes offset = addr % kChunkSize;
        const Bytes take = std::min(len, kChunkSize - offset);
        const std::uint8_t* chunk = chunk_for(addr, /*commit=*/false);
        if (chunk) {
            std::memcpy(dst, chunk + offset, take);
        } else {
            std::memset(dst, 0, take);  // never-written memory reads 0
        }
        dst += take;
        addr += take;
        len -= take;
    }
}

void
PhysicalMemory::write(PhysAddr addr, const void* in, Bytes len)
{
    PULSE_ASSERT(addr + len <= capacity_, "write past end of memory");
    mutations_++;
    const auto* src = static_cast<const std::uint8_t*>(in);
    while (len > 0) {
        const Bytes offset = addr % kChunkSize;
        const Bytes take = std::min(len, kChunkSize - offset);
        std::uint8_t* chunk = chunk_for(addr, /*commit=*/true);
        std::memcpy(chunk + offset, src, take);
        src += take;
        addr += take;
        len -= take;
    }
}

void
PhysicalMemory::save_state(StateWriter& writer) const
{
    writer.put_tag("PMEM");
    writer.put_u64(capacity_);
    writer.put_u64(mutations_);
    std::uint64_t committed_chunks = 0;
    for (const auto& chunk : chunks_) {
        if (chunk) {
            committed_chunks++;
        }
    }
    writer.put_u64(committed_chunks);
    for (std::size_t i = 0; i < chunks_.size(); i++) {
        if (chunks_[i]) {
            writer.put_u64(i);
            writer.put_bytes(chunks_[i].get(), kChunkSize);
        }
    }
}

void
PhysicalMemory::load_state(StateReader& reader)
{
    reader.expect_tag("PMEM");
    const Bytes capacity = reader.get_u64();
    PULSE_ASSERT(capacity == capacity_,
                 "checkpoint node capacity mismatch");
    mutations_ = reader.get_u64();
    // Decommit everything first: a chunk committed by the current run
    // but absent from the snapshot must read zeros again.
    for (auto& chunk : chunks_) {
        chunk.reset();
    }
    const std::uint64_t committed_chunks = reader.get_u64();
    for (std::uint64_t c = 0; c < committed_chunks; c++) {
        const std::uint64_t index = reader.get_u64();
        PULSE_ASSERT(index < chunks_.size(),
                     "checkpoint chunk index out of range");
        chunks_[index] = std::make_unique<std::uint8_t[]>(kChunkSize);
        reader.get_bytes_into(chunks_[index].get(), kChunkSize);
    }
}

}  // namespace pulse::mem
