/**
 * @file
 * Memory-channel bandwidth model for a memory node.
 *
 * The paper's U250 board exposes four memory channels split two per
 * accelerator; each memory node therefore has two channels and a 25 GB/s
 * aggregate limit imposed via the vendor memory-interconnect IP (the
 * board reaches 34 GB/s with per-core dedicated channels — supplementary
 * Fig. 1b). We model each channel as a serially-occupied resource:
 *
 *   completion = max(now, busy_until) + occupancy(bytes)
 *
 * where occupancy = bytes / effective_bandwidth. Access *latency*
 * (translation + DRAM access, ~120 ns) is added by the caller (the
 * accelerator memory pipeline or the CPU model); the channel only
 * accounts for bandwidth contention, which is what saturates under load.
 *
 * The interconnect IP is modelled as a bandwidth-efficiency factor
 * (25/34 by default) applied while enabled, reproducing the
 * "w/o interconnect" series of supplementary Fig. 1b when disabled.
 */
#ifndef PULSE_MEM_MEMORY_CHANNEL_H
#define PULSE_MEM_MEMORY_CHANNEL_H

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "common/stats.h"
#include "common/units.h"
#include "trace/trace.h"

namespace pulse::mem {

/** One DRAM channel: a bandwidth-limited serial resource. */
class MemoryChannel
{
  public:
    /** Channel with raw bandwidth @p raw_bw (bytes/s). */
    explicit MemoryChannel(Rate raw_bw);

    /** Raw (no-interconnect) bandwidth. */
    Rate raw_bandwidth() const { return raw_bw_; }

    /** Effective bandwidth after the interconnect factor. */
    Rate effective_bandwidth() const { return raw_bw_ * efficiency_; }

    /** Set the interconnect efficiency factor in (0, 1]. */
    void set_efficiency(double efficiency);

    /**
     * Reserve the channel for a @p bytes transfer arriving at @p now.
     * Returns the completion time; the channel is busy until then.
     */
    Time access(Time now, Bytes bytes);

    /** Earliest time a new transfer could start. */
    Time busy_until() const { return busy_until_; }

    /** Total bytes transferred. */
    Bytes bytes_transferred() const { return bytes_; }

    /** Total time the channel spent transferring. */
    Time busy_time() const { return busy_time_; }

    /** Reset statistics (not the busy horizon). */
    void reset_stats();

    /** Checkpoint support: reinstate horizon + counters. */
    void
    restore(Time busy_until, Bytes bytes, Time busy_time)
    {
        busy_until_ = busy_until;
        bytes_ = bytes;
        busy_time_ = busy_time;
    }

  private:
    Rate raw_bw_;
    double efficiency_ = 1.0;
    Time busy_until_ = 0;
    Bytes bytes_ = 0;
    Time busy_time_ = 0;
};

/**
 * A memory node's set of channels. Accesses are steered to the channel
 * that can start earliest (the interconnect IP connects all cores to all
 * channels); with the interconnect disabled, callers may pin accesses to
 * a specific channel (dedicated-channel mode).
 */
class ChannelSet
{
  public:
    /**
     * @p num_channels channels of @p raw_bw_per_channel each;
     * @p interconnect_efficiency applies while shared mode is on.
     */
    ChannelSet(std::uint32_t num_channels, Rate raw_bw_per_channel,
               double interconnect_efficiency);

    /** Number of channels. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /** Toggle the interconnect IP model (shared vs dedicated mode). */
    void set_interconnect_enabled(bool enabled);

    /** Whether the interconnect model is active. */
    bool interconnect_enabled() const { return interconnect_; }

    /** Schedule an access on the least-busy channel. */
    Time access(Time now, Bytes bytes);

    /** Schedule an access pinned to channel @p channel. */
    Time access_on(std::uint32_t channel, Time now, Bytes bytes);

    /** Aggregate effective bandwidth (bytes/s). */
    Rate total_effective_bandwidth() const;

    /** Total bytes moved across all channels. */
    Bytes bytes_transferred() const;

    /** Achieved bandwidth over @p window (bytes/s). */
    Rate achieved_bandwidth(Time window) const;

    /** Reset statistics on all channels. */
    void reset_stats();

    /** Checkpoint support (core/checkpoint.h). */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

    /**
     * Attach the cluster's span tracer; @p node labels the spans.
     * Channel occupancy spans are not request-attributed (the channel
     * arbiter sees bursts, not request ids), so they record whenever
     * the tracer is enabled.
     */
    void
    set_tracer(trace::Tracer* tracer, NodeId node)
    {
        tracer_ = tracer;
        node_ = node;
    }

  private:
    /** Record one occupancy span for a transfer on @p channel. */
    void record_span(std::uint32_t channel, Time start, Time done,
                     Bytes bytes);

    std::vector<MemoryChannel> channels_;
    double efficiency_;
    bool interconnect_ = true;
    trace::Tracer* tracer_ = nullptr;
    NodeId node_ = 0;
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_MEMORY_CHANNEL_H
