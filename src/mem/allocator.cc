#include "mem/allocator.h"

#include <algorithm>

#include "common/logging.h"

namespace pulse::mem {
namespace {

Bytes
align_up(Bytes value, Bytes align)
{
    PULSE_ASSERT(align > 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    return (value + align - 1) & ~(align - 1);
}

}  // namespace

ClusterAllocator::ClusterAllocator(const AddressMap& map,
                                   AllocPolicy policy,
                                   std::uint64_t seed,
                                   Bytes uniform_chunk_bytes)
    : map_(map), policy_(policy), rng_(seed),
      chunk_bytes_(uniform_chunk_bytes), bump_(map.num_nodes(), 0),
      app_high_(map.num_nodes(), 0), free_lists_(map.num_nodes())
{
}

VirtAddr
ClusterAllocator::alloc(Bytes size, Bytes align)
{
    const std::uint32_t n = map_.num_nodes();

    // Slab-granular uniform placement: fill the current slab, then
    // draw a fresh random node for the next one.
    if (policy_ == AllocPolicy::kUniform && chunk_bytes_ > 0 &&
        size <= chunk_bytes_) {
        const VirtAddr aligned = (chunk_next_ + align - 1) &
                                 ~(static_cast<VirtAddr>(align) - 1);
        if (chunk_next_ != kNullAddr && aligned + size <= chunk_end_) {
            chunk_next_ = aligned + size;
            return aligned;
        }
        for (std::uint32_t i = 0; i < n; i++) {
            const NodeId node = static_cast<NodeId>(
                (rng_.next_below(n) + i) % n);
            const VirtAddr base =
                alloc_on(node, chunk_bytes_, align);
            if (base != kNullAddr) {
                chunk_next_ = base + size;
                chunk_end_ = base + chunk_bytes_;
                return base;
            }
        }
        return kNullAddr;
    }

    NodeId first;
    if (policy_ == AllocPolicy::kUniform) {
        first = static_cast<NodeId>(rng_.next_below(n));
    } else {
        first = round_robin_;
        round_robin_ = (round_robin_ + 1) % n;
    }
    // Fall over to subsequent nodes if the chosen one is full.
    for (std::uint32_t i = 0; i < n; i++) {
        const NodeId node = (first + i) % n;
        const VirtAddr va = alloc_on(node, size, align);
        if (va != kNullAddr) {
            return va;
        }
    }
    return kNullAddr;
}

VirtAddr
ClusterAllocator::alloc_on(NodeId node, Bytes size, Bytes align)
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    PULSE_ASSERT(size > 0, "zero-size allocation");
    const Bytes start = align_up(bump_[node], align);
    if (start + size > map_.region_size()) {
        return kNullAddr;
    }
    bump_[node] = start + size;
    app_high_[node] = bump_[node];
    return map_.region(node).base + start;
}

Bytes
ClusterAllocator::allocated_on(NodeId node) const
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    return bump_[node];
}

Bytes
ClusterAllocator::app_allocated_on(NodeId node) const
{
    PULSE_ASSERT(node < app_high_.size(), "bad node id %u", node);
    return app_high_[node];
}

Bytes
ClusterAllocator::total_allocated() const
{
    Bytes total = 0;
    for (const Bytes b : bump_) {
        total += b;
    }
    return total;
}

Bytes
ClusterAllocator::free_on(NodeId node) const
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    return map_.region_size() - bump_[node];
}

Bytes
ClusterAllocator::alloc_backing(NodeId node, Bytes size, Bytes align)
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    PULSE_ASSERT(size > 0, "zero-size backing allocation");
    // First fit in the recycled ranges.
    auto& holes = free_lists_[node];
    for (auto it = holes.begin(); it != holes.end(); ++it) {
        const Bytes start = align_up(it->offset, align);
        const Bytes waste = start - it->offset;
        if (waste + size > it->size) {
            continue;
        }
        const Bytes tail = it->size - waste - size;
        if (waste == 0 && tail == 0) {
            holes.erase(it);
        } else if (waste == 0) {
            it->offset = start + size;
            it->size = tail;
        } else if (tail == 0) {
            it->size = waste;
        } else {
            const Bytes tail_offset = start + size;
            it->size = waste;
            holes.insert(it + 1, FreeRange{tail_offset, tail});
        }
        return start;
    }
    // Fall back to the bump frontier.
    const Bytes start = align_up(bump_[node], align);
    if (start + size > map_.region_size()) {
        return kNoBacking;
    }
    bump_[node] = start + size;
    return start;
}

void
ClusterAllocator::free_backing(NodeId node, Bytes offset, Bytes size)
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    PULSE_ASSERT(size > 0, "zero-size backing free");
    PULSE_ASSERT(offset + size <= bump_[node],
                 "freeing past the bump frontier");
    auto& holes = free_lists_[node];
    auto pos = std::lower_bound(
        holes.begin(), holes.end(), offset,
        [](const FreeRange& r, Bytes o) { return r.offset < o; });
    PULSE_ASSERT(pos == holes.end() || offset + size <= pos->offset,
                 "double free of backing range");
    PULSE_ASSERT(pos == holes.begin() ||
                     (pos - 1)->offset + (pos - 1)->size <= offset,
                 "double free of backing range");
    // Merge with adjacent holes so repeated migration reuses space at
    // full slab size.
    const bool merge_prev =
        pos != holes.begin() &&
        (pos - 1)->offset + (pos - 1)->size == offset;
    const bool merge_next =
        pos != holes.end() && offset + size == pos->offset;
    if (merge_prev && merge_next) {
        (pos - 1)->size += size + pos->size;
        holes.erase(pos);
    } else if (merge_prev) {
        (pos - 1)->size += size;
    } else if (merge_next) {
        pos->offset = offset;
        pos->size += size;
    } else {
        holes.insert(pos, FreeRange{offset, size});
    }
}

Bytes
ClusterAllocator::free_list_bytes(NodeId node) const
{
    PULSE_ASSERT(node < free_lists_.size(), "bad node id %u", node);
    Bytes total = 0;
    for (const FreeRange& r : free_lists_[node]) {
        total += r.size;
    }
    return total;
}

void
ClusterAllocator::save_state(StateWriter& writer) const
{
    writer.put_tag("ALOC");
    writer.put_u8(static_cast<std::uint8_t>(policy_));
    std::uint64_t rng_state[4];
    rng_.save_state(rng_state);
    for (const std::uint64_t word : rng_state) {
        writer.put_u64(word);
    }
    writer.put_u64(chunk_bytes_);
    writer.put_u64(bump_.size());
    for (std::size_t i = 0; i < bump_.size(); i++) {
        writer.put_u64(bump_[i]);
        writer.put_u64(app_high_[i]);
        writer.put_u64(free_lists_[i].size());
        for (const FreeRange& range : free_lists_[i]) {
            writer.put_u64(range.offset);
            writer.put_u64(range.size);
        }
    }
    writer.put_u32(round_robin_);
    writer.put_u64(chunk_next_);
    writer.put_u64(chunk_end_);
}

void
ClusterAllocator::load_state(StateReader& reader)
{
    reader.expect_tag("ALOC");
    const auto policy = static_cast<AllocPolicy>(reader.get_u8());
    PULSE_ASSERT(policy == policy_,
                 "checkpoint allocator policy mismatch");
    std::uint64_t rng_state[4];
    for (std::uint64_t& word : rng_state) {
        word = reader.get_u64();
    }
    rng_.restore_state(rng_state);
    chunk_bytes_ = reader.get_u64();
    const std::uint64_t nodes = reader.get_u64();
    PULSE_ASSERT(nodes == bump_.size(),
                 "checkpoint allocator node count mismatch");
    for (std::size_t i = 0; i < bump_.size(); i++) {
        bump_[i] = reader.get_u64();
        app_high_[i] = reader.get_u64();
        free_lists_[i].resize(reader.get_u64());
        for (FreeRange& range : free_lists_[i]) {
            range.offset = reader.get_u64();
            range.size = reader.get_u64();
        }
    }
    round_robin_ = reader.get_u32();
    chunk_next_ = reader.get_u64();
    chunk_end_ = reader.get_u64();
}

}  // namespace pulse::mem
