#include "mem/allocator.h"

#include "common/logging.h"

namespace pulse::mem {
namespace {

Bytes
align_up(Bytes value, Bytes align)
{
    PULSE_ASSERT(align > 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    return (value + align - 1) & ~(align - 1);
}

}  // namespace

ClusterAllocator::ClusterAllocator(const AddressMap& map,
                                   AllocPolicy policy,
                                   std::uint64_t seed,
                                   Bytes uniform_chunk_bytes)
    : map_(map), policy_(policy), rng_(seed),
      chunk_bytes_(uniform_chunk_bytes), bump_(map.num_nodes(), 0)
{
}

VirtAddr
ClusterAllocator::alloc(Bytes size, Bytes align)
{
    const std::uint32_t n = map_.num_nodes();

    // Slab-granular uniform placement: fill the current slab, then
    // draw a fresh random node for the next one.
    if (policy_ == AllocPolicy::kUniform && chunk_bytes_ > 0 &&
        size <= chunk_bytes_) {
        const VirtAddr aligned = (chunk_next_ + align - 1) &
                                 ~(static_cast<VirtAddr>(align) - 1);
        if (chunk_next_ != kNullAddr && aligned + size <= chunk_end_) {
            chunk_next_ = aligned + size;
            return aligned;
        }
        for (std::uint32_t i = 0; i < n; i++) {
            const NodeId node = static_cast<NodeId>(
                (rng_.next_below(n) + i) % n);
            const VirtAddr base =
                alloc_on(node, chunk_bytes_, align);
            if (base != kNullAddr) {
                chunk_next_ = base + size;
                chunk_end_ = base + chunk_bytes_;
                return base;
            }
        }
        return kNullAddr;
    }

    NodeId first;
    if (policy_ == AllocPolicy::kUniform) {
        first = static_cast<NodeId>(rng_.next_below(n));
    } else {
        first = round_robin_;
        round_robin_ = (round_robin_ + 1) % n;
    }
    // Fall over to subsequent nodes if the chosen one is full.
    for (std::uint32_t i = 0; i < n; i++) {
        const NodeId node = (first + i) % n;
        const VirtAddr va = alloc_on(node, size, align);
        if (va != kNullAddr) {
            return va;
        }
    }
    return kNullAddr;
}

VirtAddr
ClusterAllocator::alloc_on(NodeId node, Bytes size, Bytes align)
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    PULSE_ASSERT(size > 0, "zero-size allocation");
    const Bytes start = align_up(bump_[node], align);
    if (start + size > map_.region_size()) {
        return kNullAddr;
    }
    bump_[node] = start + size;
    return map_.region(node).base + start;
}

Bytes
ClusterAllocator::allocated_on(NodeId node) const
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    return bump_[node];
}

Bytes
ClusterAllocator::total_allocated() const
{
    Bytes total = 0;
    for (const Bytes b : bump_) {
        total += b;
    }
    return total;
}

Bytes
ClusterAllocator::free_on(NodeId node) const
{
    PULSE_ASSERT(node < bump_.size(), "bad node id %u", node);
    return map_.region_size() - bump_[node];
}

}  // namespace pulse::mem
