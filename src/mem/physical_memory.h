/**
 * @file
 * Backing store for one memory node's DRAM.
 *
 * Functionally a flat byte array addressed by node-local physical
 * addresses; storage is committed lazily in fixed-size chunks so that a
 * simulated multi-gigabyte node only consumes host memory for the pages
 * the workload actually touches.
 */
#ifndef PULSE_MEM_PHYSICAL_MEMORY_H
#define PULSE_MEM_PHYSICAL_MEMORY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serial.h"
#include "common/types.h"
#include "common/units.h"

namespace pulse::mem {

/** Lazily-committed byte store for a single memory node. */
class PhysicalMemory
{
  public:
    /** Create a node memory of @p capacity bytes. */
    explicit PhysicalMemory(Bytes capacity);

    /** Total addressable capacity. */
    Bytes capacity() const { return capacity_; }

    /** Host memory actually committed so far. */
    Bytes committed() const;

    /** Copy @p len bytes at physical address @p addr into @p out. */
    void read(PhysAddr addr, void* out, Bytes len) const;

    /** Copy @p len bytes from @p in to physical address @p addr. */
    void write(PhysAddr addr, const void* in, Bytes len);

    /**
     * Number of write() calls since construction. Every mutation of
     * node memory funnels through write(), so the golden oracle uses
     * this to detect whether other writers raced a checked traversal
     * (exact comparison is only sound when none did).
     */
    std::uint64_t mutations() const { return mutations_; }

    /** Convenience typed read of a trivially-copyable value. */
    template <typename T>
    T
    read_as(PhysAddr addr) const
    {
        T value{};
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Convenience typed write of a trivially-copyable value. */
    template <typename T>
    void
    write_as(PhysAddr addr, const T& value)
    {
        write(addr, &value, sizeof(T));
    }

    /**
     * Checkpoint support (core/checkpoint.h): serializes only the
     * committed chunks (index + bytes), so a sparse multi-GiB node
     * costs what the workload actually touched.
     */
    void save_state(StateWriter& writer) const;
    void load_state(StateReader& reader);

  private:
    static constexpr Bytes kChunkSize = 1 * kMiB;

    std::uint8_t* chunk_for(PhysAddr addr, bool commit) const;

    Bytes capacity_;
    std::uint64_t mutations_ = 0;
    // mutable: reads of never-written chunks return zeros without commit,
    // but the chunk table itself may grow on first commit during write.
    mutable std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_PHYSICAL_MEMORY_H
