/**
 * @file
 * Functional view of the whole disaggregated memory pool.
 *
 * GlobalMemory composes the AddressMap with every node's PhysicalMemory
 * and exposes byte-level reads/writes by cluster virtual address. It is
 * the *functional* path used by data-structure builders and by reference
 * (host-side) traversal execution; all *timed* paths (accelerator memory
 * pipeline, RPC CPU model, page cache) layer their timing on top and then
 * call into this for data movement.
 *
 * The cluster uses identity mapping inside each node region (VA offset ==
 * node-local physical address); per-node TCAMs are installed to match, so
 * functional and timed paths always observe the same bytes.
 */
#ifndef PULSE_MEM_GLOBAL_MEMORY_H
#define PULSE_MEM_GLOBAL_MEMORY_H

#include <memory>
#include <vector>

#include "mem/address_map.h"
#include "mem/physical_memory.h"

namespace pulse::mem {

/** Functional cluster-wide memory. */
class GlobalMemory
{
  public:
    /**
     * Create @p num_nodes memory nodes of @p node_capacity bytes each,
     * laid out per AddressMap.
     */
    GlobalMemory(std::uint32_t num_nodes, Bytes node_capacity);

    /** The VA partition. */
    const AddressMap& address_map() const { return map_; }

    /**
     * Mutable VA partition, for the placement plane to install/clear
     * remap overlays at migration cutover.
     */
    AddressMap& mutable_address_map() { return map_; }

    /** Direct access to one node's backing store. */
    PhysicalMemory& node(NodeId id);
    const PhysicalMemory& node(NodeId id) const;

    /** Number of memory nodes. */
    std::uint32_t num_nodes() const { return map_.num_nodes(); }

    /**
     * Read @p len bytes at virtual address @p va. The span must lie
     * within a single node region (allocations never straddle nodes).
     */
    void read(VirtAddr va, void* out, Bytes len) const;

    /** Write @p len bytes to virtual address @p va (single region). */
    void write(VirtAddr va, const void* in, Bytes len);

    /**
     * Sum of PhysicalMemory::mutations() across nodes: a cheap global
     * version counter for memory content. The golden oracle samples it
     * at submit and completion to decide whether an exact comparison
     * against the reference run is sound.
     */
    std::uint64_t
    mutation_count() const
    {
        std::uint64_t total = 0;
        for (const auto& node : nodes_) {
            total += node->mutations();
        }
        return total;
    }

    /** Typed read of a trivially-copyable value at @p va. */
    template <typename T>
    T
    read_as(VirtAddr va) const
    {
        T value{};
        read(va, &value, sizeof(T));
        return value;
    }

    /** Typed write of a trivially-copyable value at @p va. */
    template <typename T>
    void
    write_as(VirtAddr va, const T& value)
    {
        write(va, &value, sizeof(T));
    }

    /** Checkpoint support: every node's committed pages + counters. */
    void
    save_state(StateWriter& writer) const
    {
        writer.put_tag("GMEM");
        writer.put_u64(nodes_.size());
        for (const auto& node : nodes_) {
            node->save_state(writer);
        }
    }

    void
    load_state(StateReader& reader)
    {
        reader.expect_tag("GMEM");
        const std::uint64_t count = reader.get_u64();
        PULSE_ASSERT(count == nodes_.size(),
                     "checkpoint memory-node count mismatch");
        for (auto& node : nodes_) {
            node->load_state(reader);
        }
    }

  private:
    AddressMap map_;
    std::vector<std::unique_ptr<PhysicalMemory>> nodes_;
};

}  // namespace pulse::mem

#endif  // PULSE_MEM_GLOBAL_MEMORY_H
