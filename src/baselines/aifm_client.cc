#include "baselines/aifm_client.h"

#include "common/logging.h"

namespace pulse::baselines {

AifmClient::AifmClient(sim::EventQueue& queue, RpcRuntime& rpc,
                       const AifmConfig& config)
    : queue_(queue), rpc_(rpc), config_(config)
{
    PULSE_ASSERT(config.cache_bytes > 0, "empty object cache");
}

bool
AifmClient::cache_lookup(std::uint64_t object_id)
{
    const auto it = map_.find(object_id);
    if (it == map_.end()) {
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return true;
}

void
AifmClient::cache_install(std::uint64_t object_id, Bytes bytes)
{
    if (map_.count(object_id)) {
        return;
    }
    while (cached_bytes_ + bytes > config_.cache_bytes && !lru_.empty()) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        cached_bytes_ -= map_[victim].bytes;
        map_.erase(victim);
        stats_.evictions.increment();
    }
    lru_.push_front(object_id);
    map_[object_id] = Entry{lru_.begin(), bytes};
    cached_bytes_ += bytes;
}

void
AifmClient::submit(offload::Operation&& op)
{
    stats_.operations.increment();
    const bool cacheable = op.object_bytes > 0;
    if (cacheable && cache_lookup(op.object_id)) {
        stats_.hits.increment();
        // Local object dereference; completion carries no scratch (the
        // cached object is already client-resident).
        const Time start = queue_.now();
        queue_.schedule_after(
            op.init_cpu_time + config_.hit_latency,
            [start, done = std::move(op.done), this] {
                offload::Completion completion;
                completion.status = isa::TraversalStatus::kDone;
                completion.offloaded = false;
                completion.latency = queue_.now() - start;
                if (done) {
                    done(std::move(completion));
                }
            });
        return;
    }
    if (cacheable) {
        stats_.misses.increment();
    }

    const std::uint64_t object_id = op.object_id;
    const Bytes object_bytes = op.object_bytes;
    offload::CompletionFn user_done = std::move(op.done);
    op.done = [this, object_id, object_bytes,
               user_done = std::move(user_done)](
                  offload::Completion&& completion) mutable {
        if (object_bytes > 0 &&
            completion.status == isa::TraversalStatus::kDone) {
            cache_install(object_id, object_bytes);
        }
        if (user_done) {
            queue_.schedule_after(
                config_.install_latency,
                [user_done = std::move(user_done),
                 completion = std::move(completion)]() mutable {
                    user_done(std::move(completion));
                });
        }
    };
    rpc_.submit(std::move(op));
}

}  // namespace pulse::baselines
