/**
 * @file
 * Cache+RPC baseline (AIFM-representative, paper section 7).
 *
 * AIFM keeps a data-structure-aware, object-granularity cache inside
 * the client library and falls back to remote execution on misses. The
 * paper restricts this system to the UPC hash-table workload on a
 * single memory node (AIFM supports neither complex indexes like
 * B+Trees nor distributed execution) and notes its TCP-based transport
 * costs it latency versus eRPC — both restrictions are mirrored here.
 *
 * Model: an LRU cache keyed by object id (the lookup key). Hits pay a
 * local dereference; misses run the full traversal via the RPC runtime
 * configured with a TCP-like transport factor, then install the object.
 * Pointer-chasing workloads with uniform access get next to no reuse,
 * which is the paper's point ("data structure-aware caching is not
 * beneficial for pointer-chasing workloads").
 */
#ifndef PULSE_BASELINES_AIFM_CLIENT_H
#define PULSE_BASELINES_AIFM_CLIENT_H

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "baselines/rpc_runtime.h"

namespace pulse::baselines {

/** Cache+RPC tunables. */
struct AifmConfig
{
    /** Object-cache capacity in bytes (scaled like the page cache). */
    Bytes cache_bytes = 64 * kMiB;

    /** Local hit cost (hashtable lookup + dereference). */
    Time hit_latency = nanos(120.0);

    /** Per-object bookkeeping overhead on install. */
    Time install_latency = nanos(90.0);
};

/** Statistics. */
struct AifmStats
{
    Counter operations;
    Counter hits;
    Counter misses;
    Counter evictions;
};

/** The Cache+RPC client. */
class AifmClient
{
  public:
    /**
     * @param rpc the underlying RPC runtime; configure it with a
     *            transport_overhead_factor > 1 (TCP-like stack).
     */
    AifmClient(sim::EventQueue& queue, RpcRuntime& rpc,
               const AifmConfig& config);

    /**
     * Run an operation. @p op.object_id / op.object_bytes identify the
     * cacheable object (e.g. the looked-up key and its value size);
     * object_bytes == 0 disables caching for this op.
     */
    void submit(offload::Operation&& op);

    const AifmStats& stats() const { return stats_; }
    void reset_stats() { stats_ = AifmStats{}; }
    const AifmConfig& config() const { return config_; }

  private:
    bool cache_lookup(std::uint64_t object_id);
    void cache_install(std::uint64_t object_id, Bytes bytes);

    sim::EventQueue& queue_;
    RpcRuntime& rpc_;
    AifmConfig config_;
    std::list<std::uint64_t> lru_;
    struct Entry
    {
        std::list<std::uint64_t>::iterator lru_pos;
        Bytes bytes = 0;
    };
    std::unordered_map<std::uint64_t, Entry> map_;
    Bytes cached_bytes_ = 0;
    AifmStats stats_;
};

}  // namespace pulse::baselines

#endif  // PULSE_BASELINES_AIFM_CLIENT_H
