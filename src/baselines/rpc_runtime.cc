#include "baselines/rpc_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "isa/analysis.h"
#include "isa/interpreter.h"

namespace pulse::baselines {

using isa::TraversalStatus;

namespace {

constexpr std::uint64_t kIterationGuard = 1u << 20;

}  // namespace

struct RpcRuntime::OpState
{
    offload::Operation op;
    isa::Workspace workspace;
    Time submit_time = 0;
    std::uint64_t iterations = 0;
    std::uint32_t bounces = 0;
    Bytes scratch_wire = 0;  ///< scratch bytes shipped per message

    /**
     * At-most-once phase machine (reliable mode only). One "leg" is
     * one client -> server -> client exchange; bounces start new legs.
     * Server side: a duplicate arriving in kServing is ignored (the
     * original will answer), in kResponded it triggers a cached
     * response replay. Client side: responses for a superseded leg are
     * ignored, and kDone makes completion idempotent.
     */
    enum class Phase : std::uint8_t {
        kTravel,     ///< request on the wire (or lost)
        kServing,    ///< server executing (or queued)
        kResponded,  ///< response recorded/on the wire
        kDone,       ///< client accepted the final response
    };
    Phase phase = Phase::kTravel;
    std::uint64_t leg = 0;
    NodeId target_node = 0;
    std::uint32_t retransmits = 0;
    std::uint64_t timer_generation = 0;
    isa::TraversalStatus resp_status = isa::TraversalStatus::kDone;
    isa::ExecFault resp_fault = isa::ExecFault::kNone;
};

RpcRuntime::RpcRuntime(sim::EventQueue& queue, net::Network& network,
                       mem::GlobalMemory& memory,
                       std::vector<mem::ChannelSet*> node_channels,
                       ClientId client, const RpcConfig& config)
    : queue_(queue), network_(network), memory_(memory),
      node_channels_(std::move(node_channels)), client_(client),
      config_(config)
{
    PULSE_ASSERT(config.workers_per_node > 0, "need RPC workers");
    PULSE_ASSERT(node_channels_.size() == memory.num_nodes(),
                 "one channel set per node required");
    servers_.resize(memory.num_nodes());
    for (auto& server : servers_) {
        server.busy.assign(config.workers_per_node, false);
    }
}

void
RpcRuntime::submit(offload::Operation&& op)
{
    inflight_++;
    auto state = std::make_shared<OpState>();
    state->op = std::move(op);
    state->submit_time = queue_.now();
    state->workspace.configure(*state->op.program);
    state->workspace.cur_ptr = state->op.start_ptr;
    std::copy_n(state->op.init_scratch.begin(),
                std::min(state->op.init_scratch.size(),
                         state->workspace.scratch.size()),
                state->workspace.scratch.begin());
    const auto analysis = isa::analyze(*state->op.program);
    state->scratch_wire =
        std::max<Bytes>(analysis.scratch_footprint,
                        state->op.init_scratch.size());

    const Time issue_cost =
        state->op.init_cpu_time +
        static_cast<Time>(static_cast<double>(config_.client_overhead) *
                          config_.transport_overhead_factor / 2.0);
    queue_.schedule_after(issue_cost, [this, state] { issue(state); });
}

void
RpcRuntime::issue(const std::shared_ptr<OpState>& state)
{
    const auto node =
        memory_.address_map().node_for(state->workspace.cur_ptr);
    if (!node.has_value()) {
        state->phase = OpState::Phase::kDone;
        complete(state, TraversalStatus::kMemFault,
                 isa::ExecFault::kNone);
        return;
    }
    state->leg++;
    state->phase = OpState::Phase::kTravel;
    state->target_node = *node;
    send_request(state, *node);
    if (reliable()) {
        arm_timer(state);
    }
}

void
RpcRuntime::send_request(const std::shared_ptr<OpState>& state,
                         NodeId node)
{
    stats_.requests.increment();
    const Bytes request_bytes = net::kNetHeaderBytes +
                                config_.request_header_bytes +
                                state->scratch_wire;
    const std::uint64_t leg = state->leg;
    network_.send_message(net::EndpointAddr::client(client_),
                          net::EndpointAddr::mem_node(node),
                          request_bytes, [this, state, node, leg] {
                              on_request(state, node, leg);
                          });
}

void
RpcRuntime::arm_timer(const std::shared_ptr<OpState>& state)
{
    const std::uint64_t generation = ++state->timer_generation;
    const Time delay =
        config_.retransmit_timeout
        << std::min<std::uint32_t>(state->retransmits, 6);
    queue_.schedule_after(delay, [this, state, generation] {
        if (state->timer_generation != generation ||
            state->phase == OpState::Phase::kDone) {
            return;
        }
        if (state->retransmits >= config_.max_retransmits) {
            state->phase = OpState::Phase::kDone;
            stats_.failures.increment();
            complete(state, TraversalStatus::kMemFault,
                     isa::ExecFault::kNone, /*timed_out=*/true);
            return;
        }
        state->retransmits++;
        stats_.retransmits.increment();
        // Always resend the request: the server's phase machine turns
        // it into a no-op (kServing), a response replay (kResponded),
        // or a fresh execution (the original never arrived).
        send_request(state, state->target_node);
        arm_timer(state);
    });
}

void
RpcRuntime::on_request(const std::shared_ptr<OpState>& state,
                       NodeId node, std::uint64_t leg)
{
    if (reliable()) {
        if (leg != state->leg ||
            state->phase == OpState::Phase::kDone) {
            return;  // duplicate from a superseded leg
        }
        if (state->phase == OpState::Phase::kServing) {
            return;  // executing: the original run will answer
        }
        if (state->phase == OpState::Phase::kResponded) {
            // Already executed: replay the recorded response (the
            // response itself must have been lost or delayed).
            stats_.replays.increment();
            send_response(state, node, state->resp_status,
                          state->resp_fault);
            return;
        }
        state->phase = OpState::Phase::kServing;
    }
    serve(state, node);
}

void
RpcRuntime::serve(const std::shared_ptr<OpState>& state, NodeId node)
{
    NodeServer& server = servers_[node];
    for (std::uint32_t w = 0; w < server.busy.size(); w++) {
        if (!server.busy[w]) {
            server.busy[w] = true;
            begin_execution(state, node, w);
            return;
        }
    }
    server.pending.push_back(state);
}

void
RpcRuntime::begin_execution(const std::shared_ptr<OpState>& state,
                            NodeId node, std::uint32_t worker)
{
    const Time start = queue_.now();
    const Time server_cost = static_cast<Time>(
        static_cast<double>(config_.server_overhead) *
        config_.transport_overhead_factor);
    queue_.schedule_after(server_cost,
                          [this, state, node, worker, start] {
                              execute_step(state, node, worker, start);
                          });
}

void
RpcRuntime::execute_step(const std::shared_ptr<OpState>& state,
                         NodeId node, std::uint32_t worker, Time start)
{
    // One iteration per event: load (DRAM latency + channel occupancy
    // shared with every other worker), then the logic on this core.
    const std::uint32_t load_bytes = state->op.program->load_bytes();
    const VirtAddr ptr = state->workspace.cur_ptr;
    Time iter_done = queue_.now();
    if (ptr != kNullAddr && load_bytes > 0) {
        const auto owner = memory_.address_map().node_for(ptr);
        if (!owner.has_value()) {
            finish_execution(state, node, worker, start,
                             TraversalStatus::kMemFault,
                             isa::ExecFault::kNone);
            return;
        }
        if (*owner != node) {
            finish_execution(state, node, worker, start,
                             TraversalStatus::kNotLocal,
                             isa::ExecFault::kNone);
            return;
        }
        const Time channel_done =
            node_channels_[node]->access(queue_.now(), load_bytes);
        iter_done =
            std::max(queue_.now() + config_.dram_latency, channel_done);
        memory_.read(ptr, state->workspace.data.data(), load_bytes);
    } else if (load_bytes > 0) {
        std::fill_n(state->workspace.data.begin(), load_bytes, 0);
    }

    isa::CasFn cas = [this, ptr, node](std::uint64_t mem_off,
                                       std::uint64_t expected,
                                       std::uint64_t desired) {
        const VirtAddr addr = ptr + mem_off;
        const auto owner = memory_.address_map().node_for(addr);
        if (!owner || *owner != node) {
            return false;  // off-node CAS is not supported
        }
        node_channels_[node]->access(queue_.now(), 8);
        const std::uint64_t current =
            memory_.read_as<std::uint64_t>(addr);
        if (current != expected) {
            return false;
        }
        memory_.write_as<std::uint64_t>(addr, desired);
        return true;
    };
    isa::IterationResult iter =
        run_iteration(*state->op.program, state->workspace, cas);
    state->iterations++;
    stats_.iterations.increment();
    iter_done += config_.cpu_time(iter.instructions_executed);
    for (const isa::PendingStore& st : iter.stores) {
        node_channels_[node]->access(iter_done, st.length);
        memory_.write(ptr + st.mem_offset,
                      state->workspace.data.data() + st.data_offset,
                      st.length);
    }

    // The RPC baseline has no fork coordinator: a SPAWN that actually
    // fires is outside its supported ISA subset (mirrors the
    // single-chain production path in isa/traversal.cc).
    if (!iter.spawns.empty()) {
        queue_.schedule_at(iter_done, [this, state, node, worker,
                                       start] {
            finish_execution(state, node, worker, start,
                             TraversalStatus::kExecFault,
                             isa::ExecFault::kIllegalInstruction);
        });
        return;
    }

    switch (iter.end) {
      case isa::IterEnd::kReturn:
      case isa::IterEnd::kJoin:  // join of zero branches == RETURN
        queue_.schedule_at(iter_done, [this, state, node, worker,
                                       start] {
            finish_execution(state, node, worker, start,
                             TraversalStatus::kDone,
                             isa::ExecFault::kNone);
        });
        return;
      case isa::IterEnd::kFault: {
        const isa::ExecFault fault = iter.fault;
        queue_.schedule_at(iter_done, [this, state, node, worker,
                                       start, fault] {
            finish_execution(state, node, worker, start,
                             TraversalStatus::kExecFault, fault);
        });
        return;
      }
      case isa::IterEnd::kNextIter:
        if (state->iterations >= kIterationGuard) {
            queue_.schedule_at(iter_done, [this, state, node, worker,
                                           start] {
                finish_execution(state, node, worker, start,
                                 TraversalStatus::kMaxIter,
                                 isa::ExecFault::kNone);
            });
            return;
        }
        queue_.schedule_at(iter_done,
                           [this, state, node, worker, start] {
                               execute_step(state, node, worker, start);
                           });
        return;
    }
}

void
RpcRuntime::finish_execution(const std::shared_ptr<OpState>& state,
                             NodeId node, std::uint32_t worker,
                             Time start, TraversalStatus status,
                             isa::ExecFault fault)
{
    NodeServer& server = servers_[node];
    stats_.worker_busy_time.add(
        static_cast<double>(queue_.now() - start));
    server.busy[worker] = false;
    if (!server.pending.empty()) {
        std::shared_ptr<OpState> next = server.pending.front();
        server.pending.pop_front();
        server.busy[worker] = true;
        begin_execution(next, node, worker);
    }

    if (reliable()) {
        if (state->phase == OpState::Phase::kDone) {
            // The client already gave up on this operation; don't
            // resurrect it with a late response.
            return;
        }
        // Record the outcome for cached-response replays.
        state->phase = OpState::Phase::kResponded;
        state->resp_status = status;
        state->resp_fault = fault;
    }
    send_response(state, node, status, fault);
}

void
RpcRuntime::send_response(const std::shared_ptr<OpState>& state,
                          NodeId node, TraversalStatus status,
                          isa::ExecFault fault)
{
    // Response (same wire format as the request).
    const Bytes response_bytes = net::kNetHeaderBytes +
                                 config_.request_header_bytes +
                                 state->scratch_wire;
    stats_.responses.increment();
    const std::uint64_t leg = state->leg;
    network_.send_message(
        net::EndpointAddr::mem_node(node),
        net::EndpointAddr::client(client_), response_bytes,
        [this, state, status, fault, leg] {
            if (reliable()) {
                if (leg != state->leg ||
                    state->phase == OpState::Phase::kDone) {
                    return;  // duplicate/stale response at the client
                }
                state->timer_generation++;  // quench the timer
            }
            if (status == TraversalStatus::kNotLocal &&
                state->iterations < kIterationGuard) {
                // Continuation bounce: the client re-issues to the
                // owning node after its software overhead.
                stats_.node_bounces.increment();
                state->bounces++;
                const Time bounce_cost = static_cast<Time>(
                    static_cast<double>(config_.client_overhead) *
                    config_.transport_overhead_factor);
                queue_.schedule_after(bounce_cost, [this, state] {
                    issue(state);
                });
                return;
            }
            state->phase = OpState::Phase::kDone;
            complete(state, status, fault);
        });
}

void
RpcRuntime::complete(const std::shared_ptr<OpState>& state,
                     TraversalStatus status, isa::ExecFault fault,
                     bool timed_out)
{
    const Time finish_cost = static_cast<Time>(
        static_cast<double>(config_.client_overhead) *
        config_.transport_overhead_factor / 2.0);
    queue_.schedule_after(finish_cost, [this, state, status, fault,
                                        timed_out] {
        offload::Completion completion;
        completion.status = status;
        completion.fault = fault;
        completion.final_ptr = state->workspace.cur_ptr;
        completion.scratch = state->workspace.scratch;
        completion.iterations = state->iterations;
        completion.client_bounces = state->bounces;
        completion.retransmits = state->retransmits;
        completion.offloaded = true;
        completion.timed_out = timed_out;
        completion.latency = queue_.now() - state->submit_time;
        inflight_--;
        if (state->op.done) {
            state->op.done(std::move(completion));
        }
    });
}

}  // namespace pulse::baselines
