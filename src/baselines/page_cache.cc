#include "baselines/page_cache.h"

#include "common/logging.h"

namespace pulse::baselines {

PageCache::PageCache(Bytes capacity_bytes, Bytes page_bytes)
    : page_bytes_(page_bytes),
      capacity_pages_(static_cast<std::size_t>(
          capacity_bytes / page_bytes))
{
    PULSE_ASSERT(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0,
                 "page size must be a power of two");
    PULSE_ASSERT(capacity_pages_ > 0, "cache smaller than one page");
}

bool
PageCache::access(VirtAddr va)
{
    const VirtAddr page = page_of(va);
    const auto it = map_.find(page);
    if (it == map_.end()) {
        misses_.increment();
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.increment();
    return true;
}

void
PageCache::fill(VirtAddr va)
{
    const VirtAddr page = page_of(va);
    if (map_.count(page)) {
        return;  // raced fill (two faults on one page)
    }
    if (map_.size() >= capacity_pages_) {
        const VirtAddr victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        evictions_.increment();
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
}

void
PageCache::clear()
{
    lru_.clear();
    map_.clear();
}

void
PageCache::reset_stats()
{
    hits_.reset();
    misses_.reset();
    evictions_.reset();
}

}  // namespace pulse::baselines
