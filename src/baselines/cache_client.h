/**
 * @file
 * The Cache-based baseline (Fastswap-representative, paper section 7).
 *
 * Traversals execute on the client CPU; every aggregated load goes
 * through a 4 KB-page LRU cache. A miss is a remote page fault: it
 * occupies one of a bounded pool of fault handlers for the swap
 * software path (fault entry + exit) and moves a whole page across the
 * network. This reproduces both failure modes the paper measures:
 *   - latency: pointer chasing faults on ~every hop, paying RTT + swap
 *     software per hop (Fig. 4);
 *   - throughput: the network moves a page per miss while the fault
 *     handlers serialize, so the client network stack saturates far
 *     below the memory nodes' bandwidth (Figs. 5-6).
 */
#ifndef PULSE_BASELINES_CACHE_CLIENT_H
#define PULSE_BASELINES_CACHE_CLIENT_H

#include <memory>
#include <vector>

#include "baselines/page_cache.h"
#include "common/stats.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "net/network.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::baselines {

/** Cache-based client tunables. */
struct CacheClientConfig
{
    /** Cache size; benches scale this with the data-set size. */
    Bytes cache_bytes = 64 * kMiB;

    Bytes page_bytes = 4 * kKiB;

    /** Swap software cost per fault (entry half, before the fetch). */
    Time fault_entry_latency = micros(1.6);

    /** Swap software cost per fault (exit half, after the fetch). */
    Time fault_exit_latency = micros(1.6);

    /** Parallel fault-handling capacity (kernel threads/cores). */
    std::uint32_t fault_handlers = 8;

    /** Cache-hit access cost (page mapped: ~DRAM + bookkeeping). */
    Time hit_latency = nanos(80.0);

    /** Per-instruction cost of the traversal logic on the client. */
    Time cpu_time_per_insn = nanos(1.0 / 2.6);

    /** Per-operation issue overhead. */
    Time op_software_overhead = nanos(150.0);
};

/** Statistics. */
struct CacheClientStats
{
    Counter operations;
    Counter faults;
    Counter hits;
    Accumulator fault_wait_time;  ///< queueing for a fault handler (ps)
};

/** The Cache-based execution engine at one client. */
class CacheClient
{
  public:
    /**
     * @param node_channels per-node memory channels; page fetches are
     *        charged against them so Fig. 6's "cache network bandwidth
     *        equals its memory bandwidth" accounting holds. May be
     *        empty (no charging) for unit tests.
     */
    CacheClient(sim::EventQueue& queue, net::Network& network,
                mem::GlobalMemory& memory, ClientId client,
                const CacheClientConfig& config,
                std::vector<mem::ChannelSet*> node_channels = {});

    /** Run a traversal through the page cache; op.done fires at end. */
    void submit(offload::Operation&& op);

    /** The underlying page cache (pre-warming, assertions). */
    PageCache& cache() { return *cache_; }

    const CacheClientStats& stats() const { return stats_; }
    void reset_stats();
    const CacheClientConfig& config() const { return config_; }

    /** Operations still in flight. */
    std::size_t inflight() const { return inflight_; }

  private:
    struct OpState;

    void step(const std::shared_ptr<OpState>& state);
    void fetch_pages(const std::shared_ptr<OpState>& state,
                     std::vector<VirtAddr> pages);
    void run_logic(const std::shared_ptr<OpState>& state);

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    ClientId client_;
    CacheClientConfig config_;
    std::vector<mem::ChannelSet*> node_channels_;
    std::unique_ptr<PageCache> cache_;
    std::vector<Time> handler_free_;
    CacheClientStats stats_;
    std::size_t inflight_ = 0;
};

}  // namespace pulse::baselines

#endif  // PULSE_BASELINES_CACHE_CLIENT_H
