/**
 * @file
 * Client-side page cache (the Cache-based baseline's core, modelling
 * Fastswap-style swap-backed far memory, paper section 7 "Cache-based").
 *
 * Timing-only model: it tracks page *presence* with LRU eviction; data
 * always comes functionally from GlobalMemory (the measured workloads
 * are read-only during measurement, so contents never diverge). The
 * paper's key observation — pointer chasing has poor page locality, so
 * nearly every hop faults — falls straight out of this structure.
 */
#ifndef PULSE_BASELINES_PAGE_CACHE_H
#define PULSE_BASELINES_PAGE_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"
#include "common/units.h"

namespace pulse::baselines {

/** LRU page cache keyed by page-aligned virtual address. */
class PageCache
{
  public:
    /**
     * @param capacity_bytes cache size (the paper uses 2 GB against
     *        ~120 GB of data; benches scale both together)
     * @param page_bytes     page size (4 KB)
     */
    PageCache(Bytes capacity_bytes, Bytes page_bytes);

    /** Page-align @p va. */
    VirtAddr page_of(VirtAddr va) const { return va & ~(page_bytes_ - 1); }

    /** Page size. */
    Bytes page_bytes() const { return page_bytes_; }

    /** Capacity in pages. */
    std::size_t capacity_pages() const { return capacity_pages_; }

    /** True (and LRU-refreshed) when @p va's page is resident. */
    bool access(VirtAddr va);

    /** Install @p va's page, evicting the LRU page if needed. */
    void fill(VirtAddr va);

    /** Resident page count. */
    std::size_t resident() const { return map_.size(); }

    /** Drop everything. */
    void clear();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    void reset_stats();

  private:
    Bytes page_bytes_;
    std::size_t capacity_pages_;
    std::list<VirtAddr> lru_;  // front = most recent
    std::unordered_map<VirtAddr, std::list<VirtAddr>::iterator> map_;
    Counter hits_;
    Counter misses_;
    Counter evictions_;
};

}  // namespace pulse::baselines

#endif  // PULSE_BASELINES_PAGE_CACHE_H
