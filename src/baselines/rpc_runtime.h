/**
 * @file
 * RPC baseline: traversals offloaded to CPUs at the memory nodes
 * (paper section 7's "RPC" via eRPC, and "RPC-W" — wimpy cores emulated
 * by down-clocking server cores, exactly as the paper does).
 *
 * Each memory node runs a bounded pool of worker cores. A request
 * occupies one worker for its whole traversal: per iteration it pays
 * local DRAM latency, memory-channel occupancy (the same 25 GB/s cap
 * every system shares), and the iteration's instruction count divided
 * by the core clock. Results are computed by the same ISA interpreter
 * as every other system.
 *
 * Multi-node behaviour: when the next pointer leaves the node, the
 * worker returns a continuation response to the *client*, which
 * re-issues the request to the owning node — RPC systems have no
 * in-network forwarding, which is precisely the half-RTT + software
 * overhead pulse's switch continuation removes (sections 5, 7.1).
 */
#ifndef PULSE_BASELINES_RPC_RUNTIME_H
#define PULSE_BASELINES_RPC_RUNTIME_H

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "mem/global_memory.h"
#include "mem/memory_channel.h"
#include "net/network.h"
#include "offload/offload_engine.h"
#include "sim/event_queue.h"

namespace pulse::baselines {

/** RPC system tunables. */
struct RpcConfig
{
    /** Server core clock (RPC: 2.6 GHz Xeon; RPC-W: 1.0 GHz). */
    double clock_ghz = 2.6;

    /**
     * Cycles per traversal-logic instruction. Pointer-chasing code on
     * a general-purpose core is branchy and dependency-chained, so the
     * effective CPI is well above 1.
     */
    double cpi = 2.5;

    /** Worker cores per memory node (min that saturates bandwidth). */
    std::uint32_t workers_per_node = 16;

    /** Local DRAM latency per aggregated load. */
    Time dram_latency = nanos(100.0);

    /** Server software per request (eRPC rx + dispatch + tx). */
    Time server_overhead = nanos(850.0);

    /** Client software per request (issue + completion). */
    Time client_overhead = nanos(550.0);

    /**
     * Extra per-request overhead factor for TCP-stack transports
     * (AIFM's Cache+RPC path); 1.0 for eRPC/DPDK.
     */
    double transport_overhead_factor = 1.0;

    /** Request/response wire sizes beyond the scratch payload. */
    Bytes request_header_bytes = 64;

    /**
     * Opt-in reliable delivery (for fault-injection runs): when > 0,
     * the client stub retransmits a request after this timeout
     * (exponential backoff), and servers keep an at-most-once phase
     * machine per operation — a retransmit of an executing request is
     * ignored, a retransmit of a finished one gets the cached response
     * re-sent. 0 (the default) keeps the original fire-and-forget
     * behaviour, which hangs under loss — eRPC-style transports always
     * run with reliability on; the knob exists so healthy-network runs
     * stay bit-identical to the seed model.
     */
    Time retransmit_timeout = 0;

    /** Give up (timed-out completion) after this many retransmits. */
    std::uint32_t max_retransmits = 8;

    /** Per-iteration time on the worker core for @p instructions. */
    Time
    cpu_time(std::uint64_t instructions) const
    {
        return static_cast<Time>(static_cast<double>(instructions) *
                                 cpi / clock_ghz * kNanosecond);
    }
};

/** Per-run statistics. */
struct RpcStats
{
    Counter requests;
    Counter responses;
    Counter node_bounces;   ///< continuations via the client
    Counter iterations;
    Counter retransmits;    ///< client-stub request re-sends
    Counter replays;        ///< server cached-response re-sends
    Counter failures;       ///< ops abandoned after max retransmits
    Accumulator worker_busy_time;  ///< ps, summed over workers
};

/**
 * The RPC system: servers on every memory node plus the client-side
 * stub that issues requests and handles continuation bounces.
 */
class RpcRuntime
{
  public:
    RpcRuntime(sim::EventQueue& queue, net::Network& network,
               mem::GlobalMemory& memory,
               std::vector<mem::ChannelSet*> node_channels,
               ClientId client, const RpcConfig& config);

    /** Execute a traversal via RPC; op.done fires on completion. */
    void submit(offload::Operation&& op);

    const RpcStats& stats() const { return stats_; }
    void reset_stats() { stats_ = RpcStats{}; }
    const RpcConfig& config() const { return config_; }

    /** Operations still in flight. */
    std::size_t inflight() const { return inflight_; }

  private:
    struct OpState;

    /** One memory node's worker pool + admission queue. */
    struct NodeServer
    {
        std::vector<bool> busy;
        std::deque<std::shared_ptr<OpState>> pending;
    };

    /** Issue (or re-issue) the request to the node owning cur_ptr. */
    void issue(const std::shared_ptr<OpState>& state);

    /** Send the current leg's request bytes (initial or retransmit). */
    void send_request(const std::shared_ptr<OpState>& state,
                      NodeId node);

    /** Arm the per-operation retransmission timer (reliable mode). */
    void arm_timer(const std::shared_ptr<OpState>& state);

    /** Request arrival at @p node: dedupe, then claim a worker. */
    void on_request(const std::shared_ptr<OpState>& state, NodeId node,
                    std::uint64_t leg);

    /** Request arrival at @p node: claim a worker or queue. */
    void serve(const std::shared_ptr<OpState>& state, NodeId node);

    /** Deliver (or re-deliver) the recorded response for @p state. */
    void send_response(const std::shared_ptr<OpState>& state,
                       NodeId node, isa::TraversalStatus status,
                       isa::ExecFault fault);

    /** Start executing on a claimed worker. */
    void begin_execution(const std::shared_ptr<OpState>& state,
                         NodeId node, std::uint32_t worker);

    /** One event-driven iteration step on the worker. */
    void execute_step(const std::shared_ptr<OpState>& state,
                      NodeId node, std::uint32_t worker, Time start);

    /** Worker done: free it, respond, admit queued work. */
    void finish_execution(const std::shared_ptr<OpState>& state,
                          NodeId node, std::uint32_t worker, Time start,
                          isa::TraversalStatus status,
                          isa::ExecFault fault);

    void complete(const std::shared_ptr<OpState>& state,
                  isa::TraversalStatus status, isa::ExecFault fault,
                  bool timed_out = false);

    bool reliable() const { return config_.retransmit_timeout > 0; }

    sim::EventQueue& queue_;
    net::Network& network_;
    mem::GlobalMemory& memory_;
    std::vector<mem::ChannelSet*> node_channels_;
    ClientId client_;
    RpcConfig config_;
    std::vector<NodeServer> servers_;
    RpcStats stats_;
    std::size_t inflight_ = 0;
};

}  // namespace pulse::baselines

#endif  // PULSE_BASELINES_RPC_RUNTIME_H
