#include "baselines/cache_client.h"

#include <algorithm>

#include "common/logging.h"
#include "isa/interpreter.h"

namespace pulse::baselines {

using isa::TraversalStatus;

namespace {

constexpr Bytes kPageRequestBytes = net::kNetHeaderBytes + 16;
constexpr std::uint64_t kIterationGuard = 1u << 20;

}  // namespace

struct CacheClient::OpState
{
    offload::Operation op;
    isa::Workspace workspace;
    Time submit_time = 0;
    std::uint64_t iterations = 0;
};

CacheClient::CacheClient(sim::EventQueue& queue, net::Network& network,
                         mem::GlobalMemory& memory, ClientId client,
                         const CacheClientConfig& config,
                         std::vector<mem::ChannelSet*> node_channels)
    : queue_(queue), network_(network), memory_(memory),
      client_(client), config_(config),
      node_channels_(std::move(node_channels)),
      cache_(std::make_unique<PageCache>(config.cache_bytes,
                                         config.page_bytes)),
      handler_free_(config.fault_handlers, 0)
{
    PULSE_ASSERT(config.fault_handlers > 0, "need a fault handler");
}

void
CacheClient::reset_stats()
{
    stats_ = CacheClientStats{};
    cache_->reset_stats();
}

void
CacheClient::submit(offload::Operation&& op)
{
    stats_.operations.increment();
    inflight_++;
    auto state = std::make_shared<OpState>();
    state->op = std::move(op);
    state->submit_time = queue_.now();
    state->workspace.configure(*state->op.program);
    state->workspace.cur_ptr = state->op.start_ptr;
    std::copy_n(state->op.init_scratch.begin(),
                std::min(state->op.init_scratch.size(),
                         state->workspace.scratch.size()),
                state->workspace.scratch.begin());
    queue_.schedule_after(
        state->op.init_cpu_time + config_.op_software_overhead,
        [this, state] { step(state); });
}

void
CacheClient::step(const std::shared_ptr<OpState>& state)
{
    const std::uint32_t load_bytes = state->op.program->load_bytes();
    const VirtAddr ptr = state->workspace.cur_ptr;

    if (load_bytes == 0 || ptr == kNullAddr) {
        if (load_bytes > 0) {
            std::fill_n(state->workspace.data.begin(), load_bytes, 0);
        }
        run_logic(state);
        return;
    }

    // Collect the pages this aggregated load touches (node alignment
    // keeps this to one page except for unaligned slot loads).
    std::vector<VirtAddr> missing;
    for (VirtAddr page = cache_->page_of(ptr);
         page < ptr + load_bytes; page += config_.page_bytes) {
        if (!cache_->access(page)) {
            missing.push_back(page);
        }
    }
    if (missing.empty()) {
        stats_.hits.increment();
        queue_.schedule_after(config_.hit_latency, [this, state] {
            memory_.read(state->workspace.cur_ptr,
                         state->workspace.data.data(),
                         state->op.program->load_bytes());
            run_logic(state);
        });
        return;
    }
    fetch_pages(state, std::move(missing));
}

void
CacheClient::fetch_pages(const std::shared_ptr<OpState>& state,
                         std::vector<VirtAddr> pages)
{
    // Fault on the first missing page; chained faults handle the rest.
    const VirtAddr page = pages.back();
    pages.pop_back();
    stats_.faults.increment();

    // Acquire the earliest-free fault handler for the entry half.
    auto handler = std::min_element(handler_free_.begin(),
                                    handler_free_.end());
    const std::size_t handler_index =
        static_cast<std::size_t>(handler - handler_free_.begin());
    const Time start = std::max(queue_.now(), *handler);
    stats_.fault_wait_time.add(
        static_cast<double>(start - queue_.now()));
    const Time request_at = start + config_.fault_entry_latency;
    handler_free_[handler_index] = request_at;

    const auto node = memory_.address_map().node_for(page);
    if (!node.has_value()) {
        // Unmapped pointer: surface a memory fault to the caller.
        offload::Completion completion;
        completion.status = TraversalStatus::kMemFault;
        completion.iterations = state->iterations;
        completion.latency = queue_.now() - state->submit_time;
        inflight_--;
        if (state->op.done) {
            state->op.done(std::move(completion));
        }
        return;
    }

    queue_.schedule_at(request_at, [this, state, page, node = *node,
                                    handler_index,
                                    pages = std::move(pages)]() mutable {
        network_.send_message(
            net::EndpointAddr::client(client_),
            net::EndpointAddr::mem_node(node), kPageRequestBytes,
            [this, state, page, node, handler_index,
             pages = std::move(pages)]() mutable {
                // One-sided page read at the memory node (no CPU, but
                // it consumes the node's memory bandwidth).
                if (node < node_channels_.size() &&
                    node_channels_[node] != nullptr) {
                    node_channels_[node]->access(queue_.now(),
                                                 config_.page_bytes);
                }
                network_.send_message(
                    net::EndpointAddr::mem_node(node),
                    net::EndpointAddr::client(client_),
                    net::kNetHeaderBytes + config_.page_bytes,
                    [this, state, page, handler_index,
                     pages = std::move(pages)]() mutable {
                        // Fault exit half on the same handler.
                        const Time exit_start = std::max(
                            queue_.now(), handler_free_[handler_index]);
                        const Time done =
                            exit_start + config_.fault_exit_latency;
                        handler_free_[handler_index] = done;
                        cache_->fill(page);
                        queue_.schedule_at(
                            done,
                            [this, state,
                             pages = std::move(pages)]() mutable {
                                if (pages.empty()) {
                                    step(state);  // re-check the cache
                                } else {
                                    fetch_pages(state, std::move(pages));
                                }
                            });
                    });
            });
    });
}

void
CacheClient::run_logic(const std::shared_ptr<OpState>& state)
{
    // CAS at the client is safe in this model: measured workloads are
    // single-client, and event-level execution is atomic.
    const VirtAddr cas_base = state->workspace.cur_ptr;
    isa::CasFn cas = [this, cas_base](std::uint64_t mem_off,
                                      std::uint64_t expected,
                                      std::uint64_t desired) {
        const VirtAddr addr = cas_base + mem_off;
        if (!memory_.address_map().node_for(addr)) {
            return false;
        }
        if (memory_.read_as<std::uint64_t>(addr) != expected) {
            return false;
        }
        memory_.write_as<std::uint64_t>(addr, desired);
        return true;
    };
    isa::IterationResult iter =
        run_iteration(*state->op.program, state->workspace, cas);
    state->iterations++;
    const Time logic_time =
        static_cast<Time>(iter.instructions_executed) *
        config_.cpu_time_per_insn;

    // Client-resident execution applies stores directly (write-through
    // happens on eviction in real swap systems; measured workloads are
    // read-only, so presence-only caching stays coherent).
    const VirtAddr iter_ptr = state->workspace.cur_ptr;
    for (const isa::PendingStore& st : iter.stores) {
        memory_.write(iter_ptr + st.mem_offset,
                      state->workspace.data.data() + st.data_offset,
                      st.length);
    }

    queue_.schedule_after(logic_time, [this, state, iter] {
        if (iter.end == isa::IterEnd::kNextIter &&
            state->iterations < kIterationGuard) {
            step(state);
            return;
        }
        offload::Completion completion;
        completion.status =
            iter.end == isa::IterEnd::kReturn ? TraversalStatus::kDone
            : iter.end == isa::IterEnd::kFault
                ? TraversalStatus::kExecFault
                : TraversalStatus::kMaxIter;
        completion.fault = iter.fault;
        completion.final_ptr = state->workspace.cur_ptr;
        completion.scratch = state->workspace.scratch;
        completion.iterations = state->iterations;
        completion.latency = queue_.now() - state->submit_time;
        inflight_--;
        if (state->op.done) {
            state->op.done(std::move(completion));
        }
    });
}

}  // namespace pulse::baselines
