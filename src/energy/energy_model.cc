#include "energy/energy_model.h"

#include <cmath>

namespace pulse::energy {
namespace {

double
ps_to_seconds(double ps)
{
    return ps / static_cast<double>(kSecond);
}

}  // namespace

Joules
accelerator_energy(const AcceleratorPower& power,
                   const AcceleratorActivity& activity)
{
    const double run_s = to_seconds(activity.run_time);
    return power.static_w * run_s +
           power.net_stack_w * ps_to_seconds(activity.net_stack_busy_ps) +
           power.mem_pipeline_w *
               ps_to_seconds(activity.mem_pipeline_busy_ps) +
           power.logic_pipeline_w *
               ps_to_seconds(activity.logic_pipeline_busy_ps);
}

Joules
cpu_energy(const CpuPower& power, const CpuActivity& activity)
{
    const double run_s = to_seconds(activity.run_time);
    const double scale = std::pow(
        activity.clock_ghz / power.nominal_clock_ghz, power.alpha);
    const double per_core_w =
        power.core_static_w + power.core_dynamic_w * scale;
    return power.idle_w * run_s +
           per_core_w * ps_to_seconds(activity.worker_busy_ps);
}

Joules
per_request(Joules total, std::uint64_t requests)
{
    return requests == 0 ? 0.0
                         : total / static_cast<double>(requests);
}

double
perf_per_watt(std::uint64_t requests, Time run_time,
              Joules total_energy)
{
    const double run_s = to_seconds(run_time);
    if (run_s <= 0.0 || total_energy <= 0.0) {
        return 0.0;
    }
    const double throughput = static_cast<double>(requests) / run_s;
    const double watts = total_energy / run_s;
    return throughput / watts;
}

}  // namespace pulse::energy
