/**
 * @file
 * Energy model (paper section 7.1, Fig. 7).
 *
 * The paper measures energy per request with XRT (pulse's FPGA, all
 * power rails including static) and RAPL (RPC/RPC-W/Cache+RPC: CPU
 * package + DRAM of the active workers). The decisive effects are:
 *
 *   - pulse's accelerator is a small fixed-function design: a low
 *     static floor plus small per-pipeline activity power;
 *   - RPC burns a general-purpose core per worker (package + DRAM
 *     share), most of whose circuitry is idle for pointer chasing;
 *   - RPC-W (the paper emulates wimpy cores by *down-clocking Xeon
 *     cores*) keeps nearly the whole package power while running
 *     slower, so energy *per request* gets worse, not better — the
 *     counter-intuitive result the paper highlights for UPC.
 *
 * The model integrates static power over wall-clock run time and
 * activity power over component busy time:
 *
 *   E = P_static * T + sum_i P_i * busy_i
 *
 * Default coefficients are calibrated to land the paper's ratios
 * (pulse 4.56-7.14x less energy/request than RPC) and are documented
 * as calibration constants, not measurements.
 */
#ifndef PULSE_ENERGY_ENERGY_MODEL_H
#define PULSE_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "common/units.h"

namespace pulse::energy {

/** Watts. */
using Watts = double;

/** Joules. */
using Joules = double;

/** pulse accelerator power coefficients (per memory node). */
struct AcceleratorPower
{
    /** Static rails: clocking, transceivers, idle fabric. */
    Watts static_w = 11.0;

    /** Network stack activity (per busy second). */
    Watts net_stack_w = 2.0;

    /** Memory pipeline + DRAM activity (per busy second). */
    Watts mem_pipeline_w = 4.5;

    /** Logic pipeline activity (per busy second). */
    Watts logic_pipeline_w = 2.5;
};

/** Server-CPU power coefficients (per memory node, RAPL-style). */
struct CpuPower
{
    /** Package + DRAM idle floor attributed to the RPC deployment. */
    Watts idle_w = 22.0;

    /**
     * Clock-independent power share of a busy core: L3 slice, mesh
     * stop, memory-controller and DRAM activity driven by the core's
     * accesses. RAPL attributes all of it to the package.
     */
    Watts core_static_w = 3.5;

    /** Clock-dependent core power at the nominal clock. */
    Watts core_dynamic_w = 2.5;

    /**
     * Frequency-scaling exponent for the dynamic share:
     * dynamic(clock) = core_dynamic_w * (clock/nominal)^alpha. The
     * paper's wimpy emulation (intel_pstate down to 1.0 GHz) sits at
     * the package's voltage floor where frequency scaling recovers
     * almost no power — which is why RPC-W's energy *per request*
     * ends up no better than RPC's (section 7.1, also noted by Clio).
     */
    double alpha = 0.13;

    double nominal_clock_ghz = 2.6;
};

/** Accelerator busy-time inputs (from AccelStats, in picoseconds). */
struct AcceleratorActivity
{
    Time run_time = 0;
    double net_stack_busy_ps = 0;
    double mem_pipeline_busy_ps = 0;
    double logic_pipeline_busy_ps = 0;
    std::uint64_t requests = 0;
};

/** CPU busy-time inputs (from RpcStats). */
struct CpuActivity
{
    Time run_time = 0;
    double worker_busy_ps = 0;  ///< summed over workers
    double clock_ghz = 2.6;
    std::uint32_t workers = 1;
    std::uint64_t requests = 0;
};

/** Energy for a pulse accelerator run. */
Joules accelerator_energy(const AcceleratorPower& power,
                          const AcceleratorActivity& activity);

/** Energy for an RPC(-W) run on one node's CPU. */
Joules cpu_energy(const CpuPower& power, const CpuActivity& activity);

/** Joules per request (0 when requests == 0). */
Joules per_request(Joules total, std::uint64_t requests);

/** Requests per second per watt (performance-per-watt, section 7.1). */
double perf_per_watt(std::uint64_t requests, Time run_time,
                     Joules total_energy);

}  // namespace pulse::energy

#endif  // PULSE_ENERGY_ENERGY_MODEL_H
