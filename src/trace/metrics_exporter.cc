#include "trace/metrics_exporter.h"

#include <cmath>
#include <cstdio>

namespace pulse::trace {
namespace {

/**
 * Shortest round-trip-exact decimal rendering: %.17g is always exact
 * for doubles but prints noise digits; try increasing precision until
 * the value round-trips. Deterministic for a given value.
 */
std::string
format_value(double value)
{
    char buf[64];
    for (int precision = 6; precision <= 17; precision++) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        double parsed = 0.0;
        std::sscanf(buf, "%lf", &parsed);
        if (parsed == value || (std::isnan(parsed) && std::isnan(value))) {
            break;
        }
    }
    return buf;
}

/** Escape a metric name for embedding in a JSON string literal. */
std::string
json_escape(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

}  // namespace

void
MetricsExporter::set(const std::string& name, double value)
{
    values_[name] = value;
}

void
MetricsExporter::add_registry(const std::string& prefix,
                              const StatRegistry& registry)
{
    for (const auto& [name, value] : registry.snapshot()) {
        values_[prefix + name] = value;
    }
}

void
MetricsExporter::add_histogram(const std::string& prefix,
                               const Histogram& histogram)
{
    values_[prefix + ".count"] =
        static_cast<double>(histogram.count());
    values_[prefix + ".mean"] = static_cast<double>(histogram.mean());
    values_[prefix + ".min"] = static_cast<double>(histogram.min());
    values_[prefix + ".max"] = static_cast<double>(histogram.max());
    values_[prefix + ".p50"] =
        static_cast<double>(histogram.percentile(0.50));
    values_[prefix + ".p90"] =
        static_cast<double>(histogram.percentile(0.90));
    values_[prefix + ".p99"] =
        static_cast<double>(histogram.percentile(0.99));
    values_[prefix + ".p999"] =
        static_cast<double>(histogram.percentile(0.999));
}

void
MetricsExporter::merge_prefixed(const std::string& prefix,
                                const MetricsExporter& other)
{
    for (const auto& [name, value] : other.values_) {
        values_[prefix + name] = value;
    }
}

std::string
MetricsExporter::json() const
{
    std::string out = "{\n";
    bool first = true;
    for (const auto& [name, value] : values_) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        out += "  \"" + json_escape(name) + "\": " + format_value(value);
    }
    out += "\n}\n";
    return out;
}

std::string
MetricsExporter::csv() const
{
    std::string out = "metric,value\n";
    for (const auto& [name, value] : values_) {
        out += name + "," + format_value(value) + "\n";
    }
    return out;
}

bool
MetricsExporter::write_file(const std::string& path) const
{
    const bool as_json =
        path.size() >= 5 && path.substr(path.size() - 5) == ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        return false;
    }
    const std::string body = as_json ? json() : csv();
    const std::size_t written =
        std::fwrite(body.data(), 1, body.size(), file);
    const bool ok = written == body.size() && std::fclose(file) == 0;
    if (!ok && written != body.size()) {
        std::fclose(file);
    }
    return ok;
}

}  // namespace pulse::trace
