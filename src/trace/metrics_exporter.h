/**
 * @file
 * Unified metrics export.
 *
 * A MetricsExporter gathers every number a run produced — StatRegistry
 * snapshots, histogram summaries, bench-level scalars — into one flat,
 * deterministically-ordered name -> value map, and renders it as JSON
 * or CSV. All figure and ablation benches emit one snapshot per run
 * through this path (bench_util's MetricsSink), replacing per-bench
 * ad-hoc metric dumping; trace_report uses the same schema, so every
 * artifact a run writes is machine-readable in one format.
 */
#ifndef PULSE_TRACE_METRICS_EXPORTER_H
#define PULSE_TRACE_METRICS_EXPORTER_H

#include <map>
#include <string>

#include "common/histogram.h"
#include "common/stats.h"

namespace pulse::trace {

/** Flat, deterministic name -> value snapshot with JSON/CSV render. */
class MetricsExporter
{
  public:
    /** Set one scalar (last write wins). */
    void set(const std::string& name, double value);

    /** Merge a registry snapshot; names get @p prefix prepended. */
    void add_registry(const std::string& prefix,
                      const StatRegistry& registry);

    /**
     * Summarize @p histogram under @p prefix: .count, .mean, .min,
     * .max, .p50, .p90, .p99, .p999 (times in picoseconds).
     */
    void add_histogram(const std::string& prefix,
                       const Histogram& histogram);

    /**
     * Merge every metric of @p other as (@p prefix + name, value).
     * Values are copied bit-exact, so deferring metrics into a local
     * exporter and merging later renders byte-identically to setting
     * the prefixed names directly (the parallel sweep runner relies
     * on this to replay per-cell snapshots in deterministic order).
     */
    void merge_prefixed(const std::string& prefix,
                        const MetricsExporter& other);

    /** Number of recorded metrics. */
    std::size_t size() const { return values_.size(); }

    bool empty() const { return values_.empty(); }

    /** Render as a single sorted JSON object. Deterministic: same
     *  metrics -> byte-identical string. */
    std::string json() const;

    /** Render as sorted "metric,value" CSV with a header row. */
    std::string csv() const;

    /**
     * Write to @p path; the format follows the extension (".json" ->
     * JSON, anything else CSV). Returns false on I/O failure.
     */
    bool write_file(const std::string& path) const;

  private:
    std::map<std::string, double> values_;
};

}  // namespace pulse::trace

#endif  // PULSE_TRACE_METRICS_EXPORTER_H
