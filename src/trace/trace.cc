#include "trace/trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/logging.h"

namespace pulse::trace {

const char*
span_name(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kClientSubmit: return "client_submit";
      case SpanKind::kClientResponse: return "client_response";
      case SpanKind::kClientRetransmit: return "client_retransmit";
      case SpanKind::kComplete: return "complete";
      case SpanKind::kNicUplink: return "nic_uplink";
      case SpanKind::kSwitchRoute: return "switch_route";
      case SpanKind::kNicDownlink: return "nic_downlink";
      case SpanKind::kAccelNetStackRx: return "net_stack_rx";
      case SpanKind::kAccelScheduler: return "scheduler";
      case SpanKind::kAccelWorkspaceWait: return "workspace_wait";
      case SpanKind::kAccelMemPipeline: return "mem_pipeline";
      case SpanKind::kAccelLogicPipeline: return "logic_pipeline";
      case SpanKind::kAccelNetStackTx: return "net_stack_tx";
      case SpanKind::kMemChannel: return "mem_channel";
      case SpanKind::kAccelQosThrottle: return "qos_throttle";
      case SpanKind::kAccelQosShed: return "qos_shed";
    }
    return "?";
}

namespace {

const char*
location_name(Location location)
{
    switch (location) {
      case Location::kClient: return "client";
      case Location::kMemNode: return "node";
      case Location::kSwitch: return "switch";
    }
    return "?";
}

}  // namespace

Tracer::Tracer(const TraceConfig& config)
    : enabled_(config.enabled), capacity_(config.ring_capacity)
{
    PULSE_ASSERT(capacity_ > 0, "tracer needs a non-empty ring");
}

void
Tracer::record(const SpanEvent& event)
{
    if (!enabled_) {
        return;
    }
    recorded_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
        return;
    }
    // Ring saturated: overwrite the oldest event.
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    dropped_++;
}

std::vector<SpanEvent>
Tracer::events() const
{
    std::vector<SpanEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest retained event once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); i++) {
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

std::string
Tracer::to_csv() const
{
    std::string out =
        "client,seq,kind,location,location_index,start_ps,duration_ps,"
        "detail\n";
    char line[192];
    for (const SpanEvent& event : events()) {
        std::snprintf(
            line, sizeof(line),
            "%" PRIu32 ",%" PRIu64 ",%s,%s,%" PRIu32 ",%" PRId64
            ",%" PRId64 ",%" PRIu64 "\n",
            event.request.client, event.request.seq,
            span_name(event.kind), location_name(event.location),
            event.location_index, static_cast<std::int64_t>(event.start),
            static_cast<std::int64_t>(event.duration), event.detail);
        out += line;
    }
    return out;
}

double
Breakdown::net_stack_ns_per_pkt() const
{
    const SpanAggregate& rx = of(SpanKind::kAccelNetStackRx);
    const SpanAggregate& tx = of(SpanKind::kAccelNetStackTx);
    const std::uint64_t packets = rx.count + tx.count;
    return packets ? (rx.total_ps + tx.total_ps) /
                         static_cast<double>(packets) / 1e3
                   : 0.0;
}

double
Breakdown::scheduler_ns() const
{
    return of(SpanKind::kAccelScheduler).mean_ps() / 1e3;
}

double
Breakdown::mem_pipeline_ns_per_load() const
{
    return dram_loads ? of(SpanKind::kAccelMemPipeline).total_ps /
                            static_cast<double>(dram_loads) / 1e3
                      : 0.0;
}

double
Breakdown::logic_ns_per_iter() const
{
    return of(SpanKind::kAccelLogicPipeline).mean_ps() / 1e3;
}

Breakdown
aggregate_breakdown(const std::vector<SpanEvent>& events)
{
    Breakdown breakdown;
    for (const SpanEvent& event : events) {
        SpanAggregate& agg =
            breakdown.per_kind[static_cast<std::size_t>(event.kind)];
        agg.count++;
        agg.total_ps += static_cast<double>(event.duration);
        if (event.kind == SpanKind::kAccelMemPipeline &&
            event.detail != 0) {
            breakdown.dram_loads++;
        }
    }
    return breakdown;
}

}  // namespace pulse::trace
