/**
 * @file
 * Per-request tracing for the pulse simulator.
 *
 * Every offloaded traversal carries a TraceContext; instrumented
 * components (offload engine, NIC/links, switch, accelerator pipelines,
 * memory channels) record typed SpanEvents with simulated timestamps
 * into a per-cluster ring buffer (Tracer). Recording is synchronous —
 * it never schedules events and never draws randomness — so enabling
 * tracing cannot perturb simulation results, and with tracing disabled
 * (the default) every record call is a cheap branch on a null/false
 * check: zero overhead on the hot paths.
 *
 * The span durations deliberately mirror the busy-time Accumulators in
 * AccelStats one-for-one, so a trace-derived latency decomposition
 * (tools/trace_report) can be cross-checked against the counter-based
 * accounting used by bench/fig9_breakdown.
 */
#ifndef PULSE_TRACE_TRACE_H
#define PULSE_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace pulse::trace {

/** Where time was spent (one enumerator per instrumented component). */
enum class SpanKind : std::uint8_t {
    kClientSubmit,      ///< request-build software time at the client
    kClientResponse,    ///< response-absorb software time at the client
    kClientRetransmit,  ///< a retransmitted copy hit the wire (point)
    kComplete,          ///< whole-operation submit -> completion span
    kNicUplink,         ///< endpoint NIC + uplink serialization + prop
    kSwitchRoute,       ///< switch pipeline
    kNicDownlink,       ///< downlink serialization + prop + NIC
    kAccelNetStackRx,   ///< accelerator network stack, parse side
    kAccelScheduler,    ///< scheduler dispatch
    kAccelWorkspaceWait,///< admission-queue wait for a free workspace
    kAccelMemPipeline,  ///< TCAM + protection + aggregated load
    kAccelLogicPipeline,///< ISA interpreter, per iteration
    kAccelNetStackTx,   ///< accelerator network stack, deparse side
    kMemChannel,        ///< DRAM channel occupancy
    kAccelQosThrottle,  ///< serving plane: parked awaiting quota tokens
    kAccelQosShed,      ///< serving plane: load-shed (kRejected)
};

/** Number of SpanKind enumerators (aggregation arrays). */
inline constexpr std::size_t kNumSpanKinds =
    static_cast<std::size_t>(SpanKind::kAccelQosShed) + 1;

/** Stable short name for exports ("net_stack_rx", ...). */
const char* span_name(SpanKind kind);

/** Which entity the recording component belongs to. */
enum class Location : std::uint8_t {
    kClient,
    kMemNode,
    kSwitch,
};

/** One recorded span. */
struct SpanEvent
{
    RequestId request;           ///< {0, 0} for unattributed spans
    SpanKind kind = SpanKind::kClientSubmit;
    Location location = Location::kClient;
    std::uint32_t location_index = 0;  ///< client/node id (0 for switch)
    Time start = 0;
    Time duration = 0;
    /** Kind-specific payload: bytes for NIC/channel/memory spans
     *  (0 marks a TCAM-only memory-pipeline span), instructions for
     *  logic spans, attempt count for retransmits, iterations for
     *  kComplete. */
    std::uint64_t detail = 0;

    friend bool operator==(const SpanEvent&, const SpanEvent&) = default;
};

/** Tracing configuration (part of ClusterConfig). */
struct TraceConfig
{
    /** Master switch. Off by default: simulation results are identical
     *  either way; tracing only adds observability. */
    bool enabled = false;

    /** Ring-buffer capacity in events; the oldest events are
     *  overwritten once full (drops are counted). */
    std::size_t ring_capacity = 1u << 20;
};

/**
 * Per-cluster span ring buffer. Components hold a Tracer* (nullptr or
 * disabled = strict no-op) and call record() at the instant a span's
 * start and duration are both known.
 */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig& config = TraceConfig{});

    bool enabled() const { return enabled_; }
    void set_enabled(bool enabled) { enabled_ = enabled; }

    /** Append one span (overwrites the oldest when full). No-op when
     *  disabled. */
    void record(const SpanEvent& event);

    /** Spans recorded since the last clear (before ring overwrite). */
    std::uint64_t recorded() const { return recorded_; }

    /** Spans lost to ring overwrite. */
    std::uint64_t dropped() const { return dropped_; }

    /** Number of retained events. */
    std::size_t size() const { return ring_.size(); }

    /** Retained events in recording order (oldest first). */
    std::vector<SpanEvent> events() const;

    /** Drop all retained events and zero the counters. */
    void clear();

    /**
     * Deterministic CSV export (one line per retained event, recording
     * order). Identically-seeded runs produce byte-identical output.
     */
    std::string to_csv() const;

  private:
    bool enabled_ = false;
    std::size_t capacity_;
    std::size_t head_ = 0;  ///< next overwrite position once saturated
    std::vector<SpanEvent> ring_;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/** Aggregate of one span kind across a trace. */
struct SpanAggregate
{
    std::uint64_t count = 0;
    double total_ps = 0.0;  ///< summed durations

    double
    mean_ps() const
    {
        return count ? total_ps / static_cast<double>(count) : 0.0;
    }
};

/**
 * Trace-derived per-component latency decomposition (the Fig. 9
 * breakdown, computed from spans instead of AccelStats accounting).
 */
struct Breakdown
{
    SpanAggregate per_kind[kNumSpanKinds];

    /** kAccelMemPipeline spans that performed a DRAM load
     *  (detail != 0), the denominator fig9_breakdown uses. */
    std::uint64_t dram_loads = 0;

    const SpanAggregate&
    of(SpanKind kind) const
    {
        return per_kind[static_cast<std::size_t>(kind)];
    }

    /** Network-stack ns per packet direction (rx+tx pooled). */
    double net_stack_ns_per_pkt() const;

    /** Scheduler dispatch ns per admitted request. */
    double scheduler_ns() const;

    /** Memory-pipeline ns per DRAM load (Fig. 9's per-iteration
     *  number; TCAM-only spans contribute time but no load). */
    double mem_pipeline_ns_per_load() const;

    /** Logic-pipeline ns per iteration. */
    double logic_ns_per_iter() const;
};

/** Fold @p events into a Breakdown. */
Breakdown aggregate_breakdown(const std::vector<SpanEvent>& events);

}  // namespace pulse::trace

#endif  // PULSE_TRACE_TRACE_H
