/**
 * @file
 * Process-wide performance knobs read from the environment.
 *
 * PULSE_POOLING mirrors PULSE_CHECK / PULSE_PLACEMENT / PULSE_REPLICATION:
 * unset (or any value but "off"/"0") leaves the zero-alloc fast paths on;
 * "off" or "0" falls back to the naive per-event allocation paths. The
 * two are bit-identical by construction — the CI perf-guard job diffs
 * fig4/5/9 stdout and metrics across the knob — so the fallback exists
 * purely as a live differential check and a debugging aid.
 */
#ifndef PULSE_COMMON_ENV_KNOBS_H
#define PULSE_COMMON_ENV_KNOBS_H

#include <cstdlib>
#include <cstring>

namespace pulse {

/** True unless PULSE_POOLING=off|0: pools and event batching enabled. */
inline bool
pooling_enabled()
{
    static const bool enabled = [] {
        const char* value = std::getenv("PULSE_POOLING");
        if (value == nullptr) {
            return true;
        }
        return std::strcmp(value, "off") != 0 &&
               std::strcmp(value, "0") != 0;
    }();
    return enabled;
}

}  // namespace pulse

#endif  // PULSE_COMMON_ENV_KNOBS_H
