/**
 * @file
 * Lightweight statistics counters for simulator components.
 *
 * Components own named Counter/Accumulator members and register them in a
 * StatRegistry so benchmarks can dump every statistic uniformly. There is
 * deliberately no global registry: each Cluster owns one, keeping
 * concurrent simulations independent.
 */
#ifndef PULSE_COMMON_STATS_H
#define PULSE_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pulse {

/** Monotonic event counter (requests served, packets routed, ...). */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    /** Checkpoint support: reinstate a saved count. */
    void set(std::uint64_t value) { value_ = value; }

  private:
    std::uint64_t value_ = 0;
};

/** Sum of double-valued samples with count (e.g. bytes moved, joules). */
class Accumulator
{
  public:
    void
    add(double sample)
    {
        sum_ += sample;
        count_++;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Checkpoint support: reinstate a saved sum/count pair. */
    void
    set(double sum, std::uint64_t count)
    {
        sum_ = sum;
        count_ = count;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Per-cluster registry mapping hierarchical names
 * ("node0.accel.mem_pipeline.loads") to counters owned by components.
 */
class StatRegistry
{
  public:
    /** Register a counter; the registry does not take ownership. */
    void register_counter(const std::string& name, const Counter* counter);

    /** Register an accumulator; the registry does not take ownership. */
    void register_accumulator(const std::string& name,
                              const Accumulator* acc);

    /** Snapshot all registered statistics as name → value. */
    std::map<std::string, double> snapshot() const;

    /** Render a sorted human-readable dump. */
    std::string dump() const;

  private:
    std::map<std::string, const Counter*> counters_;
    std::map<std::string, const Accumulator*> accumulators_;
};

}  // namespace pulse

#endif  // PULSE_COMMON_STATS_H
