#include "common/units.h"

#include <cstdio>

namespace pulse {

std::string
format_time(Time t)
{
    char buf[64];
    const double ns = to_nanos(t);
    if (ns < 1e3) {
        std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
    } else if (ns < 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    } else if (ns < 1e9) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
    }
    return buf;
}

std::string
format_bytes(Bytes b)
{
    char buf[64];
    const double v = static_cast<double>(b);
    if (b < kKiB) {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(b));
    } else if (b < kMiB) {
        std::snprintf(buf, sizeof(buf), "%.1f KiB", v / kKiB);
    } else if (b < kGiB) {
        std::snprintf(buf, sizeof(buf), "%.1f MiB", v / kMiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f GiB", v / kGiB);
    }
    return buf;
}

}  // namespace pulse
